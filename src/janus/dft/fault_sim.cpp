#include "janus/dft/fault_sim.hpp"

#include <stdexcept>

namespace janus {
namespace {

std::uint64_t eval_bitwise(CellFunction fn, std::uint64_t a, std::uint64_t b,
                           std::uint64_t c, std::uint64_t d) {
    switch (fn) {
        case CellFunction::Const0: return 0;
        case CellFunction::Const1: return ~0ull;
        case CellFunction::Buf: return a;
        case CellFunction::Inv: return ~a;
        case CellFunction::And2: return a & b;
        case CellFunction::And3: return a & b & c;
        case CellFunction::And4: return a & b & c & d;
        case CellFunction::Nand2: return ~(a & b);
        case CellFunction::Nand3: return ~(a & b & c);
        case CellFunction::Nand4: return ~(a & b & c & d);
        case CellFunction::Or2: return a | b;
        case CellFunction::Or3: return a | b | c;
        case CellFunction::Or4: return a | b | c | d;
        case CellFunction::Nor2: return ~(a | b);
        case CellFunction::Nor3: return ~(a | b | c);
        case CellFunction::Nor4: return ~(a | b | c | d);
        case CellFunction::Xor2: return a ^ b;
        case CellFunction::Xnor2: return ~(a ^ b);
        case CellFunction::Xor3: return a ^ b ^ c;
        case CellFunction::Mux2: return (a & c) | (~a & b);  // a=sel, b, c
        case CellFunction::Aoi21: return ~((a & b) | c);
        case CellFunction::Oai21: return ~((a | b) & c);
        case CellFunction::Maj3: return (a & b) | (a & c) | (b & c);
        case CellFunction::Dff:
        case CellFunction::ScanDff:
            throw std::logic_error("eval_bitwise: sequential cell");
    }
    return 0;
}

/// Core simulation with an optional injected fault.
std::vector<std::uint64_t> simulate_core(const Netlist& nl,
                                         const PatternBatch& batch,
                                         const Fault* fault) {
    std::vector<std::uint64_t> value(nl.num_nets(), 0);
    std::size_t slot = 0;
    for (const NetId pi : nl.primary_inputs()) value[pi] = batch.words.at(slot++);
    for (const InstId f : nl.sequential_instances()) {
        value[nl.instance(f).output] = batch.words.at(slot++);
    }
    const auto inject = [&](NetId n) {
        if (fault && fault->net == n) {
            value[n] = fault->stuck_value ? ~0ull : 0;
        }
    };
    for (const NetId pi : nl.primary_inputs()) inject(pi);
    for (const InstId f : nl.sequential_instances()) inject(nl.instance(f).output);

    // One call per fault per batch; the epoch-cached order makes this a
    // vector walk, not a Kahn pass each time.
    for (const InstId i : nl.topological_order()) {
        const Instance& inst = nl.instance(i);
        const CellFunction fn = nl.type_of(i).function;
        const auto in = [&](int p) {
            const NetId n = inst.fanin[static_cast<std::size_t>(p)];
            return n == kNoNet ? 0ull : value[n];
        };
        value[inst.output] = eval_bitwise(fn, in(0), in(1), in(2), in(3));
        inject(inst.output);
    }
    return value;
}

}  // namespace

std::vector<Fault> enumerate_faults(const Netlist& nl) {
    std::vector<Fault> faults;
    for (NetId n = 0; n < nl.num_nets(); ++n) {
        if (nl.net(n).driver_kind == DriverKind::None) continue;
        faults.push_back(Fault{n, false});
        faults.push_back(Fault{n, true});
    }
    return faults;
}

std::size_t num_input_slots(const Netlist& nl) {
    return nl.primary_inputs().size() + nl.sequential_instances().size();
}

std::size_t num_output_slots(const Netlist& nl) {
    return nl.primary_outputs().size() + nl.sequential_instances().size();
}

std::vector<std::uint64_t> simulate_batch(const Netlist& nl,
                                          const PatternBatch& batch) {
    if (batch.words.size() != num_input_slots(nl)) {
        throw std::invalid_argument("simulate_batch: slot count mismatch");
    }
    return simulate_core(nl, batch, nullptr);
}

std::vector<std::uint64_t> observe(const Netlist& nl,
                                   const std::vector<std::uint64_t>& net_values) {
    std::vector<std::uint64_t> out;
    out.reserve(num_output_slots(nl));
    for (const auto& [name, net] : nl.primary_outputs()) {
        (void)name;
        out.push_back(net_values[net]);
    }
    for (const InstId f : nl.sequential_instances()) {
        const NetId d = nl.instance(f).fanin[0];
        out.push_back(d == kNoNet ? 0 : net_values[d]);
    }
    return out;
}

FaultSimResult fault_simulate(const Netlist& nl,
                              const std::vector<PatternBatch>& batches,
                              const std::vector<Fault>& faults) {
    FaultSimResult res;
    res.total_faults = faults.size();
    std::vector<bool> detected(faults.size(), false);

    for (const PatternBatch& batch : batches) {
        const std::uint64_t live_mask =
            batch.count >= 64 ? ~0ull : ((1ull << batch.count) - 1);
        const auto good = observe(nl, simulate_core(nl, batch, nullptr));
        for (std::size_t fi = 0; fi < faults.size(); ++fi) {
            if (detected[fi]) continue;  // fault dropping
            const auto bad = observe(nl, simulate_core(nl, batch, &faults[fi]));
            for (std::size_t o = 0; o < good.size(); ++o) {
                if ((good[o] ^ bad[o]) & live_mask) {
                    detected[fi] = true;
                    ++res.detected;
                    break;
                }
            }
        }
    }
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
        if (!detected[fi]) res.undetected.push_back(faults[fi]);
    }
    return res;
}

}  // namespace janus
