#include "janus/dft/test_cost.hpp"

#include <algorithm>
#include <cmath>

namespace janus {

TestCostReport evaluate_test_cost(const TestArchitecture& arch,
                                  const TestCostOptions& opts) {
    TestCostReport rep;
    // Shift cycles per pattern: longest chain length; with compression the
    // tester feeds channels instead of chains, shrinking data volume by
    // the compression ratio but shifting the same internal cycles.
    const int chain_len =
        (arch.scan_cells_total + arch.scan_chains - 1) / std::max(1, arch.scan_chains);
    const double cycles_per_pattern = static_cast<double>(chain_len);
    // Without compression the tester must drive one pin per chain; with
    // compression it drives only the channels.
    const int data_pins = arch.compression ? arch.channels : arch.scan_chains;
    // Data-limited shift rate: if the tester streams less data per cycle
    // (fewer pins), patterns take the same internal cycles; the win is the
    // pin count, plus shorter chains are enabled by internal fanout.
    const double seconds =
        static_cast<double>(opts.patterns) * cycles_per_pattern /
        (arch.shift_mhz * 1e6);
    rep.test_time_ms = seconds * 1e3;
    rep.tester_pins = 2 * data_pins + 3;  // in+out per data pin, clk/se/reset
    rep.tester_cost_per_part_usd = seconds * opts.tester_usd_per_second *
                                   (1.0 + 0.02 * rep.tester_pins);
    const int package_pins = opts.functional_pins + rep.tester_pins;
    rep.package_cost_usd =
        opts.package_base_usd + opts.package_per_pin_usd * package_pins;
    rep.total_cost_usd = rep.tester_cost_per_part_usd + rep.package_cost_usd;
    return rep;
}

}  // namespace janus
