#pragma once
/// \file test_points.hpp
/// Observability test-point insertion: nets whose faults random patterns
/// cannot detect gain observe points (tap flops / direct outputs),
/// raising coverage without deterministic ATPG — the classic companion
/// to logic BIST and compression flows.

#include <vector>

#include "janus/dft/atpg.hpp"
#include "janus/netlist/netlist.hpp"

namespace janus {

struct TestPointOptions {
    /// Maximum observe points to insert.
    std::size_t max_points = 16;
    AtpgOptions atpg;
};

struct TestPointResult {
    double coverage_before = 0;
    double coverage_after = 0;
    std::vector<NetId> observe_points;  ///< nets given a new observer
    AtpgResult final_atpg;
};

/// Runs ATPG, ranks undetected faults by net, adds observe points (new
/// primary outputs named "tp<N>") on the most fault-laden undetected
/// nets, and re-runs ATPG. The netlist is modified in place.
TestPointResult insert_observe_points(Netlist& nl,
                                      const TestPointOptions& opts = {});

}  // namespace janus
