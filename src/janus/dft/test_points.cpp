#include "janus/dft/test_points.hpp"

#include <algorithm>
#include <map>

namespace janus {

TestPointResult insert_observe_points(Netlist& nl, const TestPointOptions& opts) {
    TestPointResult res;
    const AtpgResult before = random_atpg(nl, opts.atpg);
    res.coverage_before = before.coverage;

    // Rank nets by how many undetected faults sit on or immediately feed
    // them (a net with both SA0 and SA1 undetected is a prime candidate).
    std::map<NetId, int> weight;
    for (const Fault& f : before.undetected) ++weight[f.net];
    std::vector<std::pair<int, NetId>> ranked;
    ranked.reserve(weight.size());
    for (const auto& [net, w] : weight) ranked.emplace_back(w, net);
    std::sort(ranked.rbegin(), ranked.rend());

    int tp = 0;
    for (const auto& [w, net] : ranked) {
        if (res.observe_points.size() >= opts.max_points) break;
        // Skip nets that are already observed directly.
        bool is_po = false;
        for (const auto& [name, po_net] : nl.primary_outputs()) {
            (void)name;
            if (po_net == net) {
                is_po = true;
                break;
            }
        }
        if (is_po) continue;
        nl.add_primary_output("tp" + std::to_string(tp++), net);
        res.observe_points.push_back(net);
    }

    res.final_atpg = random_atpg(nl, opts.atpg);
    res.coverage_after = res.final_atpg.coverage;
    return res;
}

}  // namespace janus
