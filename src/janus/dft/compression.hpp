#pragma once
/// \file compression.hpp
/// Test-data compression in the EDT style: a linear (XOR-network)
/// decompressor expands a few tester channels into many scan-chain bits,
/// and encoding a test cube means solving a GF(2) linear system over the
/// channel bits. Response compaction uses a MISR. Panelist Sawicki:
/// "high-compression DFT technologies will be targeted at low-pin-count
/// test, enabling lower cost packaging" (experiment E9).

#include <cstdint>
#include <optional>
#include <vector>

namespace janus {

/// A deterministic test cube: values for a subset of scan cells.
struct TestCube {
    std::vector<std::uint32_t> care_cells;  ///< scan cell indices
    std::vector<bool> care_values;          ///< same order
};

/// Linear decompressor: scan cell bit = XOR of a pseudo-random subset of
/// the channel-input bit stream (channels x shift cycles bits total).
class LinearDecompressor {
  public:
    /// `scan_cells` total cells, fed by `channels` tester pins over
    /// ceil(scan_cells / chains) shift cycles.
    LinearDecompressor(std::size_t scan_cells, int channels, int chains,
                       std::uint64_t seed = 1);

    std::size_t scan_cells() const { return scan_cells_; }
    std::size_t channel_bits() const { return channel_bits_; }
    /// Input-data compression ratio: scan bits / channel bits.
    double compression_ratio() const {
        return static_cast<double>(scan_cells_) /
               static_cast<double>(channel_bits_);
    }

    /// Expands a channel-bit assignment into all scan-cell values.
    std::vector<bool> expand(const std::vector<bool>& channel_bits) const;

    /// Solves for channel bits reproducing the cube's care bits (GF(2)
    /// Gaussian elimination); nullopt when the system is unsatisfiable —
    /// the "encoding failure" real EDT retries with a new configuration.
    std::optional<std::vector<bool>> encode(const TestCube& cube) const;

  private:
    std::size_t scan_cells_;
    std::size_t channel_bits_;
    /// Per scan cell: indices of channel bits XORed into it.
    std::vector<std::vector<std::uint32_t>> taps_;
};

/// Multiple-input signature register for response compaction.
class Misr {
  public:
    explicit Misr(int width, std::uint64_t polynomial_seed = 0xD008);

    /// Absorbs one scan-out slice (low `width` bits used).
    void absorb(std::uint64_t slice);
    std::uint64_t signature() const { return state_; }
    void reset() { state_ = 0; }
    int width() const { return width_; }
    /// Probability a random error escapes (aliases): 2^-width.
    double aliasing_probability() const;

  private:
    int width_;
    std::uint64_t poly_;
    std::uint64_t state_ = 0;
};

}  // namespace janus
