#pragma once
/// \file scan.hpp
/// Scan insertion and scan-chain reordering. Insertion swaps every DFF
/// for a scan flop and stitches SI pins into chains; reordering restitches
/// a placed design's chains by location — the back-end DFT step panelist
/// Rossi argues should no longer be treated as a front-end activity (E8).

#include <vector>

#include "janus/netlist/netlist.hpp"

namespace janus {

struct ScanChain {
    NetId scan_in = kNoNet;
    std::string scan_out_name;  ///< primary output observing the chain tail
    std::vector<InstId> flops;  ///< shift order, scan-in side first
};

struct ScanInsertion {
    std::vector<ScanChain> chains;
    NetId scan_enable = kNoNet;
};

/// Converts all DFFs to scan flops and stitches `num_chains` chains in
/// instance-id order (the "front-end" order that ignores placement).
/// Adds scan_in/scan_enable primary inputs and scan_out outputs.
ScanInsertion insert_scan(Netlist& nl, int num_chains = 1);

/// Total stitched SI-to-Q wirelength of a chain (um) from placement.
double scan_wirelength_um(const Netlist& nl, const ScanChain& chain);

struct ReorderResult {
    double before_um = 0;
    double after_um = 0;
    double improvement() const {
        return before_um > 0 ? 1.0 - after_um / before_um : 0.0;
    }
};

/// Reorders each chain by placement (greedy nearest-neighbor + 2-opt) and
/// restitches the SI pins in the netlist.
ReorderResult reorder_scan(Netlist& nl, ScanInsertion& scan);

}  // namespace janus
