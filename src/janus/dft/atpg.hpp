#pragma once
/// \file atpg.hpp
/// Random-pattern ATPG with fault dropping: generates 64-pattern batches
/// until the coverage target or the pattern budget is reached, recording
/// the coverage curve. Scan-based testing treats the sequential design as
/// its combinational core.

#include <cstdint>
#include <vector>

#include "janus/dft/fault_sim.hpp"

namespace janus {

struct AtpgOptions {
    double target_coverage = 0.98;
    std::size_t max_patterns = 4096;
    std::uint64_t seed = 1;
    /// Bias of random input bits toward 1 (0.5 = uniform).
    double one_probability = 0.5;
};

struct AtpgResult {
    std::vector<PatternBatch> patterns;
    std::size_t patterns_used = 0;
    double coverage = 0;
    std::vector<Fault> undetected;
    /// (patterns, coverage) after each batch — the coverage curve.
    std::vector<std::pair<std::size_t, double>> curve;
};

/// Runs random ATPG against all collapsed stuck-at faults.
AtpgResult random_atpg(const Netlist& nl, const AtpgOptions& opts = {});

}  // namespace janus
