#include "janus/dft/atpg.hpp"

#include <algorithm>

#include "janus/util/rng.hpp"

namespace janus {

AtpgResult random_atpg(const Netlist& nl, const AtpgOptions& opts) {
    AtpgResult res;
    Rng rng(opts.seed);
    std::vector<Fault> remaining = enumerate_faults(nl);
    const std::size_t total = remaining.size();
    std::size_t detected_total = 0;
    const std::size_t slots = num_input_slots(nl);

    while (res.patterns_used < opts.max_patterns) {
        PatternBatch batch;
        batch.count = static_cast<int>(
            std::min<std::size_t>(64, opts.max_patterns - res.patterns_used));
        batch.words.resize(slots);
        for (auto& w : batch.words) {
            std::uint64_t word = 0;
            for (int b = 0; b < batch.count; ++b) {
                if (rng.next_bool(opts.one_probability)) word |= (1ull << b);
            }
            w = word;
        }
        const FaultSimResult fs = fault_simulate(nl, {batch}, remaining);
        detected_total += fs.detected;
        remaining = fs.undetected;
        res.patterns.push_back(std::move(batch));
        res.patterns_used += static_cast<std::size_t>(res.patterns.back().count);
        const double cov =
            total ? static_cast<double>(detected_total) / static_cast<double>(total)
                  : 1.0;
        res.curve.emplace_back(res.patterns_used, cov);
        if (cov >= opts.target_coverage) break;
        if (fs.detected == 0 && res.curve.size() > 4) {
            // Four consecutive dry batches: random patterns saturated.
            const auto n = res.curve.size();
            if (res.curve[n - 2].second == cov && res.curve[n - 3].second == cov &&
                res.curve[n - 4].second == cov) {
                break;
            }
        }
    }
    res.coverage = total ? static_cast<double>(detected_total) / static_cast<double>(total)
                         : 1.0;
    res.undetected = std::move(remaining);
    return res;
}

}  // namespace janus
