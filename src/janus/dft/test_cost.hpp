#pragma once
/// \file test_cost.hpp
/// Manufacturing test economics: test time from pattern counts and scan
/// architecture, tester pin requirements, and a package cost model that
/// rewards low-pin-count test (E9).

namespace janus {

struct TestArchitecture {
    int scan_chains = 8;
    int scan_cells_total = 10000;
    int channels = 8;        ///< tester data pins (in + out shared count)
    bool compression = false;
    double compression_ratio = 1.0;  ///< effective scan-data reduction
    double shift_mhz = 50.0;
};

struct TestCostReport {
    double test_time_ms = 0;
    int tester_pins = 0;        ///< scan data pins + clock/control
    double tester_cost_per_part_usd = 0;
    double package_cost_usd = 0;
    double total_cost_usd = 0;
};

struct TestCostOptions {
    int patterns = 1000;
    double tester_usd_per_second = 0.05;  ///< amortized ATE cost
    /// Package cost: base + per-pin increment (wirebond-class model).
    double package_base_usd = 0.05;
    double package_per_pin_usd = 0.004;
    int functional_pins = 24;  ///< non-test pins the package needs anyway
};

/// Evaluates the test cost of an architecture.
TestCostReport evaluate_test_cost(const TestArchitecture& arch,
                                  const TestCostOptions& opts = {});

}  // namespace janus
