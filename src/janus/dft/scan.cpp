#include "janus/dft/scan.hpp"

#include <algorithm>
#include <stdexcept>

namespace janus {
namespace {

Point flop_position(const Netlist& nl, InstId f) { return nl.instance(f).position; }

double chain_length_um(const Netlist& nl, const std::vector<InstId>& order) {
    double um = 0;
    for (std::size_t i = 1; i < order.size(); ++i) {
        um += static_cast<double>(manhattan(flop_position(nl, order[i - 1]),
                                            flop_position(nl, order[i]))) *
              1e-3;
    }
    return um;
}

/// Restitches the SI pins of a chain to match `order`.
void stitch(Netlist& nl, const ScanChain& chain) {
    NetId prev = chain.scan_in;
    for (const InstId f : chain.flops) {
        nl.connect_input(f, 1, prev);  // SI is pin 1 of SDFF
        prev = nl.instance(f).output;
    }
}

}  // namespace

ScanInsertion insert_scan(Netlist& nl, int num_chains) {
    if (num_chains < 1) throw std::invalid_argument("insert_scan: num_chains < 1");
    const auto sdff = nl.library().find_function(CellFunction::ScanDff);
    if (!sdff) throw std::runtime_error("insert_scan: library lacks SDFF");

    const auto flops = nl.sequential_instances();
    ScanInsertion si;
    si.scan_enable = nl.add_primary_input("scan_enable");

    // Convert DFF -> SDFF: same D (pin 0); SI (pin 1) stitched below; SE
    // (pin 2) shared.
    for (const InstId f : flops) {
        if (nl.type_of(f).function == CellFunction::ScanDff) continue;
        Instance& inst = nl.instance(f);
        inst.type = *sdff;
        nl.connect_input(f, 2, si.scan_enable);
    }

    const std::size_t per_chain =
        (flops.size() + static_cast<std::size_t>(num_chains) - 1) /
        std::max<std::size_t>(1, static_cast<std::size_t>(num_chains));
    for (int c = 0; c < num_chains; ++c) {
        ScanChain chain;
        chain.scan_in = nl.add_primary_input("scan_in" + std::to_string(c));
        const std::size_t begin = static_cast<std::size_t>(c) * per_chain;
        const std::size_t end = std::min(flops.size(), begin + per_chain);
        for (std::size_t i = begin; i < end; ++i) chain.flops.push_back(flops[i]);
        if (chain.flops.empty()) {
            continue;
        }
        stitch(nl, chain);
        chain.scan_out_name = "scan_out" + std::to_string(c);
        nl.add_primary_output(chain.scan_out_name,
                              nl.instance(chain.flops.back()).output);
        si.chains.push_back(std::move(chain));
    }
    return si;
}

double scan_wirelength_um(const Netlist& nl, const ScanChain& chain) {
    return chain_length_um(nl, chain.flops);
}

ReorderResult reorder_scan(Netlist& nl, ScanInsertion& scan) {
    ReorderResult res;
    for (ScanChain& chain : scan.chains) {
        res.before_um += scan_wirelength_um(nl, chain);
        if (chain.flops.size() < 3) {
            res.after_um += scan_wirelength_um(nl, chain);
            continue;
        }
        // Greedy nearest-neighbor from the current first flop.
        std::vector<InstId> remaining(chain.flops.begin() + 1, chain.flops.end());
        std::vector<InstId> order{chain.flops.front()};
        while (!remaining.empty()) {
            const Point cur = flop_position(nl, order.back());
            std::size_t best = 0;
            std::int64_t best_d = manhattan(cur, flop_position(nl, remaining[0]));
            for (std::size_t i = 1; i < remaining.size(); ++i) {
                const std::int64_t d = manhattan(cur, flop_position(nl, remaining[i]));
                if (d < best_d) {
                    best_d = d;
                    best = i;
                }
            }
            order.push_back(remaining[best]);
            remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(best));
        }
        // 2-opt refinement.
        bool improved = true;
        while (improved) {
            improved = false;
            for (std::size_t i = 0; i + 2 < order.size(); ++i) {
                for (std::size_t j = i + 2; j < order.size(); ++j) {
                    const Point a = flop_position(nl, order[i]);
                    const Point b = flop_position(nl, order[i + 1]);
                    const Point c = flop_position(nl, order[j]);
                    const std::int64_t before = manhattan(a, b) +
                                                (j + 1 < order.size()
                                                     ? manhattan(c, flop_position(nl, order[j + 1]))
                                                     : 0);
                    const std::int64_t after = manhattan(a, c) +
                                               (j + 1 < order.size()
                                                    ? manhattan(b, flop_position(nl, order[j + 1]))
                                                    : 0);
                    if (after < before) {
                        std::reverse(order.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                                     order.begin() + static_cast<std::ptrdiff_t>(j) + 1);
                        improved = true;
                    }
                }
            }
        }
        chain.flops = std::move(order);
        stitch(nl, chain);
        nl.set_primary_output(chain.scan_out_name,
                              nl.instance(chain.flops.back()).output);
        res.after_um += scan_wirelength_um(nl, chain);
    }
    return res;
}

}  // namespace janus
