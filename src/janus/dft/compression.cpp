#include "janus/dft/compression.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "janus/util/rng.hpp"

namespace janus {

LinearDecompressor::LinearDecompressor(std::size_t scan_cells, int channels,
                                       int chains, std::uint64_t seed)
    : scan_cells_(scan_cells) {
    if (scan_cells == 0 || channels < 1 || chains < 1) {
        throw std::invalid_argument("LinearDecompressor: bad configuration");
    }
    const std::size_t cycles =
        (scan_cells + static_cast<std::size_t>(chains) - 1) /
        static_cast<std::size_t>(chains);
    channel_bits_ = cycles * static_cast<std::size_t>(channels);
    // Each cell taps ~4 channel bits, biased toward bits injected at or
    // before the cell's shift cycle (mimicking LFSR state evolution).
    Rng rng(seed);
    taps_.resize(scan_cells_);
    for (std::size_t cell = 0; cell < scan_cells_; ++cell) {
        const std::size_t cycle = cell / static_cast<std::size_t>(chains);
        const std::size_t avail = (cycle + 1) * static_cast<std::size_t>(channels);
        const int ntaps = 3 + static_cast<int>(rng.next_below(3));
        for (int t = 0; t < ntaps; ++t) {
            taps_[cell].push_back(
                static_cast<std::uint32_t>(rng.next_below(avail)));
        }
        std::sort(taps_[cell].begin(), taps_[cell].end());
        taps_[cell].erase(std::unique(taps_[cell].begin(), taps_[cell].end()),
                          taps_[cell].end());
    }
}

std::vector<bool> LinearDecompressor::expand(
    const std::vector<bool>& channel_bits) const {
    if (channel_bits.size() != channel_bits_) {
        throw std::invalid_argument("expand: channel bit count mismatch");
    }
    std::vector<bool> cells(scan_cells_, false);
    for (std::size_t c = 0; c < scan_cells_; ++c) {
        bool v = false;
        for (const std::uint32_t t : taps_[c]) v = v != channel_bits[t];
        cells[c] = v;
    }
    return cells;
}

std::optional<std::vector<bool>> LinearDecompressor::encode(
    const TestCube& cube) const {
    if (cube.care_cells.size() != cube.care_values.size()) {
        throw std::invalid_argument("encode: malformed cube");
    }
    // Build the GF(2) system: one row per care bit over channel_bits_
    // unknowns, bit-packed into words.
    const std::size_t words = (channel_bits_ + 63) / 64;
    struct Row {
        std::vector<std::uint64_t> a;
        bool rhs;
    };
    std::vector<Row> rows;
    rows.reserve(cube.care_cells.size());
    for (std::size_t i = 0; i < cube.care_cells.size(); ++i) {
        const std::uint32_t cell = cube.care_cells[i];
        if (cell >= scan_cells_) {
            throw std::out_of_range("encode: care cell out of range");
        }
        Row r;
        r.a.assign(words, 0);
        for (const std::uint32_t t : taps_[cell]) {
            r.a[t / 64] ^= (1ull << (t % 64));
        }
        r.rhs = cube.care_values[i];
        rows.push_back(std::move(r));
    }

    // Gaussian elimination.
    std::vector<std::size_t> pivot_col;
    std::size_t rank = 0;
    for (std::size_t col = 0; col < channel_bits_ && rank < rows.size(); ++col) {
        std::size_t sel = rows.size();
        for (std::size_t r = rank; r < rows.size(); ++r) {
            if ((rows[r].a[col / 64] >> (col % 64)) & 1) {
                sel = r;
                break;
            }
        }
        if (sel == rows.size()) continue;
        std::swap(rows[rank], rows[sel]);
        for (std::size_t r = 0; r < rows.size(); ++r) {
            if (r == rank) continue;
            if ((rows[r].a[col / 64] >> (col % 64)) & 1) {
                for (std::size_t w = 0; w < words; ++w) rows[r].a[w] ^= rows[rank].a[w];
                rows[r].rhs = rows[r].rhs != rows[rank].rhs;
            }
        }
        pivot_col.push_back(col);
        ++rank;
    }
    // Inconsistent row: 0 = 1.
    for (std::size_t r = rank; r < rows.size(); ++r) {
        bool any = false;
        for (const std::uint64_t w : rows[r].a) any |= (w != 0);
        if (!any && rows[r].rhs) return std::nullopt;
    }

    std::vector<bool> solution(channel_bits_, false);
    for (std::size_t r = 0; r < rank; ++r) {
        solution[pivot_col[r]] = rows[r].rhs;
    }
    return solution;
}

Misr::Misr(int width, std::uint64_t polynomial_seed) : width_(width) {
    if (width < 4 || width > 64) throw std::invalid_argument("Misr: bad width");
    // Ensure the feedback polynomial has the top tap set.
    poly_ = polynomial_seed | 1ull | (1ull << (width - 1));
}

void Misr::absorb(std::uint64_t slice) {
    const std::uint64_t mask = width_ == 64 ? ~0ull : ((1ull << width_) - 1);
    const bool msb = (state_ >> (width_ - 1)) & 1;
    state_ = ((state_ << 1) & mask) ^ (msb ? (poly_ & mask) : 0) ^ (slice & mask);
}

double Misr::aliasing_probability() const { return std::pow(2.0, -width_); }

}  // namespace janus
