#pragma once
/// \file fault_sim.hpp
/// Stuck-at fault model and 64-way bit-parallel fault simulation over the
/// combinational core of a full-scan design (flops act as pseudo-PI/PO).

#include <cstdint>
#include <vector>

#include "janus/netlist/netlist.hpp"

namespace janus {

/// One stuck-at fault on a net.
struct Fault {
    NetId net = 0;
    bool stuck_value = false;  ///< false = SA0, true = SA1
    friend bool operator==(const Fault&, const Fault&) = default;
};

/// All collapsed stuck-at faults: two per driven net.
std::vector<Fault> enumerate_faults(const Netlist& nl);

/// A batch of up to 64 test patterns over the input slots (primary inputs
/// followed by flop pseudo-inputs). words[s] bit p = value of slot s in
/// pattern p.
struct PatternBatch {
    std::vector<std::uint64_t> words;
    int count = 64;  ///< patterns used in this batch (low bits)
};

/// Number of input slots (PIs + flops) of the combinational core.
std::size_t num_input_slots(const Netlist& nl);
/// Number of observe slots (POs + flop D pseudo-outputs).
std::size_t num_output_slots(const Netlist& nl);

/// Bit-parallel good-machine simulation: returns one word per net.
std::vector<std::uint64_t> simulate_batch(const Netlist& nl,
                                          const PatternBatch& batch);

/// Observed response words, one per output slot, extracted from net values.
std::vector<std::uint64_t> observe(const Netlist& nl,
                                   const std::vector<std::uint64_t>& net_values);

struct FaultSimResult {
    std::size_t total_faults = 0;
    std::size_t detected = 0;
    /// Remaining undetected faults after all batches.
    std::vector<Fault> undetected;
    double coverage() const {
        return total_faults
                   ? static_cast<double>(detected) / static_cast<double>(total_faults)
                   : 0.0;
    }
};

/// Simulates every fault against the batches with fault dropping.
FaultSimResult fault_simulate(const Netlist& nl,
                              const std::vector<PatternBatch>& batches,
                              const std::vector<Fault>& faults);

}  // namespace janus
