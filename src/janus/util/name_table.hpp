#pragma once
/// \file name_table.hpp
/// Interned string pool for design object names (instances, nets). The
/// megascale netlist storage (netlist.hpp) keeps a 32-bit NameId per object
/// instead of a std::string (32 bytes + a heap block each): names live
/// NUL-terminated in chunked arena storage, deduplicated through an
/// open-addressed hash index, and are handed back as std::string_view on
/// demand. Modeled on boolector's BtorMemMgr arena + unique-table pairing:
/// allocation is bump-pointer, lookup is power-of-two open addressing, and
/// nothing is ever freed individually (a name outlives the design).
///
/// Ids are byte offsets into the logical arena (chunk index in the high
/// bits, offset within the chunk in the low bits), so view() is two loads
/// and no hashing. Views stay valid for the lifetime of the table: chunks
/// are never reallocated, only appended (a string never spans chunks).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace janus {

/// Interned name handle; byte-offset encoding, stable for the table's life.
using NameId = std::uint32_t;
inline constexpr NameId kNoName = 0xFFFFFFFFu;

class NameTable {
  public:
    NameTable();
    NameTable(const NameTable& other);
    NameTable& operator=(const NameTable& other);
    NameTable(NameTable&&) noexcept = default;
    NameTable& operator=(NameTable&&) noexcept = default;

    /// Interns `s` and returns its id; the same string always maps to the
    /// same id. Strings may not contain NUL (arena strings are
    /// NUL-terminated); embedded NULs truncate the stored name.
    NameId intern(std::string_view s);

    /// Id of an already-interned string, or kNoName when absent. Never
    /// inserts — the const lookup path for query-by-name maps (sessions).
    NameId find(std::string_view s) const;

    /// The string for an id interned earlier. kNoName maps to "".
    std::string_view view(NameId id) const {
        if (id == kNoName) return {};
        const char* p = chunks_[id >> kChunkBits].get() + (id & kChunkMask);
        return std::string_view(p);
    }

    /// Number of distinct strings interned.
    std::size_t size() const { return count_; }

    /// Total footprint: arena chunks (allocated, not just used) plus the
    /// dedup hash index.
    std::size_t memory_bytes() const;

  private:
    static constexpr std::uint32_t kChunkBits = 16;  ///< 64 KiB chunks
    static constexpr std::uint32_t kChunkMask = (1u << kChunkBits) - 1;

    NameId append(std::string_view s);
    void rehash(std::size_t new_slots);
    void copy_from(const NameTable& other);

    std::vector<std::unique_ptr<char[]>> chunks_;
    std::uint32_t chunk_used_ = 1u << kChunkBits;  ///< forces first chunk
    // Open-addressed dedup index: slot holds an interned id or kNoName.
    std::vector<NameId> slots_;
    std::size_t count_ = 0;
};

}  // namespace janus
