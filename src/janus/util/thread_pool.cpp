#include "janus/util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <utility>

namespace janus {

ThreadPool::ThreadPool(int workers) {
    const int n = std::max(1, workers);
    threads_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        threads_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    task_ready_.notify_all();
    for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push(std::move(task));
        ++in_flight_;
    }
    task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            task_ready_.wait(lock,
                             [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stopping and drained
            task = std::move(queue_.front());
            queue_.pop();
        }
        task();  // tasks must not throw; for_each_index wraps user fns
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --in_flight_;
            if (in_flight_ == 0) all_done_.notify_all();
        }
    }
}

void ThreadPool::run_slots(std::size_t slots,
                           const std::function<void(std::size_t)>& fn) {
    const std::size_t k = std::clamp<std::size_t>(slots, 1, threads_.size());
    // Exception bookkeeping: keep the one thrown by the lowest slot so a
    // parallel run reports the same failure a serial loop would hit first.
    std::mutex err_mutex;
    std::exception_ptr first_error;
    std::size_t first_error_slot = std::numeric_limits<std::size_t>::max();
    std::atomic<std::size_t> remaining{k};
    std::mutex done_mutex;
    std::condition_variable done_cv;

    for (std::size_t s = 0; s < k; ++s) {
        submit([&, s] {
            try {
                fn(s);
            } catch (...) {
                std::lock_guard<std::mutex> lock(err_mutex);
                if (s < first_error_slot) {
                    first_error_slot = s;
                    first_error = std::current_exception();
                }
            }
            if (remaining.fetch_sub(1) == 1) {
                std::lock_guard<std::mutex> lock(done_mutex);
                done_cv.notify_all();
            }
        });
    }
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return remaining.load() == 0; });
    lock.unlock();
    if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::for_each_index(std::size_t n,
                                const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    // Stripe the index space over slot tasks pulling from a shared cursor.
    // The lowest-index-exception contract needs care: each slot records its
    // own lowest failure, and the slots' candidates are merged under the
    // error mutex so the globally lowest index wins.
    std::mutex err_mutex;
    std::exception_ptr first_error;
    std::size_t first_error_index = std::numeric_limits<std::size_t>::max();
    std::atomic<std::size_t> cursor{0};

    run_slots(std::min(n, threads_.size()), [&](std::size_t) {
        for (std::size_t i = cursor.fetch_add(1); i < n;
             i = cursor.fetch_add(1)) {
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(err_mutex);
                if (i < first_error_index) {
                    first_error_index = i;
                    first_error = std::current_exception();
                }
            }
        }
    });
    if (first_error) std::rethrow_exception(first_error);
}

}  // namespace janus
