#pragma once
/// \file log.hpp
/// Minimal leveled logging to stderr. Off by default above Warning so tests
/// and benches stay quiet; flows can raise verbosity for debugging.

#include <string>

namespace janus {

enum class LogLevel { Debug = 0, Info = 1, Warning = 2, Error = 3, Silent = 4 };

/// Sets the global minimum level that is actually emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits `msg` to stderr if `level` >= the global threshold.
void log(LogLevel level, const std::string& msg);

inline void log_debug(const std::string& m) { log(LogLevel::Debug, m); }
inline void log_info(const std::string& m) { log(LogLevel::Info, m); }
inline void log_warning(const std::string& m) { log(LogLevel::Warning, m); }
inline void log_error(const std::string& m) { log(LogLevel::Error, m); }

}  // namespace janus
