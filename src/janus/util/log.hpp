#pragma once
/// \file log.hpp
/// Minimal leveled logging to stderr. Off by default above Warning so tests
/// and benches stay quiet; flows can raise verbosity for debugging.
///
/// The sink is thread-safe: concurrent log() calls from batch flow workers
/// emit whole lines, never interleaved characters. Each thread may set a
/// context label (e.g. "flow:cpu0/route") that is prefixed to its messages
/// so interleaved batch-run logs stay attributable to a design and stage.

#include <string>

namespace janus {

enum class LogLevel { Debug = 0, Info = 1, Warning = 2, Error = 3, Silent = 4 };

/// Sets the global minimum level that is actually emitted (thread-safe).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Sets this thread's context label; emitted as "[label] " before every
/// message the thread logs. An empty string clears the prefix.
void set_log_context(std::string label);
/// This thread's current context label ("" when unset).
const std::string& log_context();

/// RAII context label: restores the thread's previous label on scope exit,
/// so nested scopes (per-design, then per-stage) compose.
class ScopedLogContext {
  public:
    explicit ScopedLogContext(std::string label);
    ~ScopedLogContext();
    ScopedLogContext(const ScopedLogContext&) = delete;
    ScopedLogContext& operator=(const ScopedLogContext&) = delete;

  private:
    std::string previous_;
};

/// Emits `msg` to stderr if `level` >= the global threshold.
void log(LogLevel level, const std::string& msg);

inline void log_debug(const std::string& m) { log(LogLevel::Debug, m); }
inline void log_info(const std::string& m) { log(LogLevel::Info, m); }
inline void log_warning(const std::string& m) { log(LogLevel::Warning, m); }
inline void log_error(const std::string& m) { log(LogLevel::Error, m); }

}  // namespace janus
