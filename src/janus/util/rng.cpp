#include "janus/util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace janus {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
    // splitmix64 expansion avoids the all-zero state xoshiro cannot leave.
    std::uint64_t x = seed;
    for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
    assert(bound > 0);
    // Rejection sampling removes modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = next_u64();
        if (r >= threshold) return r % bound;
    }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    // span == 0 means the full 64-bit range [lo, hi] wrapped; take raw bits.
    if (span == 0) return static_cast<std::int64_t>(next_u64());
    return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
    // 53 high bits give a uniform double in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_gaussian(double mean, double stddev) {
    double u1 = next_double();
    const double u2 = next_double();
    if (u1 <= 0.0) u1 = 0x1.0p-53;  // avoid log(0)
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

bool Rng::next_bool(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
}

std::size_t Rng::pick_index(std::size_t size) {
    assert(size > 0);
    return static_cast<std::size_t>(next_below(size));
}

std::uint64_t mix_seed(std::uint64_t base, std::uint64_t stream) {
    // Two avalanche rounds fully decorrelate neighbouring stream indices
    // (a single round leaves low-bit structure for small bases).
    std::uint64_t x = base ^ rotl(stream + 0x9E3779B97F4A7C15ULL, 31);
    std::uint64_t z = splitmix64(x);
    return splitmix64(x) ^ z;
}

}  // namespace janus
