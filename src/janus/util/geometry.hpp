#pragma once
/// \file geometry.hpp
/// Integer 2-D geometry primitives used across placement, routing and
/// lithography. Coordinates are in database units (DBU); one DBU is
/// technology-dependent (see janus/netlist/technology.hpp).

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace janus {

/// A point in the layout plane, in database units.
struct Point {
    std::int64_t x = 0;
    std::int64_t y = 0;

    friend bool operator==(const Point&, const Point&) = default;
    friend auto operator<=>(const Point&, const Point&) = default;
};

/// Manhattan (L1) distance between two points.
std::int64_t manhattan(const Point& a, const Point& b);

/// Euclidean distance between two points (for reports only; routing is L1).
double euclidean(const Point& a, const Point& b);

/// An axis-aligned rectangle [lo.x, hi.x] x [lo.y, hi.y], inclusive bounds.
/// An empty rectangle has hi < lo in at least one dimension.
struct Rect {
    Point lo;
    Point hi;

    Rect() : lo{0, 0}, hi{-1, -1} {}
    Rect(Point l, Point h) : lo(l), hi(h) {}
    Rect(std::int64_t x0, std::int64_t y0, std::int64_t x1, std::int64_t y1)
        : lo{x0, y0}, hi{x1, y1} {}

    bool empty() const { return hi.x < lo.x || hi.y < lo.y; }
    std::int64_t width() const { return empty() ? 0 : hi.x - lo.x; }
    std::int64_t height() const { return empty() ? 0 : hi.y - lo.y; }
    /// Area in DBU^2; empty rectangles have zero area.
    std::int64_t area() const { return empty() ? 0 : width() * height(); }
    Point center() const { return {(lo.x + hi.x) / 2, (lo.y + hi.y) / 2}; }

    bool contains(const Point& p) const {
        return !empty() && p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
    }
    bool intersects(const Rect& o) const {
        return !empty() && !o.empty() && lo.x <= o.hi.x && o.lo.x <= hi.x &&
               lo.y <= o.hi.y && o.lo.y <= hi.y;
    }
    /// Expand (or shrink, if negative) by `d` on every side.
    Rect inflated(std::int64_t d) const {
        return Rect{lo.x - d, lo.y - d, hi.x + d, hi.y + d};
    }

    friend bool operator==(const Rect&, const Rect&) = default;
};

/// Intersection of two rectangles; empty if they do not overlap.
Rect intersection(const Rect& a, const Rect& b);

/// Smallest rectangle containing both inputs (empty inputs are ignored).
Rect bounding_box(const Rect& a, const Rect& b);

/// Smallest rectangle containing all points; empty for an empty input.
Rect bounding_box(const std::vector<Point>& pts);

/// Half-perimeter wirelength of the bounding box of `pts` (the standard
/// HPWL net-length estimate used by placers).
std::int64_t hpwl(const std::vector<Point>& pts);

/// Minimum spacing between two non-overlapping rectangles measured as the
/// L-infinity gap; zero when they touch or overlap.
std::int64_t rect_gap(const Rect& a, const Rect& b);

/// Human-readable form "(x, y)" for diagnostics.
std::string to_string(const Point& p);
/// Human-readable form "[(x0, y0) - (x1, y1)]" for diagnostics.
std::string to_string(const Rect& r);

}  // namespace janus
