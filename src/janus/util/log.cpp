#include "janus/util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>
#include <utility>

namespace janus {
namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warning)};
std::mutex g_emit_mutex;
thread_local std::string t_context;

const char* prefix(LogLevel level) {
    switch (level) {
        case LogLevel::Debug: return "[debug] ";
        case LogLevel::Info: return "[info] ";
        case LogLevel::Warning: return "[warn] ";
        case LogLevel::Error: return "[error] ";
        case LogLevel::Silent: return "";
    }
    return "";
}
}  // namespace

void set_log_level(LogLevel level) {
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
    return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_context(std::string label) { t_context = std::move(label); }

const std::string& log_context() { return t_context; }

ScopedLogContext::ScopedLogContext(std::string label)
    : previous_(std::exchange(t_context, std::move(label))) {}

ScopedLogContext::~ScopedLogContext() { t_context = std::move(previous_); }

void log(LogLevel level, const std::string& msg) {
    if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
        return;
    }
    // One locked emission per call: lines from concurrent workers never
    // interleave mid-character, and the context tag rides on every line.
    std::lock_guard<std::mutex> lock(g_emit_mutex);
    if (!t_context.empty()) std::cerr << '[' << t_context << "] ";
    std::cerr << prefix(level) << msg << '\n';
}

}  // namespace janus
