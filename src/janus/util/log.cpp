#include "janus/util/log.hpp"

#include <iostream>

namespace janus {
namespace {
LogLevel g_level = LogLevel::Warning;

const char* prefix(LogLevel level) {
    switch (level) {
        case LogLevel::Debug: return "[debug] ";
        case LogLevel::Info: return "[info] ";
        case LogLevel::Warning: return "[warn] ";
        case LogLevel::Error: return "[error] ";
        case LogLevel::Silent: return "";
    }
    return "";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log(LogLevel level, const std::string& msg) {
    if (static_cast<int>(level) < static_cast<int>(g_level)) return;
    std::cerr << prefix(level) << msg << '\n';
}

}  // namespace janus
