#pragma once
/// \file thread_pool.hpp
/// Fixed-size thread pool for batch flow execution (E5: farm throughput).
/// Deliberately work-stealing-free: a single locked queue keeps scheduling
/// simple, and determinism comes from the task side — results are written
/// by task index and random streams are derived with mix_seed(base, index)
/// (rng.hpp), so outputs never depend on which worker ran a task or in
/// what order tasks finished.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace janus {

class ThreadPool {
  public:
    /// Spawns `workers` threads (clamped to at least 1). The pool is fixed
    /// size for its lifetime; the destructor drains the queue and joins.
    explicit ThreadPool(int workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t size() const { return threads_.size(); }

    /// Enqueues a task; returns immediately. Tasks are picked up in FIFO
    /// order but may complete in any order.
    void submit(std::function<void()> task);

    /// Blocks until every submitted task has finished executing (not just
    /// been dequeued).
    void wait_idle();

    /// Runs fn(i) for every i in [0, n) across the pool and blocks until
    /// all calls return. Iterations must be independent. If any iteration
    /// throws, the exception thrown by the lowest such index is rethrown
    /// here after all iterations have settled.
    void for_each_index(std::size_t n,
                        const std::function<void(std::size_t)>& fn);

  private:
    void worker_loop();

    std::vector<std::thread> threads_;
    std::queue<std::function<void()>> queue_;
    mutable std::mutex mutex_;
    std::condition_variable task_ready_;
    std::condition_variable all_done_;
    std::size_t in_flight_ = 0;  ///< queued + currently executing
    bool stopping_ = false;
};

}  // namespace janus
