#pragma once
/// \file thread_pool.hpp
/// Fixed-size thread pool for batch flow execution (E5: farm throughput).
/// Deliberately work-stealing-free: a single locked queue keeps scheduling
/// simple, and determinism comes from the task side — results are written
/// by task index and random streams are derived with mix_seed(base, index)
/// (rng.hpp), so outputs never depend on which worker ran a task or in
/// what order tasks finished.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace janus {

class ThreadPool {
  public:
    /// Spawns `workers` threads (clamped to at least 1). The pool is fixed
    /// size for its lifetime; the destructor drains the queue and joins.
    explicit ThreadPool(int workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t size() const { return threads_.size(); }

    /// Enqueues a task; returns immediately. Tasks are picked up in FIFO
    /// order but may complete in any order.
    void submit(std::function<void()> task);

    /// Blocks until every submitted task has finished executing (not just
    /// been dequeued).
    void wait_idle();

    /// Runs fn(i) for every i in [0, n) across the pool and blocks until
    /// all calls return. Iterations must be independent. If any iteration
    /// throws, the exception thrown by the lowest such index is rethrown
    /// here after all iterations have settled.
    ///
    /// Iterations are striped over min(n, size()) persistent slot tasks
    /// pulling indices from a shared cursor (run_slots), not enqueued one
    /// task per index: a million-iteration call costs pool-size queue
    /// operations, and no iteration waits at a per-batch barrier.
    void for_each_index(std::size_t n,
                        const std::function<void(std::size_t)>& fn);

    /// Runs fn(slot) once for each slot in [0, slots) concurrently and
    /// blocks until all return. The slot id is stable for the duration of
    /// the call, so callers can hand each slot persistent private scratch
    /// (claim arrays, grid copies) and drain shared worklists from inside
    /// fn — the speculative region-ownership engines (util/speculate.hpp)
    /// are the primary client. `slots` is clamped to [1, size()]. If any
    /// slot throws, the exception from the lowest slot id is rethrown after
    /// every slot has settled.
    void run_slots(std::size_t slots,
                   const std::function<void(std::size_t)>& fn);

  private:
    void worker_loop();

    std::vector<std::thread> threads_;
    std::queue<std::function<void()>> queue_;
    mutable std::mutex mutex_;
    std::condition_variable task_ready_;
    std::condition_variable all_done_;
    std::size_t in_flight_ = 0;  ///< queued + currently executing
    bool stopping_ = false;
};

}  // namespace janus
