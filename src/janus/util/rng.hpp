#pragma once
/// \file rng.hpp
/// Deterministic pseudo-random number generation. Every stochastic JanusEDA
/// algorithm (SA placers, generators, ATPG) takes an explicit Rng so runs
/// are reproducible from a seed; no global random state exists.

#include <cstdint>
#include <vector>

namespace janus {

/// xoshiro256** generator: fast, high-quality, and deterministic across
/// platforms (unlike std::mt19937 distributions, whose mapping to ranges is
/// implementation-defined via std::uniform_int_distribution).
class Rng {
  public:
    /// Seeds the generator; two Rng objects with the same seed produce the
    /// same sequence on every platform.
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /// Next raw 64-bit value.
    std::uint64_t next_u64();

    /// Uniform integer in [0, bound); bound must be positive.
    std::uint64_t next_below(std::uint64_t bound);

    /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
    std::int64_t next_in(std::int64_t lo, std::int64_t hi);

    /// Uniform double in [0, 1).
    double next_double();

    /// Gaussian sample with the given mean and standard deviation
    /// (Box-Muller; consumes two uniform draws).
    double next_gaussian(double mean = 0.0, double stddev = 1.0);

    /// Bernoulli draw: true with probability p (clamped to [0, 1]).
    bool next_bool(double p = 0.5);

    /// Fisher-Yates shuffle of a vector in place.
    template <typename T>
    void shuffle(std::vector<T>& v) {
        for (std::size_t i = v.size(); i > 1; --i) {
            const std::size_t j = static_cast<std::size_t>(next_below(i));
            using std::swap;
            swap(v[i - 1], v[j]);
        }
    }

    /// Uniformly chosen index into a container of the given size; size must
    /// be positive.
    std::size_t pick_index(std::size_t size);

  private:
    std::uint64_t s_[4];
};

/// Derives an independent stream seed from a base seed and a stream index
/// (splitmix64 avalanche). Used for per-task seeding in batch/parallel
/// execution: the stream a task sees depends only on (base, stream), never
/// on which worker thread ran it, so parallel runs reproduce serial ones.
std::uint64_t mix_seed(std::uint64_t base, std::uint64_t stream);

}  // namespace janus
