#include "janus/util/disjoint_set.hpp"

#include <cassert>
#include <numeric>

namespace janus {

DisjointSet::DisjointSet(std::size_t n) : parent_(n), size_(n, 1), num_sets_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
}

std::size_t DisjointSet::add() {
    const std::size_t id = parent_.size();
    parent_.push_back(id);
    size_.push_back(1);
    ++num_sets_;
    return id;
}

std::size_t DisjointSet::find(std::size_t x) {
    assert(x < parent_.size());
    std::size_t root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
        const std::size_t next = parent_[x];
        parent_[x] = root;
        x = next;
    }
    return root;
}

bool DisjointSet::unite(std::size_t a, std::size_t b) {
    std::size_t ra = find(a);
    std::size_t rb = find(b);
    if (ra == rb) return false;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    --num_sets_;
    return true;
}

std::size_t DisjointSet::set_size(std::size_t x) { return size_[find(x)]; }

}  // namespace janus
