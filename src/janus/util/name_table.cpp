#include "janus/util/name_table.hpp"

#include <cstring>
#include <stdexcept>

namespace janus {

namespace {

/// FNV-1a: cheap, good distribution for identifier-like strings.
std::uint64_t hash_name(std::string_view s) {
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

}  // namespace

NameTable::NameTable() { slots_.assign(64, kNoName); }

NameTable::NameTable(const NameTable& other) { copy_from(other); }

NameTable& NameTable::operator=(const NameTable& other) {
    if (this != &other) copy_from(other);
    return *this;
}

void NameTable::copy_from(const NameTable& other) {
    chunks_.clear();
    chunks_.reserve(other.chunks_.size());
    for (const auto& c : other.chunks_) {
        auto fresh = std::make_unique<char[]>(std::size_t{1} << kChunkBits);
        std::memcpy(fresh.get(), c.get(), std::size_t{1} << kChunkBits);
        chunks_.push_back(std::move(fresh));
    }
    chunk_used_ = other.chunk_used_;
    slots_ = other.slots_;
    count_ = other.count_;
}

NameId NameTable::append(std::string_view s) {
    const auto need = static_cast<std::uint32_t>(s.size()) + 1;  // + NUL
    if (need > (1u << kChunkBits)) {
        throw std::length_error("NameTable: name longer than one chunk");
    }
    if (chunk_used_ + need > (1u << kChunkBits)) {
        if (chunks_.size() >= (std::size_t{1} << (32 - kChunkBits))) {
            throw std::length_error("NameTable: arena full (4 GiB of names)");
        }
        auto chunk = std::make_unique<char[]>(std::size_t{1} << kChunkBits);
        // Zero-fill so copies are deterministic and views of the tail of a
        // partially-used chunk read a NUL.
        std::memset(chunk.get(), 0, std::size_t{1} << kChunkBits);
        chunks_.push_back(std::move(chunk));
        chunk_used_ = 0;
    }
    const NameId id =
        (static_cast<NameId>(chunks_.size() - 1) << kChunkBits) | chunk_used_;
    char* dst = chunks_.back().get() + chunk_used_;
    std::memcpy(dst, s.data(), s.size());
    dst[s.size()] = '\0';
    chunk_used_ += need;
    return id;
}

void NameTable::rehash(std::size_t new_slots) {
    std::vector<NameId> fresh(new_slots, kNoName);
    const std::size_t mask = new_slots - 1;
    for (const NameId id : slots_) {
        if (id == kNoName) continue;
        std::size_t i = hash_name(view(id)) & mask;
        while (fresh[i] != kNoName) i = (i + 1) & mask;
        fresh[i] = id;
    }
    slots_ = std::move(fresh);
}

NameId NameTable::find(std::string_view s) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash_name(s) & mask;
    while (slots_[i] != kNoName) {
        if (view(slots_[i]) == s) return slots_[i];
        i = (i + 1) & mask;
    }
    return kNoName;
}

NameId NameTable::intern(std::string_view s) {
    // Strings are NUL-terminated in the arena; an embedded NUL would alias
    // a shorter name, so cut at the first one up front.
    if (const auto nul = s.find('\0'); nul != std::string_view::npos) {
        s = s.substr(0, nul);
    }
    if (2 * (count_ + 1) > slots_.size()) rehash(2 * slots_.size());
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash_name(s) & mask;
    while (slots_[i] != kNoName) {
        if (view(slots_[i]) == s) return slots_[i];
        i = (i + 1) & mask;
    }
    const NameId id = append(s);
    slots_[i] = id;
    ++count_;
    return id;
}

std::size_t NameTable::memory_bytes() const {
    return chunks_.size() * (std::size_t{1} << kChunkBits) +
           slots_.capacity() * sizeof(NameId) + sizeof(*this);
}

}  // namespace janus
