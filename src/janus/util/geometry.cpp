#include "janus/util/geometry.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>

namespace janus {

std::int64_t manhattan(const Point& a, const Point& b) {
    return std::llabs(a.x - b.x) + std::llabs(a.y - b.y);
}

double euclidean(const Point& a, const Point& b) {
    const double dx = static_cast<double>(a.x - b.x);
    const double dy = static_cast<double>(a.y - b.y);
    return std::sqrt(dx * dx + dy * dy);
}

Rect intersection(const Rect& a, const Rect& b) {
    if (a.empty() || b.empty()) return Rect{};
    Rect r{std::max(a.lo.x, b.lo.x), std::max(a.lo.y, b.lo.y),
           std::min(a.hi.x, b.hi.x), std::min(a.hi.y, b.hi.y)};
    return r.empty() ? Rect{} : r;
}

Rect bounding_box(const Rect& a, const Rect& b) {
    if (a.empty()) return b;
    if (b.empty()) return a;
    return Rect{std::min(a.lo.x, b.lo.x), std::min(a.lo.y, b.lo.y),
                std::max(a.hi.x, b.hi.x), std::max(a.hi.y, b.hi.y)};
}

Rect bounding_box(const std::vector<Point>& pts) {
    if (pts.empty()) return Rect{};
    Rect r{pts.front(), pts.front()};
    for (const Point& p : pts) {
        r.lo.x = std::min(r.lo.x, p.x);
        r.lo.y = std::min(r.lo.y, p.y);
        r.hi.x = std::max(r.hi.x, p.x);
        r.hi.y = std::max(r.hi.y, p.y);
    }
    return r;
}

std::int64_t hpwl(const std::vector<Point>& pts) {
    const Rect bb = bounding_box(pts);
    return bb.width() + bb.height();
}

std::int64_t rect_gap(const Rect& a, const Rect& b) {
    if (a.empty() || b.empty()) return std::numeric_limits<std::int64_t>::max();
    const std::int64_t gx =
        std::max<std::int64_t>(0, std::max(a.lo.x - b.hi.x, b.lo.x - a.hi.x));
    const std::int64_t gy =
        std::max<std::int64_t>(0, std::max(a.lo.y - b.hi.y, b.lo.y - a.hi.y));
    return std::max(gx, gy);
}

std::string to_string(const Point& p) {
    return "(" + std::to_string(p.x) + ", " + std::to_string(p.y) + ")";
}

std::string to_string(const Rect& r) {
    return "[" + to_string(r.lo) + " - " + to_string(r.hi) + "]";
}

}  // namespace janus
