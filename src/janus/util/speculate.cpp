#include "janus/util/speculate.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "janus/util/thread_pool.hpp"

namespace janus {

RegionGrid::RegionGrid(std::int64_t lo_x, std::int64_t lo_y,
                       std::int64_t width, std::int64_t height, int tiles_x,
                       int tiles_y)
    : lo_x_(lo_x),
      lo_y_(lo_y),
      tiles_x_(std::max(1, tiles_x)),
      tiles_y_(std::max(1, tiles_y)) {
    const std::int64_t w = std::max<std::int64_t>(1, width);
    const std::int64_t h = std::max<std::int64_t>(1, height);
    // Ceiling division so tiles cover the whole domain; the last tile may be
    // short, which only skews region populations, never correctness.
    tile_w_ = (w + tiles_x_ - 1) / tiles_x_;
    tile_h_ = (h + tiles_y_ - 1) / tiles_y_;
}

int RegionGrid::region_of(std::int64_t x, std::int64_t y, bool shifted) const {
    // The half-tile shift moves every cut line, so items that straddled a
    // boundary last round share an owner this round.
    const std::int64_t sx = x - lo_x_ + (shifted ? tile_w_ / 2 : 0);
    const std::int64_t sy = y - lo_y_ + (shifted ? tile_h_ / 2 : 0);
    const auto tile = [](std::int64_t v, std::int64_t tw, int tiles) {
        return static_cast<int>(
            std::clamp<std::int64_t>(v / tw, 0, tiles - 1));
    };
    return tile(sy, tile_h_, tiles_y_) * tiles_x_ + tile(sx, tile_w_, tiles_x_);
}

int RegionGrid::auto_tiles_per_axis(std::size_t items, std::size_t target,
                                    int max_per_axis) {
    const double tiles_wanted = static_cast<double>(items) /
                                static_cast<double>(std::max<std::size_t>(1, target));
    const int per_axis =
        static_cast<int>(std::ceil(std::sqrt(std::max(1.0, tiles_wanted))));
    return std::clamp(per_axis, 1, std::max(1, max_per_axis));
}

SpeculativeExecutor::SpeculativeExecutor(int workers) {
    if (workers > 1) {
        pool_ = std::make_unique<ThreadPool>(workers);
        slots_ = pool_->size();
    }
}

SpeculativeExecutor::~SpeculativeExecutor() = default;

void SpeculativeExecutor::for_each_region(
    std::size_t regions,
    const std::function<void(std::size_t, std::size_t)>& fn) {
    if (regions == 0) return;
    if (!pool_ || regions == 1) {
        for (std::size_t r = 0; r < regions; ++r) fn(r, 0);
        return;
    }
    // One durable task per slot; regions are pulled from a shared cursor so
    // a slot that finishes its region early steals the next one instead of
    // idling at a per-batch barrier.
    std::atomic<std::size_t> cursor{0};
    pool_->run_slots(std::min(slots_, regions), [&](std::size_t slot) {
        for (std::size_t r = cursor.fetch_add(1); r < regions;
             r = cursor.fetch_add(1)) {
            fn(r, slot);
        }
    });
}

}  // namespace janus
