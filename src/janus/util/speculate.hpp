#pragma once
/// \file speculate.hpp
/// Speculative region-ownership execution, shared by the SA detailed placer
/// (sa_place.cpp) and the global router's negotiation loop
/// (global_router.cpp). The amorphous-data-parallelism model: the domain is
/// cut into a fixed geometric grid of regions, each worker slot pulls whole
/// regions from a shared cursor and *optimistically* evaluates that region's
/// work against a snapshot frozen for the round, and the results are
/// committed serially in deterministic region/draw (or congestion) order
/// with cross-region conflicts detected by epoch-stamped claim arrays and
/// re-queued to the next round.
///
/// Determinism contract: the region grid, the per-region work sequences and
/// RNG streams, and the commit order are all pure functions of the input and
/// seed — worker slots only decide *which thread* evaluates a region, never
/// what it computes — so results are byte-identical for any worker count
/// (docs/PLACE.md, docs/ROUTING.md).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace janus {

class ThreadPool;

/// Deterministic tiling of an integer rectangle into tiles_x * tiles_y
/// regions. `shifted` offsets the cut lines by half a tile in both axes so
/// alternating rounds pair items across the previous round's seams (work
/// near a boundary is otherwise never co-owned).
class RegionGrid {
  public:
    RegionGrid() = default;
    /// Tiles [lo_x, lo_x + width) x [lo_y, lo_y + height); width/height and
    /// tile counts are clamped to at least 1.
    RegionGrid(std::int64_t lo_x, std::int64_t lo_y, std::int64_t width,
               std::int64_t height, int tiles_x, int tiles_y);

    int tiles_x() const { return tiles_x_; }
    int tiles_y() const { return tiles_y_; }
    int num_regions() const { return tiles_x_ * tiles_y_; }

    /// Region owning point (x, y); out-of-domain points clamp to the border
    /// tiles, so every point has an owner.
    int region_of(std::int64_t x, std::int64_t y, bool shifted = false) const;

    /// Per-axis tile count targeting `target` items per tile for `items`
    /// total, clamped to [1, max_per_axis]. A pure function of the workload
    /// (never of the worker count), so auto-sized grids keep the
    /// determinism contract.
    static int auto_tiles_per_axis(std::size_t items, std::size_t target,
                                   int max_per_axis);

  private:
    std::int64_t lo_x_ = 0, lo_y_ = 0;
    std::int64_t tile_w_ = 1, tile_h_ = 1;
    int tiles_x_ = 1, tiles_y_ = 1;
};

/// Epoch-stamped claim array: clearing all claims is an O(1) epoch bump
/// instead of an O(n) fill, which is what makes per-round conflict
/// detection affordable (one array outlives thousands of rounds).
class EpochClaims {
  public:
    void resize(std::size_t n) { stamp_.assign(n, 0); }
    std::size_t size() const { return stamp_.size(); }

    /// Invalidates every claim. Epoch 0 is never a valid claim, and the
    /// (theoretical) 32-bit wrap re-zeroes the array instead of resurrecting
    /// stale stamps.
    void next_epoch() {
        if (++epoch_ == 0) {
            stamp_.assign(stamp_.size(), 0);
            epoch_ = 1;
        }
    }

    bool claimed(std::size_t i) const { return stamp_[i] == epoch_; }
    void claim(std::size_t i) { stamp_[i] = epoch_; }

  private:
    std::vector<std::uint32_t> stamp_;
    std::uint32_t epoch_ = 0;
};

/// Aggregate observability of one speculative stage execution, surfaced
/// through StageTrace notes (regions/rounds/aborts/commit-rate).
struct SpecStats {
    std::size_t regions = 0;        ///< regions in the ownership grid
    std::size_t rounds = 0;         ///< speculate/commit rounds executed
    std::size_t speculated = 0;     ///< work units evaluated optimistically
    std::size_t committed = 0;      ///< work units committed
    std::size_t commit_aborts = 0;  ///< cross-region conflicts, re-queued
    /// Fraction of commit attempts that succeeded; 1.0 when nothing ever
    /// conflicted.
    double commit_rate() const {
        const std::size_t attempts = committed + commit_aborts;
        return attempts == 0 ? 1.0
                             : static_cast<double>(committed) /
                                   static_cast<double>(attempts);
    }
};

/// The worker team of one speculative stage invocation: `slots()` persistent
/// worker slots (1 when serial) with stable slot ids, so per-slot scratch
/// (claim arrays, private grid copies) is allocated once and reused every
/// round instead of being rebuilt per batch — the per-batch task submission
/// this engine replaces was the dominant overhead of the old design.
class SpeculativeExecutor {
  public:
    /// `workers` <= 1 runs everything inline on the calling thread.
    explicit SpeculativeExecutor(int workers);
    ~SpeculativeExecutor();

    SpeculativeExecutor(const SpeculativeExecutor&) = delete;
    SpeculativeExecutor& operator=(const SpeculativeExecutor&) = delete;

    /// Stable scratch-slot count; fn's `slot` argument is always < this.
    std::size_t slots() const { return slots_; }

    /// Runs fn(region, slot) for every region in [0, regions). Regions are
    /// claimed dynamically by slots, so which slot evaluates a region is
    /// scheduling-dependent — fn must write its observable results indexed
    /// by `region` (and use `slot` only for scratch) to keep the output
    /// worker-invariant. Blocks until every region is done.
    void for_each_region(
        std::size_t regions,
        const std::function<void(std::size_t region, std::size_t slot)>& fn);

  private:
    std::size_t slots_ = 1;
    std::unique_ptr<ThreadPool> pool_;
};

}  // namespace janus
