#pragma once
/// \file disjoint_set.hpp
/// Union-find with path compression and union by size. Used by the
/// multi-patterning decomposer (conflict components) and the router
/// (connectivity checks).

#include <cstddef>
#include <vector>

namespace janus {

class DisjointSet {
  public:
    /// Creates `n` singleton sets with ids 0..n-1.
    explicit DisjointSet(std::size_t n = 0);

    /// Adds one more singleton set and returns its id.
    std::size_t add();

    /// Representative of the set containing `x` (with path compression).
    std::size_t find(std::size_t x);

    /// Merges the sets containing a and b; returns true if they were
    /// previously distinct.
    bool unite(std::size_t a, std::size_t b);

    bool same(std::size_t a, std::size_t b) { return find(a) == find(b); }

    std::size_t size() const { return parent_.size(); }
    /// Number of distinct sets.
    std::size_t num_sets() const { return num_sets_; }
    /// Number of elements in the set containing `x`.
    std::size_t set_size(std::size_t x);

  private:
    std::vector<std::size_t> parent_;
    std::vector<std::size_t> size_;
    std::size_t num_sets_ = 0;
};

}  // namespace janus
