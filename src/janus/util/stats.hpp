#pragma once
/// \file stats.hpp
/// Streaming summary statistics used by benchmark harnesses and the
/// self-learning flow tuner.

#include <cstddef>
#include <vector>

namespace janus {

/// Welford-style streaming accumulator: numerically stable mean/variance
/// without storing samples.
class RunningStats {
  public:
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    /// Sample variance (n-1 denominator); zero for fewer than two samples.
    double variance() const;
    double stddev() const;
    double min() const { return min_; }
    double max() const { return max_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Percentile of a sample set using linear interpolation between order
/// statistics; `q` in [0, 1]. Returns 0 for an empty input.
double percentile(std::vector<double> samples, double q);

/// Geometric mean; all samples must be positive. Returns 0 for empty input.
double geometric_mean(const std::vector<double>& samples);

}  // namespace janus
