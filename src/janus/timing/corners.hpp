#pragma once
/// \file corners.hpp
/// Multi-corner timing: the same design analyzed at slow/typical/fast
/// process-voltage-temperature corners via delay derates. Signoff = worst
/// setup slack over slow corners and worst hold slack over fast corners.

#include <string>
#include <vector>

#include "janus/timing/sta.hpp"

namespace janus {

struct TimingCorner {
    std::string name;
    double delay_derate = 1.0;  ///< multiplies every gate/wire delay
};

/// The standard three-corner set (derates from typical foundry spreads).
std::vector<TimingCorner> standard_corners();

struct MultiCornerReport {
    /// Per-corner reports, same order as the input corners.
    std::vector<TimingReport> reports;
    double worst_setup_slack_ps = 0;
    std::string worst_setup_corner;
    double worst_hold_slack_ps = 0;
    std::string worst_hold_corner;
    bool signoff() const {
        return worst_setup_slack_ps >= 0 && worst_hold_slack_ps >= 0;
    }
};

/// Runs STA at every corner. Derates are applied by scaling the clock
/// constraint equivalently (delay x k vs period / k), which keeps the
/// per-corner reports comparable.
MultiCornerReport run_multi_corner(const Netlist& nl, const StaOptions& base,
                                   const std::vector<TimingCorner>& corners =
                                       standard_corners());

}  // namespace janus
