#pragma once
/// \file sta.hpp
/// Static timing analysis. Timing paths start at primary inputs and flop
/// Q pins, and end at primary outputs and flop D pins. One topological
/// sweep computes arrivals; a reverse sweep computes requireds and slacks.

#include <string>
#include <vector>

#include "janus/netlist/netlist.hpp"
#include "janus/timing/delay_model.hpp"

namespace janus {

struct StaOptions {
    double clock_period_ps = 1000.0;
    double clk_to_q_ps = 20.0;
    double setup_ps = 15.0;
    double hold_ps = 5.0;
    WireModel wire;
    /// Worker threads for the level-parallel sweeps (1 = serial). Results
    /// are bit-identical for any value — same determinism contract as
    /// FlowParams::route_workers (see docs/TIMING.md).
    int sta_workers = 1;
};

struct TimingReport {
    /// Arrival / required / slack per net (indexed by NetId), in ps.
    std::vector<double> arrival;
    std::vector<double> required;
    std::vector<double> slack;

    double wns_ps = 0.0;  ///< worst setup slack (positive = margin)
    double tns_ps = 0.0;  ///< total negative setup slack (sum over endpoints)
    /// Worst hold slack at flop D pins: min arrival - hold time. Negative
    /// means a short path races the clock (hold violation).
    double hold_wns_ps = 0.0;
    std::size_t hold_violations = 0;
    double critical_delay_ps = 0.0;
    /// Maximum clock frequency implied by the critical path (GHz).
    double fmax_ghz = 0.0;
    /// Endpoint net with the worst setup slack (kNoNet when the design has
    /// no endpoints). Ties keep the first endpoint in canonical order
    /// (primary outputs, then flop input pins).
    NetId worst_endpoint = kNoNet;
    /// Instances along the critical path, startpoint first.
    std::vector<InstId> critical_path;

    bool met() const { return wns_ps >= 0.0; }
    bool hold_met() const { return hold_wns_ps >= 0.0; }
};

/// Runs STA on a (possibly sequential) netlist.
TimingReport run_sta(const Netlist& nl, const StaOptions& opts = {});

/// Renders a short human-readable timing summary.
std::string format_timing_report(const Netlist& nl, const TimingReport& r);

}  // namespace janus
