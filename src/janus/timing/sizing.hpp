#pragma once
/// \file sizing.hpp
/// Timing-driven gate sizing: upsizes cells on critical paths to their
/// X2/X4 drive variants while the worst slack improves — the "do more
/// with less" optimization loop that complements synthesis.

#include <cstddef>
#include <vector>

#include "janus/netlist/netlist.hpp"
#include "janus/timing/sta.hpp"

namespace janus {

struct SizingOptions {
    StaOptions sta;
    int max_passes = 8;
    /// Stop once WNS is non-negative (timing met).
    bool stop_when_met = true;
};

struct SizingResult {
    double wns_before_ps = 0;
    double wns_after_ps = 0;
    double delay_before_ps = 0;
    double delay_after_ps = 0;
    double area_before_um2 = 0;
    double area_after_um2 = 0;
    int cells_resized = 0;
    int passes = 0;
    /// Area change (um^2) contributed by each accepted pass; rolled-back
    /// passes contribute nothing.
    std::vector<double> area_delta_per_pass;
    /// Total instances re-evaluated by the incremental timing updates, over
    /// all passes (including rollback updates). Compare against
    /// passes * 2 * num_instances, the cost of the old full-STA loop.
    std::size_t timing_evals = 0;
};

/// Iteratively upsizes the most critical instances (in place). The loop
/// holds one TimingGraph and re-times each pass incrementally: resize the
/// critical-path cells, propagate through the affected cones, and keep the
/// pass only if the critical delay improved — O(cone) per pass instead of
/// the O(2 x design) full STA the loop used to pay. Each cell is bumped to
/// the smallest library variant with a strictly larger drive. Greedy and
/// safe: a pass that fails to improve is rolled back (cell by cell, through
/// the same incremental path) and iteration stops.
SizingResult size_for_timing(Netlist& nl, const SizingOptions& opts = {});

}  // namespace janus
