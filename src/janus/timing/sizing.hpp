#pragma once
/// \file sizing.hpp
/// Timing-driven gate sizing: upsizes cells on critical paths to their
/// X2/X4 drive variants while the worst slack improves — the "do more
/// with less" optimization loop that complements synthesis.

#include "janus/netlist/netlist.hpp"
#include "janus/timing/sta.hpp"

namespace janus {

struct SizingOptions {
    StaOptions sta;
    int max_passes = 8;
    /// Stop once WNS is non-negative (timing met).
    bool stop_when_met = true;
};

struct SizingResult {
    double wns_before_ps = 0;
    double wns_after_ps = 0;
    double delay_before_ps = 0;
    double delay_after_ps = 0;
    double area_before_um2 = 0;
    double area_after_um2 = 0;
    int cells_resized = 0;
    int passes = 0;
};

/// Iteratively upsizes the most critical instances (in place). Each pass
/// re-runs STA and resizes instances on the critical path whose library
/// has a higher-drive variant of the same function. Greedy and safe:
/// a pass that fails to improve WNS is rolled back and iteration stops.
SizingResult size_for_timing(Netlist& nl, const SizingOptions& opts = {});

}  // namespace janus
