#include "janus/timing/timing_graph.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "janus/util/thread_pool.hpp"

namespace janus {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
/// Minimum per-chunk work before a level is split across the pool; below
/// this the submit/wake overhead dominates the sweep itself.
constexpr std::size_t kParallelGrain = 256;
}  // namespace

std::vector<TimingEndpoint> timing_endpoints(const Netlist& nl,
                                             const StaOptions& opts) {
    std::vector<TimingEndpoint> out;
    for (const auto& [name, net] : nl.primary_outputs()) {
        (void)name;
        out.push_back({net, opts.clock_period_ps});
    }
    for (const InstId f : nl.sequential_instances()) {
        const Instance& inst = nl.instance(f);
        const int arity = function_arity(nl.type_of(f).function);
        for (int p = 0; p < arity; ++p) {
            out.push_back({inst.fanin[static_cast<std::size_t>(p)],
                           opts.clock_period_ps - opts.setup_ps});
        }
    }
    return out;
}

TimingGraph::TimingGraph(const Netlist& nl, const StaOptions& opts)
    : nl_(&nl), opts_(opts), epoch_(nl.mutation_epoch()) {
    build_levels();
}

void TimingGraph::check_fresh() const {
    if (nl_->mutation_epoch() != epoch_) {
        throw std::logic_error(
            "TimingGraph: netlist structure changed since construction; "
            "build a new graph");
    }
}

void TimingGraph::build_levels() {
    const std::size_t ni = nl_->num_instances();
    const std::size_t nn = nl_->num_nets();

    // topological_order() also materializes the sink cache, so the parallel
    // sweeps below only ever read it.
    const std::vector<InstId>& order = nl_->topological_order();

    level_of_.assign(ni, -1);
    int max_level = -1;
    for (const InstId i : order) {
        const Instance& inst = nl_->instance(i);
        const int arity = function_arity(nl_->type_of(i).function);
        int lv = 0;
        for (int p = 0; p < arity; ++p) {
            const NetId n = inst.fanin[static_cast<std::size_t>(p)];
            if (n == kNoNet) continue;
            const Net& net = nl_->net(n);
            if (net.driver_kind == DriverKind::Instance &&
                !is_sequential(nl_->type_of(net.driver_inst).function)) {
                lv = std::max(lv, level_of_[net.driver_inst] + 1);
            }
        }
        level_of_[i] = lv;
        max_level = std::max(max_level, lv);
    }
    levels_.assign(static_cast<std::size_t>(max_level + 1), {});
    for (const InstId i : order) {
        levels_[static_cast<std::size_t>(level_of_[i])].push_back(i);
    }

    sequential_ = nl_->sequential_instances();

    // Nets not driven by a combinational instance: PIs, flop Q pins, and
    // undriven nets. Their requireds are gathered after the backward sweep.
    source_nets_.clear();
    for (NetId n = 0; n < nn; ++n) {
        const Net& net = nl_->net(n);
        const bool comb_driven =
            net.driver_kind == DriverKind::Instance &&
            !is_sequential(nl_->type_of(net.driver_inst).function);
        if (!comb_driven) source_nets_.push_back(n);
    }

    endpoints_ = timing_endpoints(*nl_, opts_);
    endpoint_base_.assign(nn, kInf);
    for (const TimingEndpoint& e : endpoints_) {
        endpoint_base_[e.net] = std::min(endpoint_base_[e.net], e.required_ps);
    }

    // Incremental bookkeeping, sized once.
    delay_dirty_.assign(ni, 0);
    in_fwd_.assign(ni, 0);
    in_bwd_.assign(ni, 0);
    source_dirty_.assign(nn, 0);
    pending_fwd_.assign(levels_.size(), {});
    pending_bwd_.assign(levels_.size(), {});
    dirty_seeds_.clear();
}

void TimingGraph::eval_forward(InstId i) {
    const Instance& inst = nl_->instance(i);
    const int arity = function_arity(nl_->type_of(i).function);
    const double gd = gate_delay_[i];
    double in_arr = 0.0;
    double in_min = kInf;
    for (int p = 0; p < arity; ++p) {
        const NetId n = inst.fanin[static_cast<std::size_t>(p)];
        in_arr = std::max(in_arr, arrival_[n]);
        in_min = std::min(in_min, min_arrival_[n]);
    }
    if (arity == 0) in_min = 0.0;
    arrival_[inst.output] = in_arr + gd;
    min_arrival_[inst.output] = in_min + gd;
}

void TimingGraph::eval_backward(InstId i) {
    // Gather form of the serial scatter loop: required(out) is the min of
    // the endpoint constraint on the output net and every combinational
    // sink's (required(sink.out) - delay(sink)). min over doubles is exact,
    // so the result is byte-identical to the scatter order.
    const NetId out = nl_->instance(i).output;
    double req = endpoint_base_[out];
    for (const SinkRef& s : nl_->sinks(out)) {
        if (is_sequential(nl_->type_of(s.inst()).function)) continue;
        req = std::min(req,
                       required_[nl_->instance(s.inst()).output] - gate_delay_[s.inst()]);
    }
    required_[out] = req;
}

void TimingGraph::recompute_source_required(NetId net) {
    double req = endpoint_base_[net];
    for (const SinkRef& s : nl_->sinks(net)) {
        if (is_sequential(nl_->type_of(s.inst()).function)) continue;
        req = std::min(req,
                       required_[nl_->instance(s.inst()).output] - gate_delay_[s.inst()]);
    }
    required_[net] = req;
}

void TimingGraph::analyze(int workers) {
    check_fresh();
    const std::size_t ni = nl_->num_instances();
    const std::size_t nn = nl_->num_nets();

    // A full rebuild supersedes any queued incremental seeds.
    for (const InstId i : dirty_seeds_) delay_dirty_[i] = 0;
    dirty_seeds_.clear();

    std::unique_ptr<ThreadPool> pool;
    if (workers > 1) pool = std::make_unique<ThreadPool>(workers);
    // Runs fn(i) over one level. Instances of a level read only strictly
    // lower levels (forward) or strictly higher ones (backward) and write
    // only their own output slot, so chunked execution is race-free and
    // bit-identical to the serial loop for any worker/chunk count.
    const auto sweep = [&](const std::vector<InstId>& insts, auto&& fn) {
        if (!pool || insts.size() < 2 * kParallelGrain) {
            for (const InstId i : insts) fn(i);
            return;
        }
        const std::size_t chunks = std::min(
            pool->size(), (insts.size() + kParallelGrain - 1) / kParallelGrain);
        const std::size_t len = (insts.size() + chunks - 1) / chunks;
        pool->for_each_index(chunks, [&](std::size_t c) {
            const std::size_t b = c * len;
            const std::size_t e = std::min(insts.size(), b + len);
            for (std::size_t k = b; k < e; ++k) fn(insts[k]);
        });
    };

    // Forward: startpoints, then level-by-level delays + arrivals.
    gate_delay_.assign(ni, 0.0);
    arrival_.assign(nn, 0.0);
    min_arrival_.assign(nn, 0.0);
    for (const InstId f : sequential_) {
        const NetId q = nl_->instance(f).output;
        arrival_[q] = opts_.clk_to_q_ps;
        min_arrival_[q] = opts_.clk_to_q_ps;
    }
    for (const auto& level : levels_) {
        sweep(level, [&](InstId i) {
            gate_delay_[i] = instance_delay_ps(*nl_, i, opts_.wire);
            eval_forward(i);
        });
    }

    // Backward: level-by-level requireds (descending), then source nets.
    required_.assign(nn, kInf);
    for (auto it = levels_.rbegin(); it != levels_.rend(); ++it) {
        sweep(*it, [&](InstId i) { eval_backward(i); });
    }
    for (const NetId n : source_nets_) recompute_source_required(n);

    // Slacks. Nets with no downstream endpoint keep +inf required; their
    // slack is +inf (irrelevant).
    slack_.assign(nn, 0.0);
    for (NetId n = 0; n < nn; ++n) {
        slack_[n] = std::isinf(required_[n]) ? kInf : required_[n] - arrival_[n];
    }
    analyzed_ = true;
}

void TimingGraph::mark_dirty(InstId inst) {
    if (inst >= level_of_.size() || level_of_[inst] < 0) return;  // sequential
    if (!delay_dirty_[inst]) {
        delay_dirty_[inst] = 1;
        dirty_seeds_.push_back(inst);
    }
}

void TimingGraph::resize(InstId inst) {
    mark_dirty(inst);
    // The resized cell's input capacitance changed, so the load — and hence
    // the delay — of every fanin driver changed with it.
    const Instance& in = nl_->instance(inst);
    const int arity = function_arity(nl_->type_of(inst).function);
    for (int p = 0; p < arity; ++p) {
        const NetId n = in.fanin[static_cast<std::size_t>(p)];
        if (n == kNoNet) continue;
        const Net& net = nl_->net(n);
        if (net.driver_kind == DriverKind::Instance) mark_dirty(net.driver_inst);
    }
}

void TimingGraph::enqueue_forward(InstId i) {
    if (!in_fwd_[i]) {
        in_fwd_[i] = 1;
        pending_fwd_[static_cast<std::size_t>(level_of_[i])].push_back(i);
    }
}

void TimingGraph::enqueue_backward(InstId i) {
    if (!in_bwd_[i]) {
        in_bwd_[i] = 1;
        pending_bwd_[static_cast<std::size_t>(level_of_[i])].push_back(i);
    }
}

void TimingGraph::seed_backward_from(InstId i) {
    // Instance i's contribution to its fanin nets changed (new delay or new
    // output required): re-gather each fanin net's required at its driver.
    const Instance& inst = nl_->instance(i);
    const int arity = function_arity(nl_->type_of(i).function);
    for (int p = 0; p < arity; ++p) {
        const NetId n = inst.fanin[static_cast<std::size_t>(p)];
        if (n == kNoNet) continue;
        const Net& net = nl_->net(n);
        if (net.driver_kind == DriverKind::Instance &&
            !is_sequential(nl_->type_of(net.driver_inst).function)) {
            enqueue_backward(net.driver_inst);
        } else {
            source_dirty_[n] = 1;
        }
    }
}

TimingUpdateStats TimingGraph::update() {
    check_fresh();
    if (!analyzed_) {
        throw std::logic_error("TimingGraph::update: analyze() must run first");
    }
    TimingUpdateStats st;
    if (dirty_seeds_.empty()) return st;

    std::vector<NetId> touched;       // nets whose slack must refresh
    std::vector<NetId> dirty_sources;

    for (const InstId i : dirty_seeds_) enqueue_forward(i);
    dirty_seeds_.clear();

    // Forward cone: ascending level order, so every instance is evaluated
    // at most once per update with all fanins final.
    for (std::size_t lv = 0; lv < pending_fwd_.size(); ++lv) {
        auto& q = pending_fwd_[lv];
        if (q.empty()) continue;
        ++st.levels_touched;
        for (std::size_t k = 0; k < q.size(); ++k) {  // q grows only at higher levels
            const InstId i = q[k];
            bool gd_changed = false;
            if (delay_dirty_[i]) {
                delay_dirty_[i] = 0;
                ++st.delays_recomputed;
                const double gd = instance_delay_ps(*nl_, i, opts_.wire);
                if (gd != gate_delay_[i]) {
                    gate_delay_[i] = gd;
                    gd_changed = true;
                }
            }
            const NetId out = nl_->instance(i).output;
            const double old_arr = arrival_[out];
            const double old_min = min_arrival_[out];
            eval_forward(i);
            ++st.forward_evals;
            if (arrival_[out] != old_arr || min_arrival_[out] != old_min) {
                touched.push_back(out);
                for (const SinkRef& s : nl_->sinks(out)) {
                    if (level_of_[s.inst()] >= 0) enqueue_forward(s.inst());
                }
            }
            // Requireds depend on delays and constraints, never on
            // arrivals, so only delay changes seed the backward cone.
            if (gd_changed) seed_backward_from(i);
        }
        for (const InstId i : q) in_fwd_[i] = 0;
        q.clear();
    }

    // Backward cone: descending level order; a changed required re-gathers
    // the fanin nets' requireds at their drivers.
    for (std::size_t lv = pending_bwd_.size(); lv-- > 0;) {
        auto& q = pending_bwd_[lv];
        if (q.empty()) continue;
        ++st.levels_touched;
        for (std::size_t k = 0; k < q.size(); ++k) {  // q grows only at lower levels
            const InstId i = q[k];
            const NetId out = nl_->instance(i).output;
            const double old_req = required_[out];
            eval_backward(i);
            ++st.backward_evals;
            if (required_[out] != old_req) {
                touched.push_back(out);
                seed_backward_from(i);
            }
        }
        for (const InstId i : q) in_bwd_[i] = 0;
        q.clear();
    }
    for (NetId n = 0; n < source_dirty_.size(); ++n) {
        if (!source_dirty_[n]) continue;
        source_dirty_[n] = 0;
        const double old_req = required_[n];
        recompute_source_required(n);
        if (required_[n] != old_req) touched.push_back(n);
    }

    for (const NetId n : touched) {
        slack_[n] = std::isinf(required_[n]) ? kInf : required_[n] - arrival_[n];
    }
    return st;
}

double TimingGraph::critical_delay_ps() const {
    double critical = 0.0;
    for (const TimingEndpoint& e : endpoints_) {
        critical = std::max(critical, arrival_[e.net]);
    }
    return critical;
}

TimingReport TimingGraph::report() const {
    if (!analyzed_) {
        throw std::logic_error("TimingGraph::report: analyze() must run first");
    }
    TimingReport r;
    r.arrival = arrival_;
    r.required = required_;
    r.slack = slack_;

    // Setup summary over endpoints, in canonical endpoint order (the
    // floating-point TNS sum depends on it).
    double worst = kInf;
    double critical = 0.0;
    NetId worst_net = kNoNet;
    for (const TimingEndpoint& e : endpoints_) {
        const double s = e.required_ps - arrival_[e.net];
        if (s < 0) r.tns_ps += s;
        if (s < worst) {
            worst = s;
            worst_net = e.net;
        }
        critical = std::max(critical, arrival_[e.net]);
    }
    r.wns_ps = std::isfinite(worst) ? worst : 0.0;
    r.worst_endpoint = worst_net;
    r.critical_delay_ps = critical;
    r.fmax_ghz = critical > 0 ? 1000.0 / critical : 0.0;

    // Hold: flop D pins must not receive data before the window closes.
    r.hold_wns_ps = kInf;
    for (const InstId f : sequential_) {
        const NetId d = nl_->instance(f).fanin[0];
        if (d == kNoNet) continue;
        const double slack = min_arrival_[d] - opts_.hold_ps;
        if (slack < 0) ++r.hold_violations;
        r.hold_wns_ps = std::min(r.hold_wns_ps, slack);
    }
    if (!std::isfinite(r.hold_wns_ps)) r.hold_wns_ps = 0.0;

    // Critical path: walk back from the maximal-arrival endpoint.
    NetId cursor = kNoNet;
    double best_arr = -1.0;
    for (const TimingEndpoint& e : endpoints_) {
        if (arrival_[e.net] > best_arr) {
            best_arr = arrival_[e.net];
            cursor = e.net;
        }
    }
    while (cursor != kNoNet) {
        const Net& net = nl_->net(cursor);
        if (net.driver_kind != DriverKind::Instance) break;
        const InstId d = net.driver_inst;
        if (is_sequential(nl_->type_of(d).function)) break;
        r.critical_path.push_back(d);
        const Instance& inst = nl_->instance(d);
        const int arity = function_arity(nl_->type_of(d).function);
        NetId next = kNoNet;
        double arr = -1.0;
        for (int p = 0; p < arity; ++p) {
            const NetId fn = inst.fanin[static_cast<std::size_t>(p)];
            if (arrival_[fn] > arr) {
                arr = arrival_[fn];
                next = fn;
            }
        }
        cursor = next;
    }
    std::reverse(r.critical_path.begin(), r.critical_path.end());
    return r;
}

}  // namespace janus
