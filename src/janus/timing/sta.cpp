#include "janus/timing/sta.hpp"

#include <cmath>
#include <algorithm>
#include <limits>
#include <sstream>

namespace janus {

TimingReport run_sta(const Netlist& nl, const StaOptions& opts) {
    TimingReport r;
    const std::size_t nn = nl.num_nets();
    r.arrival.assign(nn, 0.0);
    r.required.assign(nn, std::numeric_limits<double>::infinity());
    r.slack.assign(nn, 0.0);

    // Startpoints: PIs arrive at 0, flop Q pins at clk-to-q.
    for (const NetId pi : nl.primary_inputs()) r.arrival[pi] = 0.0;
    for (const InstId f : nl.sequential_instances()) {
        r.arrival[nl.instance(f).output] = opts.clk_to_q_ps;
    }

    // Forward sweep over combinational logic.
    const auto order = nl.topological_order();
    std::vector<double> gate_delay(nl.num_instances(), 0.0);
    for (const InstId i : order) {
        gate_delay[i] = instance_delay_ps(nl, i, opts.wire);
        const Instance& inst = nl.instance(i);
        double in_arrival = 0.0;
        const int arity = function_arity(nl.type_of(i).function);
        for (int p = 0; p < arity; ++p) {
            in_arrival = std::max(in_arrival,
                                  r.arrival[inst.fanin[static_cast<std::size_t>(p)]]);
        }
        r.arrival[inst.output] = in_arrival + gate_delay[i];
    }

    // Endpoints: POs and flop D pins require period (minus setup for flops).
    const auto constrain = [&](NetId net, double req) {
        r.required[net] = std::min(r.required[net], req);
    };
    for (const auto& [name, net] : nl.primary_outputs()) {
        (void)name;
        constrain(net, opts.clock_period_ps);
    }
    for (const InstId f : nl.sequential_instances()) {
        const Instance& inst = nl.instance(f);
        const int arity = function_arity(nl.type_of(f).function);
        for (int p = 0; p < arity; ++p) {
            constrain(inst.fanin[static_cast<std::size_t>(p)],
                      opts.clock_period_ps - opts.setup_ps);
        }
    }

    // Backward sweep.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const Instance& inst = nl.instance(*it);
        const double req_in = r.required[inst.output] - gate_delay[*it];
        const int arity = function_arity(nl.type_of(*it).function);
        for (int p = 0; p < arity; ++p) {
            constrain(inst.fanin[static_cast<std::size_t>(p)], req_in);
        }
    }

    // Slacks and summary metrics. Nets with no timing endpoint downstream
    // keep +inf required; clamp their slack to 0 relevance-wise.
    double worst = std::numeric_limits<double>::infinity();
    double critical = 0.0;
    NetId worst_net = kNoNet;
    for (NetId n = 0; n < nn; ++n) {
        if (std::isinf(r.required[n])) {
            r.slack[n] = std::numeric_limits<double>::infinity();
            continue;
        }
        r.slack[n] = r.required[n] - r.arrival[n];
    }
    // TNS/WNS over endpoints only.
    const auto endpoint_slack = [&](NetId net, double req) {
        const double s = req - r.arrival[net];
        if (s < 0) r.tns_ps += s;
        if (s < worst) {
            worst = s;
            worst_net = net;
        }
        critical = std::max(critical, r.arrival[net]);
        (void)worst_net;
    };
    for (const auto& [name, net] : nl.primary_outputs()) {
        (void)name;
        endpoint_slack(net, opts.clock_period_ps);
    }
    for (const InstId f : nl.sequential_instances()) {
        const Instance& inst = nl.instance(f);
        const int arity = function_arity(nl.type_of(f).function);
        for (int p = 0; p < arity; ++p) {
            endpoint_slack(inst.fanin[static_cast<std::size_t>(p)],
                           opts.clock_period_ps - opts.setup_ps);
        }
    }
    r.wns_ps = std::isfinite(worst) ? worst : 0.0;
    r.critical_delay_ps = critical;
    r.fmax_ghz = critical > 0 ? 1000.0 / critical : 0.0;

    // Hold analysis: minimum arrivals along the same topology; flop D pins
    // must not receive data before the hold window closes.
    {
        std::vector<double> min_arrival(nn, 0.0);
        for (const NetId pi : nl.primary_inputs()) min_arrival[pi] = 0.0;
        for (const InstId f : nl.sequential_instances()) {
            min_arrival[nl.instance(f).output] = opts.clk_to_q_ps;
        }
        for (const InstId i : order) {
            const Instance& inst = nl.instance(i);
            double in_arrival = std::numeric_limits<double>::infinity();
            const int arity = function_arity(nl.type_of(i).function);
            for (int p = 0; p < arity; ++p) {
                in_arrival = std::min(
                    in_arrival, min_arrival[inst.fanin[static_cast<std::size_t>(p)]]);
            }
            if (arity == 0) in_arrival = 0.0;
            min_arrival[inst.output] = in_arrival + gate_delay[i];
        }
        r.hold_wns_ps = std::numeric_limits<double>::infinity();
        for (const InstId f : nl.sequential_instances()) {
            const NetId d = nl.instance(f).fanin[0];
            if (d == kNoNet) continue;
            const double slack = min_arrival[d] - opts.hold_ps;
            if (slack < 0) ++r.hold_violations;
            r.hold_wns_ps = std::min(r.hold_wns_ps, slack);
        }
        if (!std::isfinite(r.hold_wns_ps)) r.hold_wns_ps = 0.0;
    }

    // Critical path: walk back from the maximal-arrival endpoint.
    NetId cursor = kNoNet;
    double best_arr = -1.0;
    const auto consider = [&](NetId net) {
        if (r.arrival[net] > best_arr) {
            best_arr = r.arrival[net];
            cursor = net;
        }
    };
    for (const auto& [name, net] : nl.primary_outputs()) {
        (void)name;
        consider(net);
    }
    for (const InstId f : nl.sequential_instances()) {
        const Instance& inst = nl.instance(f);
        const int arity = function_arity(nl.type_of(f).function);
        for (int p = 0; p < arity; ++p) {
            consider(inst.fanin[static_cast<std::size_t>(p)]);
        }
    }
    while (cursor != kNoNet) {
        const Net& net = nl.net(cursor);
        if (net.driver_kind != DriverKind::Instance) break;
        const InstId d = net.driver_inst;
        if (is_sequential(nl.type_of(d).function)) break;
        r.critical_path.push_back(d);
        // Move to the latest-arriving fanin.
        const Instance& inst = nl.instance(d);
        const int arity = function_arity(nl.type_of(d).function);
        NetId next = kNoNet;
        double arr = -1.0;
        for (int p = 0; p < arity; ++p) {
            const NetId f = inst.fanin[static_cast<std::size_t>(p)];
            if (r.arrival[f] > arr) {
                arr = r.arrival[f];
                next = f;
            }
        }
        cursor = next;
    }
    std::reverse(r.critical_path.begin(), r.critical_path.end());
    return r;
}

std::string format_timing_report(const Netlist& nl, const TimingReport& r) {
    std::ostringstream os;
    os << "design " << nl.name() << ": critical delay " << r.critical_delay_ps
       << " ps, fmax " << r.fmax_ghz << " GHz, WNS " << r.wns_ps << " ps, TNS "
       << r.tns_ps << " ps (" << (r.met() ? "MET" : "VIOLATED") << ")\n";
    os << "critical path (" << r.critical_path.size() << " stages):";
    for (const InstId i : r.critical_path) {
        os << " " << nl.instance(i).name << "(" << nl.type_of(i).name << ")";
    }
    os << "\n";
    return os.str();
}

}  // namespace janus
