#include "janus/timing/sta.hpp"

#include <sstream>

#include "janus/timing/timing_graph.hpp"

namespace janus {

TimingReport run_sta(const Netlist& nl, const StaOptions& opts) {
    // Thin wrapper over the cached engine: one-shot build + full analysis.
    // Callers that query timing repeatedly (sizing loops, what-if resizes)
    // should hold a TimingGraph directly and use update().
    TimingGraph tg(nl, opts);
    tg.analyze(opts.sta_workers);
    return tg.report();
}

std::string format_timing_report(const Netlist& nl, const TimingReport& r) {
    std::ostringstream os;
    os << "design " << nl.name() << ": critical delay " << r.critical_delay_ps
       << " ps, fmax " << r.fmax_ghz << " GHz, WNS " << r.wns_ps << " ps, TNS "
       << r.tns_ps << " ps (" << (r.met() ? "MET" : "VIOLATED") << ")\n";
    if (r.worst_endpoint != kNoNet) {
        os << "worst endpoint: net " << nl.net_name(r.worst_endpoint)
           << " (slack " << r.wns_ps << " ps)\n";
    }
    os << "critical path (" << r.critical_path.size() << " stages):";
    for (const InstId i : r.critical_path) {
        os << " " << nl.instance_name(i) << "(" << nl.type_of(i).name << ")";
    }
    os << "\n";
    return os.str();
}

}  // namespace janus
