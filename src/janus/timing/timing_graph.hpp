#pragma once
/// \file timing_graph.hpp
/// Incremental, parallel static timing engine. A TimingGraph is built once
/// from a Netlist and caches everything run_sta() used to re-derive on
/// every call: the levelized combinational topology, per-instance gate
/// delays, and the arrival / min-arrival / required / slack arrays.
///
/// Two analysis modes share those caches:
///
///  - analyze(workers): full analysis via level-by-level forward and
///    backward sweeps. Levels are data-parallel (every instance of a level
///    reads only strictly lower levels and writes only its own output), so
///    the sweeps run on util/thread_pool and are **bit-identical** for any
///    worker count — the same determinism contract as `route_workers`
///    (docs/TIMING.md).
///
///  - resize(inst) / mark_dirty(inst) + update(): incremental re-analysis.
///    Seeds are enqueued, then update() re-propagates arrivals only through
///    the affected fanout cone (level-ordered worklist) and requireds only
///    through the affected fanin cone, returning per-update work stats.
///    O(cone) instead of O(design) — the backbone of the timing-driven
///    sizing loop (sizing.cpp).
///
/// report() produces a TimingReport byte-identical to the historical
/// single-shot run_sta() implementation; run_sta() is now a thin wrapper
/// over this class.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "janus/netlist/netlist.hpp"
#include "janus/timing/sta.hpp"

namespace janus {

/// One timing endpoint: a constrained net (primary output or flop input
/// pin) and its required time under the active constraints.
struct TimingEndpoint {
    NetId net;
    double required_ps;
};

/// The canonical endpoint list for a netlist: primary outputs first (in PO
/// order, required = clock period), then every input pin of every
/// sequential instance (in instance/pin order, required = period - setup).
/// Shared by TimingGraph::report() (WNS/TNS/critical scans) and
/// run_multi_corner() (per-corner endpoint slacks), so summary metrics are
/// computed over the same endpoint set everywhere.
std::vector<TimingEndpoint> timing_endpoints(const Netlist& nl,
                                             const StaOptions& opts);

/// Work accounting for one incremental update() call.
struct TimingUpdateStats {
    std::size_t delays_recomputed = 0;  ///< gate delays re-evaluated
    std::size_t forward_evals = 0;      ///< instances re-evaluated, arrival cone
    std::size_t backward_evals = 0;     ///< instances re-evaluated, required cone
    std::size_t levels_touched = 0;     ///< distinct levels visited (both sweeps)
    std::size_t instances_reevaluated() const {
        return forward_evals + backward_evals;
    }
};

class TimingGraph {
  public:
    /// Caches the levelized topology and the endpoint list. The netlist
    /// must outlive the graph; its structure (nets/pins) must not change
    /// afterwards — the graph records Netlist::mutation_epoch() and every
    /// analysis entry point throws std::logic_error on staleness. In-place
    /// instance resizes (Instance::type) are fine: report them through
    /// resize().
    explicit TimingGraph(const Netlist& nl, const StaOptions& opts = {});

    /// Full analysis: parallel level-by-level forward sweep (arrivals, min
    /// arrivals for hold), then backward sweep (requireds), then slacks.
    /// Bit-identical for any `workers` value; 1 = serial. Clears any
    /// pending dirty seeds (a full rebuild supersedes them).
    void analyze(int workers = 1);

    /// Notes that `inst` changed drive variant in place. Marks the
    /// instance itself dirty plus the combinational drivers of its fanin
    /// nets (their load — hence their delay — changed too).
    void resize(InstId inst);

    /// Enqueues a single instance whose delay must be re-evaluated on the
    /// next update(). Sequential instances are ignored (flop Q arrivals
    /// are constraint-driven, not load-driven, in this delay model).
    void mark_dirty(InstId inst);

    /// Incremental re-analysis from the pending seeds: recomputes dirty
    /// gate delays, propagates arrivals through the affected fanout cone
    /// (ascending level order) and requireds through the affected fanin
    /// cone (descending level order), and refreshes the slacks of touched
    /// nets. After update() the arrays are byte-identical to a fresh
    /// analyze(). Requires a prior analyze(); throws std::logic_error
    /// otherwise or when the netlist structure changed.
    TimingUpdateStats update();

    // --- queries ----------------------------------------------------------
    const std::vector<double>& arrivals() const { return arrival_; }
    const std::vector<double>& requireds() const { return required_; }
    const std::vector<double>& slacks() const { return slack_; }
    const std::vector<TimingEndpoint>& endpoints() const { return endpoints_; }
    /// Number of combinational levels (the parallel sweep depth).
    std::size_t num_levels() const { return levels_.size(); }
    /// Longest endpoint arrival — the critical delay — via one O(endpoints)
    /// scan; cheap enough to call once per sizing pass.
    double critical_delay_ps() const;
    /// Assembles the full TimingReport (summary metrics, hold analysis,
    /// critical path) from the cached arrays. Byte-identical to what the
    /// historical run_sta() returned.
    TimingReport report() const;

  private:
    void build_levels();
    void eval_forward(InstId i);
    void eval_backward(InstId i);
    void recompute_source_required(NetId net);
    void enqueue_forward(InstId i);
    void enqueue_backward(InstId i);
    void seed_backward_from(InstId i);
    void check_fresh() const;

    const Netlist* nl_;
    StaOptions opts_;
    std::uint64_t epoch_;
    bool analyzed_ = false;

    // Cached topology.
    std::vector<std::vector<InstId>> levels_;  ///< comb instances per level
    std::vector<int> level_of_;                ///< -1 for sequential
    std::vector<InstId> sequential_;
    std::vector<NetId> source_nets_;     ///< PI / flop-Q / undriven-with-sinks
    std::vector<TimingEndpoint> endpoints_;
    std::vector<double> endpoint_base_;  ///< per net: min endpoint constraint

    // Cached analysis state (per instance / per net).
    std::vector<double> gate_delay_;
    std::vector<double> arrival_;
    std::vector<double> min_arrival_;  ///< hold-analysis min arrivals
    std::vector<double> required_;
    std::vector<double> slack_;

    // Incremental worklists (persist across update() calls to avoid
    // reallocation; empty between calls).
    std::vector<InstId> dirty_seeds_;
    std::vector<std::uint8_t> delay_dirty_;
    std::vector<std::vector<InstId>> pending_fwd_;
    std::vector<std::vector<InstId>> pending_bwd_;
    std::vector<std::uint8_t> in_fwd_;
    std::vector<std::uint8_t> in_bwd_;
    std::vector<std::uint8_t> source_dirty_;
};

}  // namespace janus
