#include "janus/timing/sizing.hpp"

#include <algorithm>
#include <vector>

namespace janus {

SizingResult size_for_timing(Netlist& nl, const SizingOptions& opts) {
    SizingResult res;
    const CellLibrary& lib = nl.library();

    TimingReport tr = run_sta(nl, opts.sta);
    res.wns_before_ps = tr.wns_ps;
    res.delay_before_ps = tr.critical_delay_ps;
    res.area_before_um2 = nl.total_area();

    for (int pass = 0; pass < opts.max_passes; ++pass) {
        if (opts.stop_when_met && tr.met()) break;
        ++res.passes;

        // Candidate resizes: critical-path instances with a bigger drive.
        std::vector<std::pair<InstId, std::size_t>> undo;
        int resized = 0;
        for (const InstId i : tr.critical_path) {
            const CellType& cur = nl.type_of(i);
            const auto variants = lib.variants(cur.function);
            std::size_t next = nl.instance(i).type;
            for (const std::size_t v : variants) {
                if (lib.cell(v).drive > cur.drive) {
                    next = v;
                    break;
                }
            }
            if (next == nl.instance(i).type) continue;
            undo.emplace_back(i, nl.instance(i).type);
            nl.instance(i).type = next;
            ++resized;
        }
        if (resized == 0) break;

        const TimingReport after = run_sta(nl, opts.sta);
        if (after.critical_delay_ps < tr.critical_delay_ps) {
            tr = after;
            res.cells_resized += resized;
        } else {
            // No improvement: roll back and stop.
            for (const auto& [inst, type] : undo) nl.instance(inst).type = type;
            break;
        }
    }

    res.wns_after_ps = tr.wns_ps;
    res.delay_after_ps = tr.critical_delay_ps;
    res.area_after_um2 = nl.total_area();
    return res;
}

}  // namespace janus
