#include "janus/timing/sizing.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "janus/timing/timing_graph.hpp"

namespace janus {

SizingResult size_for_timing(Netlist& nl, const SizingOptions& opts) {
    SizingResult res;
    const CellLibrary& lib = nl.library();

    TimingGraph tg(nl, opts.sta);
    tg.analyze(opts.sta.sta_workers);

    TimingReport tr = tg.report();
    res.wns_before_ps = tr.wns_ps;
    res.delay_before_ps = tr.critical_delay_ps;
    res.area_before_um2 = nl.total_area();

    for (int pass = 0; pass < opts.max_passes; ++pass) {
        if (opts.stop_when_met && tr.met()) break;
        ++res.passes;

        // Candidate resizes: critical-path instances bumped to the smallest
        // variant whose drive strictly exceeds the current one.
        std::vector<std::pair<InstId, std::size_t>> undo;
        int resized = 0;
        double area_delta = 0.0;
        for (const InstId i : tr.critical_path) {
            const CellType& cur = nl.type_of(i);
            std::size_t next = nl.instance(i).type;
            double best_drive = 0.0;
            for (const std::size_t v : lib.variants(cur.function)) {
                const double d = lib.cell(v).drive;
                if (d > cur.drive && (next == nl.instance(i).type || d < best_drive)) {
                    next = v;
                    best_drive = d;
                }
            }
            if (next == nl.instance(i).type) continue;
            undo.emplace_back(i, nl.instance(i).type);
            area_delta += lib.cell(next).area_um2 - cur.area_um2;
            nl.instance(i).type = next;
            tg.resize(i);
            ++resized;
        }
        if (resized == 0) break;

        res.timing_evals += tg.update().instances_reevaluated();
        if (tg.critical_delay_ps() < tr.critical_delay_ps) {
            tr = tg.report();
            res.cells_resized += resized;
            res.area_delta_per_pass.push_back(area_delta);
        } else {
            // No improvement: roll back cell by cell and stop.
            for (const auto& [inst, type] : undo) {
                nl.instance(inst).type = type;
                tg.resize(inst);
            }
            res.timing_evals += tg.update().instances_reevaluated();
            break;
        }
    }

    res.wns_after_ps = tr.wns_ps;
    res.delay_after_ps = tr.critical_delay_ps;
    res.area_after_um2 = nl.total_area();
    return res;
}

}  // namespace janus
