#include "janus/timing/corners.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "janus/timing/timing_graph.hpp"

namespace janus {

std::vector<TimingCorner> standard_corners() {
    return {
        {"ss_lowv_hot", 1.30},  // slow process, low voltage, 125C
        {"tt_nom", 1.00},
        {"ff_highv_cold", 0.72},  // fast process, high voltage, -40C
    };
}

MultiCornerReport run_multi_corner(const Netlist& nl, const StaOptions& base,
                                   const std::vector<TimingCorner>& corners) {
    MultiCornerReport out;
    // A uniform derate k scales every path delay by k; one nominal STA run
    // provides all arrivals, and each corner rescales them.
    const TimingReport nominal = run_sta(nl, base);
    // The same endpoint set run_sta summarizes over, so per-corner WNS/TNS
    // are real endpoint slacks, not a critical-delay proxy.
    const std::vector<TimingEndpoint> endpoints = timing_endpoints(nl, base);

    const bool has_flops = !nl.sequential_instances().empty();
    out.worst_setup_slack_ps = std::numeric_limits<double>::infinity();
    out.worst_hold_slack_ps = std::numeric_limits<double>::infinity();
    for (const TimingCorner& c : corners) {
        TimingReport r = nominal;
        const double k = c.delay_derate;
        for (double& a : r.arrival) a *= k;
        // Required times (period - setup) are corner-invariant constraints
        // and stay as computed nominally.
        r.critical_delay_ps = nominal.critical_delay_ps * k;
        r.fmax_ghz = r.critical_delay_ps > 0 ? 1000.0 / r.critical_delay_ps : 0;
        // Setup: re-evaluate every endpoint against its derated arrival.
        // slack(e) = required(e) - k * arrival(e); constraints (period,
        // period - setup) do not derate.
        double worst = std::numeric_limits<double>::infinity();
        NetId worst_net = kNoNet;
        r.tns_ps = 0.0;
        for (const TimingEndpoint& e : endpoints) {
            const double s = e.required_ps - r.arrival[e.net];
            if (s < 0) r.tns_ps += s;
            if (s < worst) {
                worst = s;
                worst_net = e.net;
            }
        }
        r.wns_ps = std::isfinite(worst) ? worst : 0.0;
        r.worst_endpoint = worst_net;
        // Hold: the min-path arrival scales with the derate; the hold
        // window does not. slack = k * min_arrival - hold. Vacuous (0)
        // for combinational designs with no capture flops.
        r.hold_wns_ps =
            has_flops ? (nominal.hold_wns_ps + base.hold_ps) * k - base.hold_ps
                      : 0.0;
        if (r.wns_ps < out.worst_setup_slack_ps) {
            out.worst_setup_slack_ps = r.wns_ps;
            out.worst_setup_corner = c.name;
        }
        if (r.hold_wns_ps < out.worst_hold_slack_ps) {
            out.worst_hold_slack_ps = r.hold_wns_ps;
            out.worst_hold_corner = c.name;
        }
        out.reports.push_back(std::move(r));
    }
    return out;
}

}  // namespace janus
