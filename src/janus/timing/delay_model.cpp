#include "janus/timing/delay_model.hpp"

#include <algorithm>
#include <cmath>

namespace janus {

WireModel WireModel::for_node(const TechnologyNode& node) {
    WireModel wm;
    // Wire capacitance per unit length is roughly node-independent
    // (~0.2 fF/um); resistance grows as the cross-section shrinks.
    wm.cap_ff_per_um = 0.2;
    wm.res_ohm_per_um = 0.4 * (180.0 / std::max(1.0, node.feature_nm));
    // Average wirelength tracks the row pitch: finer nodes, shorter wires.
    wm.um_per_fanout = 25.0 * node.track_um;
    return wm;
}

double estimate_net_length_um(const Netlist& nl, NetId net, const WireModel& wm) {
    // Gather pin positions; fall back to wireload when any pin is unplaced.
    const Net& n = nl.net(net);
    std::vector<Point> pins;
    bool all_placed = true;
    if (n.driver_kind == DriverKind::Instance) {
        const Instance& d = nl.instance(n.driver_inst);
        if (d.placed) {
            pins.push_back(d.position);
        } else {
            all_placed = false;
        }
    }
    for (const SinkRef& s : nl.sinks(net)) {
        const Instance& i = nl.instance(s.inst());
        if (i.placed) {
            pins.push_back(i.position);
        } else {
            all_placed = false;
        }
    }
    if (all_placed && pins.size() >= 2) {
        // Positions are in DBU = nm here; convert to um.
        return static_cast<double>(hpwl(pins)) * 1e-3;
    }
    return wm.um_per_fanout * static_cast<double>(std::max<std::size_t>(1, nl.fanout_count(net)));
}

double net_load_ff(const Netlist& nl, NetId net, const WireModel& wm) {
    double cap = estimate_net_length_um(nl, net, wm) * wm.cap_ff_per_um;
    for (const SinkRef& s : nl.sinks(net)) {
        cap += nl.type_of(s.inst()).input_cap_ff;
    }
    return cap;
}

double instance_delay_ps(const Netlist& nl, InstId inst, const WireModel& wm) {
    const CellType& ct = nl.type_of(inst);
    const NetId out = nl.instance(inst).output;
    const double load = net_load_ff(nl, out, wm);
    const double len = estimate_net_length_um(nl, out, wm);
    const double wire_delay =
        0.5 * (len * wm.res_ohm_per_um) * (len * wm.cap_ff_per_um) * 1e-3;
    return ct.intrinsic_delay_ps + ct.drive_res_kohm * load + wire_delay;
}

}  // namespace janus
