#pragma once
/// \file ssta.hpp
/// Statistical static timing analysis. Panelist Macii: "the focus of the
/// tools has shifted ... to more complex targets, such as
/// manufacturability, temperature, ageing and process variation." Each
/// gate delay is a Gaussian (nominal, sigma); arrivals propagate with
/// Clark's max approximation; the result is a timing-yield estimate
/// instead of a single worst case.

#include "janus/netlist/netlist.hpp"
#include "janus/timing/sta.hpp"

namespace janus {

/// A Gaussian random variable (first two moments).
struct GaussianDelay {
    double mean = 0;
    double sigma = 0;
};

struct SstaOptions {
    StaOptions sta;
    /// Per-gate sigma as a fraction of the nominal delay (die-to-die plus
    /// random components lumped).
    double sigma_fraction = 0.08;
};

struct SstaReport {
    GaussianDelay critical;        ///< statistical max over endpoints
    double nominal_delay_ps = 0;   ///< deterministic STA for reference
    /// P(design meets the clock period).
    double timing_yield = 0;
    /// Clock period needed for 99.87% yield (mean + 3 sigma).
    double period_for_3sigma_ps = 0;
};

/// Runs SSTA; independent gate delays, Clark max at converging paths.
SstaReport run_ssta(const Netlist& nl, const SstaOptions& opts = {});

/// Clark's approximation of max(X, Y) for independent Gaussians —
/// exposed for tests.
GaussianDelay clark_max(const GaussianDelay& x, const GaussianDelay& y);

}  // namespace janus
