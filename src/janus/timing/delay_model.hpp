#pragma once
/// \file delay_model.hpp
/// First-order gate and interconnect delay models. Gate delay is the
/// linear model  d = intrinsic + R_drive * C_load;  interconnect uses a
/// lumped Elmore estimate from HPWL when placement data exists and a
/// fanout-based wireload model otherwise (the classic pre-layout
/// estimate).

#include "janus/netlist/netlist.hpp"
#include "janus/netlist/technology.hpp"

namespace janus {

/// Per-technology wire parasitics.
struct WireModel {
    double cap_ff_per_um = 0.2;   ///< wire capacitance
    double res_ohm_per_um = 1.0;  ///< wire resistance
    /// Pre-layout wireload: estimated length per fanout (um).
    double um_per_fanout = 5.0;

    /// Derives a wire model from the node (narrower wires: more R, ~same C).
    static WireModel for_node(const TechnologyNode& node);
};

/// Estimated routed length of a net in um: HPWL when all pins are placed,
/// wireload estimate otherwise.
double estimate_net_length_um(const Netlist& nl, NetId net, const WireModel& wm);

/// Total capacitive load on a net (sink pins + wire).
double net_load_ff(const Netlist& nl, NetId net, const WireModel& wm);

/// Delay of instance `inst` driving its output net, in ps: gate plus a
/// lumped wire term 0.5 * R_wire * C_wire.
double instance_delay_ps(const Netlist& nl, InstId inst, const WireModel& wm);

}  // namespace janus
