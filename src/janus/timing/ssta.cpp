#include "janus/timing/ssta.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "janus/timing/delay_model.hpp"

namespace janus {
namespace {

double phi(double x) {  // standard normal pdf
    return std::exp(-0.5 * x * x) / std::sqrt(2.0 * std::numbers::pi);
}

double Phi(double x) {  // standard normal cdf
    return 0.5 * std::erfc(-x / std::numbers::sqrt2);
}

}  // namespace

GaussianDelay clark_max(const GaussianDelay& x, const GaussianDelay& y) {
    const double a2 = x.sigma * x.sigma + y.sigma * y.sigma;
    if (a2 < 1e-18) {
        return {std::max(x.mean, y.mean), 0.0};
    }
    const double a = std::sqrt(a2);
    const double alpha = (x.mean - y.mean) / a;
    const double mean = x.mean * Phi(alpha) + y.mean * Phi(-alpha) + a * phi(alpha);
    const double second =
        (x.mean * x.mean + x.sigma * x.sigma) * Phi(alpha) +
        (y.mean * y.mean + y.sigma * y.sigma) * Phi(-alpha) +
        (x.mean + y.mean) * a * phi(alpha);
    const double var = std::max(0.0, second - mean * mean);
    return {mean, std::sqrt(var)};
}

SstaReport run_ssta(const Netlist& nl, const SstaOptions& opts) {
    SstaReport rep;
    const TimingReport nominal = run_sta(nl, opts.sta);
    rep.nominal_delay_ps = nominal.critical_delay_ps;

    // Per-net statistical arrivals.
    std::vector<GaussianDelay> arrival(nl.num_nets(), GaussianDelay{});
    for (const InstId f : nl.sequential_instances()) {
        arrival[nl.instance(f).output] = {opts.sta.clk_to_q_ps, 0.0};
    }

    // Epoch-cached order: shared with the run_sta call above, one Kahn pass.
    for (const InstId i : nl.topological_order()) {
        const Instance& inst = nl.instance(i);
        const double d = instance_delay_ps(nl, i, opts.sta.wire);
        GaussianDelay in{0, 0};
        const int arity = function_arity(nl.type_of(i).function);
        bool first = true;
        for (int p = 0; p < arity; ++p) {
            const NetId n = inst.fanin[static_cast<std::size_t>(p)];
            if (n == kNoNet) continue;
            in = first ? arrival[n] : clark_max(in, arrival[n]);
            first = false;
        }
        // Independent per-gate variation adds in quadrature.
        const double gate_sigma = d * opts.sigma_fraction;
        arrival[inst.output] = {in.mean + d,
                                std::sqrt(in.sigma * in.sigma +
                                          gate_sigma * gate_sigma)};
    }

    // Statistical max across endpoints.
    GaussianDelay critical{0, 0};
    bool first = true;
    const auto endpoint = [&](NetId net) {
        critical = first ? arrival[net] : clark_max(critical, arrival[net]);
        first = false;
    };
    for (const auto& [name, net] : nl.primary_outputs()) {
        (void)name;
        endpoint(net);
    }
    for (const InstId f : nl.sequential_instances()) {
        const NetId d = nl.instance(f).fanin[0];
        if (d != kNoNet) endpoint(d);
    }
    rep.critical = critical;
    const double slack_target = opts.sta.clock_period_ps - opts.sta.setup_ps;
    rep.timing_yield =
        critical.sigma > 0
            ? Phi((slack_target - critical.mean) / critical.sigma)
            : (critical.mean <= slack_target ? 1.0 : 0.0);
    rep.period_for_3sigma_ps =
        critical.mean + 3.0 * critical.sigma + opts.sta.setup_ps;
    return rep;
}

}  // namespace janus
