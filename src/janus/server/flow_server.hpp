#pragma once
/// \file flow_server.hpp
/// The JanusEDA flow server: a dependency-free TCP + line-delimited-JSON
/// service that keeps named design sessions warm (session.hpp) and
/// multiplexes concurrent requests onto one shared thread pool through the
/// FlowScheduler admission layer (scheduler.hpp). ECO and timing queries
/// are admitted at JobPriority::Eco — they jump ahead of queued full flows,
/// which is what gives interactive latency while batch work saturates the
/// pool.
///
/// Request vocabulary (one JSON object per line; see docs/SERVER.md):
///   ping, submit_design, run_to, timing, eco, query_trace,
///   list_sessions, evict, stats
///
/// `handle_request()` is the transport-independent dispatch — the socket
/// layer (start()/stop(), thread per connection) is a thin framing wrapper
/// over it, and tests exercise the full protocol in-process through it.

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "janus/flow/flow_engine.hpp"
#include "janus/netlist/technology.hpp"
#include "janus/server/protocol.hpp"
#include "janus/server/scheduler.hpp"
#include "janus/server/session.hpp"

namespace janus::server {

struct FlowServerOptions {
    /// Worker threads in the shared scheduler pool (clamped to >= 1).
    int workers = 1;
    /// Session registry capacity; least recently used sessions are evicted.
    std::size_t max_sessions = 8;
    /// TCP port to bind on loopback; 0 = OS-assigned (read back via port()).
    std::uint16_t port = 0;
};

class FlowServer {
  public:
    explicit FlowServer(TechnologyNode node, FlowServerOptions opts = {});
    ~FlowServer();

    FlowServer(const FlowServer&) = delete;
    FlowServer& operator=(const FlowServer&) = delete;

    /// Dispatches one request line and returns the response JSON (no
    /// trailing newline). Never throws: protocol and execution errors come
    /// back as {"status":"error","error":...} responses. Thread-safe.
    std::string handle_request(const std::string& line);

    /// Binds the loopback listener and starts accepting connections.
    /// Throws std::runtime_error when the socket cannot be set up.
    void start();
    /// Stops accepting, shuts every live connection down, joins all
    /// threads. Idempotent; the destructor calls it.
    void stop();
    bool running() const { return running_.load(); }
    /// The bound port (valid after start()).
    std::uint16_t port() const { return port_; }

    SchedulerStats scheduler_stats() const { return scheduler_.stats(); }
    SessionManager& sessions() { return sessions_; }
    const CellLibrary& library() const { return *lib_; }

  private:
    JsonValue dispatch(const JsonValue& req);
    JsonValue cmd_submit_design(const JsonValue& req);
    JsonValue cmd_run_to(const JsonValue& req);
    JsonValue cmd_timing(const JsonValue& req);
    JsonValue cmd_eco(const JsonValue& req);
    JsonValue cmd_query_trace(const JsonValue& req);
    JsonValue cmd_list_sessions() const;
    JsonValue cmd_stats() const;

    std::shared_ptr<Session> require_session(const JsonValue& req);
    /// Runs `fn` as a scheduler job at `priority` and rethrows its failure
    /// (so every session command shares the admission queue with batch
    /// flows).
    JsonValue scheduled(std::function<JsonValue()> fn, JobPriority priority);

    void accept_loop();
    void serve_connection(int fd);

    TechnologyNode node_;
    FlowServerOptions opts_;
    std::shared_ptr<const CellLibrary> lib_;
    FlowEngine engine_;
    FlowScheduler scheduler_;
    SessionManager sessions_;

    std::atomic<bool> running_{false};
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::thread accept_thread_;

    struct Conn {
        int fd = -1;
        bool open = false;
        std::thread th;
    };
    std::mutex conn_mu_;
    std::list<Conn> conns_;
};

/// Minimal blocking client for the line protocol — what server_test and
/// bench_server speak through a real socket.
class JanusClient {
  public:
    /// Connects to 127.0.0.1:`port`; throws std::runtime_error on failure.
    explicit JanusClient(std::uint16_t port);
    ~JanusClient();

    JanusClient(const JanusClient&) = delete;
    JanusClient& operator=(const JanusClient&) = delete;

    /// Sends one request line and blocks for the one-line response
    /// (returned without the trailing newline).
    std::string request(const std::string& line);

  private:
    int fd_ = -1;
    std::string buffer_;
};

}  // namespace janus::server
