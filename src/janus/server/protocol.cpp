#include "janus/server/protocol.hpp"

#include <charconv>
#include <cstdio>

namespace janus::server {
namespace {

[[noreturn]] void type_error(const char* wanted, JsonValue::Kind got) {
    static const char* const names[] = {"null",   "bool",  "int",   "real",
                                        "string", "array", "object"};
    throw ProtocolError(std::string("expected ") + wanted + ", got " +
                        names[static_cast<int>(got)]);
}

void escape_to(const std::string& s, std::string& out) {
    out += '"';
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

/// Strict recursive-descent JSON parser over a string_view.
class Parser {
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    JsonValue parse() {
        JsonValue v = value(0);
        skip_ws();
        if (pos_ != text_.size()) fail("trailing content after JSON value");
        return v;
    }

  private:
    static constexpr int kMaxDepth = 64;

    [[noreturn]] void fail(const std::string& why) const {
        throw ProtocolError("JSON parse error at byte " + std::to_string(pos_) +
                            ": " + why);
    }

    void skip_ws() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(std::string_view lit) {
        if (text_.substr(pos_, lit.size()) != lit) return false;
        pos_ += lit.size();
        return true;
    }

    JsonValue value(int depth) {
        if (depth > kMaxDepth) fail("nesting too deep");
        skip_ws();
        const char c = peek();
        switch (c) {
            case '{': return object(depth);
            case '[': return array(depth);
            case '"': return JsonValue(string());
            case 't':
                if (!consume_literal("true")) fail("bad literal");
                return JsonValue(true);
            case 'f':
                if (!consume_literal("false")) fail("bad literal");
                return JsonValue(false);
            case 'n':
                if (!consume_literal("null")) fail("bad literal");
                return JsonValue();
            default: return number();
        }
    }

    JsonValue object(int depth) {
        expect('{');
        JsonValue v = JsonValue::object();
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skip_ws();
            if (peek() != '"') fail("expected member name");
            std::string key = string();
            if (v.find(key)) fail("duplicate member \"" + key + "\"");
            skip_ws();
            expect(':');
            v.set(std::move(key), value(depth + 1));
            skip_ws();
            const char sep = peek();
            ++pos_;
            if (sep == '}') return v;
            if (sep != ',') fail("expected ',' or '}'");
        }
    }

    JsonValue array(int depth) {
        expect('[');
        JsonValue v = JsonValue::array();
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.push(value(depth + 1));
            skip_ws();
            const char sep = peek();
            ++pos_;
            if (sep == ']') return v;
            if (sep != ',') fail("expected ',' or ']'");
        }
    }

    std::string string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("raw control character in string");
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': out += unicode_escape(); break;
                default: fail("bad escape");
            }
        }
    }

    std::string unicode_escape() {
        if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
        unsigned cp = 0;
        for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
        }
        // UTF-8 encode the basic-multilingual-plane code point (surrogate
        // pairs are rejected — netlist/stage names are ASCII in practice).
        if (cp >= 0xD800 && cp <= 0xDFFF) fail("surrogate \\u escape unsupported");
        std::string out;
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
        return out;
    }

    JsonValue number() {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
        bool is_real = false;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
                is_real = true;
                ++pos_;
            } else {
                break;
            }
        }
        const std::string_view tok = text_.substr(start, pos_ - start);
        if (tok.empty() || tok == "-") fail("bad number");
        if (!is_real) {
            std::int64_t v = 0;
            const auto [p, ec] =
                std::from_chars(tok.data(), tok.data() + tok.size(), v);
            if (ec == std::errc() && p == tok.data() + tok.size()) {
                return JsonValue(v);
            }
        }
        double d = 0.0;
        const auto [p, ec] =
            std::from_chars(tok.data(), tok.data() + tok.size(), d);
        if (ec != std::errc() || p != tok.data() + tok.size()) fail("bad number");
        return JsonValue(d);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

bool JsonValue::as_bool() const {
    if (kind_ != Kind::Bool) type_error("bool", kind_);
    return bool_;
}

std::int64_t JsonValue::as_int() const {
    if (kind_ != Kind::Int) type_error("int", kind_);
    return int_;
}

double JsonValue::as_real() const {
    if (kind_ == Kind::Int) return static_cast<double>(int_);
    if (kind_ != Kind::Real) type_error("number", kind_);
    return real_;
}

const std::string& JsonValue::as_string() const {
    if (kind_ != Kind::String) type_error("string", kind_);
    return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
    if (kind_ != Kind::Array) type_error("array", kind_);
    return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members() const {
    if (kind_ != Kind::Object) type_error("object", kind_);
    return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
    if (kind_ != Kind::Object) return nullptr;
    for (const auto& [k, v] : members_) {
        if (k == key) return &v;
    }
    return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
    const JsonValue* v = find(key);
    if (!v) throw ProtocolError("missing member \"" + std::string(key) + "\"");
    return *v;
}

std::string JsonValue::get_string(std::string_view key,
                                  std::string fallback) const {
    const JsonValue* v = find(key);
    return v ? v->as_string() : std::move(fallback);
}

std::int64_t JsonValue::get_int(std::string_view key,
                                std::int64_t fallback) const {
    const JsonValue* v = find(key);
    return v ? v->as_int() : fallback;
}

double JsonValue::get_real(std::string_view key, double fallback) const {
    const JsonValue* v = find(key);
    return v ? v->as_real() : fallback;
}

JsonValue& JsonValue::set(std::string key, JsonValue value) {
    if (kind_ == Kind::Null) kind_ = Kind::Object;
    if (kind_ != Kind::Object) type_error("object", kind_);
    members_.emplace_back(std::move(key), std::move(value));
    return *this;
}

JsonValue& JsonValue::push(JsonValue value) {
    if (kind_ == Kind::Null) kind_ = Kind::Array;
    if (kind_ != Kind::Array) type_error("array", kind_);
    items_.push_back(std::move(value));
    return *this;
}

void JsonValue::dump_to(std::string& out) const {
    switch (kind_) {
        case Kind::Null: out += "null"; break;
        case Kind::Bool: out += bool_ ? "true" : "false"; break;
        case Kind::Int: out += std::to_string(int_); break;
        case Kind::Real: {
            // Shortest round-trip rendering: deterministic and exact.
            char buf[32];
            const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, real_);
            out.append(buf, ec == std::errc() ? p : buf);
            break;
        }
        case Kind::String: escape_to(string_, out); break;
        case Kind::Array:
            out += '[';
            for (std::size_t i = 0; i < items_.size(); ++i) {
                if (i) out += ',';
                items_[i].dump_to(out);
            }
            out += ']';
            break;
        case Kind::Object:
            out += '{';
            for (std::size_t i = 0; i < members_.size(); ++i) {
                if (i) out += ',';
                escape_to(members_[i].first, out);
                out += ':';
                members_[i].second.dump_to(out);
            }
            out += '}';
            break;
    }
}

std::string JsonValue::dump() const {
    std::string out;
    dump_to(out);
    return out;
}

JsonValue parse_json(std::string_view text) { return Parser(text).parse(); }

JsonValue make_ok_response() {
    JsonValue v = JsonValue::object();
    v.set("status", "ok");
    return v;
}

JsonValue make_error_response(const std::string& message) {
    JsonValue v = JsonValue::object();
    v.set("status", "error");
    v.set("error", message);
    return v;
}

}  // namespace janus::server
