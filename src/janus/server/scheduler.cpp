#include "janus/server/scheduler.hpp"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>

#include "janus/util/log.hpp"
#include "janus/util/thread_pool.hpp"

namespace janus {

// ------------------------------------------------------------- JobHandle

struct JobHandle::State {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    FlowResult result;
    StageTrace trace;
};

bool JobHandle::done() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->done;
}

const FlowResult& JobHandle::wait() {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [this] { return state_->done; });
    return state_->result;
}

const StageTrace& JobHandle::trace() {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [this] { return state_->done; });
    return state_->trace;
}

// --------------------------------------------------------- FlowScheduler

struct FlowScheduler::Impl {
    /// One admitted-but-not-yet-started unit of work.
    struct Pending {
        std::uint64_t seq = 0;
        std::shared_ptr<JobHandle::State> state;
        std::function<void(JobHandle::State&)> execute;
    };

    const FlowEngine* engine;
    mutable std::mutex mu;
    std::condition_variable drained;
    std::deque<Pending> eco_queue;    // JobPriority::Eco, FIFO
    std::deque<Pending> batch_queue;  // JobPriority::Batch, FIFO
    SchedulerStats stats;
    std::size_t outstanding = 0;  ///< submitted, not yet completed
    std::uint64_t next_seq = 0;
    // Destroyed first (reverse member order): the pool drains its pump
    // tasks while the queues above are still alive.
    ThreadPool pool;

    Impl(const FlowEngine& eng, int workers) : engine(&eng), pool(workers) {}

    /// Runs on a pool worker, once per admitted job: picks the highest-
    /// priority pending work at *execution* time (not submit time), so an
    /// ECO admitted after ten batch flows still runs on the next free
    /// worker. Exactly as many pump tasks are queued as jobs admitted.
    void pump() {
        Pending p;
        {
            std::lock_guard<std::mutex> lock(mu);
            if (!eco_queue.empty()) {
                p = std::move(eco_queue.front());
                eco_queue.pop_front();
                if (!batch_queue.empty() && batch_queue.front().seq < p.seq) {
                    ++stats.eco_preempts;
                }
            } else if (!batch_queue.empty()) {
                p = std::move(batch_queue.front());
                batch_queue.pop_front();
            } else {
                return;  // unreachable: one pump per admitted job
            }
        }
        p.execute(*p.state);
        // Counters first: a waiter woken by the job's cv must observe the
        // scheduler stats this completion produced.
        {
            std::lock_guard<std::mutex> lock(mu);
            ++stats.completed;
            if (p.state->result.failed()) ++stats.failed;
            if (--outstanding == 0) drained.notify_all();
        }
        {
            std::lock_guard<std::mutex> lock(p.state->mu);
            p.state->done = true;
        }
        p.state->cv.notify_all();
    }

    JobHandle admit(std::function<void(JobHandle::State&)> execute,
                    JobPriority priority) {
        JobHandle handle;
        handle.state_ = std::make_shared<JobHandle::State>();
        Pending p;
        p.state = handle.state_;
        p.execute = std::move(execute);
        {
            std::lock_guard<std::mutex> lock(mu);
            p.seq = next_seq++;
            ++stats.submitted;
            ++outstanding;
            if (priority == JobPriority::Eco) {
                ++stats.eco_submitted;
                eco_queue.push_back(std::move(p));
            } else {
                batch_queue.push_back(std::move(p));
            }
        }
        pool.submit([this] { pump(); });
        return handle;
    }
};

FlowScheduler::FlowScheduler(const FlowEngine& engine, int workers)
    : impl_(std::make_unique<Impl>(engine, workers)) {}

FlowScheduler::~FlowScheduler() { wait_all(); }

std::size_t FlowScheduler::workers() const { return impl_->pool.size(); }

JobHandle FlowScheduler::submit(FlowJob job, JobPriority priority) {
    const FlowEngine* engine = impl_->engine;
    return impl_->admit(
        [engine, job = std::move(job)](JobHandle::State& state) mutable {
            // The design name survives even when the context constructor
            // throws (it consumes the netlist), so failures stay
            // attributable.
            const std::string design = job.netlist.name();
            try {
                FlowContext ctx(std::move(job.netlist), job.node, job.params);
                for (const std::string& s : job.skip_stages) ctx.skip(s);
                ScopedLogContext log_ctx("batch:" + ctx.result.design);
                try {
                    engine->run_until(ctx, engine->stages().size());
                    // Keep the implemented netlist without an extra copy.
                    ctx.result.mapped =
                        std::make_shared<Netlist>(std::move(ctx.netlist));
                } catch (const std::exception& e) {
                    // A failing stage surfaces as a failed result that
                    // keeps the QoR accumulated before the failure.
                    ctx.result.error = e.what();
                }
                state.result = std::move(ctx.result);
                state.trace = std::move(ctx.trace);
            } catch (const std::exception& e) {
                state.result.design = design;
                state.result.error = e.what();
            } catch (...) {
                state.result.design = design;
                state.result.error = "unknown exception";
            }
        },
        priority);
}

JobHandle FlowScheduler::submit_fn(std::function<void()> work,
                                   JobPriority priority) {
    return impl_->admit(
        [work = std::move(work)](JobHandle::State& state) {
            try {
                work();
            } catch (const std::exception& e) {
                state.result.error = e.what();
            } catch (...) {
                state.result.error = "unknown exception";
            }
        },
        priority);
}

void FlowScheduler::wait_all() {
    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->drained.wait(lock, [this] { return impl_->outstanding == 0; });
}

SchedulerStats FlowScheduler::stats() const {
    std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->stats;
}

}  // namespace janus
