#pragma once
/// \file session.hpp
/// Named persistent flow sessions for the JanusEDA flow server. A Session
/// owns one FlowContext (design + params + stage progress) plus the warm
/// analysis caches that make ECO queries cheap:
///
///  - a TimingGraph built once per netlist structure and kept analyzed, so
///    a cell resize/swap is answered by TimingGraph::resize() + update()
///    — O(affected cone) instead of O(design);
///  - a NetBBoxCache over the current placement, so HPWL in ECO responses
///    is a cached O(nets-summed-once) read, not a rescan per query.
///
/// Edits that change netlist structure (rewires) bump
/// Netlist::mutation_epoch(); the session detects staleness and falls back
/// to a full TimingGraph rebuild + analyze — correctness never depends on
/// the caches being reusable. Timing results are byte-identical either way
/// (TimingGraph's incremental contract), which server_test verifies by
/// byte-comparing formatted reports against a cold re-run.
///
/// SessionManager is the server-side registry: bounded capacity with
/// least-recently-used eviction.

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "janus/flow/flow_engine.hpp"
#include "janus/place/net_bbox.hpp"
#include "janus/timing/timing_graph.hpp"

namespace janus::server {

/// One engineering change order edit against a session's netlist.
struct EcoEdit {
    enum class Kind {
        Resize,  ///< same function, different drive variant (in place)
        Swap,    ///< different cell, same arity + sequential-ness (in place)
        Rewire,  ///< reconnect one input pin to another net (structural)
    };
    Kind kind = Kind::Resize;
    std::string instance;  ///< target instance name
    std::string cell;      ///< new cell name (Resize / Swap)
    int pin = -1;          ///< input pin index (Rewire)
    std::string net;       ///< new driving net name (Rewire)
};

/// Result of one timing query or ECO application.
struct TimingOutcome {
    /// True when answered through the warm incremental path (resize +
    /// update); false when the graph had to be rebuilt and fully analyzed.
    bool incremental = false;
    std::size_t evals = 0;       ///< timing evaluations actually performed
    std::size_t full_evals = 0;  ///< cost of an equivalent full analysis
    double hpwl_um = 0.0;        ///< cached placement HPWL (0 pre-placement)
    TimingReport report;
    std::string report_text;     ///< format_timing_report(), the byte-compare key
};

/// One named, persistent design session.
class Session {
  public:
    /// Takes ownership of the design; `params` is validated by the
    /// FlowContext constructor (throws std::invalid_argument).
    Session(std::string name, Netlist design, TechnologyNode node,
            FlowParams params);

    const std::string& name() const { return name_; }
    /// Serializes concurrent server requests against this session.
    std::mutex& mutex() { return mu_; }

    const FlowContext& context() const { return ctx_; }
    const StageTrace& trace() const { return ctx_.trace; }
    const FlowResult& result() const { return ctx_.result; }

    /// Runs flow stages up to and including `stage` (resumable; no-op when
    /// already past it). Invalidate the warm caches: the stages rewrite the
    /// netlist wholesale.
    const FlowResult& run_to(const FlowEngine& engine, std::string_view stage);

    /// Full timing of the current netlist state; builds/reuses the warm
    /// graph. `sta_workers` 0 = session default.
    TimingOutcome timing();

    /// Validates every edit, then applies them atomically (all or nothing:
    /// a bad edit throws ProtocolError before anything is touched) and
    /// re-times — incrementally when every edit was in-place and the graph
    /// is warm, else via full rebuild.
    TimingOutcome apply_eco(const std::vector<EcoEdit>& edits);

    // --- observability ------------------------------------------------------
    std::size_t ecos_applied() const { return ecos_applied_; }
    std::size_t incremental_updates() const { return incremental_updates_; }
    std::size_t full_rebuilds() const { return full_rebuilds_; }

  private:
    StaOptions sta_options() const;
    TimingGraph& warm_graph(bool* rebuilt);
    void refresh_name_maps();
    double cached_hpwl();

    std::string name_;
    std::mutex mu_;
    FlowContext ctx_;

    // Warm caches (lazily built, epoch-checked).
    std::unique_ptr<TimingGraph> graph_;
    std::uint64_t graph_epoch_ = 0;
    std::unique_ptr<NetBBoxCache> bbox_;
    std::uint64_t bbox_epoch_ = 0;
    bool bbox_valid_ = false;

    // Name lookup (rebuilt when the netlist structure changes). Keys are
    // NameIds straight out of Instance::name / Net::name (net keys may be
    // kDerivedName-encoded): external strings are resolved once via
    // names().find() / net_name_id(), so the maps stay 8 bytes per entry
    // instead of owning a second copy of every design name.
    std::unordered_map<NameId, InstId> inst_by_name_;
    std::unordered_map<NameId, NetId> net_by_name_;
    std::uint64_t names_epoch_ = 0;
    bool names_valid_ = false;

    std::size_t ecos_applied_ = 0;
    std::size_t incremental_updates_ = 0;
    std::size_t full_rebuilds_ = 0;
};

/// Bounded registry of sessions with LRU eviction. Thread-safe; returned
/// shared_ptrs keep a session alive across its own eviction (an in-flight
/// request on an evicted session completes normally).
class SessionManager {
  public:
    explicit SessionManager(std::size_t capacity);

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const;

    /// Creates (or replaces) a session under `name`, evicting the least
    /// recently used session when at capacity. Returns the new session.
    std::shared_ptr<Session> create(std::string name, Netlist design,
                                    TechnologyNode node, FlowParams params);

    /// Looks up a session and marks it most recently used; nullptr when
    /// absent.
    std::shared_ptr<Session> find(std::string_view name);

    /// Removes a session by name; false when absent.
    bool evict(std::string_view name);

    /// Session names, most recently used first.
    std::vector<std::string> names() const;

    std::size_t evictions() const;

  private:
    void touch_locked(const std::string& name);

    const std::size_t capacity_;
    mutable std::mutex mu_;
    /// LRU order, most recent first; the map points into this list.
    std::list<std::pair<std::string, std::shared_ptr<Session>>> lru_;
    std::unordered_map<std::string,
                       std::list<std::pair<std::string,
                                           std::shared_ptr<Session>>>::iterator>
        index_;
    std::size_t evictions_ = 0;
};

}  // namespace janus::server
