#pragma once
/// \file scheduler.hpp
/// Admission and scheduling layer for flow execution: the job/parallelism
/// API `FlowEngine::run_batch()` is now a thin wrapper over. A
/// FlowScheduler multiplexes concurrently submitted jobs onto ONE shared
/// util/thread_pool under a two-level priority policy — ECO / interactive
/// work (JobPriority::Eco) is always admitted ahead of queued full flows
/// (JobPriority::Batch), FIFO within a level — which is what lets the flow
/// server (flow_server.hpp) answer incremental timing queries with low
/// latency while multi-minute batch flows are in flight.
///
/// Execution is exception-safe by construction: a job that throws (bad
/// FlowParams, a failing stage) completes as a *failed* JobHandle whose
/// FlowResult carries the exception text in `error` — sibling jobs and the
/// pool itself are never poisoned, and the scheduler drains cleanly.
///
/// Determinism: jobs share no mutable state (each owns its netlist copy
/// and seeds its own RNG streams), so results are byte-identical for any
/// worker count and any admission order — priority changes *when* a job
/// runs, never *what* it computes.

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "janus/flow/flow_engine.hpp"
#include "janus/flow/report.hpp"

namespace janus {

/// Admission class of one scheduled unit of work. Higher runs sooner.
enum class JobPriority : int {
    Batch = 0,  ///< full flows, batch sweeps (default)
    Eco = 1,    ///< incremental ECO / interactive queries: jump the queue
};

/// Scheduler-wide counters (monotonic over the scheduler's lifetime).
struct SchedulerStats {
    std::size_t submitted = 0;      ///< total jobs accepted
    std::size_t completed = 0;      ///< finished, including failures
    std::size_t failed = 0;         ///< completed with a populated error
    std::size_t eco_submitted = 0;  ///< jobs admitted at JobPriority::Eco
    /// Jobs that were admitted ahead of at least one earlier-submitted
    /// batch job still waiting (the priority policy doing work).
    std::size_t eco_preempts = 0;
};

/// Handle to one submitted job: wait()/done() plus access to the result
/// and the per-run stage trace. Cheap to copy (shared state); a default-
/// constructed handle is invalid. Handles outlive the scheduler safely —
/// the scheduler's destructor waits for every submitted job first.
class JobHandle {
  public:
    JobHandle() = default;

    bool valid() const { return state_ != nullptr; }
    /// True once the job has finished (successfully or not). Non-blocking.
    bool done() const;
    /// Blocks until the job finishes and returns its result. A failed job
    /// (an exception escaped the flow) reports through FlowResult::error —
    /// wait() itself never throws. Requires valid().
    const FlowResult& wait();
    /// Blocks like wait() and returns the per-run stage trace (empty for
    /// generic submit_fn work and for jobs that failed before running).
    const StageTrace& trace();

  private:
    friend class FlowScheduler;
    struct State;
    std::shared_ptr<State> state_;
};

/// The admission/scheduling layer. Owns the shared thread pool; the engine
/// reference must outlive the scheduler.
class FlowScheduler {
  public:
    /// Spawns a pool of `workers` threads (clamped to >= 1).
    FlowScheduler(const FlowEngine& engine, int workers);
    /// Waits for every submitted job, then joins the pool.
    ~FlowScheduler();

    FlowScheduler(const FlowScheduler&) = delete;
    FlowScheduler& operator=(const FlowScheduler&) = delete;

    std::size_t workers() const;

    /// Admits one flow job. The job's netlist is copied in (the caller's
    /// object is untouched); the full pipeline runs when a pool worker
    /// picks the job, and the implemented netlist lands in
    /// FlowResult::mapped without an extra copy.
    JobHandle submit(FlowJob job, JobPriority priority = JobPriority::Batch);

    /// Admits a generic unit of work under the same priority queue — the
    /// flow server uses this to schedule ECO/timing queries ahead of
    /// pending full flows. The returned handle's FlowResult is empty except
    /// for `error` when `work` threw.
    JobHandle submit_fn(std::function<void()> work, JobPriority priority);

    /// Blocks until every job submitted so far has completed.
    void wait_all();

    SchedulerStats stats() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

}  // namespace janus
