#include "janus/server/flow_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "janus/flow/report.hpp"
#include "janus/netlist/io.hpp"

namespace janus::server {
namespace {

[[noreturn]] void sys_fail(const char* what) {
    throw std::runtime_error(std::string(what) + ": " +
                             std::strerror(errno));
}

bool send_all(int fd, const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
        if (n <= 0) return false;
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/// Maps the wire "params" object onto FlowParams. Strict: an unknown key is
/// a protocol error (catches client typos instead of silently ignoring a
/// misspelled knob).
FlowParams parse_params(const JsonValue* params) {
    FlowParams p;
    if (!params) return p;
    if (!params->is_object()) throw ProtocolError("params must be an object");
    for (const auto& [key, value] : params->members()) {
        if (key == "workers") {
            p.parallel.workers = static_cast<int>(value.as_int());
        } else if (key == "parallel") {
            if (!value.is_object()) {
                throw ProtocolError("params.parallel must be an object");
            }
            for (const auto& [pk, pv] : value.members()) {
                const int v = static_cast<int>(pv.as_int());
                if (pk == "workers") p.parallel.workers = v;
                else if (pk == "optimize") p.parallel.optimize = v;
                else if (pk == "place") p.parallel.place = v;
                else if (pk == "route") p.parallel.route = v;
                else if (pk == "sta") p.parallel.sta = v;
                else throw ProtocolError("unknown params.parallel key \"" + pk + "\"");
            }
        } else if (key == "optimize_rounds") {
            p.optimize_rounds = static_cast<int>(value.as_int());
        } else if (key == "utilization") {
            p.utilization = value.as_real();
        } else if (key == "placer_iterations") {
            p.placer_iterations = static_cast<int>(value.as_int());
        } else if (key == "sa_moves_per_cell") {
            p.sa_moves_per_cell = static_cast<int>(value.as_int());
        } else if (key == "router_iterations") {
            p.router_iterations = static_cast<int>(value.as_int());
        } else if (key == "routing_layers") {
            p.routing_layers = static_cast<int>(value.as_int());
        } else if (key == "scan_chains") {
            p.scan_chains = static_cast<int>(value.as_int());
        } else if (key == "seed") {
            p.seed = static_cast<std::uint64_t>(value.as_int());
        } else if (key == "stages") {
            FlowStageMask mask = FlowStageMask::None;
            for (const JsonValue& s : value.items()) {
                const std::string& stage = s.as_string();
                if (stage == "scan") mask = mask | FlowStageMask::Scan;
                else if (stage == "clock_tree") mask = mask | FlowStageMask::ClockTree;
                else if (stage == "sizing") mask = mask | FlowStageMask::Sizing;
                else throw ProtocolError("unknown stage flag \"" + stage + "\"");
            }
            p.stages = mask;
        } else {
            throw ProtocolError("unknown params key \"" + key + "\"");
        }
    }
    return p;
}

void add_qor(JsonValue& resp, const FlowResult& r) {
    resp.set("design", r.design);
    resp.set("instances", r.instances);
    resp.set("area_um2", r.area_um2);
    resp.set("hpwl_um", r.hpwl_um);
    resp.set("route_wirelength", r.route_wirelength);
    resp.set("critical_delay_ps", r.critical_delay_ps);
    resp.set("wns_ps", r.wns_ps);
    resp.set("total_power_mw", r.total_power_mw);
    resp.set("legal", r.legal);
    resp.set("runtime_ms", r.runtime_ms);
}

void add_timing(JsonValue& resp, const TimingOutcome& o) {
    resp.set("incremental", o.incremental);
    resp.set("evals", o.evals);
    resp.set("full_evals", o.full_evals);
    resp.set("hpwl_um", o.hpwl_um);
    resp.set("wns_ps", o.report.wns_ps);
    resp.set("tns_ps", o.report.tns_ps);
    resp.set("hold_wns_ps", o.report.hold_wns_ps);
    resp.set("critical_delay_ps", o.report.critical_delay_ps);
    resp.set("fmax_ghz", o.report.fmax_ghz);
    resp.set("report", o.report_text);
}

std::vector<EcoEdit> parse_edits(const JsonValue& req) {
    std::vector<EcoEdit> edits;
    for (const JsonValue& e : req.at("edits").items()) {
        if (!e.is_object()) throw ProtocolError("eco edit must be an object");
        EcoEdit edit;
        const std::string& kind = e.at("kind").as_string();
        if (kind == "resize") edit.kind = EcoEdit::Kind::Resize;
        else if (kind == "swap") edit.kind = EcoEdit::Kind::Swap;
        else if (kind == "rewire") edit.kind = EcoEdit::Kind::Rewire;
        else throw ProtocolError("unknown eco kind \"" + kind + "\"");
        edit.instance = e.at("instance").as_string();
        if (edit.kind == EcoEdit::Kind::Rewire) {
            edit.pin = static_cast<int>(e.at("pin").as_int());
            edit.net = e.at("net").as_string();
        } else {
            edit.cell = e.at("cell").as_string();
        }
        edits.push_back(std::move(edit));
    }
    return edits;
}

}  // namespace

// ------------------------------------------------------------- FlowServer

FlowServer::FlowServer(TechnologyNode node, FlowServerOptions opts)
    : node_(node),
      opts_(opts),
      lib_(std::make_shared<CellLibrary>(make_default_library(node))),
      scheduler_(engine_, opts.workers),
      sessions_(opts.max_sessions) {}

FlowServer::~FlowServer() { stop(); }

std::string FlowServer::handle_request(const std::string& line) {
    try {
        const JsonValue req = parse_json(line);
        if (!req.is_object()) {
            throw ProtocolError("request must be a JSON object");
        }
        return dispatch(req).dump();
    } catch (const std::exception& e) {
        return make_error_response(e.what()).dump();
    }
}

JsonValue FlowServer::scheduled(std::function<JsonValue()> fn,
                                JobPriority priority) {
    JsonValue out;
    JobHandle handle =
        scheduler_.submit_fn([&out, &fn] { out = fn(); }, priority);
    const FlowResult& r = handle.wait();
    if (r.failed()) throw std::runtime_error(r.error);
    return out;
}

std::shared_ptr<Session> FlowServer::require_session(const JsonValue& req) {
    const std::string& name = req.at("session").as_string();
    std::shared_ptr<Session> s = sessions_.find(name);
    if (!s) throw ProtocolError("unknown session \"" + name + "\"");
    return s;
}

JsonValue FlowServer::dispatch(const JsonValue& req) {
    const std::string& cmd = req.at("cmd").as_string();
    // Session-touching commands run as scheduler jobs so they share the
    // admission queue with batch flows: design submission and flow runs
    // queue at Batch, ECO/timing/trace queries jump ahead at Eco.
    if (cmd == "submit_design") {
        return scheduled([&] { return cmd_submit_design(req); },
                         JobPriority::Batch);
    }
    if (cmd == "run_to") {
        return scheduled([&] { return cmd_run_to(req); }, JobPriority::Batch);
    }
    if (cmd == "timing") {
        return scheduled([&] { return cmd_timing(req); }, JobPriority::Eco);
    }
    if (cmd == "eco") {
        return scheduled([&] { return cmd_eco(req); }, JobPriority::Eco);
    }
    if (cmd == "query_trace") {
        return scheduled([&] { return cmd_query_trace(req); },
                         JobPriority::Eco);
    }
    // Registry / liveness commands answer inline.
    if (cmd == "ping") {
        JsonValue resp = make_ok_response();
        resp.set("reply", "pong");
        return resp;
    }
    if (cmd == "list_sessions") return cmd_list_sessions();
    if (cmd == "evict") {
        JsonValue resp = make_ok_response();
        resp.set("evicted", sessions_.evict(req.at("session").as_string()));
        return resp;
    }
    if (cmd == "stats") return cmd_stats();
    throw ProtocolError("unknown cmd \"" + cmd + "\"");
}

JsonValue FlowServer::cmd_submit_design(const JsonValue& req) {
    const std::string& name = req.at("session").as_string();
    Netlist nl = netlist_from_string(req.at("netlist").as_string(), lib_);
    FlowParams params = parse_params(req.find("params"));
    std::shared_ptr<Session> s =
        sessions_.create(name, std::move(nl), node_, std::move(params));
    JsonValue resp = make_ok_response();
    resp.set("session", name);
    resp.set("design", s->context().netlist.name());
    resp.set("instances", s->context().netlist.num_instances());
    resp.set("nets", s->context().netlist.num_nets());
    resp.set("sessions", sessions_.size());
    return resp;
}

JsonValue FlowServer::cmd_run_to(const JsonValue& req) {
    std::shared_ptr<Session> s = require_session(req);
    const std::string& stage = req.at("stage").as_string();
    std::lock_guard<std::mutex> lock(s->mutex());
    const FlowResult& r = s->run_to(engine_, stage);
    if (r.failed()) throw std::runtime_error(r.error);
    JsonValue resp = make_ok_response();
    resp.set("session", s->name());
    resp.set("stage", stage);
    add_qor(resp, r);
    return resp;
}

JsonValue FlowServer::cmd_timing(const JsonValue& req) {
    std::shared_ptr<Session> s = require_session(req);
    std::lock_guard<std::mutex> lock(s->mutex());
    const TimingOutcome o = s->timing();
    JsonValue resp = make_ok_response();
    resp.set("session", s->name());
    add_timing(resp, o);
    return resp;
}

JsonValue FlowServer::cmd_eco(const JsonValue& req) {
    std::shared_ptr<Session> s = require_session(req);
    const std::vector<EcoEdit> edits = parse_edits(req);
    std::lock_guard<std::mutex> lock(s->mutex());
    const TimingOutcome o = s->apply_eco(edits);
    JsonValue resp = make_ok_response();
    resp.set("session", s->name());
    resp.set("edits", edits.size());
    add_timing(resp, o);
    return resp;
}

JsonValue FlowServer::cmd_query_trace(const JsonValue& req) {
    std::shared_ptr<Session> s = require_session(req);
    std::lock_guard<std::mutex> lock(s->mutex());
    JsonValue resp = make_ok_response();
    resp.set("session", s->name());
    // stage_trace_json emits the same deterministic JSON dialect the
    // protocol speaks, so the trace embeds as a structured value.
    resp.set("trace", parse_json(stage_trace_json(s->trace())));
    return resp;
}

JsonValue FlowServer::cmd_list_sessions() const {
    JsonValue resp = make_ok_response();
    JsonValue names = JsonValue::array();
    for (const std::string& n : sessions_.names()) names.push(n);
    resp.set("sessions", std::move(names));
    resp.set("capacity", sessions_.capacity());
    resp.set("evictions", sessions_.evictions());
    return resp;
}

JsonValue FlowServer::cmd_stats() const {
    const SchedulerStats st = scheduler_.stats();
    JsonValue resp = make_ok_response();
    resp.set("workers", scheduler_.workers());
    resp.set("submitted", st.submitted);
    resp.set("completed", st.completed);
    resp.set("failed", st.failed);
    resp.set("eco_submitted", st.eco_submitted);
    resp.set("eco_preempts", st.eco_preempts);
    resp.set("sessions", sessions_.size());
    return resp;
}

// ---------------------------------------------------------- socket layer

void FlowServer::start() {
    if (running_.load()) return;
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) sys_fail("socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(opts_.port);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        sys_fail("bind");
    }
    if (::listen(listen_fd_, 64) != 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        sys_fail("listen");
    }
    socklen_t len = sizeof addr;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    running_.store(true);
    accept_thread_ = std::thread(&FlowServer::accept_loop, this);
}

void FlowServer::accept_loop() {
    // Snapshot the fd: start() wrote it before spawning this thread, and
    // stop() resets the member while we may still be blocked in accept().
    const int listen_fd = listen_fd_;
    while (running_.load()) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (!running_.load()) break;
            continue;
        }
        // Reap finished connections so a long-lived server does not grow
        // one dead thread per past client.
        std::list<Conn> dead;
        {
            std::lock_guard<std::mutex> lock(conn_mu_);
            for (auto it = conns_.begin(); it != conns_.end();) {
                if (!it->open) {
                    dead.splice(dead.end(), conns_, it++);
                } else {
                    ++it;
                }
            }
        }
        for (Conn& c : dead) {
            if (c.th.joinable()) c.th.join();
        }
        std::lock_guard<std::mutex> lock(conn_mu_);
        conns_.emplace_back();
        Conn& c = conns_.back();  // list nodes are address-stable
        c.fd = fd;
        c.open = true;
        c.th = std::thread([this, conn = &c] {
            serve_connection(conn->fd);
            std::lock_guard<std::mutex> l(conn_mu_);
            ::close(conn->fd);
            conn->open = false;
        });
    }
}

void FlowServer::serve_connection(int fd) {
    std::string buf;
    char chunk[4096];
    while (true) {
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n <= 0) return;
        buf.append(chunk, static_cast<std::size_t>(n));
        std::size_t eol;
        while ((eol = buf.find('\n')) != std::string::npos) {
            std::string line = buf.substr(0, eol);
            buf.erase(0, eol + 1);
            if (!line.empty() && line.back() == '\r') line.pop_back();
            if (line.empty()) continue;
            std::string resp = handle_request(line);
            resp += '\n';
            if (!send_all(fd, resp)) return;
        }
    }
}

void FlowServer::stop() {
    running_.store(false);
    if (listen_fd_ >= 0) {
        // shutdown() wakes the blocked accept() (Linux); close() releases
        // the port.
        ::shutdown(listen_fd_, SHUT_RDWR);
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    if (accept_thread_.joinable()) accept_thread_.join();
    {
        std::lock_guard<std::mutex> lock(conn_mu_);
        for (Conn& c : conns_) {
            if (c.open) ::shutdown(c.fd, SHUT_RDWR);
        }
    }
    // The accept thread is gone, so the list structure is frozen;
    // connection threads only flip their own `open` flag.
    for (Conn& c : conns_) {
        if (c.th.joinable()) c.th.join();
    }
    conns_.clear();
    port_ = 0;
}

// ------------------------------------------------------------ JanusClient

JanusClient::JanusClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) sys_fail("socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
        const int saved = errno;
        ::close(fd_);
        fd_ = -1;
        errno = saved;
        sys_fail("connect");
    }
}

JanusClient::~JanusClient() {
    if (fd_ >= 0) ::close(fd_);
}

std::string JanusClient::request(const std::string& line) {
    std::string framed = line;
    framed += '\n';
    if (!send_all(fd_, framed)) sys_fail("send");
    while (true) {
        const std::size_t eol = buffer_.find('\n');
        if (eol != std::string::npos) {
            std::string resp = buffer_.substr(0, eol);
            buffer_.erase(0, eol + 1);
            return resp;
        }
        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n <= 0) {
            throw std::runtime_error("server closed the connection");
        }
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

}  // namespace janus::server
