#pragma once
/// \file protocol.hpp
/// Wire protocol of the JanusEDA flow server: line-delimited JSON. Every
/// request is one JSON object on one line (`\n`-terminated); every response
/// is one JSON object on one line with a `"status"` member that is `"ok"`
/// or `"error"` (plus `"error"` text in the latter case). docs/SERVER.md
/// documents the full request vocabulary.
///
/// This header is the dependency-free JSON layer underneath: a small value
/// type (JsonValue), a strict recursive-descent parser, and a deterministic
/// serializer (members keep insertion order; reals render via
/// std::to_chars shortest round-trip), so identical values always encode
/// to identical bytes — the property the server's byte-compare tests and
/// session replay rely on.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace janus::server {

/// Malformed wire data (bad JSON, wrong type, missing member). The server
/// maps it to a `"status":"error"` response instead of dropping the
/// connection.
struct ProtocolError : std::runtime_error {
    explicit ProtocolError(const std::string& what) : std::runtime_error(what) {}
};

/// One JSON value. Integral and real numbers are kept distinct so integers
/// round-trip exactly (instance counts, eval totals). Object members keep
/// insertion order, making serialization deterministic.
class JsonValue {
  public:
    enum class Kind { Null, Bool, Int, Real, String, Array, Object };

    JsonValue() = default;  ///< null
    JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
    JsonValue(std::int64_t v) : kind_(Kind::Int), int_(v) {}
    JsonValue(int v) : kind_(Kind::Int), int_(v) {}
    JsonValue(std::size_t v)
        : kind_(Kind::Int), int_(static_cast<std::int64_t>(v)) {}
    JsonValue(double v) : kind_(Kind::Real), real_(v) {}
    JsonValue(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
    JsonValue(const char* s) : kind_(Kind::String), string_(s) {}

    static JsonValue array() {
        JsonValue v;
        v.kind_ = Kind::Array;
        return v;
    }
    static JsonValue object() {
        JsonValue v;
        v.kind_ = Kind::Object;
        return v;
    }

    Kind kind() const { return kind_; }
    bool is_null() const { return kind_ == Kind::Null; }
    bool is_object() const { return kind_ == Kind::Object; }
    bool is_array() const { return kind_ == Kind::Array; }
    bool is_string() const { return kind_ == Kind::String; }
    bool is_number() const { return kind_ == Kind::Int || kind_ == Kind::Real; }

    /// Typed accessors; throw ProtocolError on kind mismatch (ints coerce
    /// to real, never the reverse).
    bool as_bool() const;
    std::int64_t as_int() const;
    double as_real() const;
    const std::string& as_string() const;
    const std::vector<JsonValue>& items() const;
    const std::vector<std::pair<std::string, JsonValue>>& members() const;

    /// Object lookup; nullptr when absent (or when not an object).
    const JsonValue* find(std::string_view key) const;
    /// Object lookup that throws ProtocolError naming the missing member.
    const JsonValue& at(std::string_view key) const;
    /// Convenience: member string/int/real with a fallback when absent.
    std::string get_string(std::string_view key, std::string fallback = "") const;
    std::int64_t get_int(std::string_view key, std::int64_t fallback = 0) const;
    double get_real(std::string_view key, double fallback = 0.0) const;

    /// Appends/sets (object members append; duplicate keys keep both, the
    /// first wins on lookup — the parser rejects duplicates anyway).
    JsonValue& set(std::string key, JsonValue value);
    JsonValue& push(JsonValue value);

    /// Compact deterministic serialization (no whitespace, member order =
    /// insertion order, shortest-round-trip reals).
    std::string dump() const;

  private:
    void dump_to(std::string& out) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double real_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses exactly one JSON value from `text` (trailing whitespace allowed,
/// trailing content is an error). Throws ProtocolError with a position on
/// malformed input. Nesting depth is capped so hostile input cannot blow
/// the stack.
JsonValue parse_json(std::string_view text);

/// Canonical response envelopes.
JsonValue make_ok_response();
JsonValue make_error_response(const std::string& message);

}  // namespace janus::server
