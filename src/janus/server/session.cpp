#include "janus/server/session.hpp"

#include <stdexcept>
#include <utility>

#include "janus/timing/delay_model.hpp"

namespace janus::server {

// ---------------------------------------------------------------- Session

Session::Session(std::string name, Netlist design, TechnologyNode node,
                 FlowParams params)
    : name_(std::move(name)),
      ctx_(std::move(design), node, std::move(params)) {}

StaOptions Session::sta_options() const {
    StaOptions opts;
    opts.wire = WireModel::for_node(ctx_.node);
    opts.sta_workers = ctx_.params.parallel.sta_workers();
    return opts;
}

const FlowResult& Session::run_to(const FlowEngine& engine,
                                  std::string_view stage) {
    engine.run_to(ctx_, stage);
    // The stages rewrite the netlist (mapping replaces it, placement moves
    // every cell, sizing retypes in place without an epoch bump), so every
    // warm cache is invalid regardless of what the epoch says.
    graph_.reset();
    bbox_valid_ = false;
    names_valid_ = false;
    return ctx_.result;
}

TimingGraph& Session::warm_graph(bool* rebuilt) {
    const std::uint64_t epoch = ctx_.netlist.mutation_epoch();
    if (!graph_ || graph_epoch_ != epoch) {
        graph_ = std::make_unique<TimingGraph>(ctx_.netlist, sta_options());
        graph_->analyze(ctx_.params.parallel.sta_workers());
        graph_epoch_ = epoch;
        ++full_rebuilds_;
        if (rebuilt) *rebuilt = true;
    }
    return *graph_;
}

double Session::cached_hpwl() {
    if (!ctx_.placed) return 0.0;
    const std::uint64_t epoch = ctx_.netlist.mutation_epoch();
    if (!bbox_valid_ || !bbox_ || bbox_epoch_ != epoch) {
        bbox_ = std::make_unique<NetBBoxCache>(ctx_.netlist, ctx_.area);
        bbox_epoch_ = epoch;
        bbox_valid_ = true;
    }
    // In-place ECOs (resize/swap) never move a pin, so the cached exact
    // boxes stay authoritative; the sum itself is one pass over net ids.
    return bbox_->total_hpwl_um();
}

void Session::refresh_name_maps() {
    const std::uint64_t epoch = ctx_.netlist.mutation_epoch();
    if (names_valid_ && names_epoch_ == epoch) return;
    inst_by_name_.clear();
    net_by_name_.clear();
    const auto& insts = ctx_.netlist.instances();
    inst_by_name_.reserve(insts.size());
    for (std::size_t i = 0; i < insts.size(); ++i) {
        inst_by_name_.emplace(insts[i].name, static_cast<InstId>(i));
    }
    const auto& nets = ctx_.netlist.nets();
    net_by_name_.reserve(nets.size());
    for (std::size_t n = 0; n < nets.size(); ++n) {
        net_by_name_.emplace(nets[n].name, static_cast<NetId>(n));
    }
    // insts[i].name / nets[n].name are already NameIds — no hashing of the
    // strings themselves happens here.
    names_epoch_ = epoch;
    names_valid_ = true;
}

TimingOutcome Session::timing() {
    bool rebuilt = false;
    TimingGraph& tg = warm_graph(&rebuilt);
    TimingOutcome out;
    const std::size_t comb = ctx_.netlist.topological_order().size();
    out.full_evals = 2 * comb;  // one forward + one backward sweep
    out.incremental = !rebuilt;
    out.evals = rebuilt ? out.full_evals : 0;
    out.hpwl_um = cached_hpwl();
    out.report = tg.report();
    out.report_text = format_timing_report(ctx_.netlist, out.report);
    return out;
}

namespace {

/// One validated edit, resolved to ids, ready to apply.
struct ResolvedEdit {
    EcoEdit::Kind kind;
    InstId inst = kNoInst;
    std::size_t new_type = 0;  // Resize / Swap
    int pin = -1;              // Rewire
    NetId net = kNoNet;        // Rewire
};

}  // namespace

TimingOutcome Session::apply_eco(const std::vector<EcoEdit>& edits) {
    if (edits.empty()) throw std::invalid_argument("eco: no edits given");
    refresh_name_maps();
    const Netlist& nl = ctx_.netlist;
    const CellLibrary& lib = nl.library();

    // Pass 1: validate everything before touching anything — a bad edit in
    // the middle of a list must not leave the session half-modified.
    std::vector<ResolvedEdit> resolved;
    resolved.reserve(edits.size());
    bool structural = false;
    for (const EcoEdit& e : edits) {
        ResolvedEdit r;
        r.kind = e.kind;
        const auto it = inst_by_name_.find(nl.names().find(e.instance));
        if (it == inst_by_name_.end()) {
            throw std::invalid_argument("eco: unknown instance \"" +
                                        e.instance + "\"");
        }
        r.inst = it->second;
        const CellType& old_cell = nl.type_of(r.inst);
        switch (e.kind) {
            case EcoEdit::Kind::Resize:
            case EcoEdit::Kind::Swap: {
                const auto cell = lib.find(e.cell);
                if (!cell) {
                    throw std::invalid_argument("eco: unknown cell \"" +
                                                e.cell + "\"");
                }
                r.new_type = *cell;
                const CellType& new_cell = lib.cell(r.new_type);
                if (e.kind == EcoEdit::Kind::Resize &&
                    new_cell.function != old_cell.function) {
                    throw std::invalid_argument(
                        "eco: resize of \"" + e.instance + "\" to " +
                        new_cell.name + " changes the logic function (use swap)");
                }
                if (function_arity(new_cell.function) !=
                    function_arity(old_cell.function)) {
                    throw std::invalid_argument(
                        "eco: swap of \"" + e.instance + "\" to " +
                        new_cell.name + " changes arity");
                }
                if (is_sequential(new_cell.function) !=
                    is_sequential(old_cell.function)) {
                    throw std::invalid_argument(
                        "eco: swap of \"" + e.instance + "\" to " +
                        new_cell.name + " changes sequential-ness");
                }
                break;
            }
            case EcoEdit::Kind::Rewire: {
                if (e.pin < 0 || e.pin >= function_arity(old_cell.function)) {
                    throw std::invalid_argument(
                        "eco: rewire pin " + std::to_string(e.pin) +
                        " out of range for \"" + e.instance + "\"");
                }
                const auto net_it = net_by_name_.find(nl.net_name_id(e.net));
                if (net_it == net_by_name_.end()) {
                    throw std::invalid_argument("eco: unknown net \"" + e.net +
                                                "\"");
                }
                r.pin = e.pin;
                r.net = net_it->second;
                structural = true;
                break;
            }
        }
        resolved.push_back(r);
    }

    // Warm the graph *before* mutating so in-place edits can be reported
    // through resize() — pointless when a structural edit forces a rebuild
    // anyway.
    if (!structural) warm_graph(nullptr);

    // Pass 2: apply.
    for (const ResolvedEdit& r : resolved) {
        switch (r.kind) {
            case EcoEdit::Kind::Resize:
            case EcoEdit::Kind::Swap:
                ctx_.netlist.instance(r.inst).type = r.new_type;
                if (!structural) graph_->resize(r.inst);
                break;
            case EcoEdit::Kind::Rewire:
                ctx_.netlist.connect_input(r.inst, r.pin, r.net);
                break;
        }
    }
    ++ecos_applied_;

    TimingOutcome out;
    const std::size_t comb = ctx_.netlist.topological_order().size();
    out.full_evals = 2 * comb;
    if (structural) {
        // The epoch moved: the warm graph is stale by contract. Full
        // fallback — rebuild and analyze from scratch.
        bool rebuilt = false;
        warm_graph(&rebuilt);
        out.incremental = false;
        out.evals = out.full_evals;
    } else {
        const TimingUpdateStats stats = graph_->update();
        out.incremental = true;
        out.evals = stats.instances_reevaluated();
        ++incremental_updates_;
    }
    out.hpwl_um = cached_hpwl();
    out.report = graph_->report();
    out.report_text = format_timing_report(ctx_.netlist, out.report);
    return out;
}

// --------------------------------------------------------- SessionManager

SessionManager::SessionManager(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::size_t SessionManager::size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lru_.size();
}

void SessionManager::touch_locked(const std::string& name) {
    const auto it = index_.find(name);
    if (it == index_.end()) return;
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second = lru_.begin();
}

std::shared_ptr<Session> SessionManager::create(std::string name,
                                                Netlist design,
                                                TechnologyNode node,
                                                FlowParams params) {
    // Construct outside the lock: FlowContext validation and the netlist
    // copy are not cheap, and the constructor may throw.
    auto session = std::make_shared<Session>(name, std::move(design), node,
                                             std::move(params));
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(name);
    if (it != index_.end()) {
        // Replace in place, keeping LRU position fresh.
        it->second->second = session;
        lru_.splice(lru_.begin(), lru_, it->second);
        it->second = lru_.begin();
        return session;
    }
    if (lru_.size() >= capacity_) {
        // Evict the least recently used session. In-flight requests that
        // already hold a shared_ptr finish normally.
        index_.erase(lru_.back().first);
        lru_.pop_back();
        ++evictions_;
    }
    lru_.emplace_front(name, session);
    index_.emplace(std::move(name), lru_.begin());
    return session;
}

std::shared_ptr<Session> SessionManager::find(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(std::string(name));
    if (it == index_.end()) return nullptr;
    std::shared_ptr<Session> s = it->second->second;
    touch_locked(it->first);
    return s;
}

bool SessionManager::evict(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(std::string(name));
    if (it == index_.end()) return false;
    lru_.erase(it->second);
    index_.erase(it);
    return true;
}

std::vector<std::string> SessionManager::names() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(lru_.size());
    for (const auto& [name, session] : lru_) out.push_back(name);
    return out;
}

std::size_t SessionManager::evictions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
}

}  // namespace janus::server
