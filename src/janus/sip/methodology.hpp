#pragma once
/// \file methodology.hpp
/// Design-methodology cost model: "expert" smart-system design (separate
/// tools, manual hand-off between domains, specialist teams) versus a
/// "mainstream" automated integrated methodology. Quantifies Macii's
/// claim that automation cuts design cost and time-to-market (E11).

namespace janus {

struct MethodologyParams {
    int num_domains = 4;            ///< sensing, RF, compute, power
    double domain_design_weeks = 8; ///< per-domain design effort
    double handoff_weeks = 3;       ///< manual transfer between domain tools
    double integration_iterations_expert = 4;  ///< respins until domains agree
    double integration_iterations_automated = 1.2;
    double engineer_cost_per_week_usd = 4000;
    /// Fraction of per-domain effort an integrated flow automates away.
    double automation_factor = 0.45;
};

struct MethodologyCost {
    double design_weeks = 0;
    double design_cost_usd = 0;
    double time_to_market_weeks = 0;
};

/// Expert methodology: serial domain design + manual hand-offs, repeated
/// over the integration iterations.
MethodologyCost expert_methodology(const MethodologyParams& p = {});

/// Automated co-design methodology: parallel domain design inside one
/// framework, automated hand-off, fewer iterations.
MethodologyCost automated_methodology(const MethodologyParams& p = {});

}  // namespace janus
