#include "janus/sip/node_economics.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "janus/util/rng.hpp"

namespace janus {
namespace {

/// Defect density (defects/cm^2): mature nodes are well seasoned, leading
/// edge nodes are still on the early ramp (2016 vintage).
double defect_density(const TechnologyNode& n) {
    if (n.feature_nm >= 40) return 0.08;
    if (n.feature_nm >= 28) return 0.12;
    if (n.feature_nm >= 20) return 0.25;
    if (n.feature_nm >= 14) return 0.35;
    if (n.feature_nm >= 10) return 0.45;
    return 0.60;
}

/// Achievable clock at a node: ~30 FO4 per cycle.
double node_fmax_ghz(const TechnologyNode& n) {
    return 1000.0 / (30.0 * n.gate_delay_ps);
}

constexpr double kMaxDieMm2 = 600.0;
constexpr double kWaferAreaMm2 = 70685.0 * 0.9;  // 300 mm, edge loss

}  // namespace

std::vector<NodeCost> evaluate_nodes(const DesignScenario& scenario) {
    std::vector<NodeCost> out;
    for (const TechnologyNode& n : standard_nodes()) {
        NodeCost c;
        c.node = n.name;
        c.die_area_mm2 = scenario.transistors_m / n.transistors_per_mm2_m * 1.25;
        if (c.die_area_mm2 > kMaxDieMm2) {
            c.feasible = false;
            c.infeasible_reason = "die too large";
        }
        if (node_fmax_ghz(n) < scenario.performance_need_ghz) {
            c.feasible = false;
            c.infeasible_reason = "performance";
        }
        // Dynamic power at the needed clock (10% activity, all transistors
        // contributing 1/4 of a gate cap each).
        const double gates = scenario.transistors_m * 1e6 / 4.0;
        const double power_mw = 0.1 * gates * (n.gate_cap_ff * 0.25e-15) *
                                n.vdd * n.vdd * scenario.performance_need_ghz *
                                1e9 * 1e3;
        if (power_mw > scenario.power_budget_mw * 10) {
            c.feasible = false;
            c.infeasible_reason = "power";
        }
        c.yield = std::exp(-defect_density(n) * c.die_area_mm2 / 100.0);
        const double dies_per_wafer = kWaferAreaMm2 / std::max(1.0, c.die_area_mm2);
        c.unit_cost_usd = n.wafer_cost_usd / (dies_per_wafer * std::max(1e-6, c.yield));
        c.nre_per_unit_usd = (n.nre_musd + n.mask_set_cost_musd) * 1e6 /
                             std::max(1.0, scenario.production_volume);
        c.total_per_unit_usd = c.unit_cost_usd + c.nre_per_unit_usd;
        out.push_back(std::move(c));
    }
    return out;
}

NodeCost best_node(const DesignScenario& scenario) {
    const auto all = evaluate_nodes(scenario);
    const NodeCost* best = nullptr;
    for (const NodeCost& c : all) {
        if (!c.feasible) continue;
        if (!best || c.total_per_unit_usd < best->total_per_unit_usd) best = &c;
    }
    if (!best) {
        NodeCost none;
        none.feasible = false;
        none.infeasible_reason = "no feasible node";
        return none;
    }
    return *best;
}

std::vector<DesignStartShare> design_start_distribution(std::size_t num_designs,
                                                        std::uint64_t seed) {
    Rng rng(seed);
    std::map<std::string, std::size_t> tally;
    std::size_t decided = 0;
    for (std::size_t i = 0; i < num_designs; ++i) {
        DesignScenario s;
        // Industry mix, 2016 vintage: most starts are small A&M/S or MCU
        // class designs with modest volume; a thin tail of huge designs.
        const double u = rng.next_double();
        if (u < 0.55) {
            // Small designs: sub-5M transistors, low performance.
            s.transistors_m = 0.3 + 5.0 * rng.next_double();
            s.production_volume = std::pow(10.0, 4.0 + 2.5 * rng.next_double());
            s.performance_need_ghz = 0.05 + 0.2 * rng.next_double();
        } else if (u < 0.93) {
            // Mid designs.
            s.transistors_m = 5.0 + 120.0 * rng.next_double();
            s.production_volume = std::pow(10.0, 5.0 + 2.0 * rng.next_double());
            s.performance_need_ghz = 0.2 + 0.6 * rng.next_double();
        } else {
            // Large mobile/CPU/networking class.
            s.transistors_m = 300.0 + 3000.0 * rng.next_double();
            s.production_volume = std::pow(10.0, 6.0 + 2.0 * rng.next_double());
            s.performance_need_ghz = 1.0 + 1.5 * rng.next_double();
        }
        const NodeCost c = best_node(s);
        if (!c.feasible) continue;
        ++tally[c.node];
        ++decided;
    }
    std::vector<DesignStartShare> out;
    for (const TechnologyNode& n : standard_nodes()) {
        DesignStartShare sh;
        sh.node = n.name;
        sh.share = decided ? static_cast<double>(tally[n.name]) /
                                 static_cast<double>(decided)
                           : 0.0;
        out.push_back(std::move(sh));
    }
    return out;
}

}  // namespace janus
