#pragma once
/// \file dse.hpp
/// Design-space exploration for smart systems: exhaustive/holistic
/// co-design sweep vs the "separate per-domain ad-hoc" methodology the
/// panel says smart-system design must move away from (E11).

#include <vector>

#include "janus/sip/components.hpp"
#include "janus/sip/package_model.hpp"

namespace janus {

/// One explored point.
struct DsePoint {
    SmartSystem system;
    IntegrationStyle style = IntegrationStyle::DiscretePcb;
    SystemMetrics metrics;
    IntegrationResult integration;
    /// Composite objectives used for Pareto ranking (lower is better).
    double objective_cost() const { return integration.total_cost_usd; }
    double objective_volume() const { return integration.volume_mm3; }
    /// Negated so "lower is better" across all objectives.
    double objective_lifetime() const { return -metrics.lifetime_days; }
};

struct DseResult {
    std::vector<DsePoint> feasible;  ///< meets mission + integration feasible
    std::vector<DsePoint> pareto;    ///< non-dominated subset of `feasible`
    std::size_t evaluated = 0;
};

/// Holistic co-design: enumerates every component combination and every
/// integration style against the mission, returning the Pareto front over
/// (cost, volume, -lifetime).
DseResult holistic_dse(const MissionProfile& mission,
                       const IntegrationOptions& iopts = {});

/// Ad-hoc per-domain methodology: each domain expert picks their
/// component independently (cheapest part meeting the local spec), then
/// the integration style is chosen last. Returns the single resulting
/// point (which may fail the mission).
DsePoint adhoc_design(const MissionProfile& mission,
                      const IntegrationOptions& iopts = {});

/// True if a dominates b on (cost, volume, -lifetime).
bool dominates(const DsePoint& a, const DsePoint& b);

}  // namespace janus
