#include "janus/sip/package_model.hpp"

#include <algorithm>
#include <vector>

namespace janus {
namespace {

bool absorbable_into_soc(const Component& c) {
    // Only plain-CMOS digital/RF parts can merge into one die.
    return c.technology.rfind("CMOS", 0) == 0;
}

}  // namespace

IntegrationResult integrate(const SmartSystem& sys, IntegrationStyle style,
                            const IntegrationOptions& opts) {
    IntegrationResult res;
    res.style = style;
    const auto& cat = component_catalog();
    std::vector<const Component*> parts;
    for (const int idx : {sys.sensor, sys.radio, sys.mcu, sys.storage, sys.power,
                          sys.harvester}) {
        if (idx >= 0 && idx < static_cast<int>(cat.size())) {
            parts.push_back(&cat[static_cast<std::size_t>(idx)]);
        }
    }
    double bom = 0, volume = 0;
    int dies = 0;
    for (const Component* c : parts) {
        bom += c->cost_usd;
        volume += c->volume_mm3;
        if (c->kind != ComponentKind::PowerSource &&
            c->kind != ComponentKind::Harvester) {
            ++dies;
        }
    }

    switch (style) {
        case IntegrationStyle::DiscretePcb:
            // Board, passives, connectors; no shrink; board-level signaling.
            res.assembly_cost_usd = 0.50 + 0.08 * static_cast<double>(parts.size());
            res.volume_mm3 = volume * 1.8;  // board + clearances
            res.interconnect_power_uw = 6.0 * dies;
            res.yield = 0.995;
            res.total_cost_usd = bom + res.assembly_cost_usd;
            break;
        case IntegrationStyle::SiP: {
            // Die stacking / substrate: higher assembly cost, strong volume
            // shrink, short interconnect. Works across technologies.
            res.assembly_cost_usd = 0.90 + 0.15 * dies;
            double die_volume = 0, battery_volume = 0;
            for (const Component* c : parts) {
                if (c->kind == ComponentKind::PowerSource ||
                    c->kind == ComponentKind::Harvester) {
                    battery_volume += c->volume_mm3;
                } else {
                    die_volume += c->volume_mm3;
                }
            }
            res.volume_mm3 = die_volume * 0.45 + battery_volume;
            res.interconnect_power_uw = 1.5 * dies;
            res.yield = std::max(0.5, 1.0 - 0.01 * dies);  // known-good-die risk
            res.total_cost_usd = bom + res.assembly_cost_usd;
            res.total_cost_usd /= res.yield;
            break;
        }
        case IntegrationStyle::MonolithicSoC: {
            for (const Component* c : parts) {
                if (c->kind == ComponentKind::PowerSource ||
                    c->kind == ComponentKind::Harvester) {
                    continue;  // stays external in every style
                }
                if (!absorbable_into_soc(*c)) {
                    res.feasible = false;
                    res.infeasible_reason =
                        c->name + " (" + c->technology + ") cannot merge into one die";
                }
            }
            if (!res.feasible) return res;
            res.assembly_cost_usd = 0.30;
            res.volume_mm3 = volume * 0.35;
            res.interconnect_power_uw = 0.2 * dies;
            res.yield = 0.98;
            res.total_cost_usd = bom * 0.7 + res.assembly_cost_usd +
                                 opts.soc_nre_usd / std::max(1.0, opts.production_volume);
            res.total_cost_usd /= res.yield;
            break;
        }
    }
    return res;
}

}  // namespace janus
