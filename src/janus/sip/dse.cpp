#include "janus/sip/dse.hpp"

#include <algorithm>
#include <limits>

namespace janus {
namespace {

std::vector<int> indices_of(ComponentKind kind) {
    std::vector<int> out;
    const auto& cat = component_catalog();
    for (std::size_t i = 0; i < cat.size(); ++i) {
        if (cat[i].kind == kind) out.push_back(static_cast<int>(i));
    }
    return out;
}

}  // namespace

bool dominates(const DsePoint& a, const DsePoint& b) {
    const bool le = a.objective_cost() <= b.objective_cost() &&
                    a.objective_volume() <= b.objective_volume() &&
                    a.objective_lifetime() <= b.objective_lifetime();
    const bool lt = a.objective_cost() < b.objective_cost() ||
                    a.objective_volume() < b.objective_volume() ||
                    a.objective_lifetime() < b.objective_lifetime();
    return le && lt;
}

DseResult holistic_dse(const MissionProfile& mission,
                       const IntegrationOptions& iopts) {
    DseResult res;
    const auto sensors = indices_of(ComponentKind::Sensor);
    const auto radios = indices_of(ComponentKind::Radio);
    const auto mcus = indices_of(ComponentKind::Mcu);
    const auto storages = indices_of(ComponentKind::Storage);
    const auto powers = indices_of(ComponentKind::PowerSource);
    auto harvesters = indices_of(ComponentKind::Harvester);
    harvesters.push_back(-1);  // "no harvester" option
    auto storages_opt = storages;
    storages_opt.push_back(-1);

    static const IntegrationStyle styles[] = {
        IntegrationStyle::DiscretePcb, IntegrationStyle::SiP,
        IntegrationStyle::MonolithicSoC};

    for (const int se : sensors) {
        for (const int ra : radios) {
            for (const int mc : mcus) {
                for (const int st : storages_opt) {
                    for (const int pw : powers) {
                        for (const int hv : harvesters) {
                            SmartSystem sys{se, ra, mc, st, pw, hv};
                            const SystemMetrics m = evaluate_system(sys, mission);
                            for (const IntegrationStyle style : styles) {
                                ++res.evaluated;
                                if (!m.meets_requirements) continue;
                                const IntegrationResult ir =
                                    integrate(sys, style, iopts);
                                if (!ir.feasible) continue;
                                // Integration can break volume/cost limits.
                                if (ir.volume_mm3 > mission.max_volume_mm3 ||
                                    ir.total_cost_usd > mission.max_cost_usd) {
                                    continue;
                                }
                                DsePoint pt;
                                pt.system = sys;
                                pt.style = style;
                                pt.metrics = m;
                                pt.integration = ir;
                                res.feasible.push_back(std::move(pt));
                            }
                        }
                    }
                }
            }
        }
    }

    // Pareto extraction.
    for (const DsePoint& p : res.feasible) {
        bool dominated = false;
        for (const DsePoint& q : res.feasible) {
            if (dominates(q, p)) {
                dominated = true;
                break;
            }
        }
        if (!dominated) res.pareto.push_back(p);
    }
    return res;
}

DsePoint adhoc_design(const MissionProfile& mission,
                      const IntegrationOptions& iopts) {
    // Each "domain team" optimizes locally without seeing the others:
    // sensing picks the cheapest sensor; RF picks the cheapest radio with
    // enough range; compute picks the cheapest MCU; power picks the
    // cheapest battery. Nobody owns lifetime or volume.
    const auto& cat = component_catalog();
    const auto cheapest = [&](ComponentKind kind, auto&& ok) {
        int best = -1;
        for (std::size_t i = 0; i < cat.size(); ++i) {
            if (cat[i].kind != kind || !ok(cat[i])) continue;
            if (best < 0 || cat[i].cost_usd < cat[static_cast<std::size_t>(best)].cost_usd) {
                best = static_cast<int>(i);
            }
        }
        return best;
    };
    SmartSystem sys;
    sys.sensor = cheapest(ComponentKind::Sensor, [](const Component&) { return true; });
    sys.radio = cheapest(ComponentKind::Radio, [&](const Component& c) {
        return c.radio_range_m >= mission.required_range_m;
    });
    sys.mcu = cheapest(ComponentKind::Mcu, [](const Component&) { return true; });
    sys.storage = -1;
    sys.power = cheapest(ComponentKind::PowerSource, [](const Component&) { return true; });
    sys.harvester = -1;

    DsePoint pt;
    pt.system = sys;
    pt.metrics = evaluate_system(sys, mission);
    // Integration chosen last, as the panel laments: default to PCB.
    pt.style = IntegrationStyle::DiscretePcb;
    pt.integration = integrate(sys, pt.style, iopts);
    return pt;
}

}  // namespace janus
