#include "janus/sip/components.hpp"

#include <algorithm>
#include <cmath>

namespace janus {

const std::vector<Component>& component_catalog() {
    static const std::vector<Component> catalog = [] {
        std::vector<Component> c;
        const auto add = [&](Component comp) { c.push_back(std::move(comp)); };
        // Sensors.
        add({.name = "temp_basic", .kind = ComponentKind::Sensor, .cost_usd = 0.3,
             .active_mw = 0.5, .sleep_uw = 0.1, .volume_mm3 = 4,
             .technology = "CMOS 180nm", .sample_energy_uj = 2});
        add({.name = "imu_6axis", .kind = ComponentKind::Sensor, .cost_usd = 1.8,
             .active_mw = 4.0, .sleep_uw = 3.0, .volume_mm3 = 9,
             .technology = "MEMS", .sample_energy_uj = 40});
        add({.name = "env_combo", .kind = ComponentKind::Sensor, .cost_usd = 2.9,
             .active_mw = 1.2, .sleep_uw = 0.5, .volume_mm3 = 12,
             .technology = "MEMS+CMOS SiP", .sample_energy_uj = 12});
        // Radios.
        add({.name = "ble_soc", .kind = ComponentKind::Radio, .cost_usd = 1.2,
             .active_mw = 18, .sleep_uw = 1.5, .volume_mm3 = 20,
             .technology = "CMOS 40nm", .data_rate_kbps = 1000, .radio_range_m = 50});
        add({.name = "lora_mod", .kind = ComponentKind::Radio, .cost_usd = 3.5,
             .active_mw = 120, .sleep_uw = 1.0, .volume_mm3 = 60,
             .technology = "CMOS 90nm + SAW", .data_rate_kbps = 5,
             .radio_range_m = 5000});
        add({.name = "wifi_mod", .kind = ComponentKind::Radio, .cost_usd = 2.2,
             .active_mw = 450, .sleep_uw = 15, .volume_mm3 = 40,
             .technology = "CMOS 28nm", .data_rate_kbps = 20000, .radio_range_m = 80});
        add({.name = "nbiot_mod", .kind = ComponentKind::Radio, .cost_usd = 5.5,
             .active_mw = 220, .sleep_uw = 3, .volume_mm3 = 70,
             .technology = "CMOS 28nm RF", .data_rate_kbps = 60,
             .radio_range_m = 10000});
        // MCUs.
        add({.name = "m0_tiny", .kind = ComponentKind::Mcu, .cost_usd = 0.5,
             .active_mw = 3, .sleep_uw = 0.5, .volume_mm3 = 9,
             .technology = "CMOS 90nm", .compute_mips = 20});
        add({.name = "m4_mid", .kind = ComponentKind::Mcu, .cost_usd = 1.6,
             .active_mw = 12, .sleep_uw = 1.2, .volume_mm3 = 16,
             .technology = "CMOS 40nm", .compute_mips = 120});
        add({.name = "m7_fast", .kind = ComponentKind::Mcu, .cost_usd = 4.8,
             .active_mw = 60, .sleep_uw = 8, .volume_mm3 = 25,
             .technology = "CMOS 28nm", .compute_mips = 600});
        // Storage.
        add({.name = "eeprom_small", .kind = ComponentKind::Storage, .cost_usd = 0.2,
             .active_mw = 2, .sleep_uw = 0.1, .volume_mm3 = 4,
             .technology = "CMOS 180nm"});
        add({.name = "nor_flash", .kind = ComponentKind::Storage, .cost_usd = 0.8,
             .active_mw = 15, .sleep_uw = 0.5, .volume_mm3 = 10,
             .technology = "CMOS 65nm"});
        // Power sources.
        add({.name = "coin_cr2032", .kind = ComponentKind::PowerSource,
             .cost_usd = 0.4, .volume_mm3 = 1000, .technology = "LiMnO2",
             .capacity_mah = 225});
        add({.name = "aa_lithium", .kind = ComponentKind::PowerSource,
             .cost_usd = 1.5, .volume_mm3 = 8000, .technology = "LiFeS2",
             .capacity_mah = 3000});
        add({.name = "lipo_small", .kind = ComponentKind::PowerSource,
             .cost_usd = 2.5, .volume_mm3 = 2400, .technology = "LiPo",
             .capacity_mah = 500});
        // Harvesters.
        add({.name = "solar_small", .kind = ComponentKind::Harvester,
             .cost_usd = 1.2, .volume_mm3 = 300, .technology = "a-Si PV",
             .harvest_uw = 80});
        add({.name = "thermo_teg", .kind = ComponentKind::Harvester,
             .cost_usd = 3.8, .volume_mm3 = 500, .technology = "BiTe TEG",
             .harvest_uw = 30});
        return c;
    }();
    return catalog;
}

SystemMetrics evaluate_system(const SmartSystem& sys, const MissionProfile& mission) {
    SystemMetrics m;
    const auto& cat = component_catalog();
    const auto part = [&](int idx) -> const Component* {
        return (idx >= 0 && idx < static_cast<int>(cat.size())) ? &cat[static_cast<std::size_t>(idx)] : nullptr;
    };
    const Component* sensor = part(sys.sensor);
    const Component* radio = part(sys.radio);
    const Component* mcu = part(sys.mcu);
    const Component* storage = part(sys.storage);
    const Component* power = part(sys.power);
    const Component* harvester = part(sys.harvester);
    if (!sensor || !radio || !mcu || !power) {
        m.failure_reason = "incomplete system";
        return m;
    }

    for (const Component* c : {sensor, radio, mcu, storage, power, harvester}) {
        if (!c) continue;
        m.cost_usd += c->cost_usd;
        m.volume_mm3 += c->volume_mm3;
    }
    // SiP assembly overhead is modeled in package_model.hpp; here the raw BOM.

    // Average power (uW): sleep floors + sensing + compute + reporting.
    double avg_uw = sensor->sleep_uw + radio->sleep_uw + mcu->sleep_uw +
                    (storage ? storage->sleep_uw : 0.0);
    // Sensing energy per interval.
    avg_uw += sensor->sample_energy_uj / mission.sample_interval_s;
    // MCU processes each sample: assume 1 ms active per sample.
    avg_uw += mcu->active_mw * 1e3 * (1e-3 / mission.sample_interval_s);
    // Reporting: bytes accumulated per report / data rate = airtime.
    const double samples_per_report =
        mission.report_interval_s / mission.sample_interval_s;
    const double report_bits = samples_per_report * mission.sample_bytes * 8.0;
    const double airtime_s =
        report_bits / std::max(1.0, radio->data_rate_kbps * 1e3);
    avg_uw += radio->active_mw * 1e3 * (airtime_s / mission.report_interval_s);
    // Harvesting offsets demand (cannot go negative).
    if (harvester) avg_uw = std::max(0.0, avg_uw - harvester->harvest_uw);
    m.avg_power_uw = avg_uw;

    // Battery life at nominal 3 V.
    const double battery_uwh = power->capacity_mah * 3.0 * 1e3;
    m.lifetime_days =
        avg_uw > 0 ? battery_uwh / avg_uw / 24.0 : mission.required_lifetime_days * 10;

    if (radio->radio_range_m < mission.required_range_m) {
        m.failure_reason = "radio range insufficient";
    } else if (m.lifetime_days < mission.required_lifetime_days) {
        m.failure_reason = "battery life insufficient";
    } else if (m.volume_mm3 > mission.max_volume_mm3) {
        m.failure_reason = "volume exceeded";
    } else if (m.cost_usd > mission.max_cost_usd) {
        m.failure_reason = "cost exceeded";
    } else {
        m.meets_requirements = true;
    }
    return m;
}

}  // namespace janus
