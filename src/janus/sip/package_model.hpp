#pragma once
/// \file package_model.hpp
/// Integration-technology model: the same component set realized as a
/// discrete PCB assembly, a system-in-package (SiP), or a monolithic SoC.
/// Captures Macii's point that SiP "allows merging of components with
/// different processes ... with minor impact on the IC design flow",
/// while the SoC route forces one technology.

#include "janus/sip/components.hpp"

namespace janus {

enum class IntegrationStyle { DiscretePcb, SiP, MonolithicSoC };

struct IntegrationResult {
    IntegrationStyle style = IntegrationStyle::DiscretePcb;
    bool feasible = true;
    std::string infeasible_reason;
    double assembly_cost_usd = 0;
    double total_cost_usd = 0;    ///< BOM + assembly (+ NRE share for SoC)
    double volume_mm3 = 0;        ///< after integration shrink factor
    double interconnect_power_uw = 0;  ///< inter-die/board signaling overhead
    double yield = 1.0;
};

struct IntegrationOptions {
    double production_volume = 100000;  ///< units, for NRE amortization
    double soc_nre_usd = 3e6;           ///< port-everything-to-one-tech NRE
};

/// Evaluates one integration style for a system. A monolithic SoC is
/// infeasible when the system mixes incompatible technologies (MEMS,
/// PV, TEG, battery chemistry cannot be absorbed into the die).
IntegrationResult integrate(const SmartSystem& sys, IntegrationStyle style,
                            const IntegrationOptions& opts = {});

}  // namespace janus
