#pragma once
/// \file components.hpp
/// Smart-system component models: the heterogeneous parts Macii lists as
/// the substance of IoT "smart systems" — sensors, radios, compute,
/// storage, power sources — each with cost/power/volume attributes from
/// different technologies. The basis of the co-design experiments (E11).

#include <string>
#include <vector>

namespace janus {

enum class ComponentKind { Sensor, Radio, Mcu, Storage, PowerSource, Harvester };

/// One selectable catalog part.
struct Component {
    std::string name;
    ComponentKind kind = ComponentKind::Sensor;
    double cost_usd = 0;
    double active_mw = 0;      ///< power while active
    double sleep_uw = 0;       ///< power while sleeping
    double volume_mm3 = 0;
    std::string technology;    ///< e.g. "CMOS 180nm", "MEMS", "GaAs"

    // Kind-specific figures (unused fields stay 0).
    double data_rate_kbps = 0;     ///< radio
    double radio_range_m = 0;      ///< radio
    double sample_energy_uj = 0;   ///< sensor: energy per sample
    double compute_mips = 0;       ///< MCU
    double capacity_mah = 0;       ///< power source (battery)
    double harvest_uw = 0;         ///< harvester average yield
};

/// The built-in catalog (several options per kind, heterogeneous techs).
const std::vector<Component>& component_catalog();

/// One assembled smart-system design: indices into the catalog, exactly
/// one sensor/radio/MCU/power source (harvester optional, -1 = none).
struct SmartSystem {
    int sensor = -1;
    int radio = -1;
    int mcu = -1;
    int storage = -1;
    int power = -1;
    int harvester = -1;
};

/// Application requirements (the "mission profile").
struct MissionProfile {
    double sample_interval_s = 60.0;  ///< one measurement per interval
    double sample_bytes = 32.0;
    double report_interval_s = 3600.0;  ///< radio transmission period
    double required_lifetime_days = 365.0;
    double required_range_m = 100.0;
    double max_volume_mm3 = 2000.0;
    double max_cost_usd = 20.0;
};

/// Evaluated metrics of one design against a mission.
struct SystemMetrics {
    double cost_usd = 0;
    double volume_mm3 = 0;
    double avg_power_uw = 0;
    double lifetime_days = 0;
    bool meets_requirements = false;
    std::string failure_reason;  ///< empty when requirements met
};

/// Evaluates a design; battery life accounts for duty-cycled sensing,
/// computing, reporting, sleep floors and harvesting offset.
SystemMetrics evaluate_system(const SmartSystem& sys, const MissionProfile& mission);

}  // namespace janus
