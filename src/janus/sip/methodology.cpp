#include "janus/sip/methodology.hpp"

#include <algorithm>

namespace janus {

MethodologyCost expert_methodology(const MethodologyParams& p) {
    MethodologyCost c;
    // Serial: each iteration redesigns every domain and hand-offs between
    // consecutive domains.
    const double per_iteration =
        p.num_domains * p.domain_design_weeks +
        (p.num_domains - 1) * p.handoff_weeks;
    c.time_to_market_weeks = per_iteration * p.integration_iterations_expert;
    c.design_weeks = c.time_to_market_weeks;  // serial: elapsed == effort
    c.design_cost_usd = c.design_weeks * p.engineer_cost_per_week_usd *
                        p.num_domains;  // specialist team per domain retained
    return c;
}

MethodologyCost automated_methodology(const MethodologyParams& p) {
    MethodologyCost c;
    // Parallel domains inside one framework; hand-off automated; fewer
    // iterations because integration constraints are visible up front.
    const double domain_weeks =
        p.domain_design_weeks * (1.0 - p.automation_factor);
    const double per_iteration = domain_weeks;  // domains run concurrently
    c.time_to_market_weeks =
        per_iteration * p.integration_iterations_automated;
    // Effort: all domains still spend their (reduced) weeks.
    c.design_weeks = domain_weeks * p.num_domains *
                     p.integration_iterations_automated;
    c.design_cost_usd = c.design_weeks * p.engineer_cost_per_week_usd;
    return c;
}

}  // namespace janus
