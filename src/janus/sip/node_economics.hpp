#pragma once
/// \file node_economics.hpp
/// Technology-node economics: per-design cost (NRE + masks + wafers with
/// node/area-dependent yield) as a function of production volume, and the
/// resulting allocation of design starts across nodes. Reproduces the
/// panel's numbers: ">90 % of design starts at 32/28 nm and above" and
/// "180 nm is the most designed node, >25 % of starts" (E13).

#include <string>
#include <vector>

#include "janus/netlist/technology.hpp"

namespace janus {

/// One product scenario.
struct DesignScenario {
    double transistors_m = 5.0;       ///< logic size, millions of transistors
    double production_volume = 1e6;   ///< units over the product's life
    double performance_need_ghz = 0.2;///< minimum clock the product needs
    double power_budget_mw = 500.0;
};

struct NodeCost {
    std::string node;
    bool feasible = true;             ///< node can meet perf within the die-size cap
    std::string infeasible_reason;
    double die_area_mm2 = 0;
    double yield = 0;
    double unit_cost_usd = 0;         ///< manufactured cost per good unit
    double nre_per_unit_usd = 0;      ///< amortized NRE + masks
    double total_per_unit_usd = 0;
};

/// Evaluates every standard node for a scenario.
std::vector<NodeCost> evaluate_nodes(const DesignScenario& scenario);

/// The cheapest feasible node for a scenario.
NodeCost best_node(const DesignScenario& scenario);

/// A population of design starts: samples scenarios from the 2016-ish
/// industry mix (many small/cheap designs, few huge ones) and returns the
/// fraction of starts choosing each node.
struct DesignStartShare {
    std::string node;
    double share = 0;  ///< fraction of all starts
};
std::vector<DesignStartShare> design_start_distribution(std::size_t num_designs,
                                                        std::uint64_t seed);

}  // namespace janus
