#pragma once
/// \file cell_library.hpp
/// A liberty-like standard cell library: cell functions, areas, delays,
/// capacitances, leakage. A default library is synthesized from a
/// TechnologyNode so the same flow runs at every node.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "janus/netlist/technology.hpp"

namespace janus {

/// Logic function implemented by a cell. Sequential cells are DFF and
/// SCAN_DFF (input 0 = D; SCAN_DFF additionally has SI = input 1, SE = 2).
enum class CellFunction : std::uint8_t {
    Const0, Const1, Buf, Inv,
    And2, And3, And4, Nand2, Nand3, Nand4,
    Or2, Or3, Or4, Nor2, Nor3, Nor4,
    Xor2, Xnor2, Xor3, Mux2,  // Mux2: inputs are {sel, a, b} -> sel ? b : a
    Aoi21, Oai21,             // AOI21: !((a&b)|c); OAI21: !((a|b)&c)
    Maj3,                     // majority of three (carry function)
    Dff, ScanDff,
};

/// Number of logic inputs the function consumes.
int function_arity(CellFunction fn);
/// True for DFF/SCAN_DFF.
bool is_sequential(CellFunction fn);
/// Evaluates a combinational function on packed input bits (bit i of
/// `inputs` is logic input i). Must not be called for sequential cells.
bool evaluate_function(CellFunction fn, unsigned inputs);
/// Canonical cell name for a function ("NAND2", "DFF", ...).
std::string function_name(CellFunction fn);

/// One library cell ("NAND2_X1"): function plus physical/electrical view.
struct CellType {
    std::string name;
    CellFunction function = CellFunction::Inv;
    int drive = 1;             ///< drive strength multiplier (X1, X2, X4)
    double area_um2 = 0;       ///< footprint area
    double width_tracks = 0;   ///< width in placement tracks (height is one row)
    double input_cap_ff = 0;   ///< capacitance per input pin
    double intrinsic_delay_ps = 0;
    double drive_res_kohm = 0; ///< output resistance; delay = intrinsic + R*Cload
    double leakage_nw = 0;
};

/// An immutable set of CellTypes with name lookup. Cell ids are indices
/// into cells().
class CellLibrary {
  public:
    explicit CellLibrary(std::string name, std::vector<CellType> cells);

    const std::string& name() const { return name_; }
    const std::vector<CellType>& cells() const { return cells_; }
    const CellType& cell(std::size_t id) const { return cells_.at(id); }
    std::size_t size() const { return cells_.size(); }

    /// Index of a cell by exact name; nullopt when absent.
    std::optional<std::size_t> find(const std::string& name) const;
    /// Index of the smallest-drive cell implementing `fn`; nullopt when the
    /// library has no such cell.
    std::optional<std::size_t> find_function(CellFunction fn) const;
    /// All drive variants implementing `fn`, sorted by drive.
    std::vector<std::size_t> variants(CellFunction fn) const;

  private:
    std::string name_;
    std::vector<CellType> cells_;
};

/// Builds the default JanusEDA library for a node: the full function set at
/// drive strengths X1/X2/X4, with areas/delays/caps scaled from the node
/// parameters.
CellLibrary make_default_library(const TechnologyNode& node);

}  // namespace janus
