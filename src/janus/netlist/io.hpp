#pragma once
/// \file io.hpp
/// Serialization of gate-level netlists in the JanusEDA structural text
/// format (.jnl) — a small single-driver structural subset equivalent to
/// structural Verilog. The format is line oriented:
///
///   design <name>
///   input <pi_name> <net>      # one per primary input, in order
///   inst <name> <cell> <out> <in0> <in1> ...
///   output <po_name> <net>
///
/// Every `input` line carries both the port name and its net token — the
/// historical one-token `input <pi_name>` form was never emitted by
/// write_netlist and is rejected with a clear error. Nets are referenced
/// as n<id> by the writer; the reader accepts any identifier. Nets are
/// created only by their drivers (`input` lines and `inst` outputs), so a
/// parsed netlist has exactly one net per PI plus one per instance — no
/// helper nets are left behind and parse(write(nl)) preserves the net
/// count (docs/IO.md).

#include <iosfwd>
#include <memory>
#include <string>

#include "janus/netlist/netlist.hpp"

namespace janus {

/// Writes `nl` to a stream in .jnl format.
void write_netlist(std::ostream& os, const Netlist& nl);

/// Convenience: .jnl text of a netlist.
std::string netlist_to_string(const Netlist& nl);

/// Parses a .jnl stream into a netlist over `lib`. Every cell referenced
/// must exist in the library. Throws std::runtime_error on malformed input.
Netlist read_netlist(std::istream& is, std::shared_ptr<const CellLibrary> lib);

/// Convenience: parse from a string.
Netlist netlist_from_string(const std::string& text,
                            std::shared_ptr<const CellLibrary> lib);

/// Writes instance placements as "place <instance> <x_nm> <y_nm>" lines
/// (unplaced instances are skipped) — the .jpl companion of the .jnl
/// netlist.
void write_placement(std::ostream& os, const Netlist& nl);

/// Applies a placement file to a netlist (matching by instance name).
/// Returns the number of instances placed; unknown names throw.
std::size_t read_placement(std::istream& is, Netlist& nl);

}  // namespace janus
