#pragma once
/// \file generator.hpp
/// Synthetic circuit generators. Because the panel's production testcases
/// (networking ASICs, mobile SoCs) are proprietary, experiments run on
/// generated designs: random logic with controlled rent-like structure,
/// plus structured arithmetic blocks whose optimal implementations are
/// known (adders, parity, comparators) — the XOR-rich functions E12 needs.

#include <memory>
#include <string>
#include <vector>

#include "janus/netlist/netlist.hpp"
#include "janus/util/rng.hpp"

namespace janus {

/// Parameters for random combinational/sequential netlist generation.
struct GeneratorConfig {
    std::size_t num_inputs = 16;
    std::size_t num_outputs = 8;
    std::size_t num_gates = 200;      ///< combinational instances to create
    std::size_t num_flops = 0;        ///< sequential instances to create
    double locality = 0.8;            ///< 0..1, higher = prefer recent nets as fanins
    double xor_fraction = 0.1;        ///< fraction of gates drawn from {XOR2, XNOR2}
    std::uint64_t seed = 1;
};

/// Generates a random gate-level design over the given library. The result
/// is acyclic, fully connected and passes Netlist::validate().
Netlist generate_random(std::shared_ptr<const CellLibrary> lib,
                        const GeneratorConfig& cfg);

/// n-bit ripple-carry adder: inputs a[n], b[n], cin; outputs sum[n], cout.
Netlist generate_adder(std::shared_ptr<const CellLibrary> lib, int bits);

/// n-input XOR parity tree: output is the parity of all inputs.
Netlist generate_parity(std::shared_ptr<const CellLibrary> lib, int inputs);

/// n-bit equality comparator: output 1 iff a == b.
Netlist generate_comparator(std::shared_ptr<const CellLibrary> lib, int bits);

/// n-bit synchronous counter-like pipeline: `bits` flops with an XOR/AND
/// increment network — a simple sequential testcase for scan/DFT work.
Netlist generate_counter(std::shared_ptr<const CellLibrary> lib, int bits);

/// Multiplier-like array (AND matrix + carry-save rows), n x n bits. Dense
/// and wiring-heavy: the placement/routing stress case.
Netlist generate_multiplier(std::shared_ptr<const CellLibrary> lib, int bits);

/// Datapath-style mesh: roughly sqrt(gates) x sqrt(gates) feed-forward
/// array where every gate's fanins come from a small window of earlier
/// columns — the Rent-exponent-realistic workload (networking datapaths,
/// systolic arrays) used for physical-design scaling studies. Unlike
/// generate_random, a good placement makes almost every net short.
/// `pipeline_stages` > 0 inserts a column of DFFs after every
/// side/(stages+1) logic columns — a pipelined datapath with realistic
/// register placement pressure (used by the scan/DFT examples).
Netlist generate_mesh(std::shared_ptr<const CellLibrary> lib,
                      std::size_t num_gates, std::uint64_t seed = 1,
                      int pipeline_stages = 0);

}  // namespace janus
