#include "janus/netlist/io.hpp"

#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace janus {

void write_netlist(std::ostream& os, const Netlist& nl) {
    os << "design " << nl.name() << "\n";
    for (NetId pi : nl.primary_inputs()) {
        os << "input " << nl.net_name(pi) << " n" << pi << "\n";
    }
    for (InstId i = 0; i < nl.num_instances(); ++i) {
        const Instance& inst = nl.instance(i);
        const CellType& ct = nl.type_of(i);
        os << "inst " << nl.instance_name(i) << " " << ct.name << " n" << inst.output;
        const int arity = function_arity(ct.function);
        for (int p = 0; p < arity; ++p) {
            os << " n" << inst.fanin[static_cast<std::size_t>(p)];
        }
        os << "\n";
    }
    for (const auto& [name, net] : nl.primary_outputs()) {
        os << "output " << name << " n" << net << "\n";
    }
}

std::string netlist_to_string(const Netlist& nl) {
    std::ostringstream ss;
    write_netlist(ss, nl);
    return ss.str();
}

void write_placement(std::ostream& os, const Netlist& nl) {
    for (InstId i = 0; i < nl.num_instances(); ++i) {
        const Instance& inst = nl.instance(i);
        if (!inst.placed) continue;
        os << "place " << nl.instance_name(i) << " " << inst.position.x << " "
           << inst.position.y << "\n";
    }
}

std::size_t read_placement(std::istream& is, Netlist& nl) {
    // Name -> id index (placements are name-keyed to survive reordering).
    std::map<std::string, InstId> by_name;
    for (InstId i = 0; i < nl.num_instances(); ++i) {
        by_name[std::string(nl.instance_name(i))] = i;
    }
    std::string line;
    std::size_t placed = 0;
    std::size_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        std::istringstream ls(line);
        std::string kw, name;
        std::int64_t x = 0, y = 0;
        if (!(ls >> kw)) continue;
        if (kw != "place" || !(ls >> name >> x >> y)) {
            throw std::runtime_error("read_placement: malformed line " +
                                     std::to_string(line_no));
        }
        const auto it = by_name.find(name);
        if (it == by_name.end()) {
            throw std::runtime_error("read_placement: unknown instance " + name);
        }
        Instance& inst = nl.instance(it->second);
        inst.position = {x, y};
        inst.placed = true;
        ++placed;
    }
    return placed;
}

namespace {

struct PendingInst {
    InstId id;
    std::vector<std::string> fanin_names;
};

}  // namespace

Netlist read_netlist(std::istream& is, std::shared_ptr<const CellLibrary> lib) {
    Netlist nl(lib, "top");
    std::map<std::string, NetId> net_by_name;
    std::vector<PendingInst> pending;

    std::string line;
    std::size_t line_no = 0;
    bool got_design = false;
    while (std::getline(is, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos) line.erase(hash);
        std::istringstream ls(line);
        std::string kw;
        if (!(ls >> kw)) continue;
        const auto fail = [&](const std::string& why) {
            throw std::runtime_error("read_netlist: line " + std::to_string(line_no) +
                                     ": " + why);
        };
        if (kw == "design") {
            std::string name;
            if (!(ls >> name)) fail("missing design name");
            nl = Netlist(lib, name);
            net_by_name.clear();
            pending.clear();
            got_design = true;
        } else if (kw == "input") {
            std::string name, netname;
            if (!(ls >> name)) fail("input needs <name> <net>");
            if (!(ls >> netname)) {
                fail("input needs <name> <net> — the one-token 'input " + name +
                     "' form is not part of the grammar (io.hpp)");
            }
            if (net_by_name.count(netname)) fail("net redefined: " + netname);
            net_by_name[netname] = nl.add_primary_input(name);
        } else if (kw == "inst") {
            std::string name, cell, out;
            if (!(ls >> name >> cell >> out)) fail("inst needs <name> <cell> <out>");
            const auto type = lib->find(cell);
            if (!type) fail("unknown cell: " + cell);
            const int arity = function_arity(lib->cell(*type).function);
            PendingInst pi;
            std::string in;
            while (ls >> in) pi.fanin_names.push_back(in);
            if (static_cast<int>(pi.fanin_names.size()) != arity) {
                fail("cell " + cell + " expects " + std::to_string(arity) + " inputs");
            }
            // Fanins connect after the whole file is read (forward
            // references); kNoNet marks the pending pins, so no helper
            // "_placeholder" net pollutes the parsed netlist.
            pi.id = nl.add_instance(
                name, *type,
                std::vector<NetId>(static_cast<std::size_t>(arity), kNoNet));
            if (net_by_name.count(out)) fail("net redefined: " + out);
            net_by_name[out] = nl.instance(pi.id).output;
            pending.push_back(std::move(pi));
        } else if (kw == "output") {
            std::string name, netname;
            if (!(ls >> name >> netname)) fail("output needs <name> <net>");
            const auto it = net_by_name.find(netname);
            if (it == net_by_name.end()) {
                // Outputs may be declared before the driving inst; defer by
                // creating the net now and letting the inst claim it later —
                // but single-driver bookkeeping makes that fragile, so
                // require declaration after the driver instead.
                fail("output references undefined net: " + netname);
            }
            nl.add_primary_output(name, it->second);
        } else {
            fail("unknown keyword: " + kw);
        }
    }
    if (!got_design) throw std::runtime_error("read_netlist: missing 'design' line");

    for (const PendingInst& pi : pending) {
        for (std::size_t p = 0; p < pi.fanin_names.size(); ++p) {
            const auto it = net_by_name.find(pi.fanin_names[p]);
            if (it == net_by_name.end()) {
                throw std::runtime_error("read_netlist: instance " +
                                         std::string(nl.instance_name(pi.id)) +
                                         " references undefined net " +
                                         pi.fanin_names[p]);
            }
            nl.connect_input(pi.id, static_cast<int>(p), it->second);
        }
    }
    return nl;
}

Netlist netlist_from_string(const std::string& text,
                            std::shared_ptr<const CellLibrary> lib) {
    std::istringstream ss(text);
    return read_netlist(ss, std::move(lib));
}

}  // namespace janus
