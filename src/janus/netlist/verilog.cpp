#include "janus/netlist/verilog.hpp"

#include <cctype>
#include <ostream>
#include <sstream>
#include <string_view>

namespace janus {
namespace {

/// Verilog-safe identifier: JanusEDA names may contain '.'.
std::string vname(std::string_view name) {
    std::string out;
    out.reserve(name.size());
    for (const char c : name) {
        out.push_back((std::isalnum(static_cast<unsigned char>(c)) || c == '_')
                          ? c
                          : '_');
    }
    if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
        out.insert(out.begin(), 'n');
    }
    return out;
}

const char* input_pin_name(int pin) {
    static const char* names[] = {"A", "B", "C", "D"};
    return names[pin];
}

}  // namespace

void write_verilog(std::ostream& os, const Netlist& nl) {
    const bool sequential = !nl.sequential_instances().empty();

    // Unique net names: n<id> everywhere, ports aliased with assigns.
    os << "module " << vname(nl.name()) << " (";
    bool first = true;
    const auto port = [&](std::string_view name) {
        if (!first) os << ", ";
        os << vname(name);
        first = false;
    };
    if (sequential) port("clk");
    for (const NetId pi : nl.primary_inputs()) port(nl.net_name(pi));
    for (const auto& [name, net] : nl.primary_outputs()) {
        (void)net;
        port(name);
    }
    os << ");\n";

    if (sequential) os << "  input clk;\n";
    for (const NetId pi : nl.primary_inputs()) {
        os << "  input " << vname(nl.net_name(pi)) << ";\n";
    }
    for (const auto& [name, net] : nl.primary_outputs()) {
        (void)net;
        os << "  output " << vname(name) << ";\n";
    }
    for (NetId n = 0; n < nl.num_nets(); ++n) {
        os << "  wire n" << n << ";\n";
    }
    // Port aliases.
    for (const NetId pi : nl.primary_inputs()) {
        os << "  assign n" << pi << " = " << vname(nl.net_name(pi)) << ";\n";
    }
    for (const auto& [name, net] : nl.primary_outputs()) {
        os << "  assign " << vname(name) << " = n" << net << ";\n";
    }

    for (InstId i = 0; i < nl.num_instances(); ++i) {
        const Instance& inst = nl.instance(i);
        const CellType& ct = nl.type_of(i);
        os << "  " << vname(ct.name) << " " << vname(nl.instance_name(i)) << " (";
        const int arity = function_arity(ct.function);
        if (is_sequential(ct.function)) {
            os << ".CK(clk), .D(n" << inst.fanin[0] << ")";
            if (ct.function == CellFunction::ScanDff) {
                os << ", .SI(n" << inst.fanin[1] << "), .SE(n" << inst.fanin[2]
                   << ")";
            }
            os << ", .Q(n" << inst.output << ")";
        } else {
            for (int p = 0; p < arity; ++p) {
                os << "." << input_pin_name(p) << "(n"
                   << inst.fanin[static_cast<std::size_t>(p)] << "), ";
            }
            os << ".Y(n" << inst.output << ")";
        }
        os << ");\n";
    }
    os << "endmodule\n";
}

std::string netlist_to_verilog(const Netlist& nl) {
    std::ostringstream ss;
    write_verilog(ss, nl);
    return ss.str();
}

}  // namespace janus
