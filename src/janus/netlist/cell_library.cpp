#include "janus/netlist/cell_library.hpp"

#include <cassert>
#include <stdexcept>

namespace janus {

int function_arity(CellFunction fn) {
    switch (fn) {
        case CellFunction::Const0:
        case CellFunction::Const1: return 0;
        case CellFunction::Buf:
        case CellFunction::Inv:
        case CellFunction::Dff: return 1;
        case CellFunction::And2:
        case CellFunction::Nand2:
        case CellFunction::Or2:
        case CellFunction::Nor2:
        case CellFunction::Xor2:
        case CellFunction::Xnor2: return 2;
        case CellFunction::And3:
        case CellFunction::Nand3:
        case CellFunction::Or3:
        case CellFunction::Nor3:
        case CellFunction::Xor3:
        case CellFunction::Mux2:
        case CellFunction::Aoi21:
        case CellFunction::Oai21:
        case CellFunction::Maj3:
        case CellFunction::ScanDff: return 3;
        case CellFunction::And4:
        case CellFunction::Nand4:
        case CellFunction::Or4:
        case CellFunction::Nor4: return 4;
    }
    return 0;
}

bool is_sequential(CellFunction fn) {
    return fn == CellFunction::Dff || fn == CellFunction::ScanDff;
}

bool evaluate_function(CellFunction fn, unsigned in) {
    const bool a = in & 1u, b = in & 2u, c = in & 4u, d = in & 8u;
    switch (fn) {
        case CellFunction::Const0: return false;
        case CellFunction::Const1: return true;
        case CellFunction::Buf: return a;
        case CellFunction::Inv: return !a;
        case CellFunction::And2: return a && b;
        case CellFunction::And3: return a && b && c;
        case CellFunction::And4: return a && b && c && d;
        case CellFunction::Nand2: return !(a && b);
        case CellFunction::Nand3: return !(a && b && c);
        case CellFunction::Nand4: return !(a && b && c && d);
        case CellFunction::Or2: return a || b;
        case CellFunction::Or3: return a || b || c;
        case CellFunction::Or4: return a || b || c || d;
        case CellFunction::Nor2: return !(a || b);
        case CellFunction::Nor3: return !(a || b || c);
        case CellFunction::Nor4: return !(a || b || c || d);
        case CellFunction::Xor2: return a != b;
        case CellFunction::Xnor2: return a == b;
        case CellFunction::Xor3: return (a != b) != c;
        case CellFunction::Mux2: return a ? c : b;
        case CellFunction::Aoi21: return !((a && b) || c);
        case CellFunction::Oai21: return !((a || b) && c);
        case CellFunction::Maj3: return (a && b) || (a && c) || (b && c);
        case CellFunction::Dff:
        case CellFunction::ScanDff:
            throw std::logic_error("evaluate_function: sequential cell");
    }
    return false;
}

std::string function_name(CellFunction fn) {
    switch (fn) {
        case CellFunction::Const0: return "TIE0";
        case CellFunction::Const1: return "TIE1";
        case CellFunction::Buf: return "BUF";
        case CellFunction::Inv: return "INV";
        case CellFunction::And2: return "AND2";
        case CellFunction::And3: return "AND3";
        case CellFunction::And4: return "AND4";
        case CellFunction::Nand2: return "NAND2";
        case CellFunction::Nand3: return "NAND3";
        case CellFunction::Nand4: return "NAND4";
        case CellFunction::Or2: return "OR2";
        case CellFunction::Or3: return "OR3";
        case CellFunction::Or4: return "OR4";
        case CellFunction::Nor2: return "NOR2";
        case CellFunction::Nor3: return "NOR3";
        case CellFunction::Nor4: return "NOR4";
        case CellFunction::Xor2: return "XOR2";
        case CellFunction::Xnor2: return "XNOR2";
        case CellFunction::Xor3: return "XOR3";
        case CellFunction::Mux2: return "MUX2";
        case CellFunction::Aoi21: return "AOI21";
        case CellFunction::Oai21: return "OAI21";
        case CellFunction::Maj3: return "MAJ3";
        case CellFunction::Dff: return "DFF";
        case CellFunction::ScanDff: return "SDFF";
    }
    return "?";
}

CellLibrary::CellLibrary(std::string name, std::vector<CellType> cells)
    : name_(std::move(name)), cells_(std::move(cells)) {}

std::optional<std::size_t> CellLibrary::find(const std::string& name) const {
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        if (cells_[i].name == name) return i;
    }
    return std::nullopt;
}

std::optional<std::size_t> CellLibrary::find_function(CellFunction fn) const {
    std::optional<std::size_t> best;
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        if (cells_[i].function != fn) continue;
        if (!best || cells_[i].drive < cells_[*best].drive) best = i;
    }
    return best;
}

std::vector<std::size_t> CellLibrary::variants(CellFunction fn) const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        if (cells_[i].function == fn) out.push_back(i);
    }
    for (std::size_t i = 1; i < out.size(); ++i) {
        for (std::size_t j = i; j > 0 && cells_[out[j]].drive < cells_[out[j - 1]].drive; --j) {
            std::swap(out[j], out[j - 1]);
        }
    }
    return out;
}

namespace {

/// Relative complexity of each function in unit-inverter equivalents; the
/// basis for area/cap/leakage scaling.
double function_complexity(CellFunction fn) {
    switch (fn) {
        case CellFunction::Const0:
        case CellFunction::Const1: return 0.5;
        case CellFunction::Buf: return 1.5;
        case CellFunction::Inv: return 1.0;
        case CellFunction::Nand2:
        case CellFunction::Nor2: return 1.5;
        case CellFunction::And2:
        case CellFunction::Or2: return 2.0;
        case CellFunction::Nand3:
        case CellFunction::Nor3: return 2.2;
        case CellFunction::And3:
        case CellFunction::Or3: return 2.7;
        case CellFunction::Nand4:
        case CellFunction::Nor4: return 3.0;
        case CellFunction::And4:
        case CellFunction::Or4: return 3.5;
        case CellFunction::Xor2:
        case CellFunction::Xnor2: return 3.0;
        case CellFunction::Xor3: return 5.0;
        case CellFunction::Mux2: return 3.5;
        case CellFunction::Aoi21:
        case CellFunction::Oai21: return 2.5;
        case CellFunction::Maj3: return 4.0;
        case CellFunction::Dff: return 7.0;
        case CellFunction::ScanDff: return 9.0;
    }
    return 1.0;
}

/// Relative logical effort — how much the intrinsic delay grows with
/// function complexity.
double function_effort(CellFunction fn) {
    switch (fn) {
        case CellFunction::Inv:
        case CellFunction::Buf:
        case CellFunction::Const0:
        case CellFunction::Const1: return 1.0;
        case CellFunction::Nand2: return 1.3;
        case CellFunction::Nor2: return 1.6;
        case CellFunction::And2:
        case CellFunction::Or2: return 1.8;
        case CellFunction::Nand3:
        case CellFunction::Nor3: return 1.9;
        case CellFunction::And3:
        case CellFunction::Or3: return 2.1;
        case CellFunction::Nand4:
        case CellFunction::Nor4: return 2.3;
        case CellFunction::And4:
        case CellFunction::Or4: return 2.5;
        case CellFunction::Xor2:
        case CellFunction::Xnor2: return 2.4;
        case CellFunction::Xor3: return 3.4;
        case CellFunction::Mux2: return 2.2;
        case CellFunction::Aoi21:
        case CellFunction::Oai21: return 1.9;
        case CellFunction::Maj3: return 2.6;
        case CellFunction::Dff: return 3.0;
        case CellFunction::ScanDff: return 3.2;
    }
    return 1.0;
}

}  // namespace

CellLibrary make_default_library(const TechnologyNode& node) {
    static const CellFunction kFunctions[] = {
        CellFunction::Const0, CellFunction::Const1, CellFunction::Buf,
        CellFunction::Inv, CellFunction::And2, CellFunction::And3,
        CellFunction::And4, CellFunction::Nand2, CellFunction::Nand3,
        CellFunction::Nand4, CellFunction::Or2, CellFunction::Or3,
        CellFunction::Or4, CellFunction::Nor2, CellFunction::Nor3,
        CellFunction::Nor4, CellFunction::Xor2, CellFunction::Xnor2,
        CellFunction::Xor3, CellFunction::Mux2, CellFunction::Aoi21,
        CellFunction::Oai21, CellFunction::Maj3, CellFunction::Dff,
        CellFunction::ScanDff,
    };
    // Unit geometry: a min-size inverter occupies ~60 F^2 where F is the
    // feature size; three tracks wide at the track pitch.
    const double f_um = node.feature_nm * 1e-3;
    const double inv_area = 60.0 * f_um * f_um;

    std::vector<CellType> cells;
    for (CellFunction fn : kFunctions) {
        const double cx = function_complexity(fn);
        const double effort = function_effort(fn);
        for (int drive : {1, 2, 4}) {
            // Tie cells and flops come in one drive only.
            if (drive > 1 &&
                (fn == CellFunction::Const0 || fn == CellFunction::Const1)) {
                continue;
            }
            CellType c;
            c.name = function_name(fn) + "_X" + std::to_string(drive);
            c.function = fn;
            c.drive = drive;
            c.area_um2 = inv_area * cx * (1.0 + 0.6 * (drive - 1));
            c.width_tracks = 2.0 + cx * (1.0 + 0.5 * (drive - 1));
            c.input_cap_ff = node.gate_cap_ff * (1.0 + 0.15 * (cx - 1.0));
            c.intrinsic_delay_ps = node.gate_delay_ps * effort;
            // Output resistance shrinks with drive strength; calibrated so a
            // fanout-of-4 load roughly doubles the intrinsic delay at X1.
            c.drive_res_kohm =
                node.gate_delay_ps / (4.0 * node.gate_cap_ff) / drive;
            c.leakage_nw = node.leak_nw * cx * drive;
            cells.push_back(std::move(c));
        }
    }
    return CellLibrary("janus_" + node.name, std::move(cells));
}

}  // namespace janus
