#pragma once
/// \file netlist.hpp
/// Gate-level netlist: instances of library cells connected by single-driver
/// nets. This is the common fabric consumed by STA, placement, routing,
/// power analysis and DFT.
///
/// Model: every net has exactly one driver (a primary input or an instance
/// output) and any number of sinks (instance inputs or primary outputs).
/// Instances have at most four logic inputs and one output. Sequential
/// elements are DFF/SDFF instances; their Q output is the instance output.
///
/// Storage is megascale-lean (docs/MEGASCALE.md): names are interned into a
/// shared NameTable and objects carry 32-bit NameIds instead of
/// std::strings, Instance shrinks its cell type to 32 bits and tucks the
/// placed flag into padding (48 bytes total, down from 88), Net is 12 bytes
/// (down from 40), and the sinks() cache is a flat CSR (offset + packed sink arrays)
/// instead of a vector of per-net vectors. All of this is observationally
/// pure: names round-trip exactly, iteration orders are unchanged, and flow
/// outputs are byte-identical to the string-per-object layout.

#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "janus/netlist/cell_library.hpp"
#include "janus/util/geometry.hpp"
#include "janus/util/name_table.hpp"

namespace janus {

using NetId = std::uint32_t;
using InstId = std::uint32_t;
inline constexpr NetId kNoNet = std::numeric_limits<NetId>::max();
inline constexpr InstId kNoInst = std::numeric_limits<InstId>::max();

/// Maximum number of logic inputs on any library cell.
inline constexpr int kMaxFanin = 4;

/// What drives a net.
enum class DriverKind : std::uint8_t { None, PrimaryInput, Instance };

/// One cell instance. 48 bytes (was 88): fanins/output/name are 32-bit ids,
/// the library type is a 32-bit index, placed is a one-byte flag riding in
/// what would otherwise be padding before the 8-aligned position, and the
/// name string lives in the owning Netlist's NameTable
/// (Netlist::instance_name()).
struct Instance {
    std::array<NetId, kMaxFanin> fanin{kNoNet, kNoNet, kNoNet, kNoNet};
    NetId output = kNoNet;
    NameId name = kNoName;  ///< interned; see Netlist::instance_name()
    std::uint32_t type = 0; ///< index into the CellLibrary
    bool placed = false;    ///< position is meaningful when set
    Point position;         ///< placement location in DBU (0,0 until placed)
};

/// Marks a Net::name as *derived*: the low 31 bits are the driving
/// instance's NameId and the printable name is that string + ".out".
/// Auto-created instance output nets — the overwhelming majority of nets in
/// any real design — carry this flag instead of interning a second,
/// near-duplicate string per instance. kNoName has the bit set too, so test
/// for kNoName first.
inline constexpr NameId kDerivedName = 0x80000000u;

/// One net (single driver, multiple sinks). 12 bytes; the name string lives
/// in the owning Netlist's NameTable (Netlist::net_name()), possibly
/// kDerivedName-encoded.
struct Net {
    NameId name = kNoName;         ///< interned or derived; see Netlist::net_name()
    InstId driver_inst = kNoInst;  ///< valid when driver_kind == Instance
    DriverKind driver_kind = DriverKind::None;
};

/// A sink reference: input pin `pin()` of instance `inst()`. Packed into
/// one 32-bit word (pin fits 2 bits since kMaxFanin == 4), which halves the
/// CSR sink pool; the 2^30 instance ceiling is far above the 32-bit id
/// space already implied elsewhere.
struct SinkRef {
    std::uint32_t bits = 0;
    constexpr SinkRef() = default;
    constexpr SinkRef(InstId inst, int pin)
        : bits((inst << 2) | static_cast<std::uint32_t>(pin)) {}
    constexpr InstId inst() const { return bits >> 2; }
    constexpr int pin() const { return static_cast<int>(bits & 3u); }
    friend bool operator==(const SinkRef&, const SinkRef&) = default;
};

/// Gate-level design. The cell library is shared and immutable; it must
/// describe every instance type used.
class Netlist {
  public:
    explicit Netlist(std::shared_ptr<const CellLibrary> lib, std::string name = "top");

    const std::string& name() const { return name_; }
    const CellLibrary& library() const { return *lib_; }
    std::shared_ptr<const CellLibrary> library_ptr() const { return lib_; }

    // --- construction -----------------------------------------------------
    /// Creates a floating net.
    NetId add_net(std::string_view name);
    /// Creates a primary input driving a fresh net; returns that net.
    NetId add_primary_input(std::string_view name);
    /// Marks `net` as observed by a primary output.
    void add_primary_output(std::string_view name, NetId net);
    /// Repoints an existing primary output (by name) at a different net;
    /// used when restructuring (e.g. scan reorder moves the chain tail).
    void set_primary_output(const std::string& name, NetId net);
    /// Instantiates library cell `type` driving a fresh output net. `fanins`
    /// must match the cell's arity. Returns the instance id. A fanin may be
    /// kNoNet to defer the connection: file readers use this for forward
    /// references (the driving net appears later in the file) and must wire
    /// every pin with connect_input() before handing the netlist out —
    /// validate() reports any pin left dangling.
    InstId add_instance(std::string_view name, std::size_t type,
                        const std::vector<NetId>& fanins);
    /// Rewires input pin `pin` of `inst` to `net`.
    void connect_input(InstId inst, int pin, NetId net);

    // --- access -----------------------------------------------------------
    std::size_t num_instances() const { return instances_.size(); }
    std::size_t num_nets() const { return nets_.size(); }
    const Instance& instance(InstId id) const { return instances_.at(id); }
    Instance& instance(InstId id) { return instances_.at(id); }
    const Net& net(NetId id) const { return nets_.at(id); }
    const std::vector<Instance>& instances() const { return instances_; }
    const std::vector<Net>& nets() const { return nets_; }
    const CellType& type_of(InstId id) const { return lib_->cell(instances_.at(id).type); }

    /// Name of an instance, viewed from the shared NameTable. Valid for the
    /// lifetime of the netlist (interned storage is append-only).
    std::string_view instance_name(InstId id) const {
        return names_.view(instances_.at(id).name);
    }
    /// Name of a net. Returns an owning string because derived names
    /// ("<inst>.out", the auto-created instance output nets) are
    /// materialized on demand instead of being stored.
    std::string net_name(NetId id) const;
    /// Resolves a printable net name back to its (possibly
    /// kDerivedName-encoded) NameId; kNoName when no net could carry it.
    /// Query-by-name maps key on the returned id (server sessions).
    NameId net_name_id(std::string_view name) const;
    /// The shared string pool instance/net names intern into. Lookups that
    /// start from an external string (e.g. server ECO requests) resolve the
    /// name to a NameId once via names().find() and compare 32-bit ids from
    /// then on.
    const NameTable& names() const { return names_; }

    const std::vector<NetId>& primary_inputs() const { return primary_inputs_; }
    /// Primary outputs as (name, net) pairs.
    const std::vector<std::pair<std::string, NetId>>& primary_outputs() const {
        return primary_outputs_;
    }

    /// Sinks of a net (instance input pins; primary outputs not included).
    /// A view into the flat CSR sink cache, rebuilt lazily per mutation
    /// epoch; valid until the netlist is next modified. Sink order is the
    /// instance-id-major, pin-minor scan order (stable across rebuilds).
    std::span<const SinkRef> sinks(NetId net) const;
    /// Number of instance sinks plus primary-output observers on a net.
    std::size_t fanout_count(NetId net) const;

    /// All sequential (DFF/SDFF) instance ids.
    std::vector<InstId> sequential_instances() const;
    /// Combinational instances in topological order (inputs before outputs).
    /// DFF outputs are treated as sources and DFF inputs as sinks, so the
    /// order is well defined for sequential designs without combinational
    /// loops. Throws std::runtime_error when a combinational loop exists.
    /// The order is cached and only recomputed after a structural mutation
    /// (epoch-based), so the repeated calls made by STA, fault simulation,
    /// activity propagation and SSTA cost one Kahn pass total, not one per
    /// call. The returned reference is valid until the next mutation.
    const std::vector<InstId>& topological_order() const;

    /// Monotonic counter bumped on every structural mutation (add_net /
    /// add_instance / connect_input / ...). Long-lived analysis caches such
    /// as TimingGraph record it at construction and use it to detect
    /// staleness cheaply. Resizing an instance in place (Instance::type)
    /// does not change topology and does not bump the epoch.
    std::uint64_t mutation_epoch() const { return epoch_; }

    /// Logic depth in gates of the longest combinational path.
    int logic_depth() const;
    /// Sum of instance cell areas in um^2.
    double total_area() const;
    /// Sum of instance leakage in nW.
    double total_leakage_nw() const;

    /// Total heap footprint of the design storage: instance/net arrays, the
    /// interned name pool, primary-port records, and the current sink-CSR /
    /// topological-order caches. Measured from container capacities so the
    /// number is the real reservation, not the logical size; the megascale
    /// bench (bench_e5_megascale) divides this by num_instances() and diffs
    /// it against the recorded legacy (string-per-object) layout.
    std::size_t memory_bytes() const;

    /// Releases growth slack in the id arrays and caches (geometric
    /// push_back growth can leave up to 2x reserved). Call after bulk
    /// construction when the design will live a long time — e.g. megascale
    /// runs that hold millions of instances through a full flow.
    void shrink_to_fit();

    /// Checks structural sanity (every net driven at most once, arities
    /// consistent, no dangling instance inputs). Returns a list of problem
    /// descriptions; empty means the netlist is well formed.
    std::vector<std::string> validate() const;

    // --- simulation -------------------------------------------------------
    /// Combinational evaluation: given a value per primary input (in
    /// primary_inputs() order) and a state per sequential instance (in
    /// sequential_instances() order), computes every net value. Returned
    /// vector is indexed by NetId.
    std::vector<bool> evaluate(const std::vector<bool>& pi_values,
                               const std::vector<bool>& state) const;
    /// One clock edge: evaluates, then returns the next-state vector (the
    /// D-input values of all sequential instances, scan disabled).
    std::vector<bool> next_state(const std::vector<bool>& pi_values,
                                 const std::vector<bool>& state) const;

  private:
    void invalidate_caches();
    void build_sink_csr() const;

    std::shared_ptr<const CellLibrary> lib_;
    std::string name_;
    NameTable names_;
    std::vector<Instance> instances_;
    std::vector<Net> nets_;
    std::vector<NetId> primary_inputs_;
    std::vector<std::pair<std::string, NetId>> primary_outputs_;

    // Flat CSR sink cache: sinks of net n are
    // sink_pool_[sink_offsets_[n] .. sink_offsets_[n + 1]).
    mutable std::vector<std::uint32_t> sink_offsets_;
    mutable std::vector<SinkRef> sink_pool_;
    mutable bool sink_cache_valid_ = false;
    mutable std::vector<InstId> topo_cache_;
    mutable bool topo_cache_valid_ = false;
    std::uint64_t epoch_ = 0;
};

static_assert(sizeof(Instance) == 48, "Instance packing regressed (was 88)");
static_assert(sizeof(Net) == 12, "Net packing regressed (was 40)");

}  // namespace janus
