#pragma once
/// \file netlist.hpp
/// Gate-level netlist: instances of library cells connected by single-driver
/// nets. This is the common fabric consumed by STA, placement, routing,
/// power analysis and DFT.
///
/// Model: every net has exactly one driver (a primary input or an instance
/// output) and any number of sinks (instance inputs or primary outputs).
/// Instances have at most four logic inputs and one output. Sequential
/// elements are DFF/SDFF instances; their Q output is the instance output.

#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "janus/netlist/cell_library.hpp"
#include "janus/util/geometry.hpp"

namespace janus {

using NetId = std::uint32_t;
using InstId = std::uint32_t;
inline constexpr NetId kNoNet = std::numeric_limits<NetId>::max();
inline constexpr InstId kNoInst = std::numeric_limits<InstId>::max();

/// Maximum number of logic inputs on any library cell.
inline constexpr int kMaxFanin = 4;

/// What drives a net.
enum class DriverKind : std::uint8_t { None, PrimaryInput, Instance };

/// One cell instance.
struct Instance {
    std::string name;
    std::size_t type = 0;  ///< index into the CellLibrary
    std::array<NetId, kMaxFanin> fanin{kNoNet, kNoNet, kNoNet, kNoNet};
    NetId output = kNoNet;
    Point position;        ///< placement location in DBU (0,0 until placed)
    bool placed = false;
};

/// One net (single driver, multiple sinks).
struct Net {
    std::string name;
    DriverKind driver_kind = DriverKind::None;
    InstId driver_inst = kNoInst;  ///< valid when driver_kind == Instance
};

/// A sink reference: input pin `pin` of instance `inst`.
struct SinkRef {
    InstId inst;
    int pin;
    friend bool operator==(const SinkRef&, const SinkRef&) = default;
};

/// Gate-level design. The cell library is shared and immutable; it must
/// describe every instance type used.
class Netlist {
  public:
    explicit Netlist(std::shared_ptr<const CellLibrary> lib, std::string name = "top");

    const std::string& name() const { return name_; }
    const CellLibrary& library() const { return *lib_; }
    std::shared_ptr<const CellLibrary> library_ptr() const { return lib_; }

    // --- construction -----------------------------------------------------
    /// Creates a floating net.
    NetId add_net(std::string name);
    /// Creates a primary input driving a fresh net; returns that net.
    NetId add_primary_input(std::string name);
    /// Marks `net` as observed by a primary output.
    void add_primary_output(std::string name, NetId net);
    /// Repoints an existing primary output (by name) at a different net;
    /// used when restructuring (e.g. scan reorder moves the chain tail).
    void set_primary_output(const std::string& name, NetId net);
    /// Instantiates library cell `type` driving a fresh output net. `fanins`
    /// must match the cell's arity. Returns the instance id. A fanin may be
    /// kNoNet to defer the connection: file readers use this for forward
    /// references (the driving net appears later in the file) and must wire
    /// every pin with connect_input() before handing the netlist out —
    /// validate() reports any pin left dangling.
    InstId add_instance(std::string name, std::size_t type,
                        const std::vector<NetId>& fanins);
    /// Rewires input pin `pin` of `inst` to `net`.
    void connect_input(InstId inst, int pin, NetId net);

    // --- access -----------------------------------------------------------
    std::size_t num_instances() const { return instances_.size(); }
    std::size_t num_nets() const { return nets_.size(); }
    const Instance& instance(InstId id) const { return instances_.at(id); }
    Instance& instance(InstId id) { return instances_.at(id); }
    const Net& net(NetId id) const { return nets_.at(id); }
    const std::vector<Instance>& instances() const { return instances_; }
    const std::vector<Net>& nets() const { return nets_; }
    const CellType& type_of(InstId id) const { return lib_->cell(instances_.at(id).type); }

    const std::vector<NetId>& primary_inputs() const { return primary_inputs_; }
    /// Primary outputs as (name, net) pairs.
    const std::vector<std::pair<std::string, NetId>>& primary_outputs() const {
        return primary_outputs_;
    }

    /// Sinks of a net (instance input pins; primary outputs not included).
    /// Valid until the netlist is next modified.
    const std::vector<SinkRef>& sinks(NetId net) const;
    /// Number of instance sinks plus primary-output observers on a net.
    std::size_t fanout_count(NetId net) const;

    /// All sequential (DFF/SDFF) instance ids.
    std::vector<InstId> sequential_instances() const;
    /// Combinational instances in topological order (inputs before outputs).
    /// DFF outputs are treated as sources and DFF inputs as sinks, so the
    /// order is well defined for sequential designs without combinational
    /// loops. Throws std::runtime_error when a combinational loop exists.
    /// The order is cached and only recomputed after a structural mutation
    /// (epoch-based), so the repeated calls made by STA, fault simulation,
    /// activity propagation and SSTA cost one Kahn pass total, not one per
    /// call. The returned reference is valid until the next mutation.
    const std::vector<InstId>& topological_order() const;

    /// Monotonic counter bumped on every structural mutation (add_net /
    /// add_instance / connect_input / ...). Long-lived analysis caches such
    /// as TimingGraph record it at construction and use it to detect
    /// staleness cheaply. Resizing an instance in place (Instance::type)
    /// does not change topology and does not bump the epoch.
    std::uint64_t mutation_epoch() const { return epoch_; }

    /// Logic depth in gates of the longest combinational path.
    int logic_depth() const;
    /// Sum of instance cell areas in um^2.
    double total_area() const;
    /// Sum of instance leakage in nW.
    double total_leakage_nw() const;

    /// Checks structural sanity (every net driven at most once, arities
    /// consistent, no dangling instance inputs). Returns a list of problem
    /// descriptions; empty means the netlist is well formed.
    std::vector<std::string> validate() const;

    // --- simulation -------------------------------------------------------
    /// Combinational evaluation: given a value per primary input (in
    /// primary_inputs() order) and a state per sequential instance (in
    /// sequential_instances() order), computes every net value. Returned
    /// vector is indexed by NetId.
    std::vector<bool> evaluate(const std::vector<bool>& pi_values,
                               const std::vector<bool>& state) const;
    /// One clock edge: evaluates, then returns the next-state vector (the
    /// D-input values of all sequential instances, scan disabled).
    std::vector<bool> next_state(const std::vector<bool>& pi_values,
                                 const std::vector<bool>& state) const;

  private:
    void invalidate_caches();

    std::shared_ptr<const CellLibrary> lib_;
    std::string name_;
    std::vector<Instance> instances_;
    std::vector<Net> nets_;
    std::vector<NetId> primary_inputs_;
    std::vector<std::pair<std::string, NetId>> primary_outputs_;

    mutable std::vector<std::vector<SinkRef>> sink_cache_;
    mutable bool sink_cache_valid_ = false;
    mutable std::vector<InstId> topo_cache_;
    mutable bool topo_cache_valid_ = false;
    std::uint64_t epoch_ = 0;
};

}  // namespace janus
