#include "janus/netlist/generator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace janus {
namespace {

std::size_t must_find(const CellLibrary& lib, CellFunction fn) {
    const auto id = lib.find_function(fn);
    if (!id) {
        throw std::runtime_error("generator: library lacks " + function_name(fn));
    }
    return *id;
}

/// Picks a fanin net with a bias toward recently created nets, which yields
/// locality similar to real designs (short nets dominate, a few long ones).
NetId pick_fanin(const std::vector<NetId>& pool, double locality, Rng& rng) {
    assert(!pool.empty());
    if (pool.size() == 1 || !rng.next_bool(locality)) {
        return pool[rng.pick_index(pool.size())];
    }
    // Exponential bias: window of the most recent ~12%.
    const std::size_t window =
        std::max<std::size_t>(1, pool.size() / 8);
    return pool[pool.size() - 1 - rng.pick_index(window)];
}

}  // namespace

Netlist generate_random(std::shared_ptr<const CellLibrary> lib,
                        const GeneratorConfig& cfg) {
    if (cfg.num_inputs == 0) throw std::invalid_argument("generate_random: no inputs");
    Netlist nl(lib, "rand_" + std::to_string(cfg.seed));
    Rng rng(cfg.seed);

    std::vector<NetId> pool;
    for (std::size_t i = 0; i < cfg.num_inputs; ++i) {
        pool.push_back(nl.add_primary_input("pi" + std::to_string(i)));
    }

    // Flop outputs join the pool as pseudo-inputs; their D pins are
    // connected after all logic exists.
    const std::size_t dff = must_find(*lib, CellFunction::Dff);
    std::vector<InstId> flops;
    for (std::size_t i = 0; i < cfg.num_flops; ++i) {
        // Temporarily feed D from pi0; rewired below.
        const InstId f = nl.add_instance("ff" + std::to_string(i), dff, {pool[0]});
        flops.push_back(f);
        pool.push_back(nl.instance(f).output);
    }

    static const CellFunction kPlain[] = {
        CellFunction::Nand2, CellFunction::Nor2, CellFunction::And2,
        CellFunction::Or2,   CellFunction::Inv,  CellFunction::Aoi21,
        CellFunction::Oai21, CellFunction::Nand3, CellFunction::Nor3,
        CellFunction::Mux2,
    };
    static const CellFunction kXor[] = {CellFunction::Xor2, CellFunction::Xnor2};

    for (std::size_t g = 0; g < cfg.num_gates; ++g) {
        const CellFunction fn =
            rng.next_bool(cfg.xor_fraction)
                ? kXor[rng.pick_index(std::size(kXor))]
                : kPlain[rng.pick_index(std::size(kPlain))];
        const int arity = function_arity(fn);
        std::vector<NetId> fanins;
        fanins.reserve(static_cast<std::size_t>(arity));
        for (int p = 0; p < arity; ++p) {
            fanins.push_back(pick_fanin(pool, cfg.locality, rng));
        }
        const InstId id = nl.add_instance("g" + std::to_string(g),
                                          must_find(*lib, fn), fanins);
        pool.push_back(nl.instance(id).output);
    }

    // Rewire flop D inputs to late nets so state depends on the logic.
    for (InstId f : flops) {
        nl.connect_input(f, 0, pick_fanin(pool, cfg.locality, rng));
    }

    // Primary outputs observe the most recent nets (likely deep logic).
    for (std::size_t o = 0; o < cfg.num_outputs; ++o) {
        const NetId n = pool[pool.size() - 1 - (o % std::min(pool.size(), cfg.num_gates + 1))];
        nl.add_primary_output("po" + std::to_string(o), n);
    }
    return nl;
}

Netlist generate_adder(std::shared_ptr<const CellLibrary> lib, int bits) {
    if (bits < 1) throw std::invalid_argument("generate_adder: bits < 1");
    Netlist nl(lib, "adder" + std::to_string(bits));
    const std::size_t xor2 = must_find(*lib, CellFunction::Xor2);
    const std::size_t maj3 = must_find(*lib, CellFunction::Maj3);

    std::vector<NetId> a(static_cast<std::size_t>(bits)), b(static_cast<std::size_t>(bits));
    for (int i = 0; i < bits; ++i) a[static_cast<std::size_t>(i)] = nl.add_primary_input("a" + std::to_string(i));
    for (int i = 0; i < bits; ++i) b[static_cast<std::size_t>(i)] = nl.add_primary_input("b" + std::to_string(i));
    NetId carry = nl.add_primary_input("cin");

    for (int i = 0; i < bits; ++i) {
        const auto ui = static_cast<std::size_t>(i);
        const InstId axb = nl.add_instance("axb" + std::to_string(i), xor2, {a[ui], b[ui]});
        const InstId sum =
            nl.add_instance("sum" + std::to_string(i), xor2, {nl.instance(axb).output, carry});
        const InstId cy =
            nl.add_instance("cy" + std::to_string(i), maj3, {a[ui], b[ui], carry});
        nl.add_primary_output("s" + std::to_string(i), nl.instance(sum).output);
        carry = nl.instance(cy).output;
    }
    nl.add_primary_output("cout", carry);
    return nl;
}

Netlist generate_parity(std::shared_ptr<const CellLibrary> lib, int inputs) {
    if (inputs < 1) throw std::invalid_argument("generate_parity: inputs < 1");
    Netlist nl(lib, "parity" + std::to_string(inputs));
    const std::size_t xor2 = must_find(*lib, CellFunction::Xor2);
    std::vector<NetId> level;
    for (int i = 0; i < inputs; ++i) {
        level.push_back(nl.add_primary_input("x" + std::to_string(i)));
    }
    int g = 0;
    while (level.size() > 1) {
        std::vector<NetId> next;
        for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
            const InstId x = nl.add_instance("px" + std::to_string(g++), xor2,
                                             {level[i], level[i + 1]});
            next.push_back(nl.instance(x).output);
        }
        if (level.size() % 2 == 1) next.push_back(level.back());
        level = std::move(next);
    }
    nl.add_primary_output("parity", level.front());
    return nl;
}

Netlist generate_comparator(std::shared_ptr<const CellLibrary> lib, int bits) {
    if (bits < 1) throw std::invalid_argument("generate_comparator: bits < 1");
    Netlist nl(lib, "cmp" + std::to_string(bits));
    const std::size_t xnor2 = must_find(*lib, CellFunction::Xnor2);
    const std::size_t and2 = must_find(*lib, CellFunction::And2);
    std::vector<NetId> eq;
    std::vector<NetId> a(static_cast<std::size_t>(bits)), b(static_cast<std::size_t>(bits));
    for (int i = 0; i < bits; ++i) a[static_cast<std::size_t>(i)] = nl.add_primary_input("a" + std::to_string(i));
    for (int i = 0; i < bits; ++i) b[static_cast<std::size_t>(i)] = nl.add_primary_input("b" + std::to_string(i));
    for (int i = 0; i < bits; ++i) {
        const auto ui = static_cast<std::size_t>(i);
        const InstId x = nl.add_instance("eq" + std::to_string(i), xnor2, {a[ui], b[ui]});
        eq.push_back(nl.instance(x).output);
    }
    int g = 0;
    while (eq.size() > 1) {
        std::vector<NetId> next;
        for (std::size_t i = 0; i + 1 < eq.size(); i += 2) {
            const InstId x =
                nl.add_instance("and" + std::to_string(g++), and2, {eq[i], eq[i + 1]});
            next.push_back(nl.instance(x).output);
        }
        if (eq.size() % 2 == 1) next.push_back(eq.back());
        eq = std::move(next);
    }
    nl.add_primary_output("equal", eq.front());
    return nl;
}

Netlist generate_counter(std::shared_ptr<const CellLibrary> lib, int bits) {
    if (bits < 1) throw std::invalid_argument("generate_counter: bits < 1");
    Netlist nl(lib, "counter" + std::to_string(bits));
    const std::size_t dff = must_find(*lib, CellFunction::Dff);
    const std::size_t xor2 = must_find(*lib, CellFunction::Xor2);
    const std::size_t and2 = must_find(*lib, CellFunction::And2);
    const NetId en = nl.add_primary_input("enable");

    // Create flops first (D temporarily tied to enable), then build the
    // increment network q XOR carry-chain and rewire D pins.
    std::vector<InstId> flops;
    for (int i = 0; i < bits; ++i) {
        flops.push_back(nl.add_instance("q" + std::to_string(i), dff, {en}));
    }
    NetId carry = en;
    for (int i = 0; i < bits; ++i) {
        const auto ui = static_cast<std::size_t>(i);
        const NetId q = nl.instance(flops[ui]).output;
        const InstId sum = nl.add_instance("inc" + std::to_string(i), xor2, {q, carry});
        nl.connect_input(flops[ui], 0, nl.instance(sum).output);
        if (i + 1 < bits) {
            const InstId cy = nl.add_instance("cc" + std::to_string(i), and2, {q, carry});
            carry = nl.instance(cy).output;
        }
        nl.add_primary_output("count" + std::to_string(i), q);
    }
    return nl;
}

Netlist generate_mesh(std::shared_ptr<const CellLibrary> lib,
                      std::size_t num_gates, std::uint64_t seed,
                      int pipeline_stages) {
    if (num_gates == 0) throw std::invalid_argument("generate_mesh: no gates");
    Netlist nl(lib, "mesh" + std::to_string(num_gates));
    Rng rng(seed);
    const std::size_t side = std::max<std::size_t>(
        2, static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(num_gates)))));
    const std::size_t regs_every =
        pipeline_stages > 0
            ? std::max<std::size_t>(1, side / (static_cast<std::size_t>(pipeline_stages) + 1))
            : 0;
    const auto dff = lib->find_function(CellFunction::Dff);

    static const CellFunction kFns[] = {
        CellFunction::Nand2, CellFunction::Nor2, CellFunction::Xor2,
        CellFunction::And2,  CellFunction::Aoi21, CellFunction::Mux2,
    };

    // grid[col][row] = output net of the gate (or PI for column -1).
    std::vector<NetId> prev_col, cur_col;
    for (std::size_t r = 0; r < side; ++r) {
        prev_col.push_back(nl.add_primary_input("pi" + std::to_string(r)));
    }
    std::size_t made = 0;
    int g = 0;
    int ff = 0;
    for (std::size_t col = 0; col < side && made < num_gates; ++col) {
        // Pipeline boundary: register the whole previous column.
        if (regs_every > 0 && col > 0 && col % regs_every == 0 && dff) {
            for (NetId& net : prev_col) {
                const InstId f =
                    nl.add_instance("ppl" + std::to_string(ff++), *dff, {net});
                net = nl.instance(f).output;
            }
        }
        cur_col.clear();
        for (std::size_t row = 0; row < side && made < num_gates; ++row) {
            const CellFunction fn = kFns[rng.pick_index(std::size(kFns))];
            const int arity = function_arity(fn);
            std::vector<NetId> fanins;
            for (int p = 0; p < arity; ++p) {
                // Window: previous column, rows within +-2 (clamped; a
                // wrap-around would create die-spanning nets no placement
                // can shorten).
                const auto lo = static_cast<std::int64_t>(row) - 2;
                const auto hi = static_cast<std::int64_t>(row) + 2;
                const auto r2 = static_cast<std::size_t>(std::clamp<std::int64_t>(
                    rng.next_in(lo, hi), 0,
                    static_cast<std::int64_t>(side) - 1));
                fanins.push_back(prev_col[r2 % prev_col.size()]);
            }
            const InstId id =
                nl.add_instance("m" + std::to_string(g++), must_find(*lib, fn), fanins);
            cur_col.push_back(nl.instance(id).output);
            ++made;
        }
        prev_col = cur_col;
    }
    for (std::size_t r = 0; r < prev_col.size(); ++r) {
        nl.add_primary_output("po" + std::to_string(r), prev_col[r]);
    }
    return nl;
}

Netlist generate_multiplier(std::shared_ptr<const CellLibrary> lib, int bits) {
    if (bits < 1) throw std::invalid_argument("generate_multiplier: bits < 1");
    Netlist nl(lib, "mult" + std::to_string(bits));
    const std::size_t and2 = must_find(*lib, CellFunction::And2);
    const std::size_t xor2 = must_find(*lib, CellFunction::Xor2);
    const std::size_t maj3 = must_find(*lib, CellFunction::Maj3);
    const auto ub = static_cast<std::size_t>(bits);

    std::vector<NetId> a(ub), b(ub);
    for (int i = 0; i < bits; ++i) a[static_cast<std::size_t>(i)] = nl.add_primary_input("a" + std::to_string(i));
    for (int i = 0; i < bits; ++i) b[static_cast<std::size_t>(i)] = nl.add_primary_input("b" + std::to_string(i));

    // Partial products pp[i][j] = a[i] & b[j]; accumulate row by row with
    // ripple adders (simple array multiplier).
    std::vector<NetId> acc;  // running sum, LSB first
    int g = 0;
    for (std::size_t j = 0; j < ub; ++j) {
        std::vector<NetId> row(ub);
        for (std::size_t i = 0; i < ub; ++i) {
            const InstId pp = nl.add_instance("pp" + std::to_string(g++), and2, {a[i], b[j]});
            row[i] = nl.instance(pp).output;
        }
        if (j == 0) {
            acc = row;
            continue;
        }
        // Add row (shifted by j) into acc.
        std::vector<NetId> next(acc.begin(), acc.begin() + static_cast<std::ptrdiff_t>(j));
        NetId carry = kNoNet;
        for (std::size_t i = 0; i < ub; ++i) {
            const NetId x = (j + i < acc.size()) ? acc[j + i] : kNoNet;
            const NetId y = row[i];
            if (x == kNoNet && carry == kNoNet) {
                next.push_back(y);
            } else if (carry == kNoNet) {
                const InstId s = nl.add_instance("ha_s" + std::to_string(g), xor2, {x, y});
                const InstId cj = nl.add_instance("ha_c" + std::to_string(g++), and2, {x, y});
                next.push_back(nl.instance(s).output);
                carry = nl.instance(cj).output;
            } else if (x == kNoNet) {
                const InstId s = nl.add_instance("ha_s" + std::to_string(g), xor2, {y, carry});
                const InstId cj = nl.add_instance("ha_c" + std::to_string(g++), and2, {y, carry});
                next.push_back(nl.instance(s).output);
                carry = nl.instance(cj).output;
            } else {
                const InstId t = nl.add_instance("fa_t" + std::to_string(g), xor2, {x, y});
                const InstId s = nl.add_instance("fa_s" + std::to_string(g), xor2,
                                                 {nl.instance(t).output, carry});
                const InstId cj = nl.add_instance("fa_c" + std::to_string(g++), maj3,
                                                  {x, y, carry});
                next.push_back(nl.instance(s).output);
                carry = nl.instance(cj).output;
            }
        }
        if (carry != kNoNet) next.push_back(carry);
        acc = std::move(next);
    }
    for (std::size_t i = 0; i < acc.size(); ++i) {
        nl.add_primary_output("p" + std::to_string(i), acc[i]);
    }
    return nl;
}

}  // namespace janus
