#pragma once
/// \file technology.hpp
/// Technology-node parameter sets. The panel discusses nodes from 180 nm
/// ("the most designed node") down to 10/7/5 nm; each JanusEDA model
/// (delay, power, routing pitch, economics) is parameterized by one of
/// these descriptors so experiments can sweep across nodes.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace janus {

/// One manufacturing process node. Electrical values are first-order
/// scaling models calibrated to public ITRS-era trends — good enough to
/// reproduce the *shape* of cross-node comparisons, which is all the panel
/// claims require.
struct TechnologyNode {
    std::string name;          ///< e.g. "28nm"
    double feature_nm = 0;     ///< drawn feature size in nanometers
    double metal_pitch_nm = 0; ///< minimum metal pitch (single patterning limit is ~80 nm)
    int max_layers = 0;        ///< metal layers available in the full stack
    double vdd = 0;            ///< nominal supply voltage (V)
    double gate_cap_ff = 0;    ///< input capacitance of a min-size inverter (fF)
    double gate_delay_ps = 0;  ///< FO4-ish delay of a min-size inverter (ps)
    double leak_nw = 0;        ///< leakage of a min-size inverter (nW) at nominal Vdd
    double track_um = 0;       ///< site/track pitch used by the placer (um)

    // Economics (E13): all costs in millions of USD except wafer cost.
    double mask_set_cost_musd = 0; ///< full mask set cost, M$
    double nre_musd = 0;           ///< typical design NRE at this node, M$
    double wafer_cost_usd = 0;     ///< processed 300 mm wafer cost, $
    double transistors_per_mm2_m = 0; ///< logic density, millions of transistors / mm^2

    /// Patterning multiplicity the minimum pitch requires at 193 nm
    /// immersion: 1 (single), 2 (double), 3 (triple), 4 (quadruple)...
    int patterning_factor() const;
};

/// The built-in node table: 180, 130, 90, 65, 40, 28, 20, 14, 10, 7, 5 nm.
const std::vector<TechnologyNode>& standard_nodes();

/// Finds a node by name (e.g. "28nm"); std::nullopt when unknown.
std::optional<TechnologyNode> find_node(const std::string& name);

/// Minimum pitch printable with single-pattern 193 nm immersion lithography
/// (the panel cites "approximately 80 nanometers").
inline constexpr double kSinglePatternPitchNm = 80.0;

}  // namespace janus
