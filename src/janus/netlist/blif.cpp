#include "janus/netlist/blif.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "janus/netlist/gate_builder.hpp"

namespace janus {
namespace {

struct NamesBlock {
    std::vector<std::string> ins;
    std::string out;
    std::vector<std::string> rows;  ///< input planes ({0,1,-} strings)
    char out_val = '1';             ///< shared output column of every row
    bool saw_row = false;
    std::size_t line = 0;
};

struct LatchDecl {
    std::string in, out;
    int init = 0;
    std::size_t line = 0;
};

[[noreturn]] void fail(std::size_t line, const std::string& why) {
    throw std::runtime_error("read_blif: line " + std::to_string(line) + ": " + why);
}

/// One logical line: '#' comments stripped, '\' continuations joined.
/// Returns false at EOF with `tokens` empty.
bool next_logical_line(std::istream& is, std::size_t& line_no,
                       std::vector<std::string>& tokens, std::size_t& at) {
    tokens.clear();
    std::string line;
    bool started = false;
    while (std::getline(is, line)) {
        ++line_no;
        if (!started) at = line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos) line.erase(hash);
        bool cont = false;
        const auto bs = line.find_last_not_of(" \t\r");
        if (bs != std::string::npos && line[bs] == '\\') {
            line.erase(bs);
            cont = true;
        }
        std::istringstream ls(line);
        std::string tok;
        while (ls >> tok) tokens.push_back(std::move(tok));
        started = started || !tokens.empty() || cont;
        if (cont) continue;
        if (!tokens.empty()) return true;
        started = false;  // blank line: keep scanning
    }
    return !tokens.empty();
}

}  // namespace

Netlist read_blif(std::istream& is, std::shared_ptr<const CellLibrary> lib) {
    std::string model;
    bool got_model = false, got_end = false;
    std::vector<std::string> inputs, outputs;
    std::vector<NamesBlock> names;
    std::vector<LatchDecl> latches;
    std::vector<std::pair<std::string, std::size_t>> input_lines;

    std::vector<std::string> tok;
    std::size_t line_no = 0, at = 0;
    while (next_logical_line(is, line_no, tok, at)) {
        const std::string& kw = tok[0];
        if (kw[0] != '.') {
            // A cover row of the open .names block.
            if (names.empty() || got_end) fail(at, "cover row outside .names");
            NamesBlock& b = names.back();
            const std::size_t k = b.ins.size();
            std::string plane;
            char val = 0;
            if (k == 0) {
                if (tok.size() != 1 || tok[0].size() != 1) {
                    fail(at, "constant .names row must be a single 0/1");
                }
                val = tok[0][0];
            } else {
                if (tok.size() != 2 || tok[1].size() != 1) {
                    fail(at, ".names row needs <plane> <value>");
                }
                plane = tok[0];
                val = tok[1][0];
                if (plane.size() != k) {
                    fail(at, "cover row width " + std::to_string(plane.size()) +
                                 " != " + std::to_string(k) + " inputs");
                }
                for (char c : plane) {
                    if (c != '0' && c != '1' && c != '-') {
                        fail(at, std::string("bad cover literal '") + c + "'");
                    }
                }
            }
            if (val != '0' && val != '1') fail(at, "cover output must be 0 or 1");
            if (b.saw_row && val != b.out_val) {
                fail(at, "mixed ON-set/OFF-set rows in one cover");
            }
            b.out_val = val;
            b.saw_row = true;
            b.rows.push_back(std::move(plane));
            continue;
        }
        if (got_end && kw != ".model") fail(at, kw + " after .end");
        if (kw == ".model") {
            if (got_model) fail(at, "duplicate .model (one model per file)");
            if (tok.size() != 2) fail(at, ".model needs exactly one name");
            model = tok[1];
            got_model = true;
        } else if (kw == ".inputs") {
            for (std::size_t i = 1; i < tok.size(); ++i) {
                inputs.push_back(tok[i]);
                input_lines.emplace_back(tok[i], at);
            }
        } else if (kw == ".outputs") {
            outputs.insert(outputs.end(), tok.begin() + 1, tok.end());
        } else if (kw == ".names") {
            if (tok.size() < 2) fail(at, ".names needs at least an output");
            NamesBlock b;
            b.ins.assign(tok.begin() + 1, tok.end() - 1);
            b.out = tok.back();
            b.line = at;
            names.push_back(std::move(b));
        } else if (kw == ".latch") {
            // .latch <in> <out> [<type> <clk>] <init> — the init value is
            // required (see blif.hpp): 2- and 4-operand forms are the
            // "forgot the init" spellings and are rejected.
            LatchDecl l;
            l.line = at;
            if (tok.size() == 4 || tok.size() == 6) {
                l.in = tok[1];
                l.out = tok[2];
                const std::string& init = tok.back();
                if (init.size() != 1 || init[0] < '0' || init[0] > '3') {
                    fail(at, "latch init must be 0, 1, 2 or 3, got '" + init + "'");
                }
                l.init = init[0] - '0';
            } else if (tok.size() == 3 || tok.size() == 5) {
                fail(at, ".latch " + tok[1] +
                             ": missing init value (0/1/2/3 is required)");
            } else {
                fail(at, ".latch needs <in> <out> [<type> <clk>] <init>");
            }
            latches.push_back(std::move(l));
        } else if (kw == ".end") {
            got_end = true;
        } else if (kw == ".clock") {
            // Single-clock model: the netlist's implicit clock; ignored.
        } else if (kw == ".subckt" || kw == ".gate" || kw == ".mlatch" ||
                   kw == ".exdc") {
            fail(at, kw + " is not supported (flat single-model BLIF only)");
        } else {
            fail(at, "unknown directive: " + kw);
        }
    }
    if (!got_model) throw std::runtime_error("read_blif: missing .model");

    Netlist nl(lib, model);
    std::map<std::string, NetId> net_of;
    const auto define = [&](const std::string& sig, NetId net, std::size_t where) {
        if (!net_of.emplace(sig, net).second) fail(where, "signal redefined: " + sig);
    };
    for (const auto& [sig, where] : input_lines) {
        define(sig, nl.add_primary_input(sig), where);
    }

    const auto dff_cell = lib->find_function(CellFunction::Dff);
    std::vector<InstId> latch_insts;
    for (const LatchDecl& l : latches) {
        if (!dff_cell) fail(l.line, "library has no DFF cell");
        const InstId id = nl.add_instance(l.out, *dff_cell, {kNoNet});
        define(l.out, nl.instance(id).output, l.line);
        latch_insts.push_back(id);
    }

    // Shared inverter cache so `0` literals of the same signal reuse one
    // Inv instance; named after the source net id (deterministic, and the
    // `_inv_` infix cannot collide with BLIF signal tokens we define).
    std::map<NetId, NetId> inv_of;
    const auto inverted = [&](NetId n) {
        const auto it = inv_of.find(n);
        if (it != inv_of.end()) return it->second;
        const NetId r = build_unary(nl, true, n, "_inv_n" + std::to_string(n));
        inv_of.emplace(n, r);
        return r;
    };

    // Constant drivers, one per design.
    NetId const_net[2] = {kNoNet, kNoNet};
    const auto constant = [&](bool one) {
        NetId& slot = const_net[one ? 1 : 0];
        if (slot == kNoNet) slot = build_const(nl, one, one ? "_const1" : "_const0");
        return slot;
    };

    const auto build_names = [&](const NamesBlock& b) {
        std::vector<NetId> ins;
        ins.reserve(b.ins.size());
        for (const std::string& s : b.ins) ins.push_back(net_of.at(s));
        const bool on_set = b.out_val == '1';
        // No rows: empty ON-set, constant 0 (the classic BLIF idiom for a
        // ground net). An all-don't-care row makes the cover constant too.
        if (b.rows.empty()) {
            define(b.out, constant(false), b.line);
            return;
        }
        GateNamer namer{b.out, 0};
        std::vector<NetId> cubes;
        for (const std::string& plane : b.rows) {
            std::vector<NetId> lits;
            for (std::size_t i = 0; i < plane.size(); ++i) {
                if (plane[i] == '1') lits.push_back(ins[i]);
                if (plane[i] == '0') lits.push_back(inverted(ins[i]));
            }
            if (lits.empty()) {
                // Tautological cube: the whole cover is constant.
                define(b.out, constant(on_set), b.line);
                return;
            }
            if (lits.size() == 1) {
                cubes.push_back(lits[0]);
            } else if (b.rows.size() == 1) {
                // Single-cube cover: the AND tree IS the function (root
                // named `out`, NAND'd for OFF-set form).
                define(b.out,
                       build_gate_tree(nl, GateTreeKind::And, !on_set, lits, namer),
                       b.line);
                return;
            } else {
                GateNamer cube_namer{namer.next(), 0};
                cubes.push_back(
                    build_gate_tree(nl, GateTreeKind::And, false, lits, cube_namer));
            }
        }
        define(b.out, build_gate_tree(nl, GateTreeKind::Or, !on_set, cubes, namer),
               b.line);
    };

    // Dependency-ordered construction (forward references allowed), with
    // undefined-signal vs cycle diagnosis when a sweep makes no progress.
    std::vector<const NamesBlock*> todo;
    for (const NamesBlock& b : names) todo.push_back(&b);
    while (!todo.empty()) {
        std::vector<const NamesBlock*> stuck;
        for (const NamesBlock* b : todo) {
            const bool ready = std::all_of(
                b->ins.begin(), b->ins.end(),
                [&](const std::string& s) { return net_of.count(s) != 0; });
            if (ready) {
                build_names(*b);
            } else {
                stuck.push_back(b);
            }
        }
        if (stuck.size() == todo.size()) {
            for (const NamesBlock* b : stuck) {
                for (const std::string& s : b->ins) {
                    const bool defined_somewhere =
                        net_of.count(s) ||
                        std::any_of(names.begin(), names.end(),
                                    [&](const NamesBlock& h) { return h.out == s; });
                    if (!defined_somewhere) {
                        fail(b->line, ".names " + b->out +
                                          " references undefined signal " + s);
                    }
                }
            }
            fail(stuck.front()->line,
                 "combinational cycle involving signal " + stuck.front()->out);
        }
        todo = std::move(stuck);
    }

    for (std::size_t i = 0; i < latches.size(); ++i) {
        const auto it = net_of.find(latches[i].in);
        if (it == net_of.end()) {
            fail(latches[i].line, ".latch " + latches[i].out +
                                      " references undefined signal " + latches[i].in);
        }
        nl.connect_input(latch_insts[i], 0, it->second);
    }
    for (const std::string& sig : outputs) {
        const auto it = net_of.find(sig);
        if (it == net_of.end()) {
            throw std::runtime_error("read_blif: .outputs references undefined signal " +
                                     sig);
        }
        nl.add_primary_output(sig, it->second);
    }
    return nl;
}

Netlist blif_from_string(const std::string& text,
                         std::shared_ptr<const CellLibrary> lib) {
    std::istringstream ss(text);
    return read_blif(ss, std::move(lib));
}

}  // namespace janus
