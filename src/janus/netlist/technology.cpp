#include "janus/netlist/technology.hpp"

#include <cmath>

namespace janus {

int TechnologyNode::patterning_factor() const {
    if (metal_pitch_nm <= 0) return 1;
    return static_cast<int>(std::ceil(kSinglePatternPitchNm / metal_pitch_nm));
}

const std::vector<TechnologyNode>& standard_nodes() {
    // name, feature, pitch, layers, vdd, cap, delay, leak, track,
    // masks M$, NRE M$, wafer $, MTr/mm^2
    static const std::vector<TechnologyNode> nodes = {
        {"180nm", 180, 560, 6, 1.80, 4.00, 80.0, 0.010, 0.56, 0.25, 2.5, 1500, 0.14},
        {"130nm", 130, 410, 6, 1.50, 3.00, 55.0, 0.030, 0.41, 0.50, 5.0, 1800, 0.27},
        {"90nm", 90, 280, 7, 1.20, 2.20, 40.0, 0.100, 0.28, 1.00, 12.0, 2200, 0.55},
        {"65nm", 65, 200, 8, 1.10, 1.60, 30.0, 0.180, 0.20, 1.80, 20.0, 2700, 1.1},
        {"40nm", 40, 140, 9, 1.00, 1.15, 22.0, 0.300, 0.14, 3.00, 35.0, 3500, 2.4},
        {"28nm", 28, 100, 10, 0.95, 0.85, 16.0, 0.450, 0.10, 4.50, 55.0, 4200, 4.5},
        {"20nm", 20, 64, 10, 0.90, 0.62, 12.0, 0.600, 0.064, 7.00, 120.0, 5200, 8.0},
        {"14nm", 14, 52, 11, 0.80, 0.45, 9.0, 0.700, 0.052, 10.00, 180.0, 6500, 15.0},
        {"10nm", 10, 44, 12, 0.75, 0.33, 7.0, 0.800, 0.044, 14.00, 280.0, 8000, 28.0},
        {"7nm", 7, 36, 13, 0.70, 0.24, 5.5, 0.900, 0.036, 20.00, 400.0, 9500, 50.0},
        {"5nm", 5, 28, 14, 0.65, 0.18, 4.5, 1.000, 0.028, 30.00, 550.0, 12000, 90.0},
    };
    return nodes;
}

std::optional<TechnologyNode> find_node(const std::string& name) {
    for (const TechnologyNode& n : standard_nodes()) {
        if (n.name == name) return n;
    }
    return std::nullopt;
}

}  // namespace janus
