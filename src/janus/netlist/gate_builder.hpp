#pragma once
/// \file gate_builder.hpp
/// Wide-gate construction over the cell library: the BLIF and ISCAS
/// readers (blif.hpp, iscas.hpp) deal in N-ary AND/OR/XOR terms while the
/// library tops out at 4-input cells, so both decompose through this
/// shared builder. Trees are built greedily from the widest available
/// drive-1 variant (And4/Or4, then 3, then 2); an inverted root uses the
/// matching Nand/Nor/Xnor cell when the library has one at the final
/// arity, else a positive root plus an explicit inverter. Construction is
/// deterministic: internal instances are named `<prefix>_t<counter>` in
/// creation order, so the same input file always produces the same
/// netlist bytes.

#include <string>
#include <vector>

#include "janus/netlist/netlist.hpp"

namespace janus {

/// Base function family of a gate tree.
enum class GateTreeKind { And, Or, Xor };

/// Deterministic name source for a builder's internal tree nodes.
struct GateNamer {
    std::string prefix;  ///< usually the output signal name
    int counter = 0;
    std::string next() { return prefix + "_t" + std::to_string(counter++); }
};

/// Builds `kind` over `leaves` (>= 1 net, kNoNet not allowed) and returns
/// the net of the tree root. `invert_root` complements the function
/// (NAND/NOR/XNOR). The root instance is named `namer.prefix` so the tree
/// output is addressable by its source-file signal name; inner nodes get
/// namer.next() names. A single leaf builds a Buf (or Inv) so the result
/// always has its own driving instance. Throws std::runtime_error when the
/// library lacks the required 2-input cells.
NetId build_gate_tree(Netlist& nl, GateTreeKind kind, bool invert_root,
                      const std::vector<NetId>& leaves, GateNamer& namer);

/// Buf/Inv wrapper named `name`.
NetId build_unary(Netlist& nl, bool invert, NetId in, const std::string& name);

/// Const0/Const1 instance named `name`; callers memoize per design.
NetId build_const(Netlist& nl, bool one, const std::string& name);

}  // namespace janus
