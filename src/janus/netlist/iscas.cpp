#include "janus/netlist/iscas.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "janus/netlist/gate_builder.hpp"

namespace janus {
namespace {

std::string upper(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
    return s;
}

std::string trim(const std::string& s) {
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return s.substr(b, e - b);
}

struct BenchGate {
    std::string out;
    std::string type;  ///< uppercased gate keyword
    std::vector<std::string> ins;
    std::size_t line = 0;
};

[[noreturn]] void fail(std::size_t line, const std::string& why) {
    throw std::runtime_error("read_iscas: line " + std::to_string(line) + ": " + why);
}

}  // namespace

Netlist read_iscas(std::istream& is, std::shared_ptr<const CellLibrary> lib,
                   const std::string& name) {
    std::vector<std::pair<std::string, std::size_t>> inputs;   // signal, line
    std::vector<std::pair<std::string, std::size_t>> outputs;  // signal, line
    std::vector<BenchGate> gates;

    std::string line;
    std::size_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos) line.erase(hash);
        const std::string text = trim(line);
        if (text.empty()) continue;

        const auto eq = text.find('=');
        const auto open = text.find('(');
        const auto close = text.rfind(')');
        if (eq == std::string::npos) {
            // INPUT(sig) / OUTPUT(sig)
            if (open == std::string::npos || close == std::string::npos || close < open) {
                fail(line_no, "expected INPUT(...), OUTPUT(...) or <sig> = GATE(...)");
            }
            const std::string kw = upper(trim(text.substr(0, open)));
            const std::string sig = trim(text.substr(open + 1, close - open - 1));
            if (sig.empty()) fail(line_no, kw + " needs a signal name");
            if (kw == "INPUT") {
                inputs.emplace_back(sig, line_no);
            } else if (kw == "OUTPUT") {
                outputs.emplace_back(sig, line_no);
            } else {
                fail(line_no, "unknown directive: " + kw);
            }
            continue;
        }
        if (open == std::string::npos || close == std::string::npos ||
            close < open || open < eq) {
            fail(line_no, "malformed gate line (expected <sig> = GATE(a, b, ...))");
        }
        BenchGate g;
        g.out = trim(text.substr(0, eq));
        g.type = upper(trim(text.substr(eq + 1, open - eq - 1)));
        g.line = line_no;
        if (g.out.empty()) fail(line_no, "missing output signal before '='");
        std::string args = text.substr(open + 1, close - open - 1);
        std::replace(args.begin(), args.end(), ',', ' ');
        std::istringstream as(args);
        std::string tok;
        while (as >> tok) g.ins.push_back(tok);
        if (g.ins.empty()) fail(line_no, g.type + " needs at least one input");
        gates.push_back(std::move(g));
    }

    Netlist nl(lib, name);
    std::map<std::string, NetId> net_of;
    const auto define = [&](const std::string& sig, NetId net, std::size_t at) {
        if (!net_of.emplace(sig, net).second) {
            fail(at, "signal redefined: " + sig);
        }
    };
    for (const auto& [sig, at] : inputs) define(sig, nl.add_primary_input(sig), at);

    // Sequential elements first: their Q nets are sources the combinational
    // build below can reference in any order; D connects at the end.
    std::vector<std::pair<InstId, const BenchGate*>> dffs;
    const auto dff_cell = lib->find_function(CellFunction::Dff);
    for (const BenchGate& g : gates) {
        if (g.type != "DFF") continue;
        if (g.ins.size() != 1) fail(g.line, "DFF takes exactly one input");
        if (!dff_cell) fail(g.line, "library has no DFF cell");
        const InstId id = nl.add_instance(g.out, *dff_cell, {kNoNet});
        define(g.out, nl.instance(id).output, g.line);
        dffs.emplace_back(id, &g);
    }

    // Combinational gates build in dependency order: repeatedly sweep the
    // file-ordered list for gates whose fanins are all defined. A stuck
    // sweep distinguishes an undefined signal from a combinational cycle
    // and names the culprit either way.
    const auto build_gate = [&](const BenchGate& g) {
        std::vector<NetId> ins;
        ins.reserve(g.ins.size());
        for (const std::string& s : g.ins) ins.push_back(net_of.at(s));
        GateNamer namer{g.out, 0};
        NetId out = kNoNet;
        if (g.type == "NOT") {
            if (ins.size() != 1) fail(g.line, "NOT takes exactly one input");
            out = build_unary(nl, true, ins[0], g.out);
        } else if (g.type == "BUF" || g.type == "BUFF") {
            if (ins.size() != 1) fail(g.line, g.type + " takes exactly one input");
            out = build_unary(nl, false, ins[0], g.out);
        } else if (g.type == "AND" || g.type == "NAND") {
            out = build_gate_tree(nl, GateTreeKind::And, g.type == "NAND", ins, namer);
        } else if (g.type == "OR" || g.type == "NOR") {
            out = build_gate_tree(nl, GateTreeKind::Or, g.type == "NOR", ins, namer);
        } else if (g.type == "XOR" || g.type == "XNOR") {
            out = build_gate_tree(nl, GateTreeKind::Xor, g.type == "XNOR", ins, namer);
        } else {
            fail(g.line, "unknown gate type: " + g.type);
        }
        define(g.out, out, g.line);
    };

    std::vector<const BenchGate*> todo;
    for (const BenchGate& g : gates) {
        if (g.type != "DFF") todo.push_back(&g);
    }
    while (!todo.empty()) {
        std::vector<const BenchGate*> stuck;
        for (const BenchGate* g : todo) {
            const bool ready = std::all_of(
                g->ins.begin(), g->ins.end(),
                [&](const std::string& s) { return net_of.count(s) != 0; });
            if (ready) {
                build_gate(*g);
            } else {
                stuck.push_back(g);
            }
        }
        if (stuck.size() == todo.size()) {
            // No progress: either a fanin nobody defines, or a cycle.
            for (const BenchGate* g : stuck) {
                for (const std::string& s : g->ins) {
                    const bool defined_somewhere =
                        net_of.count(s) ||
                        std::any_of(gates.begin(), gates.end(),
                                    [&](const BenchGate& h) { return h.out == s; });
                    if (!defined_somewhere) {
                        fail(g->line, "gate " + g->out +
                                          " references undefined signal " + s);
                    }
                }
            }
            fail(stuck.front()->line,
                 "combinational cycle involving signal " + stuck.front()->out);
        }
        todo = std::move(stuck);
    }

    for (auto& [id, g] : dffs) {
        const auto it = net_of.find(g->ins[0]);
        if (it == net_of.end()) {
            fail(g->line, "DFF " + g->out + " references undefined signal " + g->ins[0]);
        }
        nl.connect_input(id, 0, it->second);
    }
    for (const auto& [sig, at] : outputs) {
        const auto it = net_of.find(sig);
        if (it == net_of.end()) fail(at, "OUTPUT references undefined signal " + sig);
        nl.add_primary_output(sig, it->second);
    }
    if (nl.primary_inputs().empty() && gates.empty()) {
        throw std::runtime_error("read_iscas: empty .bench input");
    }
    return nl;
}

Netlist iscas_from_string(const std::string& text,
                          std::shared_ptr<const CellLibrary> lib,
                          const std::string& name) {
    std::istringstream ss(text);
    return read_iscas(ss, std::move(lib), name);
}

}  // namespace janus
