#pragma once
/// \file blif.hpp
/// Berkeley Logic Interchange Format (BLIF) reader: the format the
/// LGSynth/MCNC benchmark sets and most academic synthesis tools exchange.
/// Supported subset (docs/IO.md has the full grammar):
///
///   .model <name>                  # exactly one per file
///   .inputs <sig> ...              # may repeat / continue with '\'
///   .outputs <sig> ...
///   .names <in> ... <out>          # SOP cover rows follow: e.g. "1-0 1"
///   .latch <in> <out> [<type> <clk>] <init>
///   .end
///
/// Cover rows use {0,1,-} input literals and a single constant output
/// column; every row of one cover must agree on the output value (ON-set
/// or OFF-set form). Covers build as AND/OR/INV trees over the library
/// via gate_builder.hpp. Latches become DFF instances; the init value is
/// REQUIRED here (0/1/2/3 per BLIF) — a `.latch` without it is rejected,
/// because silently defaulting the power-up state has burned too many
/// netlist round-trips. A second `.model` (including concatenated files)
/// is rejected. `.subckt`/`.exdc` and other hierarchical constructs are
/// unsupported and produce a clear error rather than silent misparses.

#include <iosfwd>
#include <memory>
#include <string>

#include "janus/netlist/netlist.hpp"

namespace janus {

/// Parses one BLIF model into a netlist over `lib`. Throws
/// std::runtime_error naming the line on malformed input.
Netlist read_blif(std::istream& is, std::shared_ptr<const CellLibrary> lib);

/// Convenience: parse from a string.
Netlist blif_from_string(const std::string& text,
                         std::shared_ptr<const CellLibrary> lib);

}  // namespace janus
