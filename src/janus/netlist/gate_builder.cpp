#include "janus/netlist/gate_builder.hpp"

#include <algorithm>
#include <stdexcept>

namespace janus {
namespace {

/// Positive-phase cell for `kind` at `arity` (2..4); nullopt when the
/// library has no such cell.
std::optional<std::size_t> positive_cell(const CellLibrary& lib,
                                         GateTreeKind kind, int arity) {
    switch (kind) {
        case GateTreeKind::And:
            if (arity == 2) return lib.find_function(CellFunction::And2);
            if (arity == 3) return lib.find_function(CellFunction::And3);
            if (arity == 4) return lib.find_function(CellFunction::And4);
            break;
        case GateTreeKind::Or:
            if (arity == 2) return lib.find_function(CellFunction::Or2);
            if (arity == 3) return lib.find_function(CellFunction::Or3);
            if (arity == 4) return lib.find_function(CellFunction::Or4);
            break;
        case GateTreeKind::Xor:
            if (arity == 2) return lib.find_function(CellFunction::Xor2);
            if (arity == 3) return lib.find_function(CellFunction::Xor3);
            break;
    }
    return std::nullopt;
}

std::optional<std::size_t> inverted_cell(const CellLibrary& lib,
                                         GateTreeKind kind, int arity) {
    switch (kind) {
        case GateTreeKind::And:
            if (arity == 2) return lib.find_function(CellFunction::Nand2);
            if (arity == 3) return lib.find_function(CellFunction::Nand3);
            if (arity == 4) return lib.find_function(CellFunction::Nand4);
            break;
        case GateTreeKind::Or:
            if (arity == 2) return lib.find_function(CellFunction::Nor2);
            if (arity == 3) return lib.find_function(CellFunction::Nor3);
            if (arity == 4) return lib.find_function(CellFunction::Nor4);
            break;
        case GateTreeKind::Xor:
            if (arity == 2) return lib.find_function(CellFunction::Xnor2);
            break;
    }
    return std::nullopt;
}

/// Widest positive cell arity available for one reduction step.
int widest_arity(const CellLibrary& lib, GateTreeKind kind, int want) {
    for (int a = std::min(want, kind == GateTreeKind::Xor ? 3 : 4); a >= 2; --a) {
        if (positive_cell(lib, kind, a)) return a;
    }
    throw std::runtime_error("gate_builder: library lacks 2-input " +
                             std::string(kind == GateTreeKind::And   ? "AND"
                                         : kind == GateTreeKind::Or ? "OR"
                                                                    : "XOR") +
                             " cells");
}

}  // namespace

NetId build_unary(Netlist& nl, bool invert, NetId in, const std::string& name) {
    const auto cell = nl.library().find_function(invert ? CellFunction::Inv
                                                        : CellFunction::Buf);
    if (!cell) {
        throw std::runtime_error("gate_builder: library lacks " +
                                 std::string(invert ? "Inv" : "Buf"));
    }
    const InstId id = nl.add_instance(name, *cell, {in});
    return nl.instance(id).output;
}

NetId build_const(Netlist& nl, bool one, const std::string& name) {
    const auto cell = nl.library().find_function(one ? CellFunction::Const1
                                                     : CellFunction::Const0);
    if (!cell) {
        throw std::runtime_error("gate_builder: library lacks constant cells");
    }
    const InstId id = nl.add_instance(name, *cell, {});
    return nl.instance(id).output;
}

NetId build_gate_tree(Netlist& nl, GateTreeKind kind, bool invert_root,
                      const std::vector<NetId>& leaves, GateNamer& namer) {
    if (leaves.empty()) {
        throw std::runtime_error("gate_builder: empty leaf list for " +
                                 namer.prefix);
    }
    const CellLibrary& lib = nl.library();
    if (leaves.size() == 1) return build_unary(nl, invert_root, leaves[0], namer.prefix);

    // Reduce until one group of <= root arity remains, then emit the root
    // (inverted variant when available, else positive root + Inv).
    std::vector<NetId> level = leaves;
    while (true) {
        const int n = static_cast<int>(level.size());
        const int root_arity = widest_arity(lib, kind, n);
        if (n <= root_arity) {
            std::optional<std::size_t> cell =
                invert_root ? inverted_cell(lib, kind, n) : positive_cell(lib, kind, n);
            if (invert_root && !cell) {
                // No inverted cell at this arity: positive root + inverter.
                const auto pos = positive_cell(lib, kind, n);
                const InstId id = nl.add_instance(namer.next(), *pos, level);
                return build_unary(nl, true, nl.instance(id).output, namer.prefix);
            }
            const InstId id = nl.add_instance(namer.prefix, *cell, level);
            return nl.instance(id).output;
        }
        // One greedy reduction pass: full-width groups, remainder passes
        // through (it joins a group at the next level).
        std::vector<NetId> next;
        std::size_t i = 0;
        const int arity = widest_arity(lib, kind, n);
        while (i < level.size()) {
            std::size_t take =
                std::min<std::size_t>(static_cast<std::size_t>(arity),
                                      level.size() - i);
            if (take < 2) {
                next.push_back(level[i]);
                ++i;
                continue;
            }
            // A remainder group may land on an arity the library lacks
            // (e.g. 3 with no And3): shrink to the widest available.
            take = static_cast<std::size_t>(
                widest_arity(lib, kind, static_cast<int>(take)));
            const std::vector<NetId> group(level.begin() + static_cast<std::ptrdiff_t>(i),
                                           level.begin() + static_cast<std::ptrdiff_t>(i + take));
            const auto cell = positive_cell(lib, kind, static_cast<int>(take));
            const InstId id = nl.add_instance(namer.next(), *cell, group);
            next.push_back(nl.instance(id).output);
            i += take;
        }
        level = std::move(next);
    }
}

}  // namespace janus
