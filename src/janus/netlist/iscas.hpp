#pragma once
/// \file iscas.hpp
/// ISCAS85/89 `.bench` netlist reader. The format the classic benchmark
/// circuits (c17..c7552, s27..s38584) ship in:
///
///   # comment
///   INPUT(<signal>)
///   OUTPUT(<signal>)
///   <signal> = <GATE>(<signal>, <signal>, ...)
///
/// Gates: AND, NAND, OR, NOR, XOR, XNOR, NOT, BUF/BUFF (any arity >= 2
/// for the symmetric ones, exactly 1 for NOT/BUF) and DFF (ISCAS89
/// sequential elements, one D input). Gate names are case-insensitive;
/// signal names are arbitrary tokens (the ISCAS85 originals use bare
/// numbers). Wide gates decompose onto the library through
/// gate_builder.hpp, so the parsed netlist is always over 2..4-input
/// cells. OUTPUT lines and gate fanins may reference signals defined
/// later in the file. Combinational loops are rejected with the offending
/// signal named. Grammar and corpus notes: docs/IO.md.

#include <iosfwd>
#include <memory>
#include <string>

#include "janus/netlist/netlist.hpp"

namespace janus {

/// Parses a `.bench` stream into a netlist over `lib`. `name` becomes the
/// design name (the format itself carries none — callers pass the file
/// stem). Throws std::runtime_error naming the line on malformed input.
Netlist read_iscas(std::istream& is, std::shared_ptr<const CellLibrary> lib,
                   const std::string& name = "bench");

/// Convenience: parse from a string.
Netlist iscas_from_string(const std::string& text,
                          std::shared_ptr<const CellLibrary> lib,
                          const std::string& name = "bench");

}  // namespace janus
