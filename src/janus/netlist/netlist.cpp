#include "janus/netlist/netlist.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace janus {

Netlist::Netlist(std::shared_ptr<const CellLibrary> lib, std::string name)
    : lib_(std::move(lib)), name_(std::move(name)) {
    if (!lib_) throw std::invalid_argument("Netlist: null cell library");
}

void Netlist::invalidate_caches() {
    sink_cache_valid_ = false;
    topo_cache_valid_ = false;
    ++epoch_;
}

NetId Netlist::add_net(std::string_view name) {
    nets_.push_back(Net{names_.intern(name), kNoInst, DriverKind::None});
    invalidate_caches();
    return static_cast<NetId>(nets_.size() - 1);
}

NetId Netlist::add_primary_input(std::string_view name) {
    const NetId id = add_net(name);
    nets_[id].driver_kind = DriverKind::PrimaryInput;
    primary_inputs_.push_back(id);
    return id;
}

void Netlist::add_primary_output(std::string_view name, NetId net) {
    assert(net < nets_.size());
    primary_outputs_.emplace_back(std::string(name), net);
}

void Netlist::set_primary_output(const std::string& name, NetId net) {
    assert(net < nets_.size());
    for (auto& [po_name, po_net] : primary_outputs_) {
        if (po_name == name) {
            po_net = net;
            return;
        }
    }
    throw std::invalid_argument("set_primary_output: unknown output " + name);
}

InstId Netlist::add_instance(std::string_view name, std::size_t type,
                             const std::vector<NetId>& fanins) {
    const CellType& ct = lib_->cell(type);
    const int arity = function_arity(ct.function);
    if (static_cast<int>(fanins.size()) != arity) {
        throw std::invalid_argument("add_instance(" + std::string(name) +
                                    "): expected " + std::to_string(arity) +
                                    " fanins, got " + std::to_string(fanins.size()));
    }
    Instance inst;
    inst.name = names_.intern(name);
    inst.type = static_cast<std::uint32_t>(type);
    for (std::size_t i = 0; i < fanins.size(); ++i) {
        assert(fanins[i] == kNoNet || fanins[i] < nets_.size());
        inst.fanin[i] = fanins[i];
    }
    const InstId id = static_cast<InstId>(instances_.size());
    // The output net's name is derived ("<name>.out") rather than interned:
    // storing the instance's NameId with the kDerivedName flag avoids a
    // second near-duplicate string per instance in the name pool.
    assert(!(inst.name & kDerivedName) && "name pool exceeded 2 GiB");
    nets_.push_back(Net{inst.name | kDerivedName, id, DriverKind::Instance});
    inst.output = static_cast<NetId>(nets_.size() - 1);
    instances_.push_back(inst);
    invalidate_caches();
    return id;
}

std::string Netlist::net_name(NetId id) const {
    const NameId nm = nets_.at(id).name;
    if (nm == kNoName) return std::string();
    if (nm & kDerivedName) {
        return std::string(names_.view(nm & ~kDerivedName)) + ".out";
    }
    return std::string(names_.view(nm));
}

NameId Netlist::net_name_id(std::string_view name) const {
    // An explicitly interned name wins (it was created verbatim by
    // add_net); otherwise try the derived "<inst>.out" encoding that
    // add_instance gives auto-created output nets.
    const NameId direct = names_.find(name);
    if (direct != kNoName) return direct;
    constexpr std::string_view kSuffix = ".out";
    if (name.size() > kSuffix.size() && name.ends_with(kSuffix)) {
        const NameId base =
            names_.find(name.substr(0, name.size() - kSuffix.size()));
        if (base != kNoName) return base | kDerivedName;
    }
    return kNoName;
}

void Netlist::connect_input(InstId inst, int pin, NetId net) {
    assert(inst < instances_.size());
    assert(pin >= 0 && pin < function_arity(type_of(inst).function));
    assert(net < nets_.size());
    instances_[inst].fanin[static_cast<std::size_t>(pin)] = net;
    invalidate_caches();
}

void Netlist::build_sink_csr() const {
    // Two-pass counting-sort fill. The pool order must match the historical
    // per-net push order — instance-id-major, pin-minor — so downstream
    // consumers (router net ordering, timing graph edges) see sinks in the
    // exact sequence the old vector<vector> cache produced.
    sink_offsets_.assign(nets_.size() + 1, 0);
    for (InstId i = 0; i < instances_.size(); ++i) {
        const int arity = function_arity(type_of(i).function);
        for (int p = 0; p < arity; ++p) {
            const NetId n = instances_[i].fanin[static_cast<std::size_t>(p)];
            if (n != kNoNet) ++sink_offsets_[n + 1];
        }
    }
    for (std::size_t n = 1; n < sink_offsets_.size(); ++n) {
        sink_offsets_[n] += sink_offsets_[n - 1];
    }
    sink_pool_.resize(sink_offsets_.back());
    std::vector<std::uint32_t> cursor(sink_offsets_.begin(), sink_offsets_.end() - 1);
    for (InstId i = 0; i < instances_.size(); ++i) {
        const int arity = function_arity(type_of(i).function);
        for (int p = 0; p < arity; ++p) {
            const NetId n = instances_[i].fanin[static_cast<std::size_t>(p)];
            if (n != kNoNet) sink_pool_[cursor[n]++] = SinkRef{i, p};
        }
    }
    sink_cache_valid_ = true;
}

std::span<const SinkRef> Netlist::sinks(NetId net) const {
    if (!sink_cache_valid_) build_sink_csr();
    if (net >= nets_.size()) throw std::out_of_range("sinks: bad net id");
    return std::span<const SinkRef>(sink_pool_.data() + sink_offsets_[net],
                                    sink_offsets_[net + 1] - sink_offsets_[net]);
}

std::size_t Netlist::fanout_count(NetId net) const {
    std::size_t n = sinks(net).size();
    for (const auto& [name, po_net] : primary_outputs_) {
        (void)name;
        if (po_net == net) ++n;
    }
    return n;
}

std::vector<InstId> Netlist::sequential_instances() const {
    std::vector<InstId> out;
    for (InstId i = 0; i < instances_.size(); ++i) {
        if (is_sequential(type_of(i).function)) out.push_back(i);
    }
    return out;
}

const std::vector<InstId>& Netlist::topological_order() const {
    if (topo_cache_valid_) return topo_cache_;
    // Kahn's algorithm over combinational instances. A combinational
    // instance is ready when all fanin nets are driven by PIs, flops, or
    // already-ordered combinational instances.
    std::vector<int> pending(instances_.size(), 0);
    std::vector<InstId> ready;
    for (InstId i = 0; i < instances_.size(); ++i) {
        if (is_sequential(type_of(i).function)) continue;
        int deps = 0;
        const int arity = function_arity(type_of(i).function);
        for (int p = 0; p < arity; ++p) {
            const NetId n = instances_[i].fanin[static_cast<std::size_t>(p)];
            if (n == kNoNet) continue;
            if (nets_[n].driver_kind == DriverKind::Instance &&
                !is_sequential(type_of(nets_[n].driver_inst).function)) {
                ++deps;
            }
        }
        pending[i] = deps;
        if (deps == 0) ready.push_back(i);
    }

    std::vector<InstId> order;
    order.reserve(instances_.size());
    std::size_t head = 0;
    std::size_t num_comb = 0;
    for (InstId i = 0; i < instances_.size(); ++i) {
        if (!is_sequential(type_of(i).function)) ++num_comb;
    }
    while (head < ready.size()) {
        const InstId i = ready[head++];
        order.push_back(i);
        for (const SinkRef& s : sinks(instances_[i].output)) {
            if (is_sequential(type_of(s.inst()).function)) continue;
            if (--pending[s.inst()] == 0) ready.push_back(s.inst());
        }
    }
    if (order.size() != num_comb) {
        // Name the cycle, not just the design: walk fanins from any
        // unordered instance through unordered drivers until one repeats —
        // every instance with pending deps sits on or downstream of a
        // cycle, and the walk can only terminate by closing one.
        InstId start = kNoInst;
        for (InstId i = 0; i < instances_.size() && start == kNoInst; ++i) {
            if (!is_sequential(type_of(i).function) && pending[i] > 0) start = i;
        }
        std::string cycle;
        if (start != kNoInst) {
            std::vector<InstId> path;
            std::vector<char> on_path(instances_.size(), 0);
            InstId cur = start;
            while (!on_path[cur]) {
                on_path[cur] = 1;
                path.push_back(cur);
                const int arity = function_arity(type_of(cur).function);
                for (int p = 0; p < arity; ++p) {
                    const NetId n = instances_[cur].fanin[static_cast<std::size_t>(p)];
                    if (n == kNoNet || nets_[n].driver_kind != DriverKind::Instance) continue;
                    const InstId d = nets_[n].driver_inst;
                    if (!is_sequential(type_of(d).function) && pending[d] > 0) {
                        cur = d;
                        break;
                    }
                }
            }
            // `cur` closes the cycle; report from its first occurrence.
            const auto first = std::find(path.begin(), path.end(), cur);
            const std::size_t shown = std::min<std::size_t>(
                8, static_cast<std::size_t>(path.end() - first));
            for (std::size_t k = 0; k < shown; ++k) {
                if (k) cycle += " -> ";
                cycle += instance_name(*(first + static_cast<std::ptrdiff_t>(k)));
            }
            if (static_cast<std::size_t>(path.end() - first) > shown) {
                cycle += " -> ...";
            } else {
                cycle += " -> ";
                cycle += instance_name(cur);
            }
        }
        throw std::runtime_error(
            "topological_order: combinational loop in " + name_ +
            (cycle.empty()
                 ? std::string()
                 : " involving instance " + std::string(instance_name(start)) +
                       " (cycle: " + cycle + ")"));
    }
    // Cache only on success so a loopy netlist keeps throwing until fixed.
    topo_cache_ = std::move(order);
    topo_cache_valid_ = true;
    return topo_cache_;
}

int Netlist::logic_depth() const {
    std::vector<int> depth(nets_.size(), 0);
    int max_depth = 0;
    for (InstId i : topological_order()) {
        const int arity = function_arity(type_of(i).function);
        int d = 0;
        for (int p = 0; p < arity; ++p) {
            const NetId n = instances_[i].fanin[static_cast<std::size_t>(p)];
            if (n != kNoNet) d = std::max(d, depth[n]);
        }
        depth[instances_[i].output] = d + 1;
        max_depth = std::max(max_depth, d + 1);
    }
    return max_depth;
}

double Netlist::total_area() const {
    double a = 0;
    for (InstId i = 0; i < instances_.size(); ++i) a += type_of(i).area_um2;
    return a;
}

double Netlist::total_leakage_nw() const {
    double l = 0;
    for (InstId i = 0; i < instances_.size(); ++i) l += type_of(i).leakage_nw;
    return l;
}

std::size_t Netlist::memory_bytes() const {
    std::size_t bytes = sizeof(*this);
    bytes += instances_.capacity() * sizeof(Instance);
    bytes += nets_.capacity() * sizeof(Net);
    bytes += names_.memory_bytes();
    bytes += primary_inputs_.capacity() * sizeof(NetId);
    for (const auto& [po_name, po_net] : primary_outputs_) {
        (void)po_net;
        // Heap block behind each PO name string (SSO names cost nothing).
        if (po_name.capacity() > sizeof(std::string)) bytes += po_name.capacity() + 1;
    }
    bytes += primary_outputs_.capacity() * sizeof(std::pair<std::string, NetId>);
    bytes += sink_offsets_.capacity() * sizeof(std::uint32_t);
    bytes += sink_pool_.capacity() * sizeof(SinkRef);
    bytes += topo_cache_.capacity() * sizeof(InstId);
    bytes += name_.capacity() > sizeof(std::string) ? name_.capacity() + 1 : 0;
    return bytes;
}

void Netlist::shrink_to_fit() {
    instances_.shrink_to_fit();
    nets_.shrink_to_fit();
    primary_inputs_.shrink_to_fit();
    primary_outputs_.shrink_to_fit();
    sink_offsets_.shrink_to_fit();
    sink_pool_.shrink_to_fit();
    topo_cache_.shrink_to_fit();
}

std::vector<std::string> Netlist::validate() const {
    std::vector<std::string> problems;
    // Count drivers per net.
    std::vector<int> drivers(nets_.size(), 0);
    for (NetId n = 0; n < nets_.size(); ++n) {
        if (nets_[n].driver_kind != DriverKind::None) drivers[n] = 1;
    }
    for (InstId i = 0; i < instances_.size(); ++i) {
        const Instance& inst = instances_[i];
        const std::string iname(instance_name(i));
        const int arity = function_arity(type_of(i).function);
        for (int p = 0; p < arity; ++p) {
            if (inst.fanin[static_cast<std::size_t>(p)] == kNoNet) {
                problems.push_back("instance " + iname + " pin " +
                                   std::to_string(p) + " unconnected");
            }
        }
        for (int p = arity; p < kMaxFanin; ++p) {
            if (inst.fanin[static_cast<std::size_t>(p)] != kNoNet) {
                problems.push_back("instance " + iname +
                                   " has extra fanin at pin " + std::to_string(p));
            }
        }
        if (inst.output == kNoNet) {
            problems.push_back("instance " + iname + " has no output net");
        } else if (nets_[inst.output].driver_inst != i) {
            problems.push_back("instance " + iname + " output driver mismatch");
        }
    }
    for (NetId n = 0; n < nets_.size(); ++n) {
        if (drivers[n] == 0 && (fanout_count(n) > 0)) {
            problems.push_back("net " + net_name(n) + " has sinks but no driver");
        }
    }
    return problems;
}

std::vector<bool> Netlist::evaluate(const std::vector<bool>& pi_values,
                                    const std::vector<bool>& state) const {
    if (pi_values.size() != primary_inputs_.size()) {
        throw std::invalid_argument("evaluate: PI value count mismatch");
    }
    const std::vector<InstId> seq = sequential_instances();
    if (state.size() != seq.size()) {
        throw std::invalid_argument("evaluate: state count mismatch");
    }
    std::vector<bool> value(nets_.size(), false);
    for (std::size_t i = 0; i < primary_inputs_.size(); ++i) {
        value[primary_inputs_[i]] = pi_values[i];
    }
    for (std::size_t i = 0; i < seq.size(); ++i) {
        value[instances_[seq[i]].output] = state[i];
    }
    for (InstId i : topological_order()) {
        const CellType& ct = type_of(i);
        const int arity = function_arity(ct.function);
        unsigned in = 0;
        for (int p = 0; p < arity; ++p) {
            const NetId n = instances_[i].fanin[static_cast<std::size_t>(p)];
            if (n != kNoNet && value[n]) in |= (1u << p);
        }
        value[instances_[i].output] = evaluate_function(ct.function, in);
    }
    return value;
}

std::vector<bool> Netlist::next_state(const std::vector<bool>& pi_values,
                                      const std::vector<bool>& state) const {
    const std::vector<bool> value = evaluate(pi_values, state);
    const std::vector<InstId> seq = sequential_instances();
    std::vector<bool> next(seq.size(), false);
    for (std::size_t i = 0; i < seq.size(); ++i) {
        const Instance& inst = instances_[seq[i]];
        const NetId d = inst.fanin[0];  // pin 0 is D
        bool v = d != kNoNet && value[d];
        if (type_of(seq[i]).function == CellFunction::ScanDff) {
            // Scan mux: SE (pin 2) selects SI (pin 1) over D.
            const NetId si = inst.fanin[1];
            const NetId se = inst.fanin[2];
            if (se != kNoNet && value[se]) v = si != kNoNet && value[si];
        }
        next[i] = v;
    }
    return next;
}

}  // namespace janus
