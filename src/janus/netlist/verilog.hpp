#pragma once
/// \file verilog.hpp
/// Structural Verilog export. JanusEDA's native format is .jnl
/// (io.hpp); this writer emits an equivalent gate-level Verilog module
/// so mapped netlists can be consumed by external tools and testbenches.

#include <iosfwd>
#include <string>

#include "janus/netlist/netlist.hpp"

namespace janus {

/// Writes `nl` as one Verilog module. Cell pins are named A, B, C, D for
/// inputs (per arity) and Y for the output; sequential cells use D/SI/SE
/// inputs, Q output, and a CK pin tied to the module's `clk` port (added
/// automatically when the design has flops).
void write_verilog(std::ostream& os, const Netlist& nl);

/// Convenience: Verilog text of a netlist.
std::string netlist_to_verilog(const Netlist& nl);

}  // namespace janus
