#pragma once
/// \file upf.hpp
/// Power-intent file parsing in two rival dialects. Panelist Rossi: "The
/// same happened with UPF and CPF for the description of the power
/// intent, with the associated ambiguity in the case of a multi-vendor
/// flow." JanusEDA reads both (simplified) dialects into one PowerIntent
/// and can translate between them — the interoperability layer the panel
/// wishes had existed.
///
/// UPF-flavored syntax (one command per line, '#' comments):
///   create_power_domain PD1 -elements {inst_a inst_b}
///   create_supply_net VDD1 -voltage 0.81
///   associate_supply_net VDD1 -domain PD1
///   set_domain_shutdown PD1 -on_fraction 0.25
///
/// CPF-flavored syntax:
///   create_power_domain -name PD1 -instances {inst_a inst_b}
///   create_nominal_condition -name nc1 -voltage 0.81
///   update_power_domain -name PD1 -nominal nc1
///   update_power_domain -name PD1 -shutoff -duty 0.25

#include <iosfwd>
#include <string>

#include "janus/power/power_intent.hpp"

namespace janus {

enum class IntentDialect { Upf, Cpf };

/// Parses power intent in the given dialect against a netlist (instances
/// are matched by name). Unknown instances and malformed commands throw
/// std::runtime_error with line information.
PowerIntent read_power_intent(std::istream& is, const Netlist& nl,
                              IntentDialect dialect, double default_voltage);

/// Writes a PowerIntent in the chosen dialect; read_power_intent of the
/// output reproduces the intent (round-trip tested).
void write_power_intent(std::ostream& os, const PowerIntent& intent,
                        const Netlist& nl, IntentDialect dialect);

/// Dialect conversion: parse one, emit the other.
std::string convert_power_intent(const std::string& text, const Netlist& nl,
                                 IntentDialect from, IntentDialect to,
                                 double default_voltage);

}  // namespace janus
