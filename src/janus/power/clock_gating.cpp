#include "janus/power/clock_gating.hpp"

#include <algorithm>
#include <cmath>

namespace janus {

ClockGatingPlan plan_clock_gating(const Netlist& nl, const TechnologyNode& node,
                                  const ActivityReport& activity,
                                  const ClockGatingOptions& opts) {
    ClockGatingPlan plan;
    const auto seq = nl.sequential_instances();
    plan.total_flops = seq.size();

    // Clock pin energy per flop per cycle.
    const double f_hz = opts.frequency_mhz * 1e6;
    const double v2 = node.vdd * node.vdd;
    const auto clk_mw = [&](InstId f) {
        const double c_clk_f = 0.5 * nl.type_of(f).input_cap_ff;
        return c_clk_f * 1e-15 * v2 * f_hz * 1e3;
    };
    for (const InstId f : seq) plan.baseline_clock_mw += clk_mw(f);

    // Candidates: low D-activity flops. When a flop's data input rarely
    // changes, its clock can be gated to the fraction of cycles where the
    // new value differs — approximated by the D toggle rate.
    struct Cand {
        InstId flop;
        double act;
    };
    std::vector<Cand> cands;
    for (const InstId f : seq) {
        const NetId d = nl.instance(f).fanin[0];
        if (d == kNoNet) continue;
        const double act = activity.toggle_rate[d];
        if (act < opts.activity_threshold) cands.push_back({f, act});
    }
    std::sort(cands.begin(), cands.end(),
              [](const Cand& a, const Cand& b) { return a.act < b.act; });

    // Group consecutive candidates (similar activity => likely a shared
    // enable) into ICG groups of at least min_group_size.
    plan.gated_clock_mw = plan.baseline_clock_mw;
    std::size_t i = 0;
    while (i + opts.min_group_size <= cands.size()) {
        ClockGatingGroup g;
        double worst_act = 0.0;
        // Grow the group while activity stays within 2x of the first member.
        const double base = std::max(1e-6, cands[i].act);
        std::size_t j = i;
        while (j < cands.size() && cands[j].act <= 2.0 * base + 1e-9) {
            g.flops.push_back(cands[j].flop);
            worst_act = std::max(worst_act, cands[j].act);
            ++j;
        }
        if (g.flops.size() >= opts.min_group_size) {
            // The group clocks only when any member would capture a new
            // value; bounded by the sum, dominated by the worst member.
            g.enable_probability = std::min(1.0, worst_act * 1.5);
            double group_mw = 0.0;
            for (const InstId f : g.flops) group_mw += clk_mw(f);
            // ICG cell itself clocks every cycle: one flop-equivalent.
            const double icg_mw =
                g.flops.empty() ? 0.0 : clk_mw(g.flops.front());
            plan.gated_clock_mw -= group_mw * (1.0 - g.enable_probability);
            plan.gated_clock_mw += icg_mw;
            plan.gated_flops += g.flops.size();
            plan.groups.push_back(std::move(g));
        }
        i = j;
    }
    return plan;
}

}  // namespace janus
