#pragma once
/// \file power_grid.hpp
/// Power-delivery network analysis: a regular VDD grid with resistive
/// segments, per-node current draw taken from placed instances, and a
/// successive-over-relaxation (SOR) solver for static IR drop. Supports
/// experiment E7 (hotspot management in high-switching networking ASICs).

#include <cstddef>
#include <vector>

#include "janus/netlist/netlist.hpp"
#include "janus/netlist/technology.hpp"
#include "janus/power/power_model.hpp"
#include "janus/util/geometry.hpp"

namespace janus {

struct PowerGridOptions {
    std::size_t cols = 32;
    std::size_t rows = 32;
    double segment_res_ohm = 0.5;   ///< resistance of one grid segment
    /// Pads (ideal VDD sources) are placed every `pad_stride` nodes along
    /// the chip boundary.
    std::size_t pad_stride = 8;
    double sor_omega = 1.8;
    int max_iterations = 5000;
    double tolerance_v = 1e-6;
};

/// Result of one static IR analysis.
struct IrDropReport {
    std::size_t cols = 0, rows = 0;
    double vdd = 0.0;
    std::vector<double> voltage;     ///< per grid node, row-major
    std::vector<double> current_ma;  ///< per grid node demand
    double worst_drop_v = 0.0;
    double avg_drop_v = 0.0;
    int iterations = 0;

    double drop_at(std::size_t col, std::size_t row) const {
        return vdd - voltage[row * cols + col];
    }
};

class PowerGrid {
  public:
    /// Builds the grid over the die area `die` (DBU coordinates).
    PowerGrid(Rect die, double vdd, const PowerGridOptions& opts = {});

    /// Accumulates instance currents into grid nodes by position. Power
    /// per instance comes from `dynamic_mw` (indexed by InstId); unplaced
    /// instances are spread uniformly.
    void load_currents(const Netlist& nl, const std::vector<double>& dynamic_mw);

    /// Adds extra current demand at a specific node (mA) — used by tests
    /// and by the decap model to perturb demand.
    void add_current(std::size_t col, std::size_t row, double ma);
    /// Scales all current demand (e.g. the 5x switching factor of E7).
    void scale_currents(double factor);
    double current_at(std::size_t col, std::size_t row) const;

    /// Solves static IR drop with SOR.
    IrDropReport solve() const;

    std::size_t cols() const { return opts_.cols; }
    std::size_t rows() const { return opts_.rows; }
    const Rect& die() const { return die_; }

    /// Grid node containing a layout position.
    std::pair<std::size_t, std::size_t> node_of(const Point& p) const;

  private:
    Rect die_;
    double vdd_;
    PowerGridOptions opts_;
    std::vector<double> current_ma_;  // row-major demand
    std::vector<bool> is_pad_;

    std::size_t index(std::size_t c, std::size_t r) const {
        return r * opts_.cols + c;
    }
};

}  // namespace janus
