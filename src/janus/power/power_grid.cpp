#include "janus/power/power_grid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace janus {

PowerGrid::PowerGrid(Rect die, double vdd, const PowerGridOptions& opts)
    : die_(die), vdd_(vdd), opts_(opts) {
    if (opts_.cols < 2 || opts_.rows < 2) {
        throw std::invalid_argument("PowerGrid: grid too small");
    }
    current_ma_.assign(opts_.cols * opts_.rows, 0.0);
    is_pad_.assign(opts_.cols * opts_.rows, false);
    // Pads along the boundary every pad_stride nodes.
    for (std::size_t c = 0; c < opts_.cols; c += opts_.pad_stride) {
        is_pad_[index(c, 0)] = true;
        is_pad_[index(c, opts_.rows - 1)] = true;
    }
    for (std::size_t r = 0; r < opts_.rows; r += opts_.pad_stride) {
        is_pad_[index(0, r)] = true;
        is_pad_[index(opts_.cols - 1, r)] = true;
    }
}

std::pair<std::size_t, std::size_t> PowerGrid::node_of(const Point& p) const {
    const auto clampi = [](std::int64_t v, std::int64_t lo, std::int64_t hi) {
        return std::max(lo, std::min(v, hi));
    };
    const std::int64_t w = std::max<std::int64_t>(1, die_.width());
    const std::int64_t h = std::max<std::int64_t>(1, die_.height());
    const std::int64_t c =
        clampi((p.x - die_.lo.x) * static_cast<std::int64_t>(opts_.cols) / w, 0,
               static_cast<std::int64_t>(opts_.cols) - 1);
    const std::int64_t r =
        clampi((p.y - die_.lo.y) * static_cast<std::int64_t>(opts_.rows) / h, 0,
               static_cast<std::int64_t>(opts_.rows) - 1);
    return {static_cast<std::size_t>(c), static_cast<std::size_t>(r)};
}

void PowerGrid::load_currents(const Netlist& nl,
                              const std::vector<double>& dynamic_mw) {
    assert(dynamic_mw.size() == nl.num_instances());
    double unplaced_ma = 0.0;
    for (InstId i = 0; i < nl.num_instances(); ++i) {
        // I = P / V; dynamic_mw in mW, so I in mA.
        const double ma = dynamic_mw[i] / std::max(1e-9, vdd_);
        const Instance& inst = nl.instance(i);
        if (inst.placed) {
            const auto [c, r] = node_of(inst.position);
            current_ma_[index(c, r)] += ma;
        } else {
            unplaced_ma += ma;
        }
    }
    if (unplaced_ma > 0) {
        const double per_node = unplaced_ma / static_cast<double>(current_ma_.size());
        for (double& c : current_ma_) c += per_node;
    }
}

void PowerGrid::add_current(std::size_t col, std::size_t row, double ma) {
    current_ma_.at(index(col, row)) += ma;
}

void PowerGrid::scale_currents(double factor) {
    for (double& c : current_ma_) c *= factor;
}

double PowerGrid::current_at(std::size_t col, std::size_t row) const {
    return current_ma_.at(index(col, row));
}

IrDropReport PowerGrid::solve() const {
    IrDropReport rep;
    rep.cols = opts_.cols;
    rep.rows = opts_.rows;
    rep.vdd = vdd_;
    rep.current_ma = current_ma_;
    rep.voltage.assign(current_ma_.size(), vdd_);

    const double g = 1.0 / opts_.segment_res_ohm;  // segment conductance
    auto& v = rep.voltage;
    int it = 0;
    for (; it < opts_.max_iterations; ++it) {
        double max_delta = 0.0;
        for (std::size_t r = 0; r < opts_.rows; ++r) {
            for (std::size_t c = 0; c < opts_.cols; ++c) {
                const std::size_t k = index(c, r);
                if (is_pad_[k]) continue;
                double gsum = 0.0;
                double isum = -current_ma_[k] * 1e-3;  // demand sinks current
                const auto neighbor = [&](std::size_t nk) {
                    gsum += g;
                    isum += g * v[nk];
                };
                if (c > 0) neighbor(index(c - 1, r));
                if (c + 1 < opts_.cols) neighbor(index(c + 1, r));
                if (r > 0) neighbor(index(c, r - 1));
                if (r + 1 < opts_.rows) neighbor(index(c, r + 1));
                const double v_new = isum / gsum;
                const double relaxed = v[k] + opts_.sor_omega * (v_new - v[k]);
                max_delta = std::max(max_delta, std::fabs(relaxed - v[k]));
                v[k] = relaxed;
            }
        }
        if (max_delta < opts_.tolerance_v) break;
    }
    rep.iterations = it + 1;

    double sum_drop = 0.0;
    for (const double vk : v) {
        const double drop = vdd_ - vk;
        rep.worst_drop_v = std::max(rep.worst_drop_v, drop);
        sum_drop += drop;
    }
    rep.avg_drop_v = sum_drop / static_cast<double>(v.size());
    return rep;
}

}  // namespace janus
