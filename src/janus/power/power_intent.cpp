#include "janus/power/power_intent.hpp"

#include <stdexcept>

namespace janus {

PowerIntent::PowerIntent(const Netlist& nl, double default_voltage) {
    PowerDomain def;
    def.name = "DEFAULT";
    def.voltage = default_voltage;
    domains_.push_back(std::move(def));
    domain_of_.assign(nl.num_instances(), 0);
}

void PowerIntent::add_domain(PowerDomain domain) {
    const std::size_t idx = domains_.size();
    for (const InstId i : domain.members) {
        if (i >= domain_of_.size()) {
            throw std::out_of_range("PowerIntent::add_domain: bad instance id");
        }
        if (domain_of_[i] != 0) {
            throw std::invalid_argument(
                "PowerIntent::add_domain: instance already in a domain");
        }
        domain_of_[i] = idx;
    }
    domains_.push_back(std::move(domain));
}

std::size_t PowerIntent::isolation_cells_needed(const Netlist& nl) const {
    std::size_t count = 0;
    for (NetId n = 0; n < nl.num_nets(); ++n) {
        const Net& net = nl.net(n);
        if (net.driver_kind != DriverKind::Instance) continue;
        const std::size_t src = domain_of_[net.driver_inst];
        if (!domains_[src].can_shutdown) continue;
        // One isolation cell per crossing sink domain.
        std::vector<bool> seen(domains_.size(), false);
        for (const SinkRef& s : nl.sinks(n)) {
            const std::size_t dst = domain_of_[s.inst()];
            if (dst != src && !seen[dst]) {
                seen[dst] = true;
                ++count;
            }
        }
    }
    return count;
}

std::size_t PowerIntent::level_shifters_needed(const Netlist& nl) const {
    std::size_t count = 0;
    for (NetId n = 0; n < nl.num_nets(); ++n) {
        const Net& net = nl.net(n);
        if (net.driver_kind != DriverKind::Instance) continue;
        const std::size_t src = domain_of_[net.driver_inst];
        std::vector<bool> seen(domains_.size(), false);
        for (const SinkRef& s : nl.sinks(n)) {
            const std::size_t dst = domain_of_[s.inst()];
            if (dst != src && !seen[dst] &&
                domains_[dst].voltage != domains_[src].voltage) {
                seen[dst] = true;
                ++count;
            }
        }
    }
    return count;
}

PowerReport PowerIntent::estimate(const Netlist& nl, const TechnologyNode& node,
                                  const PowerOptions& opts) const {
    // Flat estimate at nominal voltage, then per-instance rescale.
    const ActivityReport activity = estimate_activity(nl, opts.activity);
    const PowerReport flat = estimate_power(nl, node, opts, &activity);

    PowerReport r;
    r.instance_dynamic_mw.assign(nl.num_instances(), 0.0);
    const double vnom = node.vdd;
    for (InstId i = 0; i < nl.num_instances(); ++i) {
        const PowerDomain& d = domains_[domain_of_[i]];
        const double vscale = (d.voltage * d.voltage) / (vnom * vnom);
        const double duty = d.can_shutdown ? d.on_fraction : 1.0;
        const double dyn = flat.instance_dynamic_mw[i] * vscale * duty;
        r.instance_dynamic_mw[i] = dyn;
        r.switching_mw += dyn / 1.3;          // undo the 0.3 internal split
        r.internal_mw += dyn - dyn / 1.3;
        const CellType& ct = nl.type_of(i);
        double leak = ct.leakage_nw * 1e-6 * vscale;
        if (d.can_shutdown) leak *= d.on_fraction;
        r.leakage_mw += leak;
        if (is_sequential(ct.function)) {
            const double c_clk_f = 0.5 * ct.input_cap_ff;
            r.clock_mw += c_clk_f * 1e-15 * (d.voltage * d.voltage) *
                          opts.frequency_mhz * 1e6 * duty * 1e3;
        }
    }
    // Overhead: isolation cells and level shifters as 2x-INV equivalents.
    const auto inv = nl.library().find_function(CellFunction::Inv);
    if (inv) {
        const double inv_leak_mw = nl.library().cell(*inv).leakage_nw * 1e-6;
        r.leakage_mw += 2.0 * inv_leak_mw *
                        static_cast<double>(isolation_cells_needed(nl) +
                                            level_shifters_needed(nl));
    }
    return r;
}

}  // namespace janus
