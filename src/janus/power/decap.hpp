#pragma once
/// \file decap.hpp
/// Hotspot detection and automatic decoupling-capacitor insertion — the
/// "on-the-fly introduction of decoupling cells" panelist Rossi asks
/// tools to take care of (experiment E7).
///
/// Model: a decap placed at a grid node buffers the high-frequency part
/// of the local demand; the static solver then sees the node's current
/// reduced by the relief factor  C / (C + C50)  where C50 is the decap
/// capacitance that halves the local transient demand. First-order, but
/// it exercises the identify-insert-reverify loop a real flow runs.

#include <vector>

#include "janus/power/power_grid.hpp"

namespace janus {

struct DecapOptions {
    /// A node is a hotspot when its IR drop exceeds this fraction of VDD.
    double hotspot_drop_fraction = 0.05;
    /// Decap capacitance installed per insertion step (pF).
    double decap_pf_per_step = 10.0;
    /// Decap pF that halves the effective transient demand of one node.
    double halving_pf = 10.0;
    /// Insertion budget: maximum decap steps overall.
    int max_steps = 256;
};

struct Hotspot {
    std::size_t col = 0, row = 0;
    double drop_v = 0.0;
};

struct DecapResult {
    std::vector<Hotspot> initial_hotspots;
    std::vector<Hotspot> remaining_hotspots;
    int decap_steps_used = 0;
    double decap_total_pf = 0.0;
    IrDropReport before;
    IrDropReport after;
};

/// Finds all hotspot nodes of a solved grid.
std::vector<Hotspot> find_hotspots(const IrDropReport& rep, double drop_fraction);

/// Iteratively inserts decap at the worst hotspot until none remain or
/// the budget is exhausted. The grid is modified (currents relieved).
DecapResult insert_decaps(PowerGrid& grid, const DecapOptions& opts = {});

}  // namespace janus
