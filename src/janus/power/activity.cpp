#include "janus/power/activity.hpp"

#include <algorithm>
#include <cmath>

namespace janus {

ActivityReport estimate_activity(const Netlist& nl, const ActivityOptions& opts) {
    ActivityReport r;
    r.probability.assign(nl.num_nets(), 0.0);
    r.toggle_rate.assign(nl.num_nets(), 0.0);

    for (const NetId pi : nl.primary_inputs()) {
        r.probability[pi] = opts.pi_probability;
        r.toggle_rate[pi] = opts.pi_toggle_rate;
    }
    for (const InstId f : nl.sequential_instances()) {
        const NetId q = nl.instance(f).output;
        r.probability[q] = 0.5;
        r.toggle_rate[q] = opts.flop_toggle_rate;
    }

    // Epoch-cached order: free after any prior STA/sim on this netlist.
    for (const InstId i : nl.topological_order()) {
        const Instance& inst = nl.instance(i);
        const CellFunction fn = nl.type_of(i).function;
        const int arity = function_arity(fn);

        // Exhaustive weighted enumeration of the input space.
        double p_one = 0.0;
        for (unsigned m = 0; m < (1u << arity); ++m) {
            double w = 1.0;
            for (int p = 0; p < arity; ++p) {
                const double pp =
                    r.probability[inst.fanin[static_cast<std::size_t>(p)]];
                w *= (m & (1u << p)) ? pp : (1.0 - pp);
            }
            if (w > 0 && evaluate_function(fn, m)) p_one += w;
        }
        r.probability[inst.output] = p_one;

        // Toggle rate: sum over inputs of P(boolean difference) * alpha_in.
        double toggle = 0.0;
        for (int p = 0; p < arity; ++p) {
            double p_diff = 0.0;  // probability that f flips when input p flips
            for (unsigned m = 0; m < (1u << arity); ++m) {
                if (m & (1u << p)) continue;  // count each co-pair once
                const bool f0 = evaluate_function(fn, m);
                const bool f1 = evaluate_function(fn, m | (1u << p));
                if (f0 == f1) continue;
                // Weight of the other inputs' assignment.
                double w = 1.0;
                for (int q = 0; q < arity; ++q) {
                    if (q == p) continue;
                    const double pp =
                        r.probability[inst.fanin[static_cast<std::size_t>(q)]];
                    w *= (m & (1u << q)) ? pp : (1.0 - pp);
                }
                p_diff += w;
            }
            toggle += p_diff * r.toggle_rate[inst.fanin[static_cast<std::size_t>(p)]];
        }
        // Toggle rate saturates at 1 toggle/cycle in a synchronous design.
        r.toggle_rate[inst.output] = std::min(1.0, toggle);
    }
    return r;
}

}  // namespace janus
