#pragma once
/// \file power_model.hpp
/// Design power estimation: switching (net) power, internal (cell) power,
/// leakage, and clock-tree power, parameterized by technology node.

#include "janus/netlist/technology.hpp"
#include "janus/power/activity.hpp"
#include "janus/timing/delay_model.hpp"

namespace janus {

struct PowerOptions {
    double frequency_mhz = 500.0;
    double vdd_override = 0.0;  ///< 0 = use the node's nominal Vdd
    ActivityOptions activity;
    WireModel wire;
};

struct PowerReport {
    double switching_mw = 0.0;  ///< net + input-pin charging power
    double internal_mw = 0.0;   ///< cell-internal short-circuit proxy
    double leakage_mw = 0.0;
    double clock_mw = 0.0;      ///< flop clock-pin load at full toggle
    double total_mw() const {
        return switching_mw + internal_mw + leakage_mw + clock_mw;
    }
    /// Per-instance dynamic power (mW), for hotspot mapping.
    std::vector<double> instance_dynamic_mw;
};

/// Estimates power at the given node. `activity` may be reused across
/// calls; pass nullptr to have it computed internally.
PowerReport estimate_power(const Netlist& nl, const TechnologyNode& node,
                           const PowerOptions& opts = {},
                           const ActivityReport* activity = nullptr);

}  // namespace janus
