#include "janus/power/power_model.hpp"

namespace janus {

PowerReport estimate_power(const Netlist& nl, const TechnologyNode& node,
                           const PowerOptions& opts,
                           const ActivityReport* activity) {
    ActivityReport local;
    if (!activity) {
        local = estimate_activity(nl, opts.activity);
        activity = &local;
    }
    const double vdd = opts.vdd_override > 0 ? opts.vdd_override : node.vdd;
    const double f_hz = opts.frequency_mhz * 1e6;
    const double v2 = vdd * vdd;

    PowerReport r;
    r.instance_dynamic_mw.assign(nl.num_instances(), 0.0);

    for (InstId i = 0; i < nl.num_instances(); ++i) {
        const CellType& ct = nl.type_of(i);
        const NetId out = nl.instance(i).output;

        // Leakage scales superlinearly with voltage (~V^2 around nominal).
        r.leakage_mw += ct.leakage_nw * 1e-6 * (v2 / (node.vdd * node.vdd));

        if (is_sequential(ct.function)) {
            // Clock pin toggles every cycle regardless of data activity.
            const double c_clk_f = 0.5 * ct.input_cap_ff;
            r.clock_mw += c_clk_f * 1e-15 * v2 * f_hz * 1e3;  // W -> mW
        }

        const double alpha = (*activity).toggle_rate[out];
        const double c_load_f = net_load_ff(nl, out, opts.wire) * 1e-15;
        const double sw_w = 0.5 * alpha * c_load_f * v2 * f_hz;
        // Internal power modeled as a fixed fraction of the switching
        // energy drawn through the cell.
        const double int_w = 0.3 * sw_w;
        r.switching_mw += sw_w * 1e3;
        r.internal_mw += int_w * 1e3;
        r.instance_dynamic_mw[i] = (sw_w + int_w) * 1e3;
    }
    return r;
}

}  // namespace janus
