#pragma once
/// \file power_intent.hpp
/// UPF/CPF-style power intent: voltage/supply/shutdown domains over a
/// netlist, with isolation/level-shifter accounting and domain-aware
/// power rollup. Panelist Domic: "scores of voltage/supply/shutdown
/// domains even at 180 nm are common" (experiment E4); panelist Rossi
/// recalls the UPF/CPF dualism this models.

#include <optional>
#include <string>
#include <vector>

#include "janus/netlist/netlist.hpp"
#include "janus/power/power_model.hpp"

namespace janus {

/// One power domain.
struct PowerDomain {
    std::string name;
    double voltage = 0.0;       ///< operating voltage (V)
    bool can_shutdown = false;
    double on_fraction = 1.0;   ///< fraction of time powered (duty cycle)
    std::vector<InstId> members;
};

/// A complete power intent: every instance belongs to exactly one domain
/// (the default domain catches the rest).
class PowerIntent {
  public:
    /// Creates intent with a default always-on domain at `default_voltage`.
    PowerIntent(const Netlist& nl, double default_voltage);

    /// Adds a domain; instances are moved out of the default domain.
    /// Throws if an instance is already in a non-default domain.
    void add_domain(PowerDomain domain);

    const std::vector<PowerDomain>& domains() const { return domains_; }
    /// Domain index of an instance (0 = default).
    std::size_t domain_of(InstId inst) const { return domain_of_.at(inst); }

    /// Nets crossing from a shutdown-capable domain into another domain
    /// need isolation cells; returns the count.
    std::size_t isolation_cells_needed(const Netlist& nl) const;
    /// Nets crossing between domains of different voltage need level
    /// shifters; returns the count.
    std::size_t level_shifters_needed(const Netlist& nl) const;

    /// Domain-aware power: each instance's dynamic power scales with
    /// (V_domain / V_nom)^2 and its duty cycle; leakage is gated by the
    /// on-fraction for shutdown domains. Isolation/shifter overhead is
    /// added as equivalent INV-sized cells.
    PowerReport estimate(const Netlist& nl, const TechnologyNode& node,
                         const PowerOptions& opts = {}) const;

  private:
    std::vector<PowerDomain> domains_;  // [0] is the default domain
    std::vector<std::size_t> domain_of_;
};

}  // namespace janus
