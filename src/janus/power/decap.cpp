#include "janus/power/decap.hpp"

#include <algorithm>

namespace janus {

std::vector<Hotspot> find_hotspots(const IrDropReport& rep, double drop_fraction) {
    std::vector<Hotspot> out;
    const double limit = drop_fraction * rep.vdd;
    for (std::size_t r = 0; r < rep.rows; ++r) {
        for (std::size_t c = 0; c < rep.cols; ++c) {
            const double drop = rep.drop_at(c, r);
            if (drop > limit) out.push_back(Hotspot{c, r, drop});
        }
    }
    std::sort(out.begin(), out.end(),
              [](const Hotspot& a, const Hotspot& b) { return a.drop_v > b.drop_v; });
    return out;
}

DecapResult insert_decaps(PowerGrid& grid, const DecapOptions& opts) {
    DecapResult res;
    res.before = grid.solve();
    res.initial_hotspots = find_hotspots(res.before, opts.hotspot_drop_fraction);

    // Accumulated decap per node (pF).
    std::vector<double> decap_pf(grid.cols() * grid.rows(), 0.0);
    IrDropReport current = res.before;

    while (res.decap_steps_used < opts.max_steps) {
        const auto hs = find_hotspots(current, opts.hotspot_drop_fraction);
        if (hs.empty()) break;
        const Hotspot& worst = hs.front();
        const std::size_t k = worst.row * grid.cols() + worst.col;

        // Relief before/after adding this decap step; the grid current is
        // scaled by the *incremental* relief so repeated insertion at one
        // node keeps helping but with diminishing returns.
        const double c_old = decap_pf[k];
        const double c_new = c_old + opts.decap_pf_per_step;
        const double relief_old = c_old / (c_old + opts.halving_pf);
        const double relief_new = c_new / (c_new + opts.halving_pf);
        const double remaining_old = 1.0 - relief_old;
        const double remaining_new = 1.0 - relief_new;
        const double demand = grid.current_at(worst.col, worst.row);
        // demand currently reflects remaining_old of the raw draw.
        const double raw = remaining_old > 0 ? demand / remaining_old : demand;
        grid.add_current(worst.col, worst.row, raw * (remaining_new - remaining_old));
        decap_pf[k] = c_new;
        res.decap_total_pf += opts.decap_pf_per_step;
        ++res.decap_steps_used;

        current = grid.solve();
    }
    res.after = current;
    res.remaining_hotspots = find_hotspots(current, opts.hotspot_drop_fraction);
    return res;
}

}  // namespace janus
