#pragma once
/// \file activity.hpp
/// Switching-activity estimation: static probabilities and toggle rates
/// propagated through the netlist under the standard spatial-independence
/// assumption. Feeds the power model and clock-gating planner.

#include <vector>

#include "janus/netlist/netlist.hpp"

namespace janus {

/// Per-net activity data (indexed by NetId).
struct ActivityReport {
    std::vector<double> probability;  ///< P(net == 1)
    std::vector<double> toggle_rate;  ///< expected toggles per clock cycle
};

struct ActivityOptions {
    double pi_probability = 0.5;
    double pi_toggle_rate = 0.2;   ///< toggles/cycle at primary inputs
    double flop_toggle_rate = 0.2; ///< toggles/cycle at flop outputs
};

/// Propagates probabilities exactly per gate (exhaustive over <=4 inputs,
/// independence assumed across inputs) and toggle rates via Boolean
/// differences.
ActivityReport estimate_activity(const Netlist& nl, const ActivityOptions& opts = {});

}  // namespace janus
