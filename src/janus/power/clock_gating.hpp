#pragma once
/// \file clock_gating.hpp
/// Clock-gating planning: groups flops with low data activity under
/// integrated clock-gating (ICG) cells and estimates the clock-tree power
/// saved — one of the "design for power" techniques the panel credits
/// with preventing dark silicon.

#include <vector>

#include "janus/netlist/netlist.hpp"
#include "janus/power/activity.hpp"
#include "janus/netlist/technology.hpp"

namespace janus {

struct ClockGatingOptions {
    /// Flops whose D-input toggle rate is below this are gating candidates.
    double activity_threshold = 0.15;
    /// Minimum flops per ICG cell (smaller groups don't amortize the ICG).
    std::size_t min_group_size = 4;
    double frequency_mhz = 500.0;
};

struct ClockGatingGroup {
    std::vector<InstId> flops;
    double enable_probability = 0.0;  ///< fraction of cycles the group clocks
};

struct ClockGatingPlan {
    std::vector<ClockGatingGroup> groups;
    std::size_t gated_flops = 0;
    std::size_t total_flops = 0;
    double baseline_clock_mw = 0.0;
    double gated_clock_mw = 0.0;  ///< clock power after gating (incl. ICGs)
    double saving_fraction() const {
        return baseline_clock_mw > 0
                   ? 1.0 - gated_clock_mw / baseline_clock_mw
                   : 0.0;
    }
};

/// Plans clock gating from activity data. Flops are grouped by similar
/// D-activity (a proxy for a shared enable condition).
ClockGatingPlan plan_clock_gating(const Netlist& nl, const TechnologyNode& node,
                                  const ActivityReport& activity,
                                  const ClockGatingOptions& opts = {});

}  // namespace janus
