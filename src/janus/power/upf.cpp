#include "janus/power/upf.hpp"

#include <cctype>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace janus {
namespace {

/// Tokenizes one command line; braces group a list into one token stream
/// segment: "a -x {b c}" -> ["a", "-x", "{", "b", "c", "}"].
std::vector<std::string> tokenize(const std::string& line) {
    std::vector<std::string> out;
    std::string cur;
    for (const char c : line) {
        if (c == '{' || c == '}') {
            if (!cur.empty()) {
                out.push_back(cur);
                cur.clear();
            }
            out.push_back(std::string(1, c));
        } else if (std::isspace(static_cast<unsigned char>(c))) {
            if (!cur.empty()) {
                out.push_back(cur);
                cur.clear();
            }
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty()) out.push_back(cur);
    return out;
}

struct PendingDomain {
    std::vector<std::string> elements;
    double voltage = -1;
    bool shutdown = false;
    double on_fraction = 1.0;
};

std::map<std::string, InstId> name_index(const Netlist& nl) {
    std::map<std::string, InstId> idx;
    for (InstId i = 0; i < nl.num_instances(); ++i) {
        idx[std::string(nl.instance_name(i))] = i;
    }
    return idx;
}

}  // namespace

PowerIntent read_power_intent(std::istream& is, const Netlist& nl,
                              IntentDialect dialect, double default_voltage) {
    std::map<std::string, PendingDomain> domains;
    std::map<std::string, double> supply_voltage;  // UPF nets / CPF conditions
    std::size_t line_no = 0;
    std::string line;

    const auto fail = [&](const std::string& why) {
        throw std::runtime_error("power intent line " + std::to_string(line_no) +
                                 ": " + why);
    };
    const auto read_list = [&](const std::vector<std::string>& toks,
                               std::size_t& i) {
        std::vector<std::string> items;
        if (i >= toks.size() || toks[i] != "{") fail("expected '{' list");
        ++i;
        while (i < toks.size() && toks[i] != "}") items.push_back(toks[i++]);
        if (i >= toks.size()) fail("unterminated list");
        ++i;
        return items;
    };

    while (std::getline(is, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos) line.erase(hash);
        const auto toks = tokenize(line);
        if (toks.empty()) continue;
        const std::string& cmd = toks[0];

        if (dialect == IntentDialect::Upf) {
            if (cmd == "create_power_domain") {
                if (toks.size() < 2) fail("missing domain name");
                PendingDomain& d = domains[toks[1]];
                for (std::size_t i = 2; i < toks.size();) {
                    if (toks[i] == "-elements") {
                        ++i;
                        d.elements = read_list(toks, i);
                    } else {
                        fail("unknown option " + toks[i]);
                    }
                }
            } else if (cmd == "create_supply_net") {
                if (toks.size() < 4 || toks[2] != "-voltage") {
                    fail("create_supply_net <name> -voltage <v>");
                }
                supply_voltage[toks[1]] = std::stod(toks[3]);
            } else if (cmd == "associate_supply_net") {
                if (toks.size() < 4 || toks[2] != "-domain") {
                    fail("associate_supply_net <net> -domain <domain>");
                }
                if (!supply_voltage.count(toks[1])) fail("unknown supply " + toks[1]);
                domains[toks[3]].voltage = supply_voltage[toks[1]];
            } else if (cmd == "set_domain_shutdown") {
                if (toks.size() < 4 || toks[2] != "-on_fraction") {
                    fail("set_domain_shutdown <domain> -on_fraction <f>");
                }
                PendingDomain& d = domains[toks[1]];
                d.shutdown = true;
                d.on_fraction = std::stod(toks[3]);
            } else {
                fail("unknown UPF command " + cmd);
            }
        } else {  // CPF dialect
            if (cmd == "create_power_domain") {
                std::string name;
                std::vector<std::string> elements;
                for (std::size_t i = 1; i < toks.size();) {
                    if (toks[i] == "-name" && i + 1 < toks.size()) {
                        name = toks[i + 1];
                        i += 2;
                    } else if (toks[i] == "-instances") {
                        ++i;
                        elements = read_list(toks, i);
                    } else {
                        fail("unknown option " + toks[i]);
                    }
                }
                if (name.empty()) fail("create_power_domain needs -name");
                domains[name].elements = std::move(elements);
            } else if (cmd == "create_nominal_condition") {
                std::string name;
                double v = -1;
                for (std::size_t i = 1; i + 1 < toks.size(); i += 2) {
                    if (toks[i] == "-name") name = toks[i + 1];
                    if (toks[i] == "-voltage") v = std::stod(toks[i + 1]);
                }
                if (name.empty() || v < 0) fail("bad create_nominal_condition");
                supply_voltage[name] = v;
            } else if (cmd == "update_power_domain") {
                std::string name;
                for (std::size_t i = 1; i < toks.size();) {
                    if (toks[i] == "-name" && i + 1 < toks.size()) {
                        name = toks[i + 1];
                        i += 2;
                    } else if (toks[i] == "-nominal" && i + 1 < toks.size()) {
                        if (name.empty()) fail("-nominal before -name");
                        if (!supply_voltage.count(toks[i + 1])) {
                            fail("unknown condition " + toks[i + 1]);
                        }
                        domains[name].voltage = supply_voltage[toks[i + 1]];
                        i += 2;
                    } else if (toks[i] == "-shutoff") {
                        if (name.empty()) fail("-shutoff before -name");
                        domains[name].shutdown = true;
                        ++i;
                    } else if (toks[i] == "-duty" && i + 1 < toks.size()) {
                        if (name.empty()) fail("-duty before -name");
                        domains[name].on_fraction = std::stod(toks[i + 1]);
                        i += 2;
                    } else {
                        fail("unknown option " + toks[i]);
                    }
                }
            } else {
                fail("unknown CPF command " + cmd);
            }
        }
    }

    PowerIntent intent(nl, default_voltage);
    const auto idx = name_index(nl);
    for (const auto& [name, pd] : domains) {
        PowerDomain dom;
        dom.name = name;
        dom.voltage = pd.voltage > 0 ? pd.voltage : default_voltage;
        dom.can_shutdown = pd.shutdown;
        dom.on_fraction = pd.on_fraction;
        for (const std::string& el : pd.elements) {
            const auto it = idx.find(el);
            if (it == idx.end()) {
                throw std::runtime_error("power intent: unknown instance " + el);
            }
            dom.members.push_back(it->second);
        }
        intent.add_domain(std::move(dom));
    }
    return intent;
}

void write_power_intent(std::ostream& os, const PowerIntent& intent,
                        const Netlist& nl, IntentDialect dialect) {
    // Domain 0 is the implicit default; emit the rest.
    for (std::size_t d = 1; d < intent.domains().size(); ++d) {
        const PowerDomain& dom = intent.domains()[d];
        if (dialect == IntentDialect::Upf) {
            os << "create_power_domain " << dom.name << " -elements {";
            for (const InstId i : dom.members) os << " " << nl.instance_name(i);
            os << " }\n";
            os << "create_supply_net V_" << dom.name << " -voltage " << dom.voltage
               << "\n";
            os << "associate_supply_net V_" << dom.name << " -domain " << dom.name
               << "\n";
            if (dom.can_shutdown) {
                os << "set_domain_shutdown " << dom.name << " -on_fraction "
                   << dom.on_fraction << "\n";
            }
        } else {
            os << "create_power_domain -name " << dom.name << " -instances {";
            for (const InstId i : dom.members) os << " " << nl.instance_name(i);
            os << " }\n";
            os << "create_nominal_condition -name nc_" << dom.name << " -voltage "
               << dom.voltage << "\n";
            os << "update_power_domain -name " << dom.name << " -nominal nc_"
               << dom.name << "\n";
            if (dom.can_shutdown) {
                os << "update_power_domain -name " << dom.name << " -shutoff -duty "
                   << dom.on_fraction << "\n";
            }
        }
    }
}

std::string convert_power_intent(const std::string& text, const Netlist& nl,
                                 IntentDialect from, IntentDialect to,
                                 double default_voltage) {
    std::istringstream in(text);
    const PowerIntent intent = read_power_intent(in, nl, from, default_voltage);
    std::ostringstream out;
    write_power_intent(out, intent, nl, to);
    return out.str();
}

}  // namespace janus
