#pragma once
/// \file line_search.hpp
/// Mikami-Tabuchi line-search routing: escape lines are drawn from both
/// terminals and extended level by level until the two line sets meet.
/// Complete (finds a path whenever one exists) but touches far fewer
/// cells than maze search on sparsely blocked grids — the "more efficient
/// line-search routing algorithms" panelist Domic credits with enabling
/// layer reduction at 28 nm and above (E3).

#include <optional>

#include "janus/route/grid_graph.hpp"
#include "janus/route/maze_router.hpp"

namespace janus {

struct LineSearchOptions {
    /// Edges at or beyond capacity block line extension.
    bool respect_capacity = true;
    int max_levels = 64;
};

/// Routes src -> dst with line probes; nullopt when no path exists within
/// the level budget.
std::optional<GridRoute> line_search_route(const GridGraph& grid, GCell src,
                                           GCell dst,
                                           const LineSearchOptions& opts = {},
                                           SearchStats* stats = nullptr);

}  // namespace janus
