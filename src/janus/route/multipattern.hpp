#pragma once
/// \file multipattern.hpp
/// Multi-patterning layout decomposition: splitting one drawn layer onto
/// k masks so that same-mask shapes respect the (larger) single-exposure
/// spacing. Double patterning is 2-coloring with stitch insertion on odd
/// cycles; triple/quadruple use saturation-degree colouring. The panel:
/// "starting at 20 nm it has become impossible to draw the copper
/// interconnects without double-, triple-, or even quadruple-patterning"
/// (experiment E2).

#include <cstdint>
#include <vector>

#include "janus/util/geometry.hpp"

namespace janus {

/// One wire shape on the target layer (coordinates in nm).
struct WireShape {
    Rect rect;
    /// Shapes created by stitching refer to their original shape.
    int parent = -1;
    /// Electrical net id: same-net shapes that touch are one polygon and
    /// never conflict with each other (-1 = unique net).
    int net = -1;
};

struct MplOptions {
    int num_masks = 2;
    /// Same-mask spacing: shapes closer than this must go on different
    /// masks (193i single-exposure limit, default from the panel's 80 nm
    /// pitch => ~half-pitch spacing of 40 nm).
    double same_mask_spacing_nm = 40.0;
    bool allow_stitches = true;
    /// A shape can be stitched only if both halves are at least this long.
    double min_stitch_half_nm = 60.0;
    int max_stitch_passes = 64;
};

struct MplResult {
    std::vector<WireShape> shapes;  ///< post-stitch shapes
    std::vector<int> color;         ///< mask per shape, -1 if uncolored
    std::size_t num_stitches = 0;
    /// Conflict edges whose two shapes ended on the same mask.
    std::size_t unresolved_conflicts = 0;
    bool success() const { return unresolved_conflicts == 0; }
};

/// Decomposes `shapes` onto `opts.num_masks` masks.
MplResult decompose(const std::vector<WireShape>& shapes, const MplOptions& opts);

/// Builds the conflict edge list (pairs of shape indices closer than the
/// same-mask spacing). Exposed for tests.
std::vector<std::pair<std::size_t, std::size_t>> conflict_edges(
    const std::vector<WireShape>& shapes, double spacing_nm);

/// Generates a dense routed-layer layout: `tracks` horizontal wires of
/// length `length_nm` at `pitch_nm`, broken into segments with random
/// jogs to adjacent tracks — the pattern that creates odd cycles.
std::vector<WireShape> make_dense_layout(int tracks, double length_nm,
                                         double pitch_nm, double width_nm,
                                         double jog_probability,
                                         std::uint64_t seed);

}  // namespace janus
