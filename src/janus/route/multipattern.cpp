#include "janus/route/multipattern.hpp"

#include <algorithm>
#include <queue>

#include "janus/util/rng.hpp"

namespace janus {

std::vector<std::pair<std::size_t, std::size_t>> conflict_edges(
    const std::vector<WireShape>& shapes, double spacing_nm) {
    // Sweep by x to avoid the full quadratic scan on long layouts.
    std::vector<std::size_t> order(shapes.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return shapes[a].rect.lo.x < shapes[b].rect.lo.x;
    });
    const auto spacing = static_cast<std::int64_t>(spacing_nm);

    std::vector<std::pair<std::size_t, std::size_t>> edges;
    for (std::size_t oi = 0; oi < order.size(); ++oi) {
        const std::size_t i = order[oi];
        for (std::size_t oj = oi + 1; oj < order.size(); ++oj) {
            const std::size_t j = order[oj];
            if (shapes[j].rect.lo.x - shapes[i].rect.hi.x >= spacing) break;
            const std::int64_t gap = rect_gap(shapes[i].rect, shapes[j].rect);
            // Touching shapes of one polygon (stitch siblings) or of one
            // electrical net are connected, not conflicting.
            if (gap == 0 &&
                ((shapes[i].parent >= 0 && shapes[i].parent == shapes[j].parent) ||
                 (shapes[i].net >= 0 && shapes[i].net == shapes[j].net))) {
                continue;
            }
            if (gap < spacing) {
                edges.emplace_back(std::min(i, j), std::max(i, j));
            }
        }
    }
    return edges;
}

namespace {

std::vector<std::vector<std::size_t>> adjacency(
    std::size_t n, const std::vector<std::pair<std::size_t, std::size_t>>& edges) {
    std::vector<std::vector<std::size_t>> adj(n);
    for (const auto& [a, b] : edges) {
        adj[a].push_back(b);
        adj[b].push_back(a);
    }
    return adj;
}

/// Greedy saturation-degree (DSATUR) colouring with k colours; nodes that
/// cannot be coloured take the least-conflicting colour.
std::vector<int> dsatur(std::size_t n,
                        const std::vector<std::vector<std::size_t>>& adj, int k) {
    std::vector<int> color(n, -1);
    std::vector<int> sat(n, 0);
    std::vector<bool> done(n, false);
    for (std::size_t step = 0; step < n; ++step) {
        // Pick the uncoloured node with max saturation, tie-break degree.
        std::size_t pick = n;
        for (std::size_t i = 0; i < n; ++i) {
            if (done[i]) continue;
            if (pick == n || sat[i] > sat[pick] ||
                (sat[i] == sat[pick] && adj[i].size() > adj[pick].size())) {
                pick = i;
            }
        }
        // Count conflicts per colour among neighbors.
        std::vector<int> used(static_cast<std::size_t>(k), 0);
        for (const std::size_t nb : adj[pick]) {
            if (color[nb] >= 0) ++used[static_cast<std::size_t>(color[nb])];
        }
        int best = 0;
        for (int c = 1; c < k; ++c) {
            if (used[static_cast<std::size_t>(c)] < used[static_cast<std::size_t>(best)]) {
                best = c;
            }
        }
        color[pick] = best;
        done[pick] = true;
        for (const std::size_t nb : adj[pick]) {
            if (!done[nb]) ++sat[nb];
        }
    }
    return color;
}

std::size_t count_conflicts(
    const std::vector<int>& color,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges) {
    std::size_t c = 0;
    for (const auto& [a, b] : edges) {
        if (color[a] >= 0 && color[a] == color[b]) ++c;
    }
    return c;
}

}  // namespace

MplResult decompose(const std::vector<WireShape>& shapes, const MplOptions& opts) {
    MplResult res;
    res.shapes = shapes;
    // Record original index as parent for stitch bookkeeping.
    for (std::size_t i = 0; i < res.shapes.size(); ++i) {
        if (res.shapes[i].parent < 0) res.shapes[i].parent = static_cast<int>(i);
    }

    if (opts.num_masks <= 1) {
        // Single patterning: everything on one mask; conflicts are just
        // the conflict edges.
        res.color.assign(res.shapes.size(), 0);
        res.unresolved_conflicts =
            conflict_edges(res.shapes, opts.same_mask_spacing_nm).size();
        return res;
    }

    for (int pass = 0;; ++pass) {
        const auto edges = conflict_edges(res.shapes, opts.same_mask_spacing_nm);
        const auto adj = adjacency(res.shapes.size(), edges);
        res.color = dsatur(res.shapes.size(), adj, opts.num_masks);
        res.unresolved_conflicts = count_conflicts(res.color, edges);
        if (res.unresolved_conflicts == 0 || !opts.allow_stitches ||
            pass >= opts.max_stitch_passes) {
            break;
        }
        // Stitch: split a shape involved in a conflict at a legal stitch
        // location — the largest gap along its long axis not covered by
        // any conflict neighbor's (spacing-inflated) projection. Splitting
        // at a covered point is useless: both halves would keep the same
        // conflicts as the whole.
        const auto spacing = static_cast<std::int64_t>(opts.same_mask_spacing_nm);
        const auto min_half = static_cast<std::int64_t>(opts.min_stitch_half_nm);

        // Candidates: shapes on a violated edge, longest first.
        std::vector<std::size_t> cands;
        for (const auto& [a, b] : edges) {
            if (res.color[a] != res.color[b]) continue;
            cands.push_back(a);
            cands.push_back(b);
        }
        std::sort(cands.begin(), cands.end(), [&](std::size_t a, std::size_t b) {
            const auto la = std::max(res.shapes[a].rect.width(), res.shapes[a].rect.height());
            const auto lb = std::max(res.shapes[b].rect.width(), res.shapes[b].rect.height());
            return la > lb;
        });
        cands.erase(std::unique(cands.begin(), cands.end()), cands.end());

        bool stitched = false;
        const auto adj_now = adjacency(res.shapes.size(), edges);
        for (const std::size_t victim : cands) {
            const Rect r = res.shapes[victim].rect;
            const bool horiz = r.width() >= r.height();
            const std::int64_t lo = horiz ? r.lo.x : r.lo.y;
            const std::int64_t hi = horiz ? r.hi.x : r.hi.y;
            if (hi - lo < 2 * min_half) continue;
            // Neighbor projections onto the split axis.
            std::vector<std::pair<std::int64_t, std::int64_t>> blocked;
            for (const std::size_t nb : adj_now[victim]) {
                const Rect& nr = res.shapes[nb].rect;
                blocked.emplace_back((horiz ? nr.lo.x : nr.lo.y) - spacing,
                                     (horiz ? nr.hi.x : nr.hi.y) + spacing);
            }
            std::sort(blocked.begin(), blocked.end());
            // Find the largest uncovered gap within [lo+min_half, hi-min_half].
            std::int64_t cursor = lo + min_half;
            std::int64_t best_at = -1, best_gap = 0;
            const std::int64_t limit = hi - min_half;
            for (const auto& [blo, bhi] : blocked) {
                if (blo > cursor) {
                    const std::int64_t gap = std::min(blo, limit) - cursor;
                    if (gap > best_gap) {
                        best_gap = gap;
                        best_at = cursor + gap / 2;
                    }
                }
                cursor = std::max(cursor, bhi);
                if (cursor >= limit) break;
            }
            if (cursor < limit) {
                const std::int64_t gap = limit - cursor;
                if (gap > best_gap) {
                    best_gap = gap;
                    best_at = cursor + gap / 2;
                }
            }
            if (best_at < 0) continue;  // fully covered: unsplittable

            WireShape left = res.shapes[victim];
            WireShape right = res.shapes[victim];
            if (horiz) {
                left.rect.hi.x = best_at;
                right.rect.lo.x = best_at;
            } else {
                left.rect.hi.y = best_at;
                right.rect.lo.y = best_at;
            }
            res.shapes[victim] = left;
            res.shapes.push_back(right);
            ++res.num_stitches;
            stitched = true;
            break;
        }
        if (!stitched) break;  // nothing stitchable
    }
    return res;
}

std::vector<WireShape> make_dense_layout(int tracks, double length_nm,
                                         double pitch_nm, double width_nm,
                                         double jog_probability,
                                         std::uint64_t seed) {
    Rng rng(seed);
    std::vector<WireShape> shapes;
    const auto w = static_cast<std::int64_t>(width_nm);
    const auto len = static_cast<std::int64_t>(length_nm);
    const auto pitch = static_cast<std::int64_t>(pitch_nm);
    int next_net = 0;

    // Pass 1: track segments, each its own net.
    std::vector<std::vector<std::size_t>> track_segs(static_cast<std::size_t>(tracks));
    for (int t = 0; t < tracks; ++t) {
        const std::int64_t y = static_cast<std::int64_t>(t) * pitch;
        std::int64_t x = 0;
        while (x < len) {
            const std::int64_t seg =
                std::max<std::int64_t>(4 * w, rng.next_in(len / 6, len / 2));
            const std::int64_t end = std::min(len, x + seg);
            WireShape s;
            s.rect = Rect{x, y, end, y + w};
            s.net = next_net++;
            track_segs[static_cast<std::size_t>(t)].push_back(shapes.size());
            shapes.push_back(s);
            x = end + std::max<std::int64_t>(2 * w, pitch);
        }
    }

    // Pass 2: jogs. A jog lands on a segment of the next track and merges
    // the two nets (it is one polygon electrically); the pattern still
    // forms the triangles that defeat 2-colouring at tight pitch, because
    // the jog body runs beside *other* tracks' segments.
    const std::size_t before_jogs = shapes.size();
    for (int t = 0; t + 1 < tracks; ++t) {
        for (const std::size_t si : track_segs[static_cast<std::size_t>(t)]) {
            if (si >= before_jogs || !rng.next_bool(jog_probability)) continue;
            const Rect r = shapes[si].rect;
            // Land point: the segment's right end.
            const std::int64_t jx = r.hi.x - w;
            std::size_t target = before_jogs;
            for (const std::size_t sj : track_segs[static_cast<std::size_t>(t) + 1]) {
                if (shapes[sj].rect.lo.x <= jx && shapes[sj].rect.hi.x >= r.hi.x) {
                    target = sj;
                    break;
                }
            }
            if (target == before_jogs) continue;  // nothing to land on
            WireShape jog;
            jog.rect = Rect{jx, r.lo.y, r.hi.x, r.lo.y + pitch + w};
            jog.net = shapes[si].net;
            // Merge the landing segment's net into the jog's net.
            const int victim_net = shapes[target].net;
            for (WireShape& s : shapes) {
                if (s.net == victim_net) s.net = jog.net;
            }
            shapes.push_back(jog);
        }
    }
    return shapes;
}

}  // namespace janus
