#include "janus/route/line_search.hpp"

#include <algorithm>
#include <vector>

namespace janus {
namespace {

constexpr int kUnreached = -1;

struct Side {
    std::vector<int> pivot;  ///< per cell: pivot cell index, or kUnreached
    std::vector<int> frontier;
};

/// Expands the straight cell path between two colinear cells (inclusive).
void append_segment(std::vector<GCell>& out, GCell from, GCell to) {
    const int dx = (to.x > from.x) - (to.x < from.x);
    const int dy = (to.y > from.y) - (to.y < from.y);
    GCell c = from;
    while (!(c == to)) {
        out.push_back(c);
        c.x += dx;
        c.y += dy;
    }
    out.push_back(to);
}

}  // namespace

std::optional<GridRoute> line_search_route(const GridGraph& grid, GCell src,
                                           GCell dst,
                                           const LineSearchOptions& opts,
                                           SearchStats* stats) {
    if (!grid.contains(src) || !grid.contains(dst)) return std::nullopt;
    const int w = grid.width();
    const auto idx = [&](const GCell& c) {
        return static_cast<std::size_t>(c.y) * w + c.x;
    };
    const auto cell_of = [&](int i) { return GCell{i % w, i / w}; };
    const std::size_t n = static_cast<std::size_t>(w) * grid.height();

    Side from_src{std::vector<int>(n, kUnreached), {}};
    Side from_dst{std::vector<int>(n, kUnreached), {}};
    from_src.pivot[idx(src)] = static_cast<int>(idx(src));
    from_dst.pivot[idx(dst)] = static_cast<int>(idx(dst));
    from_src.frontier.push_back(static_cast<int>(idx(src)));
    from_dst.frontier.push_back(static_cast<int>(idx(dst)));
    if (stats) stats->cells_expanded += 2;

    int meet = kUnreached;

    const auto passable = [&](const GCell& a, const GCell& b) {
        return !opts.respect_capacity || grid.edge_free(a, b);
    };

    // Draws the four maximal lines from `pivot`, marking new cells on
    // `side`; returns true if a marked cell is already reached by `other`.
    const auto draw_lines = [&](Side& side, const Side& other, int pivot_idx,
                                std::vector<int>& next_frontier) {
        const GCell pivot = cell_of(pivot_idx);
        static const int dx[] = {1, -1, 0, 0};
        static const int dy[] = {0, 0, 1, -1};
        for (int d = 0; d < 4; ++d) {
            GCell cur = pivot;
            for (;;) {
                const GCell nxt{cur.x + dx[d], cur.y + dy[d]};
                if (!grid.contains(nxt) || !passable(cur, nxt)) break;
                const std::size_t ni = idx(nxt);
                cur = nxt;
                if (side.pivot[ni] != kUnreached) continue;
                side.pivot[ni] = pivot_idx;
                next_frontier.push_back(static_cast<int>(ni));
                if (stats) ++stats->cells_expanded;
                if (other.pivot[ni] != kUnreached) {
                    meet = static_cast<int>(ni);
                    return true;
                }
            }
        }
        return false;
    };

    // Trivial meet: src == dst.
    if (src == dst) {
        GridRoute r;
        r.cells.push_back(src);
        return r;
    }

    bool found = false;
    for (int level = 0; level < opts.max_levels && !found; ++level) {
        // Alternate sides each level; expand every frontier pivot.
        Side& active = (level % 2 == 0) ? from_src : from_dst;
        Side& passive = (level % 2 == 0) ? from_dst : from_src;
        std::vector<int> next;
        for (const int p : active.frontier) {
            if (draw_lines(active, passive, p, next)) {
                found = true;
                break;
            }
        }
        active.frontier = std::move(next);
        if (active.frontier.empty() && !found) return std::nullopt;
    }
    if (!found) return std::nullopt;

    // Reconstruct: walk pivots back to each terminal.
    const auto chain = [&](const Side& side, int start) {
        std::vector<GCell> pts;
        int cur = start;
        pts.push_back(cell_of(cur));
        while (side.pivot[static_cast<std::size_t>(cur)] != cur) {
            cur = side.pivot[static_cast<std::size_t>(cur)];
            pts.push_back(cell_of(cur));
        }
        return pts;  // start ... terminal
    };
    const std::vector<GCell> to_src = chain(from_src, meet);
    const std::vector<GCell> to_dst = chain(from_dst, meet);

    GridRoute route;
    // src ... meet
    for (std::size_t i = to_src.size(); i-- > 1;) {
        append_segment(route.cells, to_src[i], to_src[i - 1]);
        route.cells.pop_back();  // avoid duplicating the joint
    }
    route.cells.push_back(to_src.front());  // the meet cell
    // meet ... dst
    for (std::size_t i = 0; i + 1 < to_dst.size(); ++i) {
        std::vector<GCell> seg;
        append_segment(seg, to_dst[i], to_dst[i + 1]);
        route.cells.insert(route.cells.end(), seg.begin() + 1, seg.end());
    }
    return route;
}

}  // namespace janus
