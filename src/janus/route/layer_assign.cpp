#include "janus/route/layer_assign.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace janus {
namespace {

/// A maximal straight run of a route.
struct Run {
    bool horizontal = false;
    std::size_t edges = 0;
    std::size_t start_edge = 0;  // global edge ids not tracked; per-run only
};

std::vector<Run> split_runs(const GridRoute& r) {
    std::vector<Run> runs;
    for (std::size_t i = 1; i < r.cells.size(); ++i) {
        const bool horiz = r.cells[i].y == r.cells[i - 1].y;
        if (runs.empty() || runs.back().horizontal != horiz) {
            runs.push_back(Run{horiz, 0, i - 1});
        }
        ++runs.back().edges;
    }
    return runs;
}

}  // namespace

LayerAssignResult assign_layers(const GlobalRouteResult& routes, int grid_w,
                                int grid_h, const LayerAssignOptions& opts) {
    LayerAssignResult res;
    res.layers_used = opts.routing_layers;
    res.layer_usage.assign(static_cast<std::size_t>(opts.routing_layers), 0.0);

    // Per-layer, per-edge usage. Horizontal edges indexed (w-1)*h, vertical
    // w*(h-1); one array per layer of the matching direction.
    const std::size_t h_edges = static_cast<std::size_t>(grid_w - 1) * grid_h;
    const std::size_t v_edges = static_cast<std::size_t>(grid_w) * (grid_h - 1);
    std::vector<std::vector<double>> usage(
        static_cast<std::size_t>(opts.routing_layers));
    for (int l = 0; l < opts.routing_layers; ++l) {
        usage[static_cast<std::size_t>(l)].assign(l % 2 == 0 ? h_edges : v_edges, 0.0);
    }
    const auto h_index = [&](const GCell& a, const GCell& b) {
        return static_cast<std::size_t>(a.y) * (grid_w - 1) + std::min(a.x, b.x);
    };
    const auto v_index = [&](const GCell& a, const GCell& b) {
        return static_cast<std::size_t>(std::min(a.y, b.y)) * grid_w + a.x;
    };

    for (const RoutedNet& rn : routes.nets) {
        for (const GridRoute& seg : rn.segments) {
            const auto runs = split_runs(seg);
            int prev_layer = -1;
            for (const Run& run : runs) {
                // Candidate layers of the right direction; choose the one
                // with the least usage on this run's first edge.
                int best_layer = -1;
                double best_use = 1e300;
                for (int l = run.horizontal ? 0 : 1; l < opts.routing_layers; l += 2) {
                    // Usage sampled at the run's first edge.
                    const std::size_t e0 =
                        run.horizontal
                            ? h_index(seg.cells[run.start_edge], seg.cells[run.start_edge + 1])
                            : v_index(seg.cells[run.start_edge], seg.cells[run.start_edge + 1]);
                    const double u = usage[static_cast<std::size_t>(l)][e0];
                    // Prefer lower layers slightly (cheaper vias to pins).
                    const double score = u + 0.01 * l;
                    if (score < best_use) {
                        best_use = score;
                        best_layer = l;
                    }
                }
                if (best_layer < 0) {
                    // No layer of this direction exists (e.g. 1-layer stack):
                    // force layer 0 and count overflow there.
                    best_layer = 0;
                }
                // Commit usage along the run.
                for (std::size_t e = 0; e < run.edges; ++e) {
                    const std::size_t i = run.start_edge + e;
                    const std::size_t ei =
                        run.horizontal ? h_index(seg.cells[i], seg.cells[i + 1])
                                       : v_index(seg.cells[i], seg.cells[i + 1]);
                    auto& u = usage[static_cast<std::size_t>(best_layer)];
                    if (ei < u.size()) u[ei] += 1.0;
                }
                res.layer_usage[static_cast<std::size_t>(best_layer)] +=
                    static_cast<double>(run.edges);
                res.total_wirelength += run.edges;
                if (prev_layer >= 0 && prev_layer != best_layer) {
                    res.via_count += static_cast<std::size_t>(
                        std::abs(best_layer - prev_layer));
                }
                prev_layer = best_layer;
            }
            // Pin access vias: route endpoints connect down to the cells.
            if (!runs.empty()) res.via_count += 2;
        }
    }

    for (const auto& layer : usage) {
        for (const double u : layer) {
            res.layer_overflow += std::max(0.0, u - opts.capacity_per_layer);
        }
    }
    return res;
}

}  // namespace janus
