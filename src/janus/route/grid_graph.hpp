#pragma once
/// \file grid_graph.hpp
/// Global-routing grid: gcells with capacitated edges between 4-neighbors.
/// Both routers (maze and line-search) and the rip-up-and-reroute loop
/// operate on this structure.

#include <cstdint>
#include <vector>

namespace janus {

/// A gcell coordinate.
struct GCell {
    int x = 0;
    int y = 0;
    friend bool operator==(const GCell&, const GCell&) = default;
};

/// A routed path: a sequence of adjacent gcells (no layer yet; layer
/// assignment happens in layer_assign.hpp).
struct GridRoute {
    std::vector<GCell> cells;
    /// Total edge count (wirelength in gcell units).
    std::size_t length() const { return cells.empty() ? 0 : cells.size() - 1; }
};

class GridGraph {
  public:
    GridGraph(int width, int height, double edge_capacity);

    int width() const { return width_; }
    int height() const { return height_; }
    double capacity() const { return capacity_; }
    bool contains(const GCell& c) const {
        return c.x >= 0 && c.y >= 0 && c.x < width_ && c.y < height_;
    }

    /// Usage of the edge from `c` toward +x (horizontal) or +y (vertical).
    double h_usage(int x, int y) const { return h_usage_[h_index(x, y)]; }
    double v_usage(int x, int y) const { return v_usage_[v_index(x, y)]; }
    /// History cost accumulated by the negotiation loop.
    double h_history(int x, int y) const { return h_hist_[h_index(x, y)]; }
    double v_history(int x, int y) const { return v_hist_[v_index(x, y)]; }

    /// Cost of crossing an edge for the router: 1 + overflow penalty +
    /// history. `penalty` scales how hard full edges repel.
    double edge_cost(const GCell& from, const GCell& to, double penalty) const;

    /// True when the edge has remaining capacity.
    bool edge_free(const GCell& from, const GCell& to) const;

    /// Commits/uncommits a route's demand.
    void add_route(const GridRoute& r, double demand = 1.0);
    void remove_route(const GridRoute& r, double demand = 1.0);

    /// Adds history cost on all overflowed edges (negotiated congestion).
    void accumulate_history(double increment = 0.5);

    /// Overflow summary: total demand beyond capacity over all edges.
    double total_overflow() const;
    std::size_t overflowed_edges() const;

  private:
    int width_, height_;
    double capacity_;
    std::vector<double> h_usage_, v_usage_;  // (width-1)*height, width*(height-1)
    std::vector<double> h_hist_, v_hist_;

    std::size_t h_index(int x, int y) const {
        return static_cast<std::size_t>(y) * (width_ - 1) + x;
    }
    std::size_t v_index(int x, int y) const {
        return static_cast<std::size_t>(y) * width_ + x;
    }
    double& usage_ref(const GCell& a, const GCell& b);
    double usage_of(const GCell& a, const GCell& b) const;
    double history_of(const GCell& a, const GCell& b) const;
};

}  // namespace janus
