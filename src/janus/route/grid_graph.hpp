#pragma once
/// \file grid_graph.hpp
/// Global-routing grid: gcells with capacitated edges between 4-neighbors.
/// Both routers (maze and line-search) and the rip-up-and-reroute loop
/// operate on this structure.

#include <algorithm>
#include <cstdint>
#include <vector>

namespace janus {

/// A gcell coordinate.
struct GCell {
    int x = 0;
    int y = 0;
    friend bool operator==(const GCell&, const GCell&) = default;
};

/// An inclusive rectangle of gcells, [x0..x1] x [y0..y1]. Default-constructed
/// rectangles are empty. Used for the maze search window and for the overlap
/// queries that partition congested nets into independently-routable batches
/// (global_router.cpp; see docs/ROUTING.md).
struct GCellRect {
    int x0 = 0, y0 = 0, x1 = -1, y1 = -1;

    bool empty() const { return x1 < x0 || y1 < y0; }
    int span_x() const { return empty() ? 0 : x1 - x0; }
    int span_y() const { return empty() ? 0 : y1 - y0; }

    void include(const GCell& c) {
        if (empty()) {
            x0 = x1 = c.x;
            y0 = y1 = c.y;
            return;
        }
        x0 = std::min(x0, c.x);
        x1 = std::max(x1, c.x);
        y0 = std::min(y0, c.y);
        y1 = std::max(y1, c.y);
    }

    bool contains(const GCell& c) const {
        return c.x >= x0 && c.x <= x1 && c.y >= y0 && c.y <= y1;
    }

    bool overlaps(const GCellRect& o) const {
        return !empty() && !o.empty() && x0 <= o.x1 && o.x0 <= x1 &&
               y0 <= o.y1 && o.y0 <= y1;
    }

    /// Grown by `margin` on every side (empty stays empty).
    GCellRect expanded(int margin) const {
        if (empty()) return *this;
        return {x0 - margin, y0 - margin, x1 + margin, y1 + margin};
    }

    /// Intersected with a width x height grid.
    GCellRect clipped(int width, int height) const {
        if (empty()) return *this;
        return {std::max(x0, 0), std::max(y0, 0), std::min(x1, width - 1),
                std::min(y1, height - 1)};
    }
};

/// A routed path: a sequence of adjacent gcells (no layer yet; layer
/// assignment happens in layer_assign.hpp).
struct GridRoute {
    std::vector<GCell> cells;
    /// Total edge count (wirelength in gcell units).
    std::size_t length() const { return cells.empty() ? 0 : cells.size() - 1; }
};

class GridGraph {
  public:
    GridGraph(int width, int height, double edge_capacity);

    int width() const { return width_; }
    int height() const { return height_; }
    double capacity() const { return capacity_; }
    bool contains(const GCell& c) const {
        return c.x >= 0 && c.y >= 0 && c.x < width_ && c.y < height_;
    }

    /// Usage of the edge from `c` toward +x (horizontal) or +y (vertical).
    double h_usage(int x, int y) const { return h_usage_[h_index(x, y)]; }
    double v_usage(int x, int y) const { return v_usage_[v_index(x, y)]; }
    /// History cost accumulated by the negotiation loop.
    double h_history(int x, int y) const { return h_hist_[h_index(x, y)]; }
    double v_history(int x, int y) const { return v_hist_[v_index(x, y)]; }

    /// Cost of crossing an edge for the router: 1 + overflow penalty +
    /// history. `penalty` scales how hard full edges repel.
    double edge_cost(const GCell& from, const GCell& to, double penalty) const;

    /// True when the edge has remaining capacity.
    bool edge_free(const GCell& from, const GCell& to) const;

    /// Commits/uncommits a route's demand.
    void add_route(const GridRoute& r, double demand = 1.0);
    void remove_route(const GridRoute& r, double demand = 1.0);

    /// Adds history cost on all overflowed edges (negotiated congestion).
    void accumulate_history(double increment = 0.5);

    /// Overflow summary: total demand beyond capacity over all edges.
    double total_overflow() const;
    std::size_t overflowed_edges() const;

  private:
    int width_, height_;
    double capacity_;
    std::vector<double> h_usage_, v_usage_;  // (width-1)*height, width*(height-1)
    std::vector<double> h_hist_, v_hist_;

    std::size_t h_index(int x, int y) const {
        return static_cast<std::size_t>(y) * (width_ - 1) + x;
    }
    std::size_t v_index(int x, int y) const {
        return static_cast<std::size_t>(y) * width_ + x;
    }
    /// Flat index of the edge a-b and its orientation. Shared by the mutable
    /// commit path and the const read path, so concurrent readers (the
    /// batch-parallel reroute phase) never have to const_cast through the
    /// writer accessor.
    std::size_t edge_index(const GCell& a, const GCell& b,
                           bool& horizontal) const;
    double& usage_ref(const GCell& a, const GCell& b);
    double usage_of(const GCell& a, const GCell& b) const;
    double history_of(const GCell& a, const GCell& b) const;
};

}  // namespace janus
