#pragma once
/// \file maze_router.hpp
/// Lee-style maze routing with A* acceleration: finds a minimum-cost path
/// between two gcells under the grid's congestion-aware edge costs.

#include <algorithm>
#include <optional>

#include "janus/route/grid_graph.hpp"

namespace janus {

struct MazeOptions {
    double congestion_penalty = 8.0;
    /// When true, full edges are hard blockages; when false they are only
    /// penalized (needed by rip-up-and-reroute to make progress).
    bool hard_blockages = false;
    /// A* with the Manhattan lower bound (default). false = classic Lee
    /// wavefront (kept for the line-search comparison experiments).
    bool use_astar = true;
};

/// Detour margin the windowed maze search adds around its terminals'
/// bounding box. Exposed so the batch scheduler in global_router.cpp can
/// reserve the same region when it tests congested nets for overlap.
inline int maze_window_margin(int span_x, int span_y) {
    return std::max(6, (span_x + span_y) / 3);
}

/// Statistics of one search (for router-comparison experiments). Searches
/// running concurrently each fill their own instance; the aggregator merges
/// them with += after the join, so no counter is ever shared across threads.
struct SearchStats {
    std::size_t cells_expanded = 0;  ///< cells visited by maze / line search
    std::size_t pattern_cells = 0;   ///< cells laid by pattern L-routes (no search ran)
    std::size_t tree_cells = 0;      ///< unique cells in grown net trees

    SearchStats& operator+=(const SearchStats& o) {
        cells_expanded += o.cells_expanded;
        pattern_cells += o.pattern_cells;
        tree_cells += o.tree_cells;
        return *this;
    }
};

/// Routes src -> dst; nullopt when unreachable (only possible with hard
/// blockages).
std::optional<GridRoute> maze_route(const GridGraph& grid, GCell src, GCell dst,
                                    const MazeOptions& opts = {},
                                    SearchStats* stats = nullptr);

/// Multi-source variant: finds the cheapest path from any cell of
/// `sources` to `dst` (used to grow a net's routing tree Steiner-style).
/// The returned route starts at the reached source and ends at `dst`.
std::optional<GridRoute> maze_route_from_tree(const GridGraph& grid,
                                              const std::vector<GCell>& sources,
                                              GCell dst,
                                              const MazeOptions& opts = {},
                                              SearchStats* stats = nullptr);

}  // namespace janus
