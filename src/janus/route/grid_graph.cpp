#include "janus/route/grid_graph.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace janus {

GridGraph::GridGraph(int width, int height, double edge_capacity)
    : width_(width), height_(height), capacity_(edge_capacity) {
    if (width < 2 || height < 2) {
        throw std::invalid_argument("GridGraph: grid too small");
    }
    h_usage_.assign(static_cast<std::size_t>(width - 1) * height, 0.0);
    v_usage_.assign(static_cast<std::size_t>(width) * (height - 1), 0.0);
    h_hist_.assign(h_usage_.size(), 0.0);
    v_hist_.assign(v_usage_.size(), 0.0);
}

std::size_t GridGraph::edge_index(const GCell& a, const GCell& b,
                                  bool& horizontal) const {
    assert(contains(a) && contains(b));
    if (a.y == b.y) {
        assert(std::abs(a.x - b.x) == 1);
        horizontal = true;
        return h_index(std::min(a.x, b.x), a.y);
    }
    assert(a.x == b.x && std::abs(a.y - b.y) == 1);
    horizontal = false;
    return v_index(a.x, std::min(a.y, b.y));
}

double& GridGraph::usage_ref(const GCell& a, const GCell& b) {
    bool horizontal = false;
    const std::size_t i = edge_index(a, b, horizontal);
    return horizontal ? h_usage_[i] : v_usage_[i];
}

double GridGraph::usage_of(const GCell& a, const GCell& b) const {
    bool horizontal = false;
    const std::size_t i = edge_index(a, b, horizontal);
    return horizontal ? h_usage_[i] : v_usage_[i];
}

double GridGraph::history_of(const GCell& a, const GCell& b) const {
    if (a.y == b.y) return h_hist_[h_index(std::min(a.x, b.x), a.y)];
    return v_hist_[v_index(a.x, std::min(a.y, b.y))];
}

double GridGraph::edge_cost(const GCell& from, const GCell& to,
                            double penalty) const {
    const double u = usage_of(from, to);
    const double hist = history_of(from, to);
    double cost = 1.0 + hist;
    if (u >= capacity_) {
        cost += penalty * (1.0 + u - capacity_);
    } else if (u > 0.8 * capacity_) {
        cost += penalty * 0.1 * (u - 0.8 * capacity_) / (0.2 * capacity_);
    }
    return cost;
}

bool GridGraph::edge_free(const GCell& from, const GCell& to) const {
    return usage_of(from, to) < capacity_;
}

void GridGraph::add_route(const GridRoute& r, double demand) {
    for (std::size_t i = 1; i < r.cells.size(); ++i) {
        usage_ref(r.cells[i - 1], r.cells[i]) += demand;
    }
}

void GridGraph::remove_route(const GridRoute& r, double demand) {
    for (std::size_t i = 1; i < r.cells.size(); ++i) {
        usage_ref(r.cells[i - 1], r.cells[i]) -= demand;
    }
}

void GridGraph::accumulate_history(double increment) {
    for (std::size_t i = 0; i < h_usage_.size(); ++i) {
        if (h_usage_[i] > capacity_) h_hist_[i] += increment;
    }
    for (std::size_t i = 0; i < v_usage_.size(); ++i) {
        if (v_usage_[i] > capacity_) v_hist_[i] += increment;
    }
}

double GridGraph::total_overflow() const {
    double o = 0;
    for (const double u : h_usage_) o += std::max(0.0, u - capacity_);
    for (const double u : v_usage_) o += std::max(0.0, u - capacity_);
    return o;
}

std::size_t GridGraph::overflowed_edges() const {
    std::size_t n = 0;
    for (const double u : h_usage_) n += (u > capacity_);
    for (const double u : v_usage_) n += (u > capacity_);
    return n;
}

}  // namespace janus
