#include "janus/route/global_router.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <unordered_set>

#include "janus/route/line_search.hpp"
#include "janus/route/maze_router.hpp"
#include "janus/util/thread_pool.hpp"

namespace janus {
namespace {

/// Undirected gcell-edge key for per-net deduplication.
std::uint64_t edge_key(const GCell& a, const GCell& b, int grid_w) {
    const auto id = [&](const GCell& c) {
        return static_cast<std::uint64_t>(c.y) * static_cast<std::uint64_t>(grid_w) +
               static_cast<std::uint64_t>(c.x);
    };
    std::uint64_t x = id(a), y = id(b);
    if (x > y) std::swap(x, y);
    return (x << 32) | y;
}

/// Unique edges of a net's segments as cell pairs.
std::vector<std::pair<GCell, GCell>> net_edges(const RoutedNet& rn, int grid_w) {
    std::set<std::uint64_t> seen;
    std::vector<std::pair<GCell, GCell>> edges;
    for (const GridRoute& s : rn.segments) {
        for (std::size_t i = 1; i < s.cells.size(); ++i) {
            if (seen.insert(edge_key(s.cells[i - 1], s.cells[i], grid_w)).second) {
                edges.emplace_back(s.cells[i - 1], s.cells[i]);
            }
        }
    }
    return edges;
}

void commit_net(GridGraph& grid, const RoutedNet& rn, int grid_w, double sign) {
    for (const auto& [a, b] : net_edges(rn, grid_w)) {
        GridRoute e;
        e.cells = {a, b};
        if (sign > 0) {
            grid.add_route(e);
        } else {
            grid.remove_route(e);
        }
    }
}

/// L-shaped pattern route between two cells, picking the cheaper corner
/// under current congestion. O(path length) — the fast first-pass router.
GridRoute l_route(const GridGraph& grid, GCell from, GCell to) {
    const auto build = [&](bool x_first) {
        GridRoute r;
        GCell c = from;
        r.cells.push_back(c);
        const auto step_x = [&] {
            while (c.x != to.x) {
                c.x += (to.x > c.x) ? 1 : -1;
                r.cells.push_back(c);
            }
        };
        const auto step_y = [&] {
            while (c.y != to.y) {
                c.y += (to.y > c.y) ? 1 : -1;
                r.cells.push_back(c);
            }
        };
        if (x_first) {
            step_x();
            step_y();
        } else {
            step_y();
            step_x();
        }
        return r;
    };
    const auto cost = [&](const GridRoute& r) {
        double c = 0;
        for (std::size_t i = 1; i < r.cells.size(); ++i) {
            c += grid.edge_cost(r.cells[i - 1], r.cells[i], 8.0);
        }
        return c;
    };
    GridRoute a = build(true);
    const GridRoute b = build(false);
    return cost(a) <= cost(b) ? a : b;
}

}  // namespace

RoutedNet route_net_tree(const GridGraph& grid, NetId net,
                         const std::vector<GCell>& pins, RouteEngine engine,
                         bool pattern_first, SearchStats* stats,
                         double congestion_penalty) {
    RoutedNet rn;
    rn.net = net;
    if (pins.empty()) return rn;
    std::vector<GCell> tree{pins.front()};
    // Route cells revisit tree cells constantly (every path starts on one),
    // so the tree is grown through a visited set: duplicates would inflate
    // memory and degrade the nearest-cell scan to O(total route cells).
    std::unordered_set<std::uint64_t> in_tree;
    const auto cell_key = [](const GCell& c) {
        return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.x))
                << 32) |
               static_cast<std::uint32_t>(c.y);
    };
    in_tree.insert(cell_key(pins.front()));
    for (std::size_t p = 1; p < pins.size(); ++p) {
        std::optional<GridRoute> path;
        // Nearest tree cell (used by both pattern and line-search modes).
        const GCell* nearest = &tree.front();
        int best = 1 << 30;
        for (const GCell& t : tree) {
            const int d = std::abs(t.x - pins[p].x) + std::abs(t.y - pins[p].y);
            if (d < best) {
                best = d;
                nearest = &t;
            }
        }
        if (pattern_first) {
            path = l_route(grid, *nearest, pins[p]);
            if (stats) stats->pattern_cells += path->cells.size();
        } else if (engine == RouteEngine::LineSearch) {
            path = line_search_route(grid, *nearest, pins[p], {}, stats);
        }
        if (!path) {
            MazeOptions mo;
            mo.congestion_penalty = congestion_penalty;
            path = maze_route_from_tree(grid, tree, pins[p], mo, stats);
        }
        for (const GCell& c : path->cells) {
            if (in_tree.insert(cell_key(c)).second) tree.push_back(c);
        }
        rn.segments.push_back(std::move(*path));
    }
    if (stats) stats->tree_cells += tree.size();
    return rn;
}

GCell gcell_of(const Point& p, const Rect& die, int gx, int gy) {
    const auto clamp_to = [](std::int64_t v, int n) {
        return std::clamp<std::int64_t>(v, 0, n - 1);
    };
    const std::int64_t w = std::max<std::int64_t>(1, die.width());
    const std::int64_t h = std::max<std::int64_t>(1, die.height());
    return GCell{
        static_cast<int>(clamp_to((p.x - die.lo.x) * gx / w, gx)),
        static_cast<int>(clamp_to((p.y - die.lo.y) * gy / h, gy))};
}

GlobalRouteResult route_design(const Netlist& nl, const PlacementArea& area,
                               const GlobalRouteOptions& opts) {
    GlobalRouteResult res;
    const double capacity =
        opts.capacity_per_layer * (static_cast<double>(opts.routing_layers) / 2.0);
    GridGraph grid(opts.gcells_x, opts.gcells_y, capacity);

    // Gather per-net pin gcells; pins are sorted by distance to the first
    // pin so the tree grows outward.
    std::vector<std::vector<GCell>> net_pins;
    for (NetId n = 0; n < nl.num_nets(); ++n) {
        std::vector<GCell> pins;
        const Net& net = nl.net(n);
        if (net.driver_kind == DriverKind::Instance &&
            nl.instance(net.driver_inst).placed) {
            pins.push_back(gcell_of(nl.instance(net.driver_inst).position, area.die,
                                    opts.gcells_x, opts.gcells_y));
        }
        for (const SinkRef& s : nl.sinks(n)) {
            if (nl.instance(s.inst).placed) {
                pins.push_back(gcell_of(nl.instance(s.inst).position, area.die,
                                        opts.gcells_x, opts.gcells_y));
            }
        }
        std::sort(pins.begin(), pins.end(), [](const GCell& a, const GCell& b) {
            return a.x < b.x || (a.x == b.x && a.y < b.y);
        });
        pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
        if (pins.size() < 2) continue;
        RoutedNet rn;
        rn.net = n;
        res.nets.push_back(std::move(rn));
        net_pins.push_back(std::move(pins));
    }

    // Net order: small bounding boxes first; the net id breaks ties so the
    // order (and everything routed in it) is reproducible across standard
    // libraries — a bare bbox key left equal-size nets in
    // implementation-defined order.
    std::vector<std::size_t> order(res.nets.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::vector<int> bbox_size(res.nets.size());
    for (std::size_t i = 0; i < res.nets.size(); ++i) {
        GCellRect r;
        for (const GCell& p : net_pins[i]) r.include(p);
        bbox_size[i] = r.span_x() + r.span_y();
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         if (bbox_size[a] != bbox_size[b]) {
                             return bbox_size[a] < bbox_size[b];
                         }
                         return res.nets[a].net < res.nets[b].net;
                     });

    SearchStats stats;
    // First pass: cheap pattern routing for the maze engine (full search
    // would spend die-sized Dijkstras on nets that route trivially); the
    // line-search engine demonstrates its own probes everywhere.
    const bool pattern_first = opts.engine == RouteEngine::Maze;
    for (const std::size_t i : order) {
        res.nets[i] = route_net_tree(grid, res.nets[i].net, net_pins[i],
                                     opts.engine, pattern_first, &stats);
        commit_net(grid, res.nets[i], opts.gcells_x, +1);
    }

    // Region a rerouted net may touch: everything it will rip up plus the
    // maze search window around its pins. Nets whose regions are disjoint
    // cannot read or write each other's edges (up to the rare unwindowed
    // fallback), so they reroute like consecutive serial nets.
    const auto net_region = [&](std::size_t i) {
        GCellRect r;
        for (const GCell& p : net_pins[i]) r.include(p);
        const int margin = maze_window_margin(r.span_x(), r.span_y());
        for (const GridRoute& s : res.nets[i].segments) {
            for (const GCell& c : s.cells) r.include(c);
        }
        return r.expanded(margin).clipped(opts.gcells_x, opts.gcells_y);
    };

    // Negotiated rip-up-and-reroute, batch-parallel and deterministic: the
    // congested nets of an iteration are partitioned into batches with
    // pairwise non-overlapping regions; a batch is ripped up, routed against
    // the now-frozen grid (concurrently when route_workers allows — routing
    // only reads), and committed serially in net order. Scheduling therefore
    // cannot reach the result: it is byte-identical for any worker count.
    const int workers = std::max(1, opts.route_workers);
    std::unique_ptr<ThreadPool> pool;
    std::vector<int> cell_level(static_cast<std::size_t>(opts.gcells_x) *
                                static_cast<std::size_t>(opts.gcells_y));
    int iter = 0;
    for (; iter < opts.max_iterations && grid.total_overflow() > 0; ++iter) {
        grid.accumulate_history();
        // Congested nets in net order, against the iteration-start state.
        std::vector<std::size_t> congested;
        for (const std::size_t i : order) {
            for (const auto& [a, b] : net_edges(res.nets[i], opts.gcells_x)) {
                if (!grid.edge_free(a, b)) {
                    congested.push_back(i);
                    break;
                }
            }
        }
        if (congested.empty()) break;

        // Batch levels: each net lands one level past the deepest earlier
        // net whose region it touches, so conflicting nets keep their
        // relative order across batches. The per-cell max-level map makes
        // this O(region area) per net instead of O(congested^2).
        std::fill(cell_level.begin(), cell_level.end(), 0);
        std::vector<int> level(congested.size(), 0);
        int levels = 1;
        for (std::size_t j = 0; j < congested.size(); ++j) {
            const GCellRect r = net_region(congested[j]);
            int lv = 0;
            for (int y = r.y0; y <= r.y1; ++y) {
                const int* row = cell_level.data() +
                                 static_cast<std::size_t>(y) * opts.gcells_x;
                for (int x = r.x0; x <= r.x1; ++x) lv = std::max(lv, row[x]);
            }
            level[j] = lv;
            if (lv > 0) ++res.reroute_conflicts;
            levels = std::max(levels, lv + 1);
            for (int y = r.y0; y <= r.y1; ++y) {
                int* row = cell_level.data() +
                           static_cast<std::size_t>(y) * opts.gcells_x;
                for (int x = r.x0; x <= r.x1; ++x) {
                    row[x] = std::max(row[x], lv + 1);
                }
            }
        }
        std::vector<std::vector<std::size_t>> batches(
            static_cast<std::size_t>(levels));
        for (std::size_t j = 0; j < congested.size(); ++j) {
            batches[static_cast<std::size_t>(level[j])].push_back(congested[j]);
        }

        // Negotiation: full edges repel harder every iteration.
        const double penalty = 8.0 * (1.0 + iter);
        for (const std::vector<std::size_t>& batch : batches) {
            ++res.reroute_batches;
            for (const std::size_t i : batch) {
                commit_net(grid, res.nets[i], opts.gcells_x, -1);
            }
            if (workers > 1 && batch.size() > 1) {
                if (!pool) pool = std::make_unique<ThreadPool>(workers);
                std::vector<SearchStats> task_stats(batch.size());
                pool->for_each_index(batch.size(), [&](std::size_t t) {
                    const std::size_t i = batch[t];
                    res.nets[i] = route_net_tree(grid, res.nets[i].net,
                                                 net_pins[i], opts.engine,
                                                 false, &task_stats[t], penalty);
                });
                for (const SearchStats& s : task_stats) stats += s;
            } else {
                for (const std::size_t i : batch) {
                    res.nets[i] = route_net_tree(grid, res.nets[i].net,
                                                 net_pins[i], opts.engine,
                                                 false, &stats, penalty);
                }
            }
            for (const std::size_t i : batch) {
                commit_net(grid, res.nets[i], opts.gcells_x, +1);
            }
        }
    }

    res.iterations = iter;
    res.total_overflow = grid.total_overflow();
    res.overflowed_edges = grid.overflowed_edges();
    res.search_cells_expanded = stats.cells_expanded;
    res.pattern_cells = stats.pattern_cells;
    for (const RoutedNet& rn : res.nets) {
        res.total_wirelength += net_edges(rn, opts.gcells_x).size();
    }
    return res;
}

}  // namespace janus
