#include "janus/route/global_router.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>
#include <utility>

#include "janus/route/line_search.hpp"
#include "janus/route/maze_router.hpp"
#include "janus/util/speculate.hpp"

namespace janus {
namespace {

constexpr std::size_t kNetsPerPanel = 8;  ///< auto panel-grid sizing target
constexpr int kMaxPanelsPerAxis = 8;
/// Round-size cap and conflict-feedback threshold for the auto panel grid.
/// An aborting net drags the rest of its panel chain to the next round (the
/// chain routed on top of its replacement), so thousand-net chains waste
/// almost a whole round on one early conflict: rounds admit at most this
/// many pending nets (the rest defer, unspeculated), and rounds at the cap
/// additionally shrink the panel grid when the previous round's conflict
/// rate ran high. Small pinned-baseline scenario designs never reach this
/// count and keep their exact schedules.
constexpr std::size_t kPanelFeedbackMinNets = 1024;

/// Epoch-stamped gcell claims that remember which panel wrote each stamp,
/// so a panel's own chained commits are never mistaken for conflicts.
struct OwnerStamps {
    std::vector<std::uint32_t> epoch_of;
    std::vector<std::uint32_t> owner_of;
    std::uint32_t epoch = 0;

    void resize(std::size_t n) {
        epoch_of.assign(n, 0);
        owner_of.assign(n, 0);
    }
    void next_epoch() {
        if (++epoch == 0) {
            epoch_of.assign(epoch_of.size(), 0);
            epoch = 1;
        }
    }
    bool claimed_by_other(std::size_t i, std::uint32_t owner) const {
        return epoch_of[i] == epoch && owner_of[i] != owner;
    }
    void claim(std::size_t i, std::uint32_t owner) {
        epoch_of[i] = epoch;
        owner_of[i] = owner;
    }
};

/// One speculative reroute awaiting its round's serial commit.
struct RerouteCandidate {
    std::size_t idx = 0;  ///< index into res.nets / net_pins
    RoutedNet rn;         ///< the optimistically computed replacement
    GCellRect window;     ///< everything its search may have read
};

/// Undirected gcell-edge key for per-net deduplication.
std::uint64_t edge_key(const GCell& a, const GCell& b, int grid_w) {
    const auto id = [&](const GCell& c) {
        return static_cast<std::uint64_t>(c.y) * static_cast<std::uint64_t>(grid_w) +
               static_cast<std::uint64_t>(c.x);
    };
    std::uint64_t x = id(a), y = id(b);
    if (x > y) std::swap(x, y);
    return (x << 32) | y;
}

/// Unique edges of a net's segments as cell pairs.
std::vector<std::pair<GCell, GCell>> net_edges(const RoutedNet& rn, int grid_w) {
    std::set<std::uint64_t> seen;
    std::vector<std::pair<GCell, GCell>> edges;
    for (const GridRoute& s : rn.segments) {
        for (std::size_t i = 1; i < s.cells.size(); ++i) {
            if (seen.insert(edge_key(s.cells[i - 1], s.cells[i], grid_w)).second) {
                edges.emplace_back(s.cells[i - 1], s.cells[i]);
            }
        }
    }
    return edges;
}

void commit_net(GridGraph& grid, const RoutedNet& rn, int grid_w, double sign) {
    for (const auto& [a, b] : net_edges(rn, grid_w)) {
        GridRoute e;
        e.cells = {a, b};
        if (sign > 0) {
            grid.add_route(e);
        } else {
            grid.remove_route(e);
        }
    }
}

/// L-shaped pattern route between two cells, picking the cheaper corner
/// under current congestion. O(path length) — the fast first-pass router.
GridRoute l_route(const GridGraph& grid, GCell from, GCell to) {
    const auto build = [&](bool x_first) {
        GridRoute r;
        GCell c = from;
        r.cells.push_back(c);
        const auto step_x = [&] {
            while (c.x != to.x) {
                c.x += (to.x > c.x) ? 1 : -1;
                r.cells.push_back(c);
            }
        };
        const auto step_y = [&] {
            while (c.y != to.y) {
                c.y += (to.y > c.y) ? 1 : -1;
                r.cells.push_back(c);
            }
        };
        if (x_first) {
            step_x();
            step_y();
        } else {
            step_y();
            step_x();
        }
        return r;
    };
    const auto cost = [&](const GridRoute& r) {
        double c = 0;
        for (std::size_t i = 1; i < r.cells.size(); ++i) {
            c += grid.edge_cost(r.cells[i - 1], r.cells[i], 8.0);
        }
        return c;
    };
    GridRoute a = build(true);
    const GridRoute b = build(false);
    return cost(a) <= cost(b) ? a : b;
}

}  // namespace

RoutedNet route_net_tree(const GridGraph& grid, NetId net,
                         const std::vector<GCell>& pins, RouteEngine engine,
                         bool pattern_first, SearchStats* stats,
                         double congestion_penalty) {
    RoutedNet rn;
    rn.net = net;
    if (pins.empty()) return rn;
    std::vector<GCell> tree{pins.front()};
    // Route cells revisit tree cells constantly (every path starts on one),
    // so the tree is grown through a visited set: duplicates would inflate
    // memory and degrade the nearest-cell scan to O(total route cells).
    std::unordered_set<std::uint64_t> in_tree;
    const auto cell_key = [](const GCell& c) {
        return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.x))
                << 32) |
               static_cast<std::uint32_t>(c.y);
    };
    in_tree.insert(cell_key(pins.front()));
    for (std::size_t p = 1; p < pins.size(); ++p) {
        std::optional<GridRoute> path;
        // Nearest tree cell (used by both pattern and line-search modes).
        const GCell* nearest = &tree.front();
        int best = 1 << 30;
        for (const GCell& t : tree) {
            const int d = std::abs(t.x - pins[p].x) + std::abs(t.y - pins[p].y);
            if (d < best) {
                best = d;
                nearest = &t;
            }
        }
        if (pattern_first) {
            path = l_route(grid, *nearest, pins[p]);
            if (stats) stats->pattern_cells += path->cells.size();
        } else if (engine == RouteEngine::LineSearch) {
            path = line_search_route(grid, *nearest, pins[p], {}, stats);
        }
        if (!path) {
            MazeOptions mo;
            mo.congestion_penalty = congestion_penalty;
            path = maze_route_from_tree(grid, tree, pins[p], mo, stats);
        }
        for (const GCell& c : path->cells) {
            if (in_tree.insert(cell_key(c)).second) tree.push_back(c);
        }
        rn.segments.push_back(std::move(*path));
    }
    if (stats) stats->tree_cells += tree.size();
    return rn;
}

GCell gcell_of(const Point& p, const Rect& die, int gx, int gy) {
    const auto clamp_to = [](std::int64_t v, int n) {
        return std::clamp<std::int64_t>(v, 0, n - 1);
    };
    const std::int64_t w = std::max<std::int64_t>(1, die.width());
    const std::int64_t h = std::max<std::int64_t>(1, die.height());
    return GCell{
        static_cast<int>(clamp_to((p.x - die.lo.x) * gx / w, gx)),
        static_cast<int>(clamp_to((p.y - die.lo.y) * gy / h, gy))};
}

GlobalRouteResult route_design(const Netlist& nl, const PlacementArea& area,
                               const GlobalRouteOptions& opts) {
    GlobalRouteResult res;
    const double capacity =
        opts.capacity_per_layer * (static_cast<double>(opts.routing_layers) / 2.0);
    GridGraph grid(opts.gcells_x, opts.gcells_y, capacity);

    // Gather per-net pin gcells; pins are sorted by distance to the first
    // pin so the tree grows outward.
    std::vector<std::vector<GCell>> net_pins;
    for (NetId n = 0; n < nl.num_nets(); ++n) {
        std::vector<GCell> pins;
        const Net& net = nl.net(n);
        if (net.driver_kind == DriverKind::Instance &&
            nl.instance(net.driver_inst).placed) {
            pins.push_back(gcell_of(nl.instance(net.driver_inst).position, area.die,
                                    opts.gcells_x, opts.gcells_y));
        }
        for (const SinkRef& s : nl.sinks(n)) {
            if (nl.instance(s.inst()).placed) {
                pins.push_back(gcell_of(nl.instance(s.inst()).position, area.die,
                                        opts.gcells_x, opts.gcells_y));
            }
        }
        std::sort(pins.begin(), pins.end(), [](const GCell& a, const GCell& b) {
            return a.x < b.x || (a.x == b.x && a.y < b.y);
        });
        pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
        if (pins.size() < 2) continue;
        RoutedNet rn;
        rn.net = n;
        res.nets.push_back(std::move(rn));
        net_pins.push_back(std::move(pins));
    }

    // Net order: small bounding boxes first; the net id breaks ties so the
    // order (and everything routed in it) is reproducible across standard
    // libraries — a bare bbox key left equal-size nets in
    // implementation-defined order.
    std::vector<std::size_t> order(res.nets.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::vector<int> bbox_size(res.nets.size());
    for (std::size_t i = 0; i < res.nets.size(); ++i) {
        GCellRect r;
        for (const GCell& p : net_pins[i]) r.include(p);
        bbox_size[i] = r.span_x() + r.span_y();
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         if (bbox_size[a] != bbox_size[b]) {
                             return bbox_size[a] < bbox_size[b];
                         }
                         return res.nets[a].net < res.nets[b].net;
                     });

    SearchStats stats;
    // First pass: cheap pattern routing for the maze engine (full search
    // would spend die-sized Dijkstras on nets that route trivially); the
    // line-search engine demonstrates its own probes everywhere.
    const bool pattern_first = opts.engine == RouteEngine::Maze;
    for (const std::size_t i : order) {
        res.nets[i] = route_net_tree(grid, res.nets[i].net, net_pins[i],
                                     opts.engine, pattern_first, &stats);
        commit_net(grid, res.nets[i], opts.gcells_x, +1);
    }

    // Region a rerouted net may touch: everything it will rip up plus the
    // maze search window around its pins. Nets whose regions are disjoint
    // cannot read or write each other's edges (up to the rare unwindowed
    // fallback), so they reroute like consecutive serial nets.
    const auto net_region = [&](std::size_t i) {
        GCellRect r;
        for (const GCell& p : net_pins[i]) r.include(p);
        const int margin = maze_window_margin(r.span_x(), r.span_y());
        for (const GridRoute& s : res.nets[i].segments) {
            for (const GCell& c : s.cells) r.include(c);
        }
        return r.expanded(margin).clipped(opts.gcells_x, opts.gcells_y);
    };

    // Negotiated rip-up-and-reroute on the speculative region-ownership
    // engine (util/speculate.hpp). Each round, the pending congested nets
    // are binned into gcell panels; every panel reroutes its nets as one
    // chain on a private copy of the round-frozen grid (rip own route,
    // route, keep the replacement visible to the chain's later nets), and
    // the chains commit serially in panel/net order. A net whose read
    // window contains a cell an earlier panel changed this round aborts —
    // its costs were computed from a snapshot that commit invalidated —
    // and re-queues, together with the rest of its chain (which routed on
    // top of it). The panel grid, chain order and commit order are pure
    // functions of the pending set and round, never of worker scheduling,
    // so the result is byte-identical for any worker count.
    const std::size_t cells = static_cast<std::size_t>(opts.gcells_x) *
                              static_cast<std::size_t>(opts.gcells_y);
    SpeculativeExecutor exec(opts.route_workers);
    std::vector<GridGraph> slot_grids(exec.slots(),
                                      GridGraph(opts.gcells_x, opts.gcells_y,
                                                capacity));
    OwnerStamps stamps;
    stamps.resize(cells);
    const auto cell_index = [&](const GCell& c) {
        return static_cast<std::size_t>(c.y) * opts.gcells_x +
               static_cast<std::size_t>(c.x);
    };

    // Conflict feedback for the auto-sized panel grid: when a round aborts
    // most of its speculation (windows overlapping foreign commits), halve
    // the panels per axis for subsequent rounds so chains get larger and
    // cross-panel windows rarer; relax back when commits flow again. The
    // shrink level is a pure function of the (deterministic) round history
    // — commit/abort outcomes never depend on worker scheduling — so the
    // byte-identity contract survives.
    int conflict_shrink = 0;
    std::size_t fb_speculated = 0;
    std::size_t fb_conflicts = 0;

    int iter = 0;
    for (; iter < opts.max_iterations && grid.total_overflow() > 0; ++iter) {
        grid.accumulate_history();
        // Congested nets in net order, against the iteration-start state.
        std::vector<std::size_t> pending;
        for (const std::size_t i : order) {
            for (const auto& [a, b] : net_edges(res.nets[i], opts.gcells_x)) {
                if (!grid.edge_free(a, b)) {
                    pending.push_back(i);
                    break;
                }
            }
        }
        if (pending.empty()) break;

        // Negotiation: full edges repel harder every iteration.
        const double penalty = 8.0 * (1.0 + iter);

        while (!pending.empty()) {
            // Alternating half-panel-shifted grids so nets straddling one
            // round's seam can land in a single panel the next round.
            const bool shifted = (res.reroute_rounds % 2) == 1;
            ++res.reroute_rounds;

            // Admit at most kPanelFeedbackMinNets nets (in pending order —
            // a pure prefix, so the schedule stays worker-independent);
            // the rest defer to later rounds behind this round's aborts.
            std::vector<std::size_t> deferred;
            if (opts.panel_grid == 0 &&
                pending.size() > kPanelFeedbackMinNets) {
                deferred.assign(pending.begin() + kPanelFeedbackMinNets,
                                pending.end());
                pending.resize(kPanelFeedbackMinNets);
            }

            int tiles =
                opts.panel_grid > 0
                    ? std::min(opts.panel_grid, kMaxPanelsPerAxis)
                    : RegionGrid::auto_tiles_per_axis(
                          pending.size(), kNetsPerPanel, kMaxPanelsPerAxis);
            if (opts.panel_grid == 0 &&
                pending.size() >= kPanelFeedbackMinNets) {
                tiles = std::max(1, tiles >> conflict_shrink);
            }
            const RegionGrid panel_grid(0, 0, opts.gcells_x, opts.gcells_y,
                                        tiles, tiles);
            const std::size_t panels =
                static_cast<std::size_t>(panel_grid.num_regions());
            res.panels = std::max(res.panels, panels);

            // Serial prologue: bin pending nets by pin-bbox center, in
            // pending order (= chain and commit order within a panel).
            std::vector<std::vector<std::size_t>> panel_nets(panels);
            for (const std::size_t i : pending) {
                GCellRect r;
                for (const GCell& p : net_pins[i]) r.include(p);
                panel_nets[static_cast<std::size_t>(panel_grid.region_of(
                               (r.x0 + r.x1) / 2, (r.y0 + r.y1) / 2,
                               shifted))]
                    .push_back(i);
            }

            // Speculation: each panel replays rip-up-and-reroute for its
            // chain on a private grid synced to the round-frozen snapshot.
            // The slot id picks only which private grid is reused; every
            // candidate is a pure function of (snapshot, panel, chain).
            std::vector<std::vector<RerouteCandidate>> out(panels);
            std::vector<SearchStats> panel_stats(panels);
            exec.for_each_region(panels, [&](std::size_t p, std::size_t slot) {
                if (panel_nets[p].empty()) return;
                GridGraph& g = slot_grids[slot];
                g = grid;  // concurrent reads of the frozen grid are safe
                for (const std::size_t i : panel_nets[p]) {
                    RerouteCandidate c;
                    c.idx = i;
                    c.window = net_region(i);
                    commit_net(g, res.nets[i], opts.gcells_x, -1);
                    c.rn = route_net_tree(g, res.nets[i].net, net_pins[i],
                                          opts.engine, false, &panel_stats[p],
                                          penalty);
                    // Keep the replacement in the private grid: later chain
                    // members negotiate against it like consecutive serial
                    // nets would.
                    commit_net(g, c.rn, opts.gcells_x, +1);
                    out[p].push_back(std::move(c));
                }
            });

            // Serial commit in panel/net order. Stamps mark the cells whose
            // usage this round's commits changed, tagged with the owning
            // panel: a candidate only aborts on *other* panels' changes —
            // its own chain's are exactly what it negotiated against. Once
            // a chain member aborts, the rest of the chain follows it to
            // the next round (they routed on top of its replacement).
            stamps.next_epoch();
            pending.clear();
            for (std::size_t p = 0; p < panels; ++p) {
                stats += panel_stats[p];
                const auto owner = static_cast<std::uint32_t>(p);
                bool chain_broken = false;
                for (RerouteCandidate& c : out[p]) {
                    ++res.speculated_nets;
                    bool conflict = chain_broken;
                    for (int y = c.window.y0; y <= c.window.y1 && !conflict;
                         ++y) {
                        for (int x = c.window.x0; x <= c.window.x1; ++x) {
                            if (stamps.claimed_by_other(
                                    cell_index(GCell{x, y}), owner)) {
                                conflict = true;
                                break;
                            }
                        }
                    }
                    if (conflict) {
                        ++res.reroute_conflicts;
                        pending.push_back(c.idx);
                        chain_broken = true;
                        continue;
                    }
                    const auto stamp_route = [&](const RoutedNet& rn) {
                        for (const GridRoute& s : rn.segments) {
                            for (const GCell& cc : s.cells) {
                                stamps.claim(cell_index(cc), owner);
                            }
                        }
                    };
                    commit_net(grid, res.nets[c.idx], opts.gcells_x, -1);
                    stamp_route(res.nets[c.idx]);
                    res.nets[c.idx] = std::move(c.rn);
                    commit_net(grid, res.nets[c.idx], opts.gcells_x, +1);
                    stamp_route(res.nets[c.idx]);
                    ++res.committed_nets;
                }
            }
            // Progress is guaranteed: the first candidate of the first
            // non-empty panel sees no foreign stamps and always commits.
            pending.insert(pending.end(), deferred.begin(), deferred.end());

            // Update the conflict feedback from this round's outcome.
            const std::size_t round_spec = res.speculated_nets - fb_speculated;
            const std::size_t round_conf = res.reroute_conflicts - fb_conflicts;
            fb_speculated = res.speculated_nets;
            fb_conflicts = res.reroute_conflicts;
            if (round_spec > 0) {
                const double rate = static_cast<double>(round_conf) /
                                    static_cast<double>(round_spec);
                if (rate > 0.4 && conflict_shrink < 3) {
                    ++conflict_shrink;
                } else if (rate < 0.15 && conflict_shrink > 0) {
                    --conflict_shrink;
                }
            }
        }
    }

    res.iterations = iter;
    res.total_overflow = grid.total_overflow();
    res.overflowed_edges = grid.overflowed_edges();
    res.search_cells_expanded = stats.cells_expanded;
    res.pattern_cells = stats.pattern_cells;
    for (const RoutedNet& rn : res.nets) {
        res.total_wirelength += net_edges(rn, opts.gcells_x).size();
    }
    return res;
}

}  // namespace janus
