#include "janus/route/global_router.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "janus/route/line_search.hpp"
#include "janus/route/maze_router.hpp"

namespace janus {
namespace {

/// Undirected gcell-edge key for per-net deduplication.
std::uint64_t edge_key(const GCell& a, const GCell& b, int grid_w) {
    const auto id = [&](const GCell& c) {
        return static_cast<std::uint64_t>(c.y) * static_cast<std::uint64_t>(grid_w) +
               static_cast<std::uint64_t>(c.x);
    };
    std::uint64_t x = id(a), y = id(b);
    if (x > y) std::swap(x, y);
    return (x << 32) | y;
}

/// Unique edges of a net's segments as cell pairs.
std::vector<std::pair<GCell, GCell>> net_edges(const RoutedNet& rn, int grid_w) {
    std::set<std::uint64_t> seen;
    std::vector<std::pair<GCell, GCell>> edges;
    for (const GridRoute& s : rn.segments) {
        for (std::size_t i = 1; i < s.cells.size(); ++i) {
            if (seen.insert(edge_key(s.cells[i - 1], s.cells[i], grid_w)).second) {
                edges.emplace_back(s.cells[i - 1], s.cells[i]);
            }
        }
    }
    return edges;
}

void commit_net(GridGraph& grid, const RoutedNet& rn, int grid_w, double sign) {
    for (const auto& [a, b] : net_edges(rn, grid_w)) {
        GridRoute e;
        e.cells = {a, b};
        if (sign > 0) {
            grid.add_route(e);
        } else {
            grid.remove_route(e);
        }
    }
}

/// L-shaped pattern route between two cells, picking the cheaper corner
/// under current congestion. O(path length) — the fast first-pass router.
GridRoute l_route(const GridGraph& grid, GCell from, GCell to) {
    const auto build = [&](bool x_first) {
        GridRoute r;
        GCell c = from;
        r.cells.push_back(c);
        const auto step_x = [&] {
            while (c.x != to.x) {
                c.x += (to.x > c.x) ? 1 : -1;
                r.cells.push_back(c);
            }
        };
        const auto step_y = [&] {
            while (c.y != to.y) {
                c.y += (to.y > c.y) ? 1 : -1;
                r.cells.push_back(c);
            }
        };
        if (x_first) {
            step_x();
            step_y();
        } else {
            step_y();
            step_x();
        }
        return r;
    };
    const auto cost = [&](const GridRoute& r) {
        double c = 0;
        for (std::size_t i = 1; i < r.cells.size(); ++i) {
            c += grid.edge_cost(r.cells[i - 1], r.cells[i], 8.0);
        }
        return c;
    };
    GridRoute a = build(true);
    const GridRoute b = build(false);
    return cost(a) <= cost(b) ? a : b;
}

/// Routes one net as a tree: pins join one at a time via the cheapest path
/// from the already-routed tree (Steiner-style growth). `pattern` selects
/// the O(length) L-route first pass; rip-up-and-reroute uses full search.
void route_net(GridGraph& grid, RoutedNet& rn, const std::vector<GCell>& pins,
               RouteEngine engine, bool pattern, SearchStats* stats,
               double congestion_penalty = 8.0) {
    rn.segments.clear();
    std::vector<GCell> tree{pins.front()};
    for (std::size_t p = 1; p < pins.size(); ++p) {
        std::optional<GridRoute> path;
        // Nearest tree cell (used by both pattern and line-search modes).
        const GCell* nearest = &tree.front();
        int best = 1 << 30;
        for (const GCell& t : tree) {
            const int d = std::abs(t.x - pins[p].x) + std::abs(t.y - pins[p].y);
            if (d < best) {
                best = d;
                nearest = &t;
            }
        }
        if (pattern) {
            path = l_route(grid, *nearest, pins[p]);
            if (stats) stats->cells_expanded += path->cells.size();
        } else if (engine == RouteEngine::LineSearch) {
            path = line_search_route(grid, *nearest, pins[p], {}, stats);
        }
        if (!path) {
            MazeOptions mo;
            mo.congestion_penalty = congestion_penalty;
            path = maze_route_from_tree(grid, tree, pins[p], mo, stats);
        }
        for (const GCell& c : path->cells) tree.push_back(c);
        rn.segments.push_back(std::move(*path));
    }
}

}  // namespace

GCell gcell_of(const Point& p, const Rect& die, int gx, int gy) {
    const auto clamp_to = [](std::int64_t v, int n) {
        return std::clamp<std::int64_t>(v, 0, n - 1);
    };
    const std::int64_t w = std::max<std::int64_t>(1, die.width());
    const std::int64_t h = std::max<std::int64_t>(1, die.height());
    return GCell{
        static_cast<int>(clamp_to((p.x - die.lo.x) * gx / w, gx)),
        static_cast<int>(clamp_to((p.y - die.lo.y) * gy / h, gy))};
}

GlobalRouteResult route_design(const Netlist& nl, const PlacementArea& area,
                               const GlobalRouteOptions& opts) {
    GlobalRouteResult res;
    const double capacity =
        opts.capacity_per_layer * (static_cast<double>(opts.routing_layers) / 2.0);
    GridGraph grid(opts.gcells_x, opts.gcells_y, capacity);

    // Gather per-net pin gcells; pins are sorted by distance to the first
    // pin so the tree grows outward.
    std::vector<std::vector<GCell>> net_pins;
    for (NetId n = 0; n < nl.num_nets(); ++n) {
        std::vector<GCell> pins;
        const Net& net = nl.net(n);
        if (net.driver_kind == DriverKind::Instance &&
            nl.instance(net.driver_inst).placed) {
            pins.push_back(gcell_of(nl.instance(net.driver_inst).position, area.die,
                                    opts.gcells_x, opts.gcells_y));
        }
        for (const SinkRef& s : nl.sinks(n)) {
            if (nl.instance(s.inst).placed) {
                pins.push_back(gcell_of(nl.instance(s.inst).position, area.die,
                                        opts.gcells_x, opts.gcells_y));
            }
        }
        std::sort(pins.begin(), pins.end(), [](const GCell& a, const GCell& b) {
            return a.x < b.x || (a.x == b.x && a.y < b.y);
        });
        pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
        if (pins.size() < 2) continue;
        RoutedNet rn;
        rn.net = n;
        res.nets.push_back(std::move(rn));
        net_pins.push_back(std::move(pins));
    }

    // Net order: small bounding boxes first.
    std::vector<std::size_t> order(res.nets.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    const auto bbox_size = [&](std::size_t i) {
        int minx = 1 << 30, maxx = 0, miny = 1 << 30, maxy = 0;
        for (const GCell& p : net_pins[i]) {
            minx = std::min(minx, p.x);
            maxx = std::max(maxx, p.x);
            miny = std::min(miny, p.y);
            maxy = std::max(maxy, p.y);
        }
        return (maxx - minx) + (maxy - miny);
    };
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return bbox_size(a) < bbox_size(b); });

    SearchStats stats;
    // First pass: cheap pattern routing for the maze engine (full search
    // would spend die-sized Dijkstras on nets that route trivially); the
    // line-search engine demonstrates its own probes everywhere.
    const bool pattern_first = opts.engine == RouteEngine::Maze;
    for (const std::size_t i : order) {
        route_net(grid, res.nets[i], net_pins[i], opts.engine, pattern_first,
                  &stats);
        commit_net(grid, res.nets[i], opts.gcells_x, +1);
    }

    // Negotiated rip-up-and-reroute on congested nets.
    int iter = 0;
    for (; iter < opts.max_iterations && grid.total_overflow() > 0; ++iter) {
        grid.accumulate_history();
        for (const std::size_t i : order) {
            RoutedNet& rn = res.nets[i];
            bool congested = false;
            for (const auto& [a, b] : net_edges(rn, opts.gcells_x)) {
                if (!grid.edge_free(a, b)) {
                    congested = true;
                    break;
                }
            }
            if (!congested) continue;
            commit_net(grid, rn, opts.gcells_x, -1);
            // Negotiation: full edges repel harder every iteration.
            route_net(grid, rn, net_pins[i], opts.engine, false, &stats,
                      8.0 * (1.0 + iter));
            commit_net(grid, rn, opts.gcells_x, +1);
        }
    }

    res.iterations = iter;
    res.total_overflow = grid.total_overflow();
    res.overflowed_edges = grid.overflowed_edges();
    res.search_cells_expanded = stats.cells_expanded;
    for (const RoutedNet& rn : res.nets) {
        res.total_wirelength += net_edges(rn, opts.gcells_x).size();
    }
    return res;
}

}  // namespace janus
