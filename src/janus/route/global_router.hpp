#pragma once
/// \file global_router.hpp
/// Full-design global routing: multi-pin nets are decomposed into two-pin
/// segments (star topology on the pin closest to the centroid), routed
/// with the selected engine, and overflow is resolved by negotiated
/// rip-up-and-reroute.

#include <cstdint>
#include <vector>

#include "janus/place/analytic_place.hpp"
#include "janus/route/grid_graph.hpp"

namespace janus {

enum class RouteEngine { Maze, LineSearch };

struct GlobalRouteOptions {
    int gcells_x = 32;
    int gcells_y = 32;
    /// Tracks per gcell edge; derived from layer count in route_design.
    double capacity_per_layer = 4.0;
    int routing_layers = 6;
    RouteEngine engine = RouteEngine::Maze;
    int max_iterations = 12;  ///< rip-up-and-reroute rounds
};

struct RoutedNet {
    NetId net = 0;
    std::vector<GridRoute> segments;  ///< one per two-pin connection
    std::size_t wirelength() const {
        std::size_t w = 0;
        for (const GridRoute& s : segments) w += s.length();
        return w;
    }
};

struct GlobalRouteResult {
    std::vector<RoutedNet> nets;
    std::size_t total_wirelength = 0;  ///< gcell edge units
    double total_overflow = 0;
    std::size_t overflowed_edges = 0;
    int iterations = 0;
    std::size_t search_cells_expanded = 0;
    bool success() const { return total_overflow == 0; }
};

/// Routes every multi-pin net of a placed netlist on a fresh grid.
GlobalRouteResult route_design(const Netlist& nl, const PlacementArea& area,
                               const GlobalRouteOptions& opts = {});

/// Maps a placement position to its gcell.
GCell gcell_of(const Point& p, const Rect& die, int gx, int gy);

}  // namespace janus
