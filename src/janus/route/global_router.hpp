#pragma once
/// \file global_router.hpp
/// Full-design global routing: multi-pin nets are decomposed into two-pin
/// segments (star topology on the pin closest to the centroid), routed
/// with the selected engine, and overflow is resolved by negotiated
/// rip-up-and-reroute.

#include <cstdint>
#include <vector>

#include "janus/place/analytic_place.hpp"
#include "janus/route/grid_graph.hpp"
#include "janus/route/maze_router.hpp"

namespace janus {

enum class RouteEngine { Maze, LineSearch };

struct GlobalRouteOptions {
    int gcells_x = 32;
    int gcells_y = 32;
    /// Tracks per gcell edge; derived from layer count in route_design.
    double capacity_per_layer = 4.0;
    int routing_layers = 6;
    RouteEngine engine = RouteEngine::Maze;
    int max_iterations = 12;  ///< rip-up-and-reroute rounds
    /// Worker slots for the negotiation loop's speculative panel reroutes
    /// (util/speculate.hpp). The result is byte-identical for every value
    /// (panels are speculated against a round-frozen grid and committed
    /// serially in panel/net order — see docs/ROUTING.md); 1 keeps the loop
    /// fully serial.
    int route_workers = 1;
    /// Ownership panels per axis for the speculative reroute rounds; 0
    /// sizes the panel grid per round from the pending-net count. Part of
    /// the negotiation schedule (it decides which reroutes chain on one
    /// snapshot), unlike `route_workers`, which never affects results.
    int panel_grid = 0;
};

struct RoutedNet {
    NetId net = 0;
    std::vector<GridRoute> segments;  ///< one per two-pin connection
    std::size_t wirelength() const {
        std::size_t w = 0;
        for (const GridRoute& s : segments) w += s.length();
        return w;
    }
};

struct GlobalRouteResult {
    std::vector<RoutedNet> nets;
    std::size_t total_wirelength = 0;  ///< gcell edge units
    double total_overflow = 0;
    std::size_t overflowed_edges = 0;
    int iterations = 0;
    /// Cells visited by real search (maze / line probes). First-pass pattern
    /// L-routes lay cells without searching; those land in pattern_cells so
    /// engine comparisons (E3) are not skewed by the pattern pass.
    std::size_t search_cells_expanded = 0;
    std::size_t pattern_cells = 0;
    /// Negotiation observability. One round = one speculate/commit cycle of
    /// the region-ownership engine: every pending congested net is rerouted
    /// optimistically against the round-frozen grid, then committed serially
    /// in panel/net order. `reroute_conflicts` counts commit aborts — nets
    /// whose read window an earlier panel's commit invalidated, re-queued to
    /// the next round — so speculated == committed + conflicts.
    std::size_t reroute_rounds = 0;
    std::size_t reroute_conflicts = 0;
    std::size_t speculated_nets = 0;
    std::size_t committed_nets = 0;
    std::size_t panels = 0;  ///< largest ownership grid used by any round
    /// Fraction of speculative reroutes that survived commit (1.0 when
    /// nothing ever conflicted): the health metric of the speculation.
    double commit_rate() const {
        return speculated_nets == 0
                   ? 1.0
                   : static_cast<double>(committed_nets) /
                         static_cast<double>(speculated_nets);
    }
    /// Reroutes per round — the batching-efficiency number that collapsed
    /// toward ~1 under the per-level batching this engine replaced
    /// (regression-tested against a floor).
    double nets_per_round() const {
        return reroute_rounds == 0
                   ? 0.0
                   : static_cast<double>(speculated_nets) /
                         static_cast<double>(reroute_rounds);
    }
    bool success() const { return total_overflow == 0; }
};

/// Routes every multi-pin net of a placed netlist on a fresh grid.
GlobalRouteResult route_design(const Netlist& nl, const PlacementArea& area,
                               const GlobalRouteOptions& opts = {});

/// Routes one multi-pin net as a tree over an existing grid: pins join one
/// at a time via the cheapest path from the already-routed tree. Does not
/// commit usage. `pattern_first` selects the O(length) L-route first pass;
/// rip-up-and-reroute calls back with full search and a scaled penalty.
/// Reads the grid only, so concurrent calls on one grid are safe.
RoutedNet route_net_tree(const GridGraph& grid, NetId net,
                         const std::vector<GCell>& pins, RouteEngine engine,
                         bool pattern_first, SearchStats* stats = nullptr,
                         double congestion_penalty = 8.0);

/// Maps a placement position to its gcell.
GCell gcell_of(const Point& p, const Rect& die, int gx, int gy);

}  // namespace janus
