#pragma once
/// \file clock_tree.hpp
/// Clock-tree synthesis: a recursive-bisection H-tree over the placed
/// sequential elements, with wirelength, insertion-delay and skew
/// estimates. Completes the implementation flow's clock story (the
/// panel's power discussions all assume a synthesized clock network).

#include <vector>

#include "janus/netlist/netlist.hpp"
#include "janus/netlist/technology.hpp"
#include "janus/util/geometry.hpp"

namespace janus {

struct ClockTreeOptions {
    /// Leaves per cluster: flops within one cluster share a final buffer.
    std::size_t max_leaf_cluster = 8;
    /// Buffer insertion delay (ps) charged per tree level.
    double buffer_delay_ps = 12.0;
    /// Wire delay per um of clock route (ps), lumped.
    double wire_delay_ps_per_um = 0.05;
};

/// One node of the synthesized tree.
struct ClockNode {
    Point tap;                 ///< physical location of this tree node
    int level = 0;             ///< 0 = root
    std::vector<int> children; ///< indices into ClockTree::nodes
    std::vector<InstId> leaves;///< flops driven directly (clusters only)
};

struct ClockTree {
    std::vector<ClockNode> nodes;  ///< node 0 is the root
    double total_wirelength_um = 0;
    double max_insertion_delay_ps = 0;
    double min_insertion_delay_ps = 0;
    int levels = 0;
    std::size_t buffers = 0;
    double skew_ps() const {
        return max_insertion_delay_ps - min_insertion_delay_ps;
    }
};

/// Builds the clock tree for all sequential instances of a placed design.
/// Returns an empty tree (no nodes) when the design has no flops.
ClockTree build_clock_tree(const Netlist& nl, const ClockTreeOptions& opts = {});

/// Clock-network power (mW): wire + buffer switching at full clock rate.
double clock_tree_power_mw(const ClockTree& tree, const TechnologyNode& node,
                           double frequency_mhz);

}  // namespace janus
