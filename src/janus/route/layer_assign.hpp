#pragma once
/// \file layer_assign.hpp
/// Layer assignment: distributes 2-D global routes over the metal stack.
/// Horizontal segments go to H-preferred layers, vertical to V-preferred
/// layers, balancing per-layer usage; layer changes cost vias. Feeds the
/// layer-reduction cost experiment (E3).

#include <vector>

#include "janus/route/global_router.hpp"

namespace janus {

struct LayerAssignOptions {
    int routing_layers = 6;  ///< metal layers available to signals
    double capacity_per_layer = 4.0;
};

struct LayerAssignResult {
    int layers_used = 0;
    std::size_t via_count = 0;
    std::size_t total_wirelength = 0;
    /// Demand beyond capacity summed over all (edge, layer) pairs.
    double layer_overflow = 0;
    /// Usage histogram per layer (total edge units assigned).
    std::vector<double> layer_usage;
    bool success() const { return layer_overflow == 0; }
};

/// Assigns every routed segment to layers. Layer 0 is M1-adjacent
/// (horizontal preferred); odd layers are vertical preferred.
LayerAssignResult assign_layers(const GlobalRouteResult& routes, int grid_w,
                                int grid_h, const LayerAssignOptions& opts = {});

}  // namespace janus
