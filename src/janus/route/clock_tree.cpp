#include "janus/route/clock_tree.hpp"

#include <algorithm>
#include <functional>
#include <limits>

namespace janus {
namespace {

Point centroid(const Netlist& nl, const std::vector<InstId>& flops) {
    std::int64_t sx = 0, sy = 0;
    for (const InstId f : flops) {
        sx += nl.instance(f).position.x;
        sy += nl.instance(f).position.y;
    }
    const auto n = static_cast<std::int64_t>(flops.size());
    return {sx / n, sy / n};
}

}  // namespace

ClockTree build_clock_tree(const Netlist& nl, const ClockTreeOptions& opts) {
    ClockTree tree;
    std::vector<InstId> flops = nl.sequential_instances();
    if (flops.empty()) return tree;

    // Recursive bisection: split the flop set by the wider spatial axis
    // until clusters are small; each recursion level adds a buffer stage.
    std::function<int(std::vector<InstId>, int)> build =
        [&](std::vector<InstId> group, int level) -> int {
        const int id = static_cast<int>(tree.nodes.size());
        tree.nodes.push_back(ClockNode{});
        tree.nodes[static_cast<std::size_t>(id)].tap = centroid(nl, group);
        tree.nodes[static_cast<std::size_t>(id)].level = level;
        tree.levels = std::max(tree.levels, level + 1);

        if (group.size() <= opts.max_leaf_cluster) {
            tree.nodes[static_cast<std::size_t>(id)].leaves = std::move(group);
            return id;
        }
        Rect bb;
        for (const InstId f : group) {
            bb = bounding_box(bb, Rect{nl.instance(f).position, nl.instance(f).position});
        }
        const bool split_x = bb.width() >= bb.height();
        std::sort(group.begin(), group.end(), [&](InstId a, InstId b) {
            return split_x
                       ? nl.instance(a).position.x < nl.instance(b).position.x
                       : nl.instance(a).position.y < nl.instance(b).position.y;
        });
        const std::size_t half = group.size() / 2;
        const int left =
            build(std::vector<InstId>(group.begin(), group.begin() + static_cast<std::ptrdiff_t>(half)),
                  level + 1);
        const int right =
            build(std::vector<InstId>(group.begin() + static_cast<std::ptrdiff_t>(half), group.end()),
                  level + 1);
        tree.nodes[static_cast<std::size_t>(id)].children = {left, right};
        return id;
    };
    build(std::move(flops), 0);

    // Wirelength + insertion delays: walk the tree accumulating the
    // Manhattan route from each node to its children/leaves.
    tree.max_insertion_delay_ps = 0;
    tree.min_insertion_delay_ps = std::numeric_limits<double>::infinity();
    std::function<void(int, double)> walk = [&](int id, double delay) {
        const ClockNode& n = tree.nodes[static_cast<std::size_t>(id)];
        const double node_delay = delay + opts.buffer_delay_ps;
        ++tree.buffers;
        for (const int c : n.children) {
            const double wl_um =
                static_cast<double>(manhattan(n.tap, tree.nodes[static_cast<std::size_t>(c)].tap)) * 1e-3;
            tree.total_wirelength_um += wl_um;
            walk(c, node_delay + wl_um * opts.wire_delay_ps_per_um);
        }
        for (const InstId f : n.leaves) {
            const double wl_um =
                static_cast<double>(manhattan(n.tap, nl.instance(f).position)) * 1e-3;
            tree.total_wirelength_um += wl_um;
            const double d = node_delay + wl_um * opts.wire_delay_ps_per_um;
            tree.max_insertion_delay_ps = std::max(tree.max_insertion_delay_ps, d);
            tree.min_insertion_delay_ps = std::min(tree.min_insertion_delay_ps, d);
        }
    };
    walk(0, 0.0);
    if (tree.min_insertion_delay_ps == std::numeric_limits<double>::infinity()) {
        tree.min_insertion_delay_ps = 0;
    }
    return tree;
}

double clock_tree_power_mw(const ClockTree& tree, const TechnologyNode& node,
                           double frequency_mhz) {
    // Clock toggles twice per cycle; alpha = 1 on wires and buffers.
    const double wire_cap_f = tree.total_wirelength_um * 0.2e-15;  // 0.2 fF/um
    const double buf_cap_f =
        static_cast<double>(tree.buffers) * node.gate_cap_ff * 4.0 * 1e-15;
    const double v2 = node.vdd * node.vdd;
    return (wire_cap_f + buf_cap_f) * v2 * frequency_mhz * 1e6 * 1e3;
}

}  // namespace janus
