#include "janus/route/maze_router.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

namespace janus {

namespace {

std::optional<GridRoute> maze_route_impl(const GridGraph& grid,
                                         const std::vector<GCell>& sources,
                                         GCell dst, const MazeOptions& opts,
                                         SearchStats* stats,
                                         bool windowed = true) {
    if (!grid.contains(dst)) return std::nullopt;
    // Search window: bounding box of terminals plus a detour margin. This
    // keeps per-net cost proportional to the net's extent instead of the
    // whole die; the caller retries unwindowed if the window has no path.
    GCellRect win;
    win.include(dst);
    for (const GCell& s : sources) win.include(s);
    const int margin =
        windowed ? maze_window_margin(win.span_x(), win.span_y()) : 1 << 28;
    win = win.expanded(margin).clipped(grid.width(), grid.height());
    const int wx0 = win.x0, wy0 = win.y0, wx1 = win.x1, wy1 = win.y1;
    const auto in_window = [&](const GCell& c) { return win.contains(c); };
    const int ww = wx1 - wx0 + 1;
    const auto idx = [&](const GCell& c) {
        return static_cast<std::size_t>(c.y - wy0) * ww + (c.x - wx0);
    };
    const std::size_t n =
        static_cast<std::size_t>(ww) * static_cast<std::size_t>(wy1 - wy0 + 1);
    std::vector<double> dist(n, 1e300);
    std::vector<int> parent(n, -1);

    struct Entry {
        double f;
        double g;
        GCell cell;
        bool operator>(const Entry& o) const { return f > o.f; }
    };
    const auto heuristic = [&](const GCell& c) {
        if (!opts.use_astar) return 0.0;  // Lee wavefront
        return static_cast<double>(std::abs(c.x - dst.x) + std::abs(c.y - dst.y));
    };
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> open;
    for (const GCell& src : sources) {
        if (!grid.contains(src)) continue;
        dist[idx(src)] = 0;
        open.push({heuristic(src), 0, src});
    }
    if (open.empty()) return std::nullopt;

    while (!open.empty()) {
        const Entry e = open.top();
        open.pop();
        if (e.g > dist[idx(e.cell)]) continue;
        if (stats) ++stats->cells_expanded;
        if (e.cell == dst) break;
        static const int dx[] = {1, -1, 0, 0};
        static const int dy[] = {0, 0, 1, -1};
        for (int d = 0; d < 4; ++d) {
            const GCell next{e.cell.x + dx[d], e.cell.y + dy[d]};
            if (!grid.contains(next) || !in_window(next)) continue;
            if (opts.hard_blockages && !grid.edge_free(e.cell, next)) continue;
            const double g =
                e.g + grid.edge_cost(e.cell, next, opts.congestion_penalty);
            if (g < dist[idx(next)]) {
                dist[idx(next)] = g;
                parent[idx(next)] = static_cast<int>(idx(e.cell));
                open.push({g + heuristic(next), g, next});
            }
        }
    }
    if (dist[idx(dst)] >= 1e300) {
        // Window too tight (hard blockages can force wide detours): retry
        // over the whole grid before giving up.
        if (windowed) return maze_route_impl(grid, sources, dst, opts, stats, false);
        return std::nullopt;
    }

    GridRoute route;
    GCell cur = dst;
    for (;;) {
        route.cells.push_back(cur);
        const int p = parent[idx(cur)];
        if (p < 0) break;  // reached a source
        cur = GCell{wx0 + p % ww, wy0 + p / ww};
    }
    std::reverse(route.cells.begin(), route.cells.end());
    return route;
}

}  // namespace

std::optional<GridRoute> maze_route_from_tree(const GridGraph& grid,
                                              const std::vector<GCell>& sources,
                                              GCell dst, const MazeOptions& opts,
                                              SearchStats* stats) {
    return maze_route_impl(grid, sources, dst, opts, stats);
}

std::optional<GridRoute> maze_route(const GridGraph& grid, GCell src, GCell dst,
                                    const MazeOptions& opts, SearchStats* stats) {
    return maze_route_impl(grid, {src}, dst, opts, stats);
}

}  // namespace janus
