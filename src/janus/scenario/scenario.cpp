#include "janus/scenario/scenario.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "janus/flow/flow_engine.hpp"
#include "janus/logic/aig_netlist.hpp"
#include "janus/logic/aiger.hpp"
#include "janus/netlist/blif.hpp"
#include "janus/netlist/io.hpp"
#include "janus/netlist/iscas.hpp"
#include "janus/timing/corners.hpp"

namespace janus::scenario {
namespace {

namespace fs = std::filesystem;

std::string fmt2(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", v);
    return buf;
}

std::string extension(const std::string& path) {
    const auto dot = path.find_last_of('.');
    const auto slash = path.find_last_of('/');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash)) {
        return "";
    }
    return path.substr(dot + 1);
}

std::string stem(const std::string& path) { return fs::path(path).stem().string(); }

const TimingCorner& corner_by_name(const std::string& name,
                                   const std::vector<TimingCorner>& corners) {
    for (const TimingCorner& c : corners) {
        if (c.name == name) return c;
    }
    throw std::runtime_error("unknown timing corner: " + name);
}

/// |a - b| within abs + rel*|b|.
bool near(double a, double b, double rel, double abs) {
    return std::abs(a - b) <= abs + rel * std::abs(b);
}

}  // namespace

std::string find_repo_root() {
    std::error_code ec;
    for (fs::path dir = fs::current_path(ec); !dir.empty() && !ec;
         dir = dir.parent_path()) {
        if (fs::exists(dir / "ROADMAP.md", ec)) return dir.string();
        if (dir == dir.root_path()) break;
    }
    return "";
}

Netlist load_design(const std::string& path,
                    std::shared_ptr<const CellLibrary> lib) {
    const std::string ext = extension(path);
    if (ext == "aag" || ext == "aig") {
        return netlist_from_aiger(read_aiger_file(path), std::move(lib));
    }
    std::ifstream in(path);
    if (!in) throw std::runtime_error("load_design: cannot open " + path);
    if (ext == "jnl") return read_netlist(in, std::move(lib));
    if (ext == "bench") return read_iscas(in, std::move(lib), stem(path));
    if (ext == "blif") return read_blif(in, std::move(lib));
    throw std::runtime_error("load_design: unknown design extension ." + ext +
                             " (" + path + ")");
}

std::string ScenarioCell::key() const {
    return design + "@" + corner + "/u" + fmt2(utilization) + "/L" +
           std::to_string(routing_layers);
}

std::vector<ScenarioCell> ScenarioMatrix::expand() const {
    std::vector<ScenarioCell> cells;
    cells.reserve(designs.size() * corners.size() * utilizations.size() *
                  layer_budgets.size());
    for (const std::string& d : designs) {
        for (const std::string& c : corners) {
            for (const double u : utilizations) {
                for (const int l : layer_budgets) {
                    cells.push_back(ScenarioCell{d, c, u, l});
                }
            }
        }
    }
    return cells;
}

std::vector<ScenarioResult> run_scenarios(const std::vector<ScenarioCell>& cells,
                                          const std::string& corpus_dir,
                                          std::shared_ptr<const CellLibrary> lib,
                                          int workers,
                                          const FlowParams& base) {
    std::vector<ScenarioResult> out(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) out[i].cell = cells[i];

    // Parse each distinct design once; a parse failure fails only the
    // scenarios that reference that file.
    std::map<std::string, Netlist> designs;
    std::map<std::string, std::string> parse_errors;
    for (const ScenarioCell& c : cells) {
        if (designs.count(c.design) || parse_errors.count(c.design)) continue;
        try {
            designs.emplace(c.design,
                            load_design(corpus_dir + "/" + c.design, lib));
        } catch (const std::exception& e) {
            parse_errors.emplace(c.design, e.what());
        }
    }

    const auto corners = standard_corners();
    std::vector<FlowJob> jobs;
    std::vector<std::size_t> job_slot;  // result index of jobs[j]
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const ScenarioCell& c = cells[i];
        const auto perr = parse_errors.find(c.design);
        if (perr != parse_errors.end()) {
            out[i].error = "parse: " + perr->second;
            continue;
        }
        try {
            corner_by_name(c.corner, corners);
        } catch (const std::exception& e) {
            out[i].error = e.what();
            continue;
        }
        FlowParams params = base;
        params.utilization = c.utilization;
        params.routing_layers = c.routing_layers;
        jobs.push_back(FlowJob{designs.at(c.design), *find_node("28nm"), params});
        job_slot.push_back(i);
    }

    FlowEngine engine;
    const std::vector<FlowResult> results = engine.run_batch(jobs, workers);

    for (std::size_t j = 0; j < results.size(); ++j) {
        ScenarioResult& r = out[job_slot[j]];
        r.flow = results[j];
        if (r.flow.failed()) {
            r.error = "flow: " + r.flow.error;
            continue;
        }
        if (!r.flow.mapped) {
            r.error = "flow: no mapped netlist";
            continue;
        }
        StaOptions sta;
        const TimingCorner corner = corner_by_name(r.cell.corner, corners);
        const MultiCornerReport mc =
            run_multi_corner(*r.flow.mapped, sta, {corner});
        r.corner_wns_ps = mc.reports.at(0).wns_ps;
        r.corner_hold_ps = mc.reports.at(0).hold_wns_ps;
    }
    return out;
}

server::JsonValue result_json(const ScenarioResult& r) {
    using server::JsonValue;
    JsonValue o = JsonValue::object();
    o.set("instances", JsonValue(r.flow.instances));
    o.set("area_um2", JsonValue(r.flow.area_um2));
    o.set("hpwl_um", JsonValue(r.flow.hpwl_um));
    o.set("route_wirelength", JsonValue(r.flow.route_wirelength));
    o.set("route_overflow", JsonValue(r.flow.route_overflow));
    o.set("critical_delay_ps", JsonValue(r.flow.critical_delay_ps));
    o.set("wns_ps", JsonValue(r.flow.wns_ps));
    o.set("corner_wns_ps", JsonValue(r.corner_wns_ps));
    o.set("corner_hold_ps", JsonValue(r.corner_hold_ps));
    o.set("total_power_mw", JsonValue(r.flow.total_power_mw));
    o.set("clock_skew_ps", JsonValue(r.flow.clock_skew_ps));
    o.set("cells_resized", JsonValue(std::int64_t{r.flow.cells_resized}));
    o.set("legal", JsonValue(r.flow.legal));
    o.set("runtime_ms", JsonValue(r.flow.runtime_ms));
    return o;
}

std::vector<std::string> diff_against_baseline(
    const std::vector<ScenarioResult>& results,
    const server::JsonValue& baseline, const Tolerances& tol) {
    std::vector<std::string> bad;
    const auto flag = [&](const std::string& key, const std::string& what) {
        bad.push_back(key + ": " + what);
    };
    for (const ScenarioResult& r : results) {
        const std::string key = r.cell.key();
        if (r.failed()) {
            flag(key, "scenario failed: " + r.error);
            continue;
        }
        const server::JsonValue* b =
            baseline.is_object() ? baseline.find(key) : nullptr;
        if (!b) {
            flag(key, "no pinned baseline (run bench_scenarios --update-baselines)");
            continue;
        }
        const server::JsonValue actual = result_json(r);

        // Discrete QoR pins exactly: any drift is a real structural change.
        for (const char* k :
             {"instances", "route_wirelength", "cells_resized"}) {
            const std::int64_t want = b->get_int(k, -1);
            const std::int64_t got = actual.get_int(k, -2);
            if (want != got) {
                flag(key, std::string(k) + " " + std::to_string(got) +
                              " != baseline " + std::to_string(want));
            }
        }
        if (b->find("legal") && b->at("legal").as_bool() != r.flow.legal) {
            flag(key, r.flow.legal ? "became legal (update baseline)"
                                   : "placement no longer legal");
        }
        // Analog QoR within a relative band (plus a small absolute band so
        // near-zero slacks do not trip on rounding).
        for (const char* k : {"area_um2", "hpwl_um", "route_overflow",
                              "critical_delay_ps", "wns_ps", "corner_wns_ps",
                              "corner_hold_ps", "total_power_mw",
                              "clock_skew_ps"}) {
            if (!b->find(k)) continue;
            const double want = b->get_real(k, 0);
            const double got = actual.get_real(k, 0);
            if (!near(got, want, tol.analog_rel, tol.analog_abs_ps)) {
                char buf[160];
                std::snprintf(buf, sizeof buf, "%s %.4f outside %.1f%% of %.4f",
                              k, got, 100.0 * tol.analog_rel, want);
                flag(key, buf);
            }
        }
        if (tol.check_runtime) {
            const double want = b->get_real("runtime_ms", 0);
            if (want > 0 && r.flow.runtime_ms > tol.runtime_ratio * want) {
                char buf[120];
                std::snprintf(buf, sizeof buf,
                              "runtime %.1fms > %.0fx baseline %.1fms",
                              r.flow.runtime_ms, tol.runtime_ratio, want);
                flag(key, buf);
            }
        }
    }
    return bad;
}

server::JsonValue load_baseline(const std::string& path) {
    std::ifstream in(path);
    if (!in) return server::JsonValue();
    std::ostringstream ss;
    ss << in.rdbuf();
    return server::parse_json(ss.str());
}

void save_baseline(const std::string& path,
                   const std::vector<ScenarioResult>& results) {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("save_baseline: cannot write " + path);
    // One scenario per line so baseline refreshes diff cleanly in review.
    os << "{\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        server::JsonValue key(results[i].cell.key());
        os << key.dump() << ": " << result_json(results[i]).dump()
           << (i + 1 < results.size() ? ",\n" : "\n");
    }
    os << "}\n";
}

}  // namespace janus::scenario
