#pragma once
/// \file scenario.hpp
/// Scenario-matrix regression harness: sweep design x corner x
/// utilization x layer-budget combinations through the full FlowEngine
/// pipeline and diff the QoR against pinned per-scenario baselines.
///
/// The designs are the committed ingestion corpus (tests/corpus/): real
/// circuit files in AIGER/BLIF/ISCAS85/.jnl form, parsed through the
/// format readers and bridged onto the flow's cell library — so a parser
/// regression, a flow QoR regression, or a determinism break all surface
/// as a failed scenario diff. bench/bench_scenarios.cpp drives this module
/// (`--smoke` subset in ctest, full matrix + `--update-baselines` for
/// refreshing tests/corpus/scenario_baselines.json; workflow notes in
/// docs/IO.md).
///
/// Baselines pin the discrete QoR exactly (instances, wirelength, resized
/// cells, legality) and the analog QoR (area, WNS, power, skew) to a
/// relative tolerance; runtime is compared only when explicitly enabled
/// (never in CI smoke, where machines and sanitizers skew it).

#include <memory>
#include <string>
#include <vector>

#include "janus/flow/flow.hpp"
#include "janus/netlist/cell_library.hpp"
#include "janus/netlist/netlist.hpp"
#include "janus/server/protocol.hpp"

namespace janus::scenario {

/// Nearest ancestor of the CWD containing ROADMAP.md (the repo marker);
/// empty string when not inside the repo. Corpus and baseline paths
/// resolve against this so binaries work from any build directory.
std::string find_repo_root();

/// Loads a circuit file, dispatching on extension:
///   .jnl          native netlist (io.hpp)
///   .bench        ISCAS85/89 (iscas.hpp)
///   .blif         Berkeley BLIF (blif.hpp)
///   .aag / .aig   ASCII / binary AIGER via the netlist bridge
/// Throws std::runtime_error on unknown extensions, unreadable files, or
/// parse errors (which carry file positions).
Netlist load_design(const std::string& path,
                    std::shared_ptr<const CellLibrary> lib);

/// One cell of the scenario matrix.
struct ScenarioCell {
    std::string design;   ///< corpus file name, e.g. "mul8.bench"
    std::string corner;   ///< TimingCorner name from standard_corners()
    double utilization = 0.65;
    int routing_layers = 6;

    /// Stable identity used as the baseline key, e.g. "mul8.bench@slow/u0.60/L5".
    std::string key() const;
};

/// Cartesian sweep description; expand() emits cells in deterministic
/// (design-major) order.
struct ScenarioMatrix {
    std::vector<std::string> designs;
    std::vector<std::string> corners;
    std::vector<double> utilizations;
    std::vector<int> layer_budgets;
    std::vector<ScenarioCell> expand() const;
};

/// QoR + corner timing of one executed scenario.
struct ScenarioResult {
    ScenarioCell cell;
    FlowResult flow;
    double corner_wns_ps = 0;   ///< WNS at the cell's corner (derated)
    double corner_hold_ps = 0;  ///< hold WNS at the cell's corner
    std::string error;          ///< non-empty when the run failed
    bool failed() const { return !error.empty(); }
};

/// Executes every cell through FlowEngine::run_batch (`workers` threads —
/// QoR is byte-identical for any value) and runs corner STA on each mapped
/// design. `base` seeds the non-swept FlowParams. Designs are parsed once
/// per distinct file from `corpus_dir`.
std::vector<ScenarioResult> run_scenarios(const std::vector<ScenarioCell>& cells,
                                          const std::string& corpus_dir,
                                          std::shared_ptr<const CellLibrary> lib,
                                          int workers,
                                          const FlowParams& base = {});

/// Comparison tolerances for baseline diffs.
struct Tolerances {
    double analog_rel = 0.05;     ///< area/WNS/power/skew relative band
    double analog_abs_ps = 1.0;   ///< absolute slack band around zero, ps
    bool check_runtime = false;   ///< compare runtime_ms at all?
    double runtime_ratio = 10.0;  ///< max slowdown vs baseline when checked
};

/// Serializes one result to the pinned-baseline JSON shape.
server::JsonValue result_json(const ScenarioResult& r);

/// Diffs results against a baseline object (scenario key -> result_json).
/// Returns human-readable regression descriptions; empty means clean.
/// Missing baseline entries and failed scenarios are regressions.
std::vector<std::string> diff_against_baseline(
    const std::vector<ScenarioResult>& results,
    const server::JsonValue& baseline, const Tolerances& tol);

/// Reads/writes the baseline file (a single JSON object). load returns a
/// null JsonValue when the file does not exist.
server::JsonValue load_baseline(const std::string& path);
void save_baseline(const std::string& path,
                   const std::vector<ScenarioResult>& results);

}  // namespace janus::scenario
