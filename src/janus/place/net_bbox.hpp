#pragma once
/// \file net_bbox.hpp
/// Incremental per-net bounding-box cache shared by detailed placement
/// (sa_place.cpp) and congestion estimation (congestion.cpp). For every net
/// it tracks the pin bounding box plus the number of pins sitting exactly on
/// each of the four boundaries, so relocating one pin is O(1) unless the pin
/// solely held a boundary and moves off it — only then is the net rescanned.
/// This replaces the SA placer's former full rescan of every incident net
/// twice per move.
///
/// Bounds are integers (DBU), so the cached boxes are always *exact* — the
/// cache can never drift the way a floating-point delta accumulation can,
/// which is what makes NetBBoxCache::total_hpwl_um() the authoritative HPWL
/// at sa_refine exit (docs/PLACE.md).

#include <cstdint>
#include <vector>

#include "janus/place/analytic_place.hpp"

namespace janus {

struct NetBBoxOptions {
    /// Include primary-I/O boundary pads (input_pad_position /
    /// output_pad_position) as fixed pins, as the placers do.
    bool with_pads = true;
    /// Skip instances whose `placed` flag is false (congestion estimation
    /// runs on partially placed designs; detailed placement never does).
    bool placed_only = false;
};

/// The cache holds a pointer to the netlist and reads instance positions
/// from it during rescans, so position mutations must be mirrored through
/// apply_swap() in the same order they hit the netlist. Structural netlist
/// mutations invalidate the cache (rebuild it).
class NetBBoxCache {
  public:
    NetBBoxCache(const Netlist& nl, const PlacementArea& area,
                 const NetBBoxOptions& opts = {});

    std::size_t num_nets() const { return box_.size(); }
    /// Unique movable pins plus fixed pad pins on `n`.
    std::size_t degree(NetId n) const {
        return insts_[n].size() + fixed_[n].size();
    }
    /// Unique instances incident to `n` (driver and sinks, deduplicated).
    const std::vector<InstId>& insts_of(NetId n) const { return insts_[n]; }
    /// Unique nets incident to instance `i`, sorted ascending (so callers
    /// can binary-search for shared-net tests).
    const std::vector<NetId>& nets_of(InstId i) const { return nets_of_[i]; }

    /// Pin bounding box of `n`; empty Rect when the net has no pins.
    Rect bbox(NetId n) const;
    /// HPWL of `n` in um; 0 when fewer than two pins.
    double net_hpwl_um(NetId n) const;
    /// Exact total HPWL in um, summed over nets in id order — the same
    /// order (and therefore bit pattern) as analytic_place's
    /// total_hpwl_um() on an in-sync netlist.
    double total_hpwl_um() const;

    /// HPWL of `n` if the pin of `moved` relocated from `from` to `to`,
    /// without mutating the cache. Pure function of the cache and the
    /// netlist's current (frozen) positions: safe to call concurrently
    /// with other const members. O(1) unless the move shrinks a boundary
    /// held by a single pin, which rescans the net's pins.
    double hpwl_if_moved_um(NetId n, InstId moved, Point from, Point to) const;

    /// HPWL delta (um) of swapping the positions of `a` (at `pa`) and `b`
    /// (at `pb`), read-only against the frozen cache. Nets incident to both
    /// instances see an unchanged pin multiset under a swap, so only the
    /// symmetric difference of the two incidence sets contributes — which is
    /// also what makes deltas of net-disjoint swaps exactly additive, the
    /// property the speculative SA engine's ordered commit relies on
    /// (sa_place.cpp, docs/PLACE.md). Pure function of cache + positions:
    /// safe to call concurrently with other const members.
    double swap_delta_um(InstId a, Point pa, InstId b, Point pb) const;

    /// Commits a two-instance position swap (`pa`/`pb` are the pre-swap
    /// positions). Call *after* the netlist positions have been swapped —
    /// rescans read positions from the netlist. Nets incident to both
    /// instances keep an unchanged pin multiset and are skipped.
    void apply_swap(InstId a, Point pa, InstId b, Point pb);

    /// Nets rescanned by apply_swap so far (boundary-shrinking commits);
    /// observability for docs/PLACE.md's O(1)-move claim.
    std::size_t rescans() const { return rescans_; }

  private:
    struct Box {
        std::int64_t minx = 0, maxx = -1, miny = 0, maxy = -1;
        std::uint32_t n_minx = 0, n_maxx = 0, n_miny = 0, n_maxy = 0;
    };

    void rescan(NetId n);
    void update_net(NetId n, Point from, Point to);

    const Netlist* nl_;
    std::vector<Box> box_;
    std::vector<std::vector<InstId>> insts_;
    std::vector<std::vector<Point>> fixed_;
    std::vector<std::vector<NetId>> nets_of_;
    std::size_t rescans_ = 0;
};

}  // namespace janus
