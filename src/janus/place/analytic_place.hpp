#pragma once
/// \file analytic_place.hpp
/// Global placement: quadratic (clique-model) wirelength minimization
/// solved by Gauss-Seidel, followed by bin-based spreading to resolve
/// density. This is the throughput path used for large designs (E5).

#include <cstdint>

#include "janus/netlist/netlist.hpp"
#include "janus/netlist/technology.hpp"
#include "janus/util/geometry.hpp"

namespace janus {

/// Die/row geometry derived from the design.
struct PlacementArea {
    Rect die;                  ///< in nm
    std::int64_t row_height = 0;  ///< nm
    std::int64_t site_width = 0;  ///< nm
    int num_rows = 0;
};

/// Computes a square die sized for `utilization` and builds the row grid.
PlacementArea make_placement_area(const Netlist& nl, const TechnologyNode& node,
                                  double utilization = 0.7);

struct AnalyticPlaceOptions {
    int solver_iterations = 300;  // CG iterations (cheap; long meshes need hundreds)
    int spreading_iterations = 12;
    std::size_t density_bins = 16;  ///< bins per axis for spreading
    std::uint64_t seed = 1;
};

struct PlaceQuality {
    double hpwl_um = 0;       ///< total half-perimeter wirelength
    double runtime_ms = 0;    ///< wall time of the placement call
};

/// Places all instances of `nl` inside `area` (positions written into the
/// netlist; `placed` set). Primary I/O is modeled as fixed pads spread
/// around the die boundary.
PlaceQuality analytic_place(Netlist& nl, const PlacementArea& area,
                            const AnalyticPlaceOptions& opts = {});

/// Total HPWL of all nets (um) using instance positions and boundary pads.
double total_hpwl_um(const Netlist& nl, const PlacementArea& area);

/// Boundary pad location for primary input `k` of `n_in` (west edge, top
/// to bottom) or primary output `k` of `n_out` (east edge). All placement
/// and timing code shares this assignment.
Point input_pad_position(const Rect& die, std::size_t k, std::size_t n_in);
Point output_pad_position(const Rect& die, std::size_t k, std::size_t n_out);

}  // namespace janus
