#pragma once
/// \file sa_place.hpp
/// Simulated-annealing detailed placement: swap/relocate moves over a
/// legal placement, accepting on HPWL. The quality-oriented complement to
/// the analytic flow; also an ablation point (E6 tunes its schedule).

#include <cstdint>

#include "janus/place/analytic_place.hpp"

namespace janus {

struct SaPlaceOptions {
    int moves_per_cell = 50;     ///< total moves = this * num cells
    double initial_temp_frac = 0.05;  ///< T0 as a fraction of initial HPWL/net
    double cooling = 0.95;
    std::uint64_t seed = 1;
};

struct SaPlaceResult {
    double initial_hpwl_um = 0;
    double final_hpwl_um = 0;
    std::size_t accepted_moves = 0;
    std::size_t total_moves = 0;
    double improvement() const {
        return initial_hpwl_um > 0 ? 1.0 - final_hpwl_um / initial_hpwl_um : 0.0;
    }
};

/// Refines a legal placement with cell-swap annealing; the placement
/// stays legal (swaps exchange row slots of equal-width cells, relocations
/// use vacant sites of sufficient width).
SaPlaceResult sa_refine(Netlist& nl, const PlacementArea& area,
                        const SaPlaceOptions& opts = {});

}  // namespace janus
