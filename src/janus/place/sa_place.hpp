#pragma once
/// \file sa_place.hpp
/// Simulated-annealing detailed placement: equal-width cell swaps over a
/// legal placement, accepting on HPWL. The quality-oriented complement to
/// the analytic flow; also an ablation point (E6 tunes its schedule).
///
/// Moves are drawn serially, grouped into net-disjoint batches, evaluated
/// (possibly concurrently, `workers`) against the batch-frozen NetBBoxCache,
/// and accepted/rejected serially in draw order — so SaPlaceResult and the
/// final placement are byte-identical for any worker count
/// (docs/PLACE.md, same contract as route_workers/sta_workers).

#include <cstdint>

#include "janus/place/analytic_place.hpp"

namespace janus {

struct SaPlaceOptions {
    int moves_per_cell = 50;     ///< total move slots = this * num cells
    double initial_temp_frac = 0.05;  ///< T0 as a fraction of initial HPWL/net
    double cooling = 0.95;
    std::uint64_t seed = 1;
    /// Threads evaluating one batch's move deltas (flow knob:
    /// FlowParams::place_workers). A pure performance knob: results are
    /// byte-identical for any value; 1 = serial.
    int workers = 1;
    /// Upper bound on moves per net-disjoint batch. Part of the schedule
    /// (it bounds how far evaluation runs ahead of acceptance), unlike
    /// `workers` which never affects results.
    int batch_moves = 128;
};

struct SaPlaceResult {
    double initial_hpwl_um = 0;
    /// Exact final HPWL, recomputed from the cache's integer bounds at
    /// exit — never the floating-point accumulation of per-move deltas.
    double final_hpwl_um = 0;
    /// initial_hpwl_um plus every accepted delta: the drift-prone value the
    /// pre-cache implementation used to return, kept as a diagnostic and
    /// pinned to final_hpwl_um within 1e-6 relative by tests.
    double accumulated_hpwl_um = 0;
    std::size_t accepted_moves = 0;
    std::size_t total_moves = 0;       ///< moves evaluated (degenerates excluded)
    std::size_t attempted_draws = 0;   ///< partner draws, including redraws
    std::size_t degenerate_draws = 0;  ///< a == b draws (redrawn, bounded)
    std::size_t batches = 0;           ///< evaluation batches executed
    std::size_t batch_conflicts = 0;   ///< draws deferred to the next batch
    double improvement() const {
        return initial_hpwl_um > 0 ? 1.0 - final_hpwl_um / initial_hpwl_um : 0.0;
    }
};

/// Refines a legal placement with cell-swap annealing; the placement stays
/// legal (swaps exchange row slots between cells of equal site width).
SaPlaceResult sa_refine(Netlist& nl, const PlacementArea& area,
                        const SaPlaceOptions& opts = {});

}  // namespace janus
