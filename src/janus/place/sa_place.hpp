#pragma once
/// \file sa_place.hpp
/// Simulated-annealing detailed placement: equal-width cell swaps over a
/// legal placement, accepting on HPWL. The quality-oriented complement to
/// the analytic flow; also an ablation point (E6 tunes its schedule).
///
/// Parallel execution uses the speculative region-ownership engine
/// (util/speculate.hpp): the die is tiled into regions, each worker slot
/// draws, evaluates and accepts its regions' moves against the round-frozen
/// NetBBoxCache, and accepted moves commit serially in deterministic
/// region/draw order, with cross-region conflicts aborted and re-queued.
/// The grid, the per-region RNG streams and the commit order are pure
/// functions of the input and seed, so SaPlaceResult and the final
/// placement are byte-identical for any worker count (docs/PLACE.md, same
/// contract as route_workers/sta_workers).

#include <cstdint>

#include "janus/place/analytic_place.hpp"

namespace janus {

struct SaPlaceOptions {
    int moves_per_cell = 50;     ///< total move slots = this * num cells
    double initial_temp_frac = 0.05;  ///< T0 as a fraction of initial HPWL/net
    double cooling = 0.95;
    std::uint64_t seed = 1;
    /// Worker slots speculatively evaluating regions (flow knob:
    /// FlowParams::place_workers). A pure performance knob: results are
    /// byte-identical for any value; 1 = serial.
    int workers = 1;
    /// Ownership-grid tiles per axis; 0 sizes the grid from the cell count
    /// (RegionGrid::auto_tiles_per_axis). Part of the schedule — it decides
    /// which moves share a round-frozen snapshot — unlike `workers`, which
    /// never affects results.
    int region_grid = 0;
};

struct SaPlaceResult {
    double initial_hpwl_um = 0;
    /// Exact final HPWL, recomputed from the cache's integer bounds at
    /// exit — never the floating-point accumulation of per-move deltas.
    double final_hpwl_um = 0;
    /// initial_hpwl_um plus every committed delta: the drift-prone value the
    /// pre-cache implementation used to return, kept as a diagnostic and
    /// pinned to final_hpwl_um within 1e-6 relative by tests.
    double accumulated_hpwl_um = 0;
    std::size_t accepted_moves = 0;  ///< moves committed to the placement
    std::size_t rejected_moves = 0;  ///< Metropolis rejections (final)
    /// Move evaluations (= accepted + rejected + commit_aborts; an aborted
    /// move re-evaluates in a later round against a fresh snapshot).
    std::size_t total_moves = 0;
    std::size_t drawn_moves = 0;       ///< distinct candidates drawn (a != b)
    std::size_t attempted_draws = 0;   ///< partner draws, including redraws
    std::size_t degenerate_draws = 0;  ///< a == b draws (redrawn, bounded)
    std::size_t regions = 0;           ///< ownership-grid regions
    std::size_t rounds = 0;            ///< speculate/commit rounds executed
    /// Candidates deferred inside their own region (they overlapped an
    /// earlier accepted-pending move's nets or cells); re-queued unevaluated.
    std::size_t local_defers = 0;
    /// Accepted moves that lost the serial commit race to an earlier region's
    /// move this round; re-queued to the next round.
    std::size_t commit_aborts = 0;
    /// Candidates dropped after exhausting their re-queue budget.
    std::size_t abandoned_moves = 0;
    double improvement() const {
        return initial_hpwl_um > 0 ? 1.0 - final_hpwl_um / initial_hpwl_um : 0.0;
    }
    /// Fraction of commit attempts that succeeded (1.0 when nothing ever
    /// conflicted): the health metric of the speculation.
    double commit_rate() const {
        const std::size_t attempts = accepted_moves + commit_aborts;
        return attempts == 0 ? 1.0
                             : static_cast<double>(accepted_moves) /
                                   static_cast<double>(attempts);
    }
    /// Evaluations per round — the batching-efficiency number that was ~1
    /// in the conflict-degenerate serial-batching design this engine
    /// replaced (regression-tested against a floor).
    double moves_per_round() const {
        return rounds == 0 ? 0.0
                           : static_cast<double>(total_moves) /
                                 static_cast<double>(rounds);
    }
};

/// Refines a legal placement with cell-swap annealing; the placement stays
/// legal (swaps exchange row slots between cells of equal site width).
SaPlaceResult sa_refine(Netlist& nl, const PlacementArea& area,
                        const SaPlaceOptions& opts = {});

}  // namespace janus
