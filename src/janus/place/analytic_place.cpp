#include "janus/place/analytic_place.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

#include "janus/util/rng.hpp"

namespace janus {
namespace {

/// Collects per-net pin locations; movable instances contribute their
/// current positions.
struct NetPins {
    std::vector<InstId> insts;
    std::vector<Point> fixed;  // pads
};

std::vector<NetPins> collect_pins(const Netlist& nl, const PlacementArea& area) {
    std::vector<NetPins> pins(nl.num_nets());
    const std::size_t n_in = nl.primary_inputs().size();
    const std::size_t n_out = nl.primary_outputs().size();
    std::size_t k = 0;
    for (const NetId pi : nl.primary_inputs()) {
        pins[pi].fixed.push_back(input_pad_position(area.die, k++, n_in));
    }
    k = 0;
    for (const auto& [name, net] : nl.primary_outputs()) {
        (void)name;
        pins[net].fixed.push_back(output_pad_position(area.die, k++, n_out));
    }
    for (InstId i = 0; i < nl.num_instances(); ++i) {
        const Instance& inst = nl.instance(i);
        pins[inst.output].insts.push_back(i);
        const int arity = function_arity(nl.type_of(i).function);
        for (int p = 0; p < arity; ++p) {
            const NetId n = inst.fanin[static_cast<std::size_t>(p)];
            if (n != kNoNet) pins[n].insts.push_back(i);
        }
    }
    return pins;
}

}  // namespace

PlacementArea make_placement_area(const Netlist& nl, const TechnologyNode& node,
                                  double utilization) {
    PlacementArea a;
    a.row_height = static_cast<std::int64_t>(node.track_um * 8 * 1000);  // nm
    a.site_width = std::max<std::int64_t>(1, static_cast<std::int64_t>(node.track_um * 1000));
    // Die is sized from legalized footprints (site-quantized width x row
    // height), not raw cell area, so the row capacity actually fits the
    // design at the requested utilization.
    double footprint_nm2 = 0;
    for (InstId i = 0; i < nl.num_instances(); ++i) {
        const auto sites = static_cast<std::int64_t>(
            std::ceil(nl.type_of(i).width_tracks));
        footprint_nm2 += static_cast<double>(std::max<std::int64_t>(1, sites) *
                                             a.site_width) *
                         static_cast<double>(a.row_height);
    }
    const double die_nm2 = footprint_nm2 / std::max(0.05, utilization);
    const auto side = static_cast<std::int64_t>(std::sqrt(std::max(1.0, die_nm2)));
    a.num_rows = std::max(2, static_cast<int>(side / a.row_height) + 1);
    a.die = Rect{0, 0, std::max(side, static_cast<std::int64_t>(2) * a.row_height),
                 static_cast<std::int64_t>(a.num_rows) * a.row_height};
    return a;
}

PlaceQuality analytic_place(Netlist& nl, const PlacementArea& area,
                            const AnalyticPlaceOptions& opts) {
    const auto t0 = std::chrono::steady_clock::now();
    Rng rng(opts.seed);

    // Random initial spread.
    for (InstId i = 0; i < nl.num_instances(); ++i) {
        Instance& inst = nl.instance(i);
        inst.position = {rng.next_in(area.die.lo.x, area.die.hi.x),
                         rng.next_in(area.die.lo.y, area.die.hi.y)};
        inst.placed = true;
    }

    const std::vector<NetPins> pins = collect_pins(nl, area);

    // Star-model Laplacian: one auxiliary variable per (degree >= 2) net,
    // edges of weight 1/degree between the aux node and each pin. Fixed
    // pads enter the right-hand side. Solved exactly (per axis) with
    // conjugate gradients — Gauss-Seidel diffusion is hopeless on long
    // chain/mesh structures.
    const std::size_t num_inst = nl.num_instances();
    struct Edge {
        std::uint32_t a, b;  ///< variable indices (instances, then net aux)
        double w;
    };
    std::vector<Edge> edges;
    std::vector<int> net_var(nl.num_nets(), -1);
    std::size_t num_vars = num_inst;
    std::vector<double> rhs_x, rhs_y, diag;
    rhs_x.assign(num_inst, 0.0);
    rhs_y.assign(num_inst, 0.0);
    for (NetId n = 0; n < nl.num_nets(); ++n) {
        const auto& np = pins[n];
        const std::size_t degree = np.insts.size() + np.fixed.size();
        if (degree < 2) continue;
        const auto aux = static_cast<std::uint32_t>(num_vars++);
        net_var[n] = static_cast<int>(aux);
        rhs_x.push_back(0.0);
        rhs_y.push_back(0.0);
        const double w = 1.0 / static_cast<double>(degree);
        for (const InstId i : np.insts) edges.push_back({i, aux, w});
        for (const Point& p : np.fixed) {
            // Fixed pin: contributes to the aux equation only.
            rhs_x[aux] += w * static_cast<double>(p.x);
            rhs_y[aux] += w * static_cast<double>(p.y);
        }
    }
    diag.assign(num_vars, 0.0);
    for (const Edge& e : edges) {
        diag[e.a] += e.w;
        diag[e.b] += e.w;
    }
    for (NetId n = 0; n < nl.num_nets(); ++n) {
        if (net_var[n] < 0) continue;
        // Fixed pads contribute weight to the aux node's diagonal (their
        // positions are on the RHS above).
        const double w = 1.0 / static_cast<double>(pins[n].insts.size() +
                                                   pins[n].fixed.size());
        diag[static_cast<std::size_t>(net_var[n])] +=
            w * static_cast<double>(pins[n].fixed.size());
    }

    std::vector<double> sol_x(num_vars, 0.0), sol_y(num_vars, 0.0);
    for (InstId i = 0; i < num_inst; ++i) {
        sol_x[i] = static_cast<double>(nl.instance(i).position.x);
        sol_y[i] = static_cast<double>(nl.instance(i).position.y);
    }

    // SimPL-style alternation: quadratic solve, bisection spreading, then
    // re-solve with anchors at the spread locations.
    std::vector<Point> anchor;
    const auto solve = [&](int iterations, double anchor_weight) {
        // Per-axis preconditioned CG on (L + anchor) x = rhs (+ anchors).
        const auto cg = [&](std::vector<double>& x, const std::vector<double>& rhs0,
                            bool axis_x) {
            std::vector<double> rhs = rhs0;
            std::vector<double> dg = diag;
            if (anchor_weight > 0 && !anchor.empty()) {
                for (std::size_t i = 0; i < num_inst; ++i) {
                    dg[i] += anchor_weight;
                    rhs[i] += anchor_weight *
                              static_cast<double>(axis_x ? anchor[i].x : anchor[i].y);
                }
            }
            // Guard floating variables (no nets): pin to their position.
            for (std::size_t i = 0; i < num_vars; ++i) {
                if (dg[i] <= 0) {
                    dg[i] = 1.0;
                    rhs[i] = x[i];
                }
            }
            const auto matvec = [&](const std::vector<double>& v,
                                    std::vector<double>& out) {
                for (std::size_t i = 0; i < num_vars; ++i) out[i] = dg[i] * v[i];
                for (const Edge& e : edges) {
                    out[e.a] -= e.w * v[e.b];
                    out[e.b] -= e.w * v[e.a];
                }
            };
            std::vector<double> r(num_vars), p(num_vars), ap(num_vars), z(num_vars);
            matvec(x, r);
            for (std::size_t i = 0; i < num_vars; ++i) r[i] = rhs[i] - r[i];
            for (std::size_t i = 0; i < num_vars; ++i) z[i] = r[i] / dg[i];
            p = z;
            double rz = 0;
            for (std::size_t i = 0; i < num_vars; ++i) rz += r[i] * z[i];
            for (int it = 0; it < iterations && rz > 1e-3; ++it) {
                matvec(p, ap);
                double pap = 0;
                for (std::size_t i = 0; i < num_vars; ++i) pap += p[i] * ap[i];
                if (pap <= 0) break;
                const double alpha = rz / pap;
                for (std::size_t i = 0; i < num_vars; ++i) {
                    x[i] += alpha * p[i];
                    r[i] -= alpha * ap[i];
                }
                double rz_new = 0;
                for (std::size_t i = 0; i < num_vars; ++i) {
                    z[i] = r[i] / dg[i];
                    rz_new += r[i] * z[i];
                }
                const double beta = rz_new / rz;
                rz = rz_new;
                for (std::size_t i = 0; i < num_vars; ++i) p[i] = z[i] + beta * p[i];
            }
        };
        cg(sol_x, rhs_x, true);
        cg(sol_y, rhs_y, false);
        for (InstId i = 0; i < num_inst; ++i) {
            Instance& inst = nl.instance(i);
            inst.position.x = std::clamp(static_cast<std::int64_t>(sol_x[i]),
                                         area.die.lo.x, area.die.hi.x);
            inst.position.y = std::clamp(static_cast<std::int64_t>(sol_y[i]),
                                         area.die.lo.y, area.die.hi.y);
        }
    };

    // Spreading by recursive median bisection: cells keep their solved
    // relative order while being distributed uniformly over the die. This
    // preserves the quadratic solution's structure (unlike density
    // nudging, which scatters neighborhoods).
    const auto spread = [&] {
        std::vector<InstId> all(nl.num_instances());
        for (InstId i = 0; i < nl.num_instances(); ++i) all[i] = i;
        struct Region {
            std::size_t begin, end;  // range in `all`
            Rect rect;
        };
        std::vector<Region> stack{{0, all.size(), area.die}};
        while (!stack.empty()) {
            const Region reg = stack.back();
            stack.pop_back();
            const std::size_t count = reg.end - reg.begin;
            if (count == 0) continue;
            if (count <= 4 || (reg.rect.width() <= area.site_width * 4 &&
                               reg.rect.height() <= area.row_height)) {
                // Leaf: park cells at the region center; legalization
                // assigns exact sites.
                for (std::size_t k = reg.begin; k < reg.end; ++k) {
                    nl.instance(all[k]).position = reg.rect.center();
                }
                continue;
            }
            const bool split_x = reg.rect.width() >= reg.rect.height();
            const auto mid_it = all.begin() + static_cast<std::ptrdiff_t>(
                                                  reg.begin + count / 2);
            std::nth_element(
                all.begin() + static_cast<std::ptrdiff_t>(reg.begin), mid_it,
                all.begin() + static_cast<std::ptrdiff_t>(reg.end),
                [&](InstId a, InstId b) {
                    return split_x
                               ? nl.instance(a).position.x < nl.instance(b).position.x
                               : nl.instance(a).position.y < nl.instance(b).position.y;
                });
            Rect left = reg.rect, right = reg.rect;
            if (split_x) {
                const std::int64_t mid = reg.rect.lo.x + reg.rect.width() / 2;
                left.hi.x = mid;
                right.lo.x = mid;
            } else {
                const std::int64_t mid = reg.rect.lo.y + reg.rect.height() / 2;
                left.hi.y = mid;
                right.lo.y = mid;
            }
            stack.push_back({reg.begin, reg.begin + count / 2, left});
            stack.push_back({reg.begin + count / 2, reg.end, right});
        }
    };

    // Alternating rounds: an initial unanchored solve, then
    // spread / anchored-resolve cycles, ending on a spread (density-legal).
    const int rounds = std::max(1, opts.spreading_iterations / 4);
    solve(opts.solver_iterations, 0.0);
    for (int round = 0; round < rounds; ++round) {
        spread();
        anchor.resize(nl.num_instances());
        for (InstId i = 0; i < nl.num_instances(); ++i) {
            anchor[i] = nl.instance(i).position;
        }
        // Anchor weight grows per round, freezing the layout progressively.
        solve(std::max(5, opts.solver_iterations / 4),
              0.4 * static_cast<double>(round + 1));
    }
    spread();

    PlaceQuality q;
    q.hpwl_um = total_hpwl_um(nl, area);
    q.runtime_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    return q;
}

Point input_pad_position(const Rect& die, std::size_t k, std::size_t n_in) {
    if (n_in == 0) return die.center();
    const double t = (static_cast<double>(k) + 0.5) / static_cast<double>(n_in);
    return {die.lo.x,
            die.lo.y + static_cast<std::int64_t>(t * static_cast<double>(die.height()))};
}

Point output_pad_position(const Rect& die, std::size_t k, std::size_t n_out) {
    if (n_out == 0) return die.center();
    const double t = (static_cast<double>(k) + 0.5) / static_cast<double>(n_out);
    return {die.hi.x,
            die.lo.y + static_cast<std::int64_t>(t * static_cast<double>(die.height()))};
}

double total_hpwl_um(const Netlist& nl, const PlacementArea& area) {
    const std::vector<NetPins> pins = collect_pins(nl, area);
    double total = 0;
    std::vector<Point> pts;
    for (NetId n = 0; n < nl.num_nets(); ++n) {
        const auto& np = pins[n];
        if (np.insts.size() + np.fixed.size() < 2) continue;
        pts.clear();
        for (const InstId i : np.insts) pts.push_back(nl.instance(i).position);
        for (const Point& p : np.fixed) pts.push_back(p);
        total += static_cast<double>(hpwl(pts)) * 1e-3;  // nm -> um
    }
    return total;
}

}  // namespace janus
