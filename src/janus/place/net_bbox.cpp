#include "janus/place/net_bbox.hpp"

#include <algorithm>

namespace janus {
namespace {

/// O(1) min-boundary update for one relocated pin: removal then insertion.
/// Returns false when the pin solely held the boundary and moved off it —
/// the second-smallest coordinate is unknown, so the caller must rescan.
bool shift_min(std::int64_t& m, std::uint32_t& c, std::int64_t from,
               std::int64_t to) {
    if (from == m) {
        if (c == 1) {
            if (to > m) return false;
            m = to;
            return true;
        }
        --c;
    }
    if (to < m) {
        m = to;
        c = 1;
    } else if (to == m) {
        ++c;
    }
    return true;
}

bool shift_max(std::int64_t& m, std::uint32_t& c, std::int64_t from,
               std::int64_t to) {
    if (from == m) {
        if (c == 1) {
            if (to < m) return false;
            m = to;
            return true;
        }
        --c;
    }
    if (to > m) {
        m = to;
        c = 1;
    } else if (to == m) {
        ++c;
    }
    return true;
}

}  // namespace

NetBBoxCache::NetBBoxCache(const Netlist& nl, const PlacementArea& area,
                           const NetBBoxOptions& opts)
    : nl_(&nl),
      box_(nl.num_nets()),
      insts_(nl.num_nets()),
      fixed_(nl.num_nets()),
      nets_of_(nl.num_instances()) {
    if (opts.with_pads) {
        const std::size_t n_in = nl.primary_inputs().size();
        const std::size_t n_out = nl.primary_outputs().size();
        std::size_t k = 0;
        for (const NetId pi : nl.primary_inputs()) {
            fixed_[pi].push_back(input_pad_position(area.die, k++, n_in));
        }
        k = 0;
        for (const auto& [name, net] : nl.primary_outputs()) {
            (void)name;
            fixed_[net].push_back(output_pad_position(area.die, k++, n_out));
        }
    }
    for (NetId n = 0; n < nl.num_nets(); ++n) {
        const Net& net = nl.net(n);
        const auto add_inst = [&](InstId i) {
            if (opts.placed_only && !nl.instance(i).placed) return;
            insts_[n].push_back(i);
        };
        if (net.driver_kind == DriverKind::Instance) add_inst(net.driver_inst);
        for (const SinkRef& s : nl.sinks(n)) add_inst(s.inst());
        // Deduplicate: one bbox contribution per instance, or the boundary
        // counts (and incremental deltas) would double-count multi-pin
        // connections to the same cell.
        std::sort(insts_[n].begin(), insts_[n].end());
        insts_[n].erase(std::unique(insts_[n].begin(), insts_[n].end()),
                        insts_[n].end());
        // Nets visited in id order and each instance at most once per net,
        // so nets_of_ comes out sorted and unique for free.
        for (const InstId i : insts_[n]) nets_of_[i].push_back(n);
        rescan(n);
    }
    rescans_ = 0;  // construction scans are not incremental-path rescans
}

void NetBBoxCache::rescan(NetId n) {
    Box b;
    bool first = true;
    const auto acc = [&](const Point& p) {
        if (first) {
            b.minx = b.maxx = p.x;
            b.miny = b.maxy = p.y;
            b.n_minx = b.n_maxx = b.n_miny = b.n_maxy = 1;
            first = false;
            return;
        }
        if (p.x < b.minx) {
            b.minx = p.x;
            b.n_minx = 1;
        } else if (p.x == b.minx) {
            ++b.n_minx;
        }
        if (p.x > b.maxx) {
            b.maxx = p.x;
            b.n_maxx = 1;
        } else if (p.x == b.maxx) {
            ++b.n_maxx;
        }
        if (p.y < b.miny) {
            b.miny = p.y;
            b.n_miny = 1;
        } else if (p.y == b.miny) {
            ++b.n_miny;
        }
        if (p.y > b.maxy) {
            b.maxy = p.y;
            b.n_maxy = 1;
        } else if (p.y == b.maxy) {
            ++b.n_maxy;
        }
    };
    for (const InstId i : insts_[n]) acc(nl_->instance(i).position);
    for (const Point& p : fixed_[n]) acc(p);
    box_[n] = b;  // pin-less nets keep the empty sentinel (maxx < minx)
}

Rect NetBBoxCache::bbox(NetId n) const {
    const Box& b = box_[n];
    if (degree(n) == 0) return Rect{};
    return Rect{{b.minx, b.miny}, {b.maxx, b.maxy}};
}

double NetBBoxCache::net_hpwl_um(NetId n) const {
    if (degree(n) < 2) return 0;
    const Box& b = box_[n];
    return static_cast<double>((b.maxx - b.minx) + (b.maxy - b.miny)) * 1e-3;
}

double NetBBoxCache::total_hpwl_um() const {
    double total = 0;
    for (NetId n = 0; n < box_.size(); ++n) total += net_hpwl_um(n);
    return total;
}

double NetBBoxCache::hpwl_if_moved_um(NetId n, InstId moved, Point from,
                                      Point to) const {
    if (degree(n) < 2) return 0;
    Box b = box_[n];
    if (shift_min(b.minx, b.n_minx, from.x, to.x) &&
        shift_max(b.maxx, b.n_maxx, from.x, to.x) &&
        shift_min(b.miny, b.n_miny, from.y, to.y) &&
        shift_max(b.maxy, b.n_maxy, from.y, to.y)) {
        return static_cast<double>((b.maxx - b.minx) + (b.maxy - b.miny)) * 1e-3;
    }
    // Boundary-shrinking move: rescan the net's pins with the moved pin
    // substituted (the netlist still holds the frozen `from` position).
    std::int64_t minx = INT64_MAX, maxx = INT64_MIN;
    std::int64_t miny = INT64_MAX, maxy = INT64_MIN;
    const auto acc = [&](const Point& p) {
        minx = std::min(minx, p.x);
        maxx = std::max(maxx, p.x);
        miny = std::min(miny, p.y);
        maxy = std::max(maxy, p.y);
    };
    for (const InstId i : insts_[n]) {
        acc(i == moved ? to : nl_->instance(i).position);
    }
    for (const Point& p : fixed_[n]) acc(p);
    return static_cast<double>((maxx - minx) + (maxy - miny)) * 1e-3;
}

double NetBBoxCache::swap_delta_um(InstId a, Point pa, InstId b,
                                   Point pb) const {
    double delta = 0;
    const auto& na = nets_of_[a];
    const auto& nb = nets_of_[b];
    for (const NetId n : na) {
        if (std::binary_search(nb.begin(), nb.end(), n)) continue;
        delta += hpwl_if_moved_um(n, a, pa, pb) - net_hpwl_um(n);
    }
    for (const NetId n : nb) {
        if (std::binary_search(na.begin(), na.end(), n)) continue;
        delta += hpwl_if_moved_um(n, b, pb, pa) - net_hpwl_um(n);
    }
    return delta;
}

void NetBBoxCache::update_net(NetId n, Point from, Point to) {
    if (from == to) return;
    Box b = box_[n];
    if (shift_min(b.minx, b.n_minx, from.x, to.x) &&
        shift_max(b.maxx, b.n_maxx, from.x, to.x) &&
        shift_min(b.miny, b.n_miny, from.y, to.y) &&
        shift_max(b.maxy, b.n_maxy, from.y, to.y)) {
        box_[n] = b;
        return;
    }
    ++rescans_;
    rescan(n);
}

void NetBBoxCache::apply_swap(InstId a, Point pa, InstId b, Point pb) {
    const auto& na = nets_of_[a];
    const auto& nb = nets_of_[b];
    for (const NetId n : na) {
        if (std::binary_search(nb.begin(), nb.end(), n)) continue;
        update_net(n, pa, pb);
    }
    for (const NetId n : nb) {
        if (std::binary_search(na.begin(), na.end(), n)) continue;
        update_net(n, pb, pa);
    }
}

}  // namespace janus
