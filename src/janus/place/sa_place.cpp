#include "janus/place/sa_place.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "janus/place/net_bbox.hpp"
#include "janus/util/rng.hpp"
#include "janus/util/speculate.hpp"

namespace janus {
namespace {

constexpr int kMaxPartnerDraws = 8;  ///< bounded redraw of degenerate partners
constexpr int kMaxRequeues = 8;      ///< defer/abort budget before abandoning
/// Fresh draws per region per round: the speculation horizon. Larger rounds
/// amortize the per-round serial work (binning + commit) over more parallel
/// evaluations but evaluate against a staler snapshot.
constexpr std::size_t kRegionQuota = 64;
constexpr std::size_t kCellsPerRegion = 256;  ///< auto grid sizing target
constexpr int kMaxTilesPerAxis = 64;

/// A candidate re-queued across rounds (local defer or commit abort). Only
/// the endpoints survive: positions and the delta are re-read against the
/// next round's fresh snapshot.
struct CarryMove {
    InstId a = 0, b = 0;
    int requeues = 0;
};

/// An accepted-pending move awaiting its round's serial commit.
struct PendingMove {
    InstId a = 0, b = 0;
    Point pa, pb;         ///< round-frozen positions
    double delta_um = 0;  ///< vs the round-frozen cache
    int requeues = 0;
};

/// Per-region output of one speculation round. Written only by the slot that
/// owns the region that round and folded into SaPlaceResult serially in
/// region order, so aggregation never depends on slot scheduling.
struct RegionRound {
    std::vector<PendingMove> pending;
    std::vector<CarryMove> defers;
    std::size_t attempted = 0;
    std::size_t degenerate = 0;
    std::size_t drawn = 0;
    std::size_t evals = 0;
    std::size_t rejected = 0;
    std::size_t local_defers = 0;
    std::size_t abandoned = 0;

    void reset() {
        pending.clear();
        defers.clear();
        attempted = degenerate = drawn = evals = rejected = local_defers =
            abandoned = 0;
    }
};

/// Per-slot scratch, allocated once and reused every round — the persistent
/// private state that per-batch task submission could never keep.
struct SlotScratch {
    EpochClaims nets;
    EpochClaims insts;
};

}  // namespace

SaPlaceResult sa_refine(Netlist& nl, const PlacementArea& area,
                        const SaPlaceOptions& opts) {
    SaPlaceResult res;

    NetBBoxCache cache(nl, area);
    res.initial_hpwl_um = cache.total_hpwl_um();
    res.final_hpwl_um = res.initial_hpwl_um;
    res.accumulated_hpwl_um = res.initial_hpwl_um;

    // Cells grouped by width in sites: swaps stay legal within a group.
    std::map<std::int64_t, std::vector<InstId>> by_width;
    for (InstId i = 0; i < nl.num_instances(); ++i) {
        const auto w = static_cast<std::int64_t>(
            std::ceil(nl.type_of(i).width_tracks));
        by_width[w].push_back(i);
    }
    std::vector<std::vector<InstId>> groups;
    for (auto& [w, g] : by_width) {
        if (g.size() >= 2) groups.push_back(std::move(g));
    }
    if (groups.empty()) return res;

    // The ownership grid is a pure function of the workload (cell count or
    // the explicit knob), never of the worker count — auto-sizing off
    // `workers` would silently break the byte-identity contract.
    const int tiles =
        opts.region_grid > 0
            ? std::min(opts.region_grid, kMaxTilesPerAxis)
            : RegionGrid::auto_tiles_per_axis(nl.num_instances(),
                                              kCellsPerRegion,
                                              kMaxTilesPerAxis);
    const RegionGrid grid(area.die.lo.x, area.die.lo.y,
                          area.die.hi.x - area.die.lo.x,
                          area.die.hi.y - area.die.lo.y, tiles, tiles);
    const std::size_t regions = static_cast<std::size_t>(grid.num_regions());
    res.regions = regions;

    const std::size_t total_slots =
        static_cast<std::size_t>(opts.moves_per_cell) * nl.num_instances();
    const std::size_t chunk = std::max<std::size_t>(1, total_slots / 60);
    double temp = opts.initial_temp_frac *
                  (res.initial_hpwl_um /
                   static_cast<double>(std::max<std::size_t>(1, nl.num_nets())));
    double accumulated = res.initial_hpwl_um;

    SpeculativeExecutor exec(opts.workers);
    std::vector<SlotScratch> scratch(exec.slots());
    for (SlotScratch& s : scratch) {
        s.nets.resize(nl.num_nets());
        s.insts.resize(nl.num_instances());
    }
    EpochClaims commit_nets, commit_insts;
    commit_nets.resize(nl.num_nets());
    commit_insts.resize(nl.num_instances());

    // Round-reused structures: per-region width-group bins, eligible-group
    // indices, carried-move inboxes, speculation outputs, draw quotas.
    std::vector<std::vector<std::vector<InstId>>> rbins(regions);
    for (auto& rb : rbins) rb.resize(groups.size());
    std::vector<std::vector<std::size_t>> elig(regions);
    std::vector<std::vector<CarryMove>> carried(regions);
    std::vector<RegionRound> out(regions);
    std::vector<std::size_t> quota(regions, 0);
    std::vector<CarryMove> carry;

    std::size_t consumed = 0;  // move slots drawn or burned so far
    std::size_t cooled = 0;    // cooling cursor (slots whose decay applied)

    while (consumed < total_slots || !carry.empty()) {
        // Alternating half-tile-shifted grids: cells straddling one round's
        // seam share an owner the next round, so seam-adjacent pairs are not
        // permanently unswappable.
        const bool shifted = (res.rounds % 2) == 1;
        const std::uint64_t round_seed = mix_seed(opts.seed, res.rounds);
        ++res.rounds;

        // Advance the cooling clock over slots consumed by earlier rounds;
        // the round then runs at a frozen temperature (worker-invariant by
        // construction — `consumed` is schedule-independent).
        while (cooled < consumed) {
            if (cooled % chunk == chunk - 1) temp *= opts.cooling;
            ++cooled;
        }
        const double round_temp = std::max(1e-12, temp);

        // Serial prologue: bin cells and carried moves under this round's
        // grid. Carried moves follow endpoint `a`'s current position.
        for (std::size_t r = 0; r < regions; ++r) {
            for (auto& g : rbins[r]) g.clear();
            elig[r].clear();
            carried[r].clear();
            out[r].reset();
        }
        for (std::size_t gi = 0; gi < groups.size(); ++gi) {
            for (const InstId i : groups[gi]) {
                const Point p = nl.instance(i).position;
                rbins[static_cast<std::size_t>(
                          grid.region_of(p.x, p.y, shifted))][gi]
                    .push_back(i);
            }
        }
        for (std::size_t r = 0; r < regions; ++r) {
            for (std::size_t gi = 0; gi < groups.size(); ++gi) {
                if (rbins[r][gi].size() >= 2) elig[r].push_back(gi);
            }
        }
        for (const CarryMove& m : carry) {
            const Point p = nl.instance(m.a).position;
            carried[static_cast<std::size_t>(
                        grid.region_of(p.x, p.y, shifted))]
                .push_back(m);
        }
        carry.clear();

        // Distribute this round's fresh-draw budget. Regions with nothing
        // swappable burn their quota, which is what guarantees termination
        // even on degenerate designs.
        const std::size_t budget =
            std::min(total_slots - consumed, regions * kRegionQuota);
        consumed += budget;
        for (std::size_t r = 0; r < regions; ++r) {
            quota[r] = budget / regions + (r < budget % regions ? 1 : 0);
        }

        // Speculation: each region draws, evaluates and Metropolis-decides
        // its moves against the round-frozen netlist/cache, on its own RNG
        // stream. The slot id picks only the scratch set — everything a
        // region computes is a pure function of (seed, round, region).
        exec.for_each_region(regions, [&](std::size_t r, std::size_t slot) {
            RegionRound& o = out[r];
            SlotScratch& sc = scratch[slot];
            sc.nets.next_epoch();
            sc.insts.next_epoch();
            Rng rng(mix_seed(round_seed, r));

            const auto locally_blocked = [&](InstId a, InstId b) {
                if (sc.insts.claimed(a) || sc.insts.claimed(b)) return true;
                for (const NetId n : cache.nets_of(a)) {
                    if (sc.nets.claimed(n)) return true;
                }
                for (const NetId n : cache.nets_of(b)) {
                    if (sc.nets.claimed(n)) return true;
                }
                return false;
            };
            const auto evaluate = [&](InstId a, InstId b, int requeues) {
                // Overlap with an earlier accepted-pending move would make
                // this delta (or these positions) stale: defer, unevaluated.
                if (locally_blocked(a, b)) {
                    ++o.local_defers;
                    if (requeues + 1 > kMaxRequeues) {
                        ++o.abandoned;
                    } else {
                        o.defers.push_back({a, b, requeues + 1});
                    }
                    return;
                }
                const Point pa = nl.instance(a).position;
                const Point pb = nl.instance(b).position;
                const double delta = cache.swap_delta_um(a, pa, b, pb);
                ++o.evals;
                const bool accept =
                    delta <= 0 ||
                    rng.next_double() < std::exp(-delta / round_temp);
                if (!accept) {
                    ++o.rejected;  // final: rejections are never replayed
                    return;
                }
                // Claim cells as well as nets: a netless cell shares no net
                // with anything, yet a second pending move through it would
                // still read a position this commit is about to change.
                sc.insts.claim(a);
                sc.insts.claim(b);
                for (const NetId n : cache.nets_of(a)) sc.nets.claim(n);
                for (const NetId n : cache.nets_of(b)) sc.nets.claim(n);
                o.pending.push_back({a, b, pa, pb, delta, requeues});
            };

            for (const CarryMove& m : carried[r]) {
                evaluate(m.a, m.b, m.requeues);
            }
            if (elig[r].empty()) return;  // quota burns: nothing swappable
            for (std::size_t q = 0; q < quota[r]; ++q) {
                const auto& g = rbins[r][elig[r][rng.pick_index(elig[r].size())]];
                const InstId a = g[rng.pick_index(g.size())];
                // A self-swap is not a move: redraw the partner (bounded) so
                // a degenerate draw doesn't count as an attempted move.
                InstId b = a;
                for (int t = 0; t < kMaxPartnerDraws && b == a; ++t) {
                    ++o.attempted;
                    b = g[rng.pick_index(g.size())];
                    if (b == a) ++o.degenerate;
                }
                if (b == a) continue;  // redraw budget exhausted (tiny groups)
                ++o.drawn;
                evaluate(a, b, 0);
            }
        });

        // Serial commit in region/draw order: deterministic by construction.
        // A pending move whose nets or cells an earlier region already
        // committed this round aborts and re-queues — its delta was computed
        // against a snapshot that commit just invalidated. Surviving commits
        // are mutually net-disjoint, so their deltas are exactly additive.
        commit_nets.next_epoch();
        commit_insts.next_epoch();
        for (std::size_t r = 0; r < regions; ++r) {
            RegionRound& o = out[r];
            res.attempted_draws += o.attempted;
            res.degenerate_draws += o.degenerate;
            res.drawn_moves += o.drawn;
            res.total_moves += o.evals;
            res.rejected_moves += o.rejected;
            res.local_defers += o.local_defers;
            res.abandoned_moves += o.abandoned;
            for (const PendingMove& m : o.pending) {
                bool conflict =
                    commit_insts.claimed(m.a) || commit_insts.claimed(m.b);
                if (!conflict) {
                    for (const NetId n : cache.nets_of(m.a)) {
                        if (commit_nets.claimed(n)) {
                            conflict = true;
                            break;
                        }
                    }
                }
                if (!conflict) {
                    for (const NetId n : cache.nets_of(m.b)) {
                        if (commit_nets.claimed(n)) {
                            conflict = true;
                            break;
                        }
                    }
                }
                if (conflict) {
                    ++res.commit_aborts;
                    if (m.requeues + 1 > kMaxRequeues) {
                        ++res.abandoned_moves;
                    } else {
                        carry.push_back({m.a, m.b, m.requeues + 1});
                    }
                    continue;
                }
                commit_insts.claim(m.a);
                commit_insts.claim(m.b);
                for (const NetId n : cache.nets_of(m.a)) commit_nets.claim(n);
                for (const NetId n : cache.nets_of(m.b)) commit_nets.claim(n);
                std::swap(nl.instance(m.a).position, nl.instance(m.b).position);
                cache.apply_swap(m.a, m.pa, m.b, m.pb);
                accumulated += m.delta_um;
                ++res.accepted_moves;
            }
            for (const CarryMove& c : o.defers) carry.push_back(c);
        }
    }

    res.accumulated_hpwl_um = accumulated;
    // The cache's integer bounds are exact, so this is the true HPWL — the
    // per-move double accumulation is demoted to a diagnostic above.
    res.final_hpwl_um = cache.total_hpwl_um();
    return res;
}

}  // namespace janus
