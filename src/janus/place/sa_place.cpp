#include "janus/place/sa_place.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <vector>

#include "janus/place/net_bbox.hpp"
#include "janus/util/rng.hpp"
#include "janus/util/thread_pool.hpp"

namespace janus {
namespace {

/// One candidate swap: drawn serially, evaluated (possibly concurrently)
/// against the batch-frozen cache, accepted serially in slot order.
struct SwapMove {
    InstId a = 0, b = 0;
    std::size_t slot = 0;  ///< global move-slot index (drives the cooling clock)
    Point pa, pb;          ///< batch-start positions
    double delta_um = 0;   ///< pure function of the frozen cache + positions
};

/// HPWL delta of swapping m.a and m.b, read-only against the frozen cache.
/// Nets incident to both endpoints see an unchanged pin multiset under a
/// swap, so only the symmetric difference of the two incidence sets
/// contributes; those nets are net-disjoint from every other move in the
/// batch, which is what makes batch deltas exactly additive.
double swap_delta_um(const NetBBoxCache& cache, const SwapMove& m) {
    double delta = 0;
    const auto& na = cache.nets_of(m.a);
    const auto& nb = cache.nets_of(m.b);
    for (const NetId n : na) {
        if (std::binary_search(nb.begin(), nb.end(), n)) continue;
        delta += cache.hpwl_if_moved_um(n, m.a, m.pa, m.pb) - cache.net_hpwl_um(n);
    }
    for (const NetId n : nb) {
        if (std::binary_search(na.begin(), na.end(), n)) continue;
        delta += cache.hpwl_if_moved_um(n, m.b, m.pb, m.pa) - cache.net_hpwl_um(n);
    }
    return delta;
}

}  // namespace

SaPlaceResult sa_refine(Netlist& nl, const PlacementArea& area,
                        const SaPlaceOptions& opts) {
    SaPlaceResult res;

    NetBBoxCache cache(nl, area);
    res.initial_hpwl_um = cache.total_hpwl_um();
    res.final_hpwl_um = res.initial_hpwl_um;
    res.accumulated_hpwl_um = res.initial_hpwl_um;

    // Cells grouped by width in sites: swaps stay legal within a group.
    std::map<std::int64_t, std::vector<InstId>> by_width;
    for (InstId i = 0; i < nl.num_instances(); ++i) {
        const auto w = static_cast<std::int64_t>(
            std::ceil(nl.type_of(i).width_tracks));
        by_width[w].push_back(i);
    }
    std::vector<std::vector<InstId>> groups;
    for (auto& [w, g] : by_width) {
        if (g.size() >= 2) groups.push_back(std::move(g));
    }
    if (groups.empty()) return res;

    const std::size_t total_slots =
        static_cast<std::size_t>(opts.moves_per_cell) * nl.num_instances();
    const std::size_t chunk = std::max<std::size_t>(1, total_slots / 60);
    double temp = opts.initial_temp_frac *
                  (res.initial_hpwl_um /
                   static_cast<double>(std::max<std::size_t>(1, nl.num_nets())));
    double accumulated = res.initial_hpwl_um;

    // Independent streams for candidate draws and acceptance, derived from
    // the run seed: the candidate sequence is a pure function of the seed,
    // never of accept/reject history or worker scheduling.
    Rng draw_rng(mix_seed(opts.seed, 0));
    Rng accept_rng(mix_seed(opts.seed, 1));

    const int workers = std::max(1, opts.workers);
    const std::size_t batch_cap =
        static_cast<std::size_t>(std::max(1, opts.batch_moves));
    std::unique_ptr<ThreadPool> pool;
    if (workers > 1) pool = std::make_unique<ThreadPool>(workers);

    // Net-claim stamps: a candidate touching a net already claimed by the
    // current batch closes the batch and carries over as the first member
    // of the next one, so every batch is net-disjoint and its deltas are
    // exactly additive.
    std::vector<std::uint32_t> claim(nl.num_nets(), 0);
    std::uint32_t epoch = 0;
    const auto conflicts = [&](const SwapMove& m) {
        for (const NetId n : cache.nets_of(m.a)) {
            if (claim[n] == epoch) return true;
        }
        for (const NetId n : cache.nets_of(m.b)) {
            if (claim[n] == epoch) return true;
        }
        return false;
    };
    const auto claim_move = [&](const SwapMove& m) {
        for (const NetId n : cache.nets_of(m.a)) claim[n] = epoch;
        for (const NetId n : cache.nets_of(m.b)) claim[n] = epoch;
    };

    constexpr int kMaxPartnerDraws = 8;
    std::vector<SwapMove> batch;
    batch.reserve(batch_cap);
    SwapMove carry;
    bool have_carry = false;
    std::size_t slot = 0;    // generation cursor over move slots
    std::size_t cooled = 0;  // cooling cursor (slots whose decay has applied)

    while (slot < total_slots || have_carry) {
        batch.clear();
        ++epoch;
        if (have_carry) {
            claim_move(carry);
            batch.push_back(carry);
            have_carry = false;
        }
        while (batch.size() < batch_cap && slot < total_slots) {
            auto& group = groups[draw_rng.pick_index(groups.size())];
            const InstId a = group[draw_rng.pick_index(group.size())];
            // A self-swap is not a move: redraw the partner (bounded) so a
            // degenerate draw no longer burns a cooling-schedule slot as if
            // a move had been attempted.
            InstId b = a;
            for (int t = 0; t < kMaxPartnerDraws && b == a; ++t) {
                ++res.attempted_draws;
                b = group[draw_rng.pick_index(group.size())];
                if (b == a) ++res.degenerate_draws;
            }
            const std::size_t s = slot++;
            if (b == a) continue;  // redraw budget exhausted (tiny groups)
            SwapMove m;
            m.a = a;
            m.b = b;
            m.slot = s;
            if (conflicts(m)) {
                ++res.batch_conflicts;
                carry = m;
                have_carry = true;
                break;
            }
            claim_move(m);
            batch.push_back(m);
        }
        if (batch.empty()) continue;
        ++res.batches;

        // Freeze batch-start positions, then evaluate deltas against the
        // unmutated cache. Each task writes only its own moves' delta_um
        // and every delta is a pure function of (cache, positions), so the
        // values — and everything downstream — cannot depend on worker
        // count or scheduling.
        for (SwapMove& m : batch) {
            m.pa = nl.instance(m.a).position;
            m.pb = nl.instance(m.b).position;
        }
        if (pool && batch.size() > 1) {
            const std::size_t tasks = std::min(pool->size(), batch.size());
            const std::size_t per = (batch.size() + tasks - 1) / tasks;
            pool->for_each_index(tasks, [&](std::size_t t) {
                const std::size_t lo = t * per;
                const std::size_t hi = std::min(batch.size(), lo + per);
                for (std::size_t k = lo; k < hi; ++k) {
                    batch[k].delta_um = swap_delta_um(cache, batch[k]);
                }
            });
        } else {
            for (SwapMove& m : batch) m.delta_um = swap_delta_um(cache, m);
        }

        // Serial accept/reject in slot order: the temperature decay and the
        // acceptance RNG stream advance exactly as they would move by move.
        for (const SwapMove& m : batch) {
            while (cooled <= m.slot) {
                if (cooled % chunk == chunk - 1) temp *= opts.cooling;
                ++cooled;
            }
            ++res.total_moves;
            const bool accept =
                m.delta_um <= 0 ||
                accept_rng.next_double() <
                    std::exp(-m.delta_um / std::max(1e-12, temp));
            if (!accept) continue;
            std::swap(nl.instance(m.a).position, nl.instance(m.b).position);
            cache.apply_swap(m.a, m.pa, m.b, m.pb);
            accumulated += m.delta_um;
            ++res.accepted_moves;
        }
    }

    res.accumulated_hpwl_um = accumulated;
    // The cache's integer bounds are exact, so this is the true HPWL — the
    // old per-move double accumulation is demoted to a diagnostic above.
    res.final_hpwl_um = cache.total_hpwl_um();
    return res;
}

}  // namespace janus
