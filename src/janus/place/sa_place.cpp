#include "janus/place/sa_place.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "janus/util/rng.hpp"

namespace janus {
namespace {

struct NetGeom {
    std::vector<InstId> insts;
    std::vector<Point> fixed;
};

double net_hpwl_um(const Netlist& nl, const NetGeom& g) {
    if (g.insts.size() + g.fixed.size() < 2) return 0;
    std::int64_t minx = INT64_MAX, maxx = INT64_MIN, miny = INT64_MAX, maxy = INT64_MIN;
    const auto acc = [&](const Point& p) {
        minx = std::min(minx, p.x);
        maxx = std::max(maxx, p.x);
        miny = std::min(miny, p.y);
        maxy = std::max(maxy, p.y);
    };
    for (const InstId i : g.insts) acc(nl.instance(i).position);
    for (const Point& p : g.fixed) acc(p);
    return static_cast<double>((maxx - minx) + (maxy - miny)) * 1e-3;
}

}  // namespace

SaPlaceResult sa_refine(Netlist& nl, const PlacementArea& area,
                        const SaPlaceOptions& opts) {
    SaPlaceResult res;
    Rng rng(opts.seed);

    // Net geometry and instance->net incidence.
    std::vector<NetGeom> nets(nl.num_nets());
    const std::size_t n_in = nl.primary_inputs().size();
    const std::size_t n_out = nl.primary_outputs().size();
    std::size_t k = 0;
    for (const NetId pi : nl.primary_inputs()) {
        nets[pi].fixed.push_back(input_pad_position(area.die, k++, n_in));
    }
    k = 0;
    for (const auto& [name, net] : nl.primary_outputs()) {
        (void)name;
        nets[net].fixed.push_back(output_pad_position(area.die, k++, n_out));
    }
    std::vector<std::vector<NetId>> nets_of(nl.num_instances());
    for (InstId i = 0; i < nl.num_instances(); ++i) {
        const Instance& inst = nl.instance(i);
        nets[inst.output].insts.push_back(i);
        nets_of[i].push_back(inst.output);
        const int arity = function_arity(nl.type_of(i).function);
        for (int p = 0; p < arity; ++p) {
            const NetId n = inst.fanin[static_cast<std::size_t>(p)];
            if (n == kNoNet) continue;
            nets[n].insts.push_back(i);
            nets_of[i].push_back(n);
        }
        // Deduplicate: a net must appear once per instance or the
        // incremental delta would double-count it.
        std::sort(nets_of[i].begin(), nets_of[i].end());
        nets_of[i].erase(std::unique(nets_of[i].begin(), nets_of[i].end()),
                         nets_of[i].end());
    }

    double hpwl = 0;
    for (const NetGeom& g : nets) hpwl += net_hpwl_um(nl, g);
    res.initial_hpwl_um = hpwl;

    // Cells grouped by width in sites: swaps stay legal within a group.
    std::map<std::int64_t, std::vector<InstId>> by_width;
    for (InstId i = 0; i < nl.num_instances(); ++i) {
        const auto w = static_cast<std::int64_t>(
            std::ceil(nl.type_of(i).width_tracks));
        by_width[w].push_back(i);
    }
    std::vector<std::vector<InstId>> groups;
    for (auto& [w, g] : by_width) {
        if (g.size() >= 2) groups.push_back(std::move(g));
    }
    if (groups.empty()) {
        res.final_hpwl_um = hpwl;
        return res;
    }

    const std::size_t total_moves =
        static_cast<std::size_t>(opts.moves_per_cell) * nl.num_instances();
    const std::size_t chunk = std::max<std::size_t>(1, total_moves / 60);
    double temp = opts.initial_temp_frac *
                  (hpwl / std::max<std::size_t>(1, nl.num_nets()));

    const auto affected_delta = [&](InstId a, InstId b, double& before) {
        before = 0;
        for (const NetId n : nets_of[a]) before += net_hpwl_um(nl, nets[n]);
        for (const NetId n : nets_of[b]) {
            // Avoid double counting shared nets.
            bool shared = false;
            for (const NetId m : nets_of[a]) {
                if (m == n) {
                    shared = true;
                    break;
                }
            }
            if (!shared) before += net_hpwl_um(nl, nets[n]);
        }
    };

    for (std::size_t move = 0; move < total_moves; ++move) {
        if (move % chunk == chunk - 1) temp *= opts.cooling;
        auto& group = groups[rng.pick_index(groups.size())];
        const InstId a = group[rng.pick_index(group.size())];
        const InstId b = group[rng.pick_index(group.size())];
        if (a == b) continue;
        ++res.total_moves;

        double before = 0;
        affected_delta(a, b, before);
        std::swap(nl.instance(a).position, nl.instance(b).position);
        double after = 0;
        affected_delta(a, b, after);
        const double delta = after - before;
        if (delta <= 0 || rng.next_double() < std::exp(-delta / std::max(1e-12, temp))) {
            hpwl += delta;
            ++res.accepted_moves;
        } else {
            std::swap(nl.instance(a).position, nl.instance(b).position);
        }
    }
    res.final_hpwl_um = hpwl;
    return res;
}

}  // namespace janus
