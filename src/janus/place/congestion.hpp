#pragma once
/// \file congestion.hpp
/// Bin-based routing-congestion estimation from a placement: each net's
/// bounding box spreads demand over the bins it crosses; capacity comes
/// from the available routing layers. Used by the scan-reorder experiment
/// (E8) and as the router's net-ordering hint.

#include <vector>

#include "janus/place/analytic_place.hpp"
#include "janus/netlist/technology.hpp"

namespace janus {

struct CongestionOptions {
    std::size_t bins = 24;       ///< bins per axis
    int routing_layers = 6;      ///< layers available for signal routing
    /// Tracks per bin per layer derive from bin size / pitch; this factor
    /// derates for blockages and power routing.
    double capacity_derate = 0.5;
};

struct CongestionMap {
    std::size_t bins = 0;
    std::vector<double> demand;    ///< per bin, in track-lengths
    std::vector<double> capacity;  ///< per bin
    double max_overflow = 0;       ///< max(demand/capacity) - 1, floored at 0
    double overflow_fraction = 0;  ///< fraction of bins over capacity
    double total_demand = 0;

    double utilization(std::size_t bx, std::size_t by) const {
        const std::size_t k = by * bins + bx;
        return capacity[k] > 0 ? demand[k] / capacity[k] : 0;
    }
};

/// Estimates congestion for a placed netlist.
CongestionMap estimate_congestion(const Netlist& nl, const PlacementArea& area,
                                  const TechnologyNode& node,
                                  const CongestionOptions& opts = {});

}  // namespace janus
