#include "janus/place/congestion.hpp"

#include <algorithm>
#include <cmath>

#include "janus/place/net_bbox.hpp"

namespace janus {

CongestionMap estimate_congestion(const Netlist& nl, const PlacementArea& area,
                                  const TechnologyNode& node,
                                  const CongestionOptions& opts) {
    CongestionMap m;
    m.bins = opts.bins;
    m.demand.assign(opts.bins * opts.bins, 0.0);
    m.capacity.assign(opts.bins * opts.bins, 0.0);

    const double bin_w = static_cast<double>(area.die.width()) / opts.bins;
    const double bin_h = static_cast<double>(area.die.height()) / opts.bins;
    // Tracks crossing a bin: bin dimension / pitch, summed over layers
    // (half horizontal, half vertical), derated.
    const double pitch_nm = node.metal_pitch_nm;
    const double cap_per_bin = opts.capacity_derate * opts.routing_layers * 0.5 *
                               (bin_w / pitch_nm + bin_h / pitch_nm);
    std::fill(m.capacity.begin(), m.capacity.end(), cap_per_bin);

    const auto bin_index = [&](double v, double lo, double size, std::size_t n) {
        const double t = (v - lo) / size;
        return std::min(n - 1, static_cast<std::size_t>(std::max(0.0, t)));
    };

    // Net bounding boxes over placed pins, via the shared per-net cache
    // (same structure the SA placer maintains incrementally; here it is
    // built once and read out). Pads are excluded: congestion models
    // cell-to-cell routing demand only.
    NetBBoxOptions bopts;
    bopts.with_pads = false;
    bopts.placed_only = true;
    const NetBBoxCache cache(nl, area, bopts);
    for (NetId n = 0; n < nl.num_nets(); ++n) {
        if (cache.degree(n) < 2) continue;
        const Rect bb = cache.bbox(n);
        const std::size_t x0 =
            bin_index(static_cast<double>(bb.lo.x), static_cast<double>(area.die.lo.x), bin_w, opts.bins);
        const std::size_t x1 =
            bin_index(static_cast<double>(bb.hi.x), static_cast<double>(area.die.lo.x), bin_w, opts.bins);
        const std::size_t y0 =
            bin_index(static_cast<double>(bb.lo.y), static_cast<double>(area.die.lo.y), bin_h, opts.bins);
        const std::size_t y1 =
            bin_index(static_cast<double>(bb.hi.y), static_cast<double>(area.die.lo.y), bin_h, opts.bins);
        // FLUTE-less estimate: wirelength = HPWL, spread uniformly over the
        // covered bins in units of "track-lengths per bin".
        const double wl_tracks =
            (static_cast<double>(bb.width()) + static_cast<double>(bb.height())) /
            std::max(1.0, 0.5 * (bin_w + bin_h));
        const double nbins = static_cast<double>((x1 - x0 + 1) * (y1 - y0 + 1));
        const double per_bin = wl_tracks / nbins;
        for (std::size_t by = y0; by <= y1; ++by) {
            for (std::size_t bx = x0; bx <= x1; ++bx) {
                m.demand[by * opts.bins + bx] += per_bin;
            }
        }
        m.total_demand += wl_tracks;
    }

    std::size_t over = 0;
    for (std::size_t k = 0; k < m.demand.size(); ++k) {
        const double util = m.capacity[k] > 0 ? m.demand[k] / m.capacity[k] : 0;
        if (util > 1.0) {
            ++over;
            m.max_overflow = std::max(m.max_overflow, util - 1.0);
        }
    }
    m.overflow_fraction = static_cast<double>(over) / static_cast<double>(m.demand.size());
    return m;
}

}  // namespace janus
