#pragma once
/// \file legalize.hpp
/// Tetris-style legalization: snaps globally-placed cells onto rows and
/// sites without overlap, minimizing displacement.

#include "janus/place/analytic_place.hpp"

namespace janus {

struct LegalizeResult {
    double total_displacement_um = 0;
    double max_displacement_um = 0;
    bool success = true;  ///< false if the die ran out of sites
};

/// Legalizes all instances in place. Cells are processed in x order and
/// packed to the nearest feasible row position (the classic Tetris
/// heuristic).
LegalizeResult legalize(Netlist& nl, const PlacementArea& area);

/// True if no two cells overlap and all cells sit on row/site boundaries.
bool is_legal(const Netlist& nl, const PlacementArea& area);

}  // namespace janus
