#include "janus/place/floorplan.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace janus {
namespace {

constexpr int kVCut = -1;  // children side by side (widths add)
constexpr int kHCut = -2;  // children stacked (heights add)

/// One realizable shape of a subtree, with back-pointers to the child
/// shapes that produced it.
struct Shape {
    double w = 0, h = 0;
    int left = -1, right = -1;  // child shape indices (-1 for leaves)
};

using ShapeList = std::vector<Shape>;

/// Removes dominated shapes (larger in both dimensions) and caps the list.
void prune(ShapeList& shapes) {
    std::sort(shapes.begin(), shapes.end(), [](const Shape& a, const Shape& b) {
        return a.w < b.w || (a.w == b.w && a.h < b.h);
    });
    ShapeList kept;
    double best_h = 1e300;
    for (const Shape& s : shapes) {
        if (s.h < best_h) {
            kept.push_back(s);
            best_h = s.h;
        }
    }
    if (kept.size() > 10) {
        // Keep a spread of 10 entries.
        ShapeList sub;
        for (std::size_t i = 0; i < 10; ++i) {
            sub.push_back(kept[i * (kept.size() - 1) / 9]);
        }
        kept = std::move(sub);
    }
    shapes = std::move(kept);
}

struct EvalNode {
    ShapeList shapes;
    int op = 0;           // 0 for leaf, else kVCut/kHCut
    int child_a = -1, child_b = -1;  // eval-node indices
    std::size_t block = 0;           // leaf: block index
};

struct Evaluation {
    std::vector<EvalNode> nodes;
    int root = -1;
};

Evaluation evaluate_shapes(const std::vector<int>& expr,
                           const std::vector<ShapeList>& leaf_shapes) {
    Evaluation ev;
    std::vector<int> stack;
    for (const int tok : expr) {
        if (tok >= 0) {
            EvalNode n;
            n.shapes = leaf_shapes[static_cast<std::size_t>(tok)];
            n.block = static_cast<std::size_t>(tok);
            ev.nodes.push_back(std::move(n));
            stack.push_back(static_cast<int>(ev.nodes.size()) - 1);
        } else {
            assert(stack.size() >= 2);
            const int b = stack.back();
            stack.pop_back();
            const int a = stack.back();
            stack.pop_back();
            EvalNode n;
            n.op = tok;
            n.child_a = a;
            n.child_b = b;
            const ShapeList& sa = ev.nodes[static_cast<std::size_t>(a)].shapes;
            const ShapeList& sb = ev.nodes[static_cast<std::size_t>(b)].shapes;
            for (std::size_t i = 0; i < sa.size(); ++i) {
                for (std::size_t j = 0; j < sb.size(); ++j) {
                    Shape s;
                    if (tok == kVCut) {
                        s.w = sa[i].w + sb[j].w;
                        s.h = std::max(sa[i].h, sb[j].h);
                    } else {
                        s.w = std::max(sa[i].w, sb[j].w);
                        s.h = sa[i].h + sb[j].h;
                    }
                    s.left = static_cast<int>(i);
                    s.right = static_cast<int>(j);
                    n.shapes.push_back(s);
                }
            }
            prune(n.shapes);
            ev.nodes.push_back(std::move(n));
            stack.push_back(static_cast<int>(ev.nodes.size()) - 1);
        }
    }
    assert(stack.size() == 1);
    ev.root = stack.back();
    return ev;
}

/// Recursively assigns rectangles given a chosen shape per node.
void place_rec(const Evaluation& ev, int node, int shape_idx, double x, double y,
               std::vector<Rect>& out) {
    const EvalNode& n = ev.nodes[static_cast<std::size_t>(node)];
    const Shape& s = n.shapes[static_cast<std::size_t>(shape_idx)];
    if (n.op == 0) {
        // nm resolution.
        out[n.block] = Rect{static_cast<std::int64_t>(x * 1000),
                            static_cast<std::int64_t>(y * 1000),
                            static_cast<std::int64_t>((x + s.w) * 1000),
                            static_cast<std::int64_t>((y + s.h) * 1000)};
        return;
    }
    const auto& ca = ev.nodes[static_cast<std::size_t>(n.child_a)];
    (void)ca;
    if (n.op == kVCut) {
        place_rec(ev, n.child_a, s.left, x, y, out);
        const double wl =
            ev.nodes[static_cast<std::size_t>(n.child_a)].shapes[static_cast<std::size_t>(s.left)].w;
        place_rec(ev, n.child_b, s.right, x + wl, y, out);
    } else {
        place_rec(ev, n.child_a, s.left, x, y, out);
        const double hl =
            ev.nodes[static_cast<std::size_t>(n.child_a)].shapes[static_cast<std::size_t>(s.left)].h;
        place_rec(ev, n.child_b, s.right, x, y + hl, out);
    }
}

double wirelength_um(const std::vector<Block>& blocks,
                     const std::vector<Rect>& rects) {
    double wl = 0;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        for (const auto& [j, w] : blocks[i].connections) {
            if (j <= i) continue;  // count each pair once
            const Point a = rects[i].center();
            const Point b = rects[j].center();
            wl += w * static_cast<double>(manhattan(a, b)) * 1e-3;
        }
    }
    return wl;
}

struct CostedPlacement {
    double cost = 0;
    double area_um2 = 0;
    double wl_um = 0;
    std::vector<Rect> rects;
};

CostedPlacement cost_of(const std::vector<int>& expr,
                        const std::vector<Block>& blocks,
                        const std::vector<ShapeList>& leaf_shapes,
                        double lambda) {
    const Evaluation ev = evaluate_shapes(expr, leaf_shapes);
    const auto& root_shapes = ev.nodes[static_cast<std::size_t>(ev.root)].shapes;
    // Pick the min-area root shape, then derive positions and wirelength.
    std::size_t best = 0;
    for (std::size_t i = 1; i < root_shapes.size(); ++i) {
        if (root_shapes[i].w * root_shapes[i].h <
            root_shapes[best].w * root_shapes[best].h) {
            best = i;
        }
    }
    CostedPlacement cp;
    cp.rects.assign(blocks.size(), Rect{});
    place_rec(ev, ev.root, static_cast<int>(best), 0, 0, cp.rects);
    cp.area_um2 = root_shapes[best].w * root_shapes[best].h;
    cp.wl_um = wirelength_um(blocks, cp.rects);
    cp.cost = cp.area_um2 + lambda * cp.wl_um;
    return cp;
}

}  // namespace

FloorplanResult floorplan(const std::vector<Block>& blocks,
                          const FloorplanOptions& opts) {
    if (blocks.empty()) throw std::invalid_argument("floorplan: no blocks");
    Rng rng(opts.seed);

    // Candidate shapes per block across its aspect range.
    std::vector<ShapeList> leaf_shapes(blocks.size());
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        const Block& b = blocks[i];
        const int steps = std::max(1, opts.aspect_steps);
        for (int s = 0; s < steps; ++s) {
            const double t = steps == 1 ? 0.5 : static_cast<double>(s) / (steps - 1);
            const double aspect = b.min_aspect + t * (b.max_aspect - b.min_aspect);
            Shape sh;
            sh.w = std::sqrt(b.area_um2 / aspect);
            sh.h = b.area_um2 / sh.w;
            leaf_shapes[i].push_back(sh);
        }
        prune(leaf_shapes[i]);
    }

    // Initial expression: b0 b1 V b2 H b3 V ... (alternating cuts).
    std::vector<int> expr;
    expr.push_back(0);
    for (std::size_t i = 1; i < blocks.size(); ++i) {
        expr.push_back(static_cast<int>(i));
        expr.push_back(i % 2 ? kVCut : kHCut);
    }

    CostedPlacement current = cost_of(expr, blocks, leaf_shapes, opts.wirelength_weight);
    std::vector<int> best_expr = expr;
    CostedPlacement best = current;

    const auto operand_positions = [&](const std::vector<int>& e) {
        std::vector<std::size_t> pos;
        for (std::size_t i = 0; i < e.size(); ++i) {
            if (e[i] >= 0) pos.push_back(i);
        }
        return pos;
    };

    for (double temp = opts.initial_temperature; temp > opts.final_temperature;
         temp *= opts.cooling) {
        for (int m = 0; m < opts.moves_per_temperature; ++m) {
            std::vector<int> cand = expr;
            const int move = static_cast<int>(rng.next_below(3));
            if (move == 0 && blocks.size() >= 2) {
                // Swap two random operands.
                const auto pos = operand_positions(cand);
                const std::size_t a = pos[rng.pick_index(pos.size())];
                std::size_t b = pos[rng.pick_index(pos.size())];
                if (a == b) continue;
                std::swap(cand[a], cand[b]);
            } else if (move == 1) {
                // Complement one operator.
                std::vector<std::size_t> ops;
                for (std::size_t i = 0; i < cand.size(); ++i) {
                    if (cand[i] < 0) ops.push_back(i);
                }
                const std::size_t p = ops[rng.pick_index(ops.size())];
                cand[p] = cand[p] == kVCut ? kHCut : kVCut;
            } else {
                // Swap adjacent operand/operator when the result remains a
                // valid postfix (balloting property).
                const std::size_t p = 1 + rng.pick_index(cand.size() - 1);
                if ((cand[p] < 0) == (cand[p - 1] < 0)) continue;
                std::swap(cand[p], cand[p - 1]);
                // Balloting property: every prefix must keep the operand
                // stack depth >= 2 before applying an operator, and the
                // whole expression must reduce to exactly one result.
                int depth = 0;
                bool ok = true;
                for (const int tok : cand) {
                    if (tok >= 0) {
                        ++depth;
                    } else {
                        if (depth < 2) {
                            ok = false;
                            break;
                        }
                        --depth;
                    }
                }
                if (!ok || depth != 1) continue;
            }

            const CostedPlacement cnd =
                cost_of(cand, blocks, leaf_shapes, opts.wirelength_weight);
            const double delta = cnd.cost - current.cost;
            if (delta <= 0 ||
                rng.next_double() < std::exp(-delta / (temp * std::max(1.0, current.cost)))) {
                expr = std::move(cand);
                current = cnd;
                if (current.cost < best.cost) {
                    best = current;
                    best_expr = expr;
                }
            }
        }
    }

    FloorplanResult res;
    res.blocks.reserve(blocks.size());
    Rect bbox;
    double block_area = 0;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        res.blocks.push_back(PlacedBlock{best.rects[i]});
        bbox = bounding_box(bbox, best.rects[i]);
        block_area += blocks[i].area_um2;
    }
    res.bounding_box = bbox;
    res.area_um2 = best.area_um2;
    res.utilization = best.area_um2 > 0 ? block_area / best.area_um2 : 0;
    res.wirelength_um = best.wl_um;
    return res;
}

}  // namespace janus
