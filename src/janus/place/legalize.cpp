#include "janus/place/legalize.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace janus {
namespace {

std::int64_t cell_width_nm(const Netlist& nl, InstId i, const PlacementArea& area) {
    const double tracks = nl.type_of(i).width_tracks;
    return std::max<std::int64_t>(
        area.site_width,
        static_cast<std::int64_t>(std::ceil(tracks)) * area.site_width);
}

}  // namespace

LegalizeResult legalize(Netlist& nl, const PlacementArea& area) {
    LegalizeResult res;
    const int rows = area.num_rows;
    const std::int64_t row_len = area.die.width();

    // Pass 1 — row assignment. Cells in y-order fill rows bottom-to-top;
    // a row closes once adding the next cell would exceed its span. This
    // balances row occupancy no matter how clumped the global placement
    // is, keeping vertical displacement near one row height.
    std::vector<InstId> by_y(nl.num_instances());
    std::iota(by_y.begin(), by_y.end(), 0);
    std::sort(by_y.begin(), by_y.end(), [&](InstId a, InstId b) {
        const auto& pa = nl.instance(a).position;
        const auto& pb = nl.instance(b).position;
        return pa.y < pb.y || (pa.y == pb.y && pa.x < pb.x);
    });
    // Target fill per row: total width over rows, with headroom.
    std::int64_t total_w = 0;
    for (InstId i = 0; i < nl.num_instances(); ++i) total_w += cell_width_nm(nl, i, area);
    const std::int64_t target_fill =
        std::min(row_len, total_w / std::max(1, rows) + area.site_width * 8);

    std::vector<std::vector<InstId>> row_cells(static_cast<std::size_t>(rows));
    {
        int r = 0;
        std::int64_t fill = 0;
        for (const InstId i : by_y) {
            const std::int64_t w = cell_width_nm(nl, i, area);
            if (fill + w > target_fill && r + 1 < rows) {
                ++r;
                fill = 0;
            }
            if (fill + w > row_len) {
                // Row genuinely full (can only happen on the last row).
                res.success = false;
            }
            row_cells[static_cast<std::size_t>(r)].push_back(i);
            fill += w;
        }
    }

    // Pass 2 — in-row placement: cells in x-order take their desired x
    // pushed right as needed; a right-to-left pass then pushes overflow
    // back left. Fits whenever the row's total width does.
    for (int r = 0; r < rows; ++r) {
        auto& cells = row_cells[static_cast<std::size_t>(r)];
        if (cells.empty()) continue;
        std::sort(cells.begin(), cells.end(), [&](InstId a, InstId b) {
            return nl.instance(a).position.x < nl.instance(b).position.x;
        });
        const std::int64_t ry =
            area.die.lo.y + static_cast<std::int64_t>(r) * area.row_height;
        std::vector<std::int64_t> x(cells.size());
        std::int64_t cursor = area.die.lo.x;
        for (std::size_t k = 0; k < cells.size(); ++k) {
            const InstId i = cells[k];
            std::int64_t want = std::max(cursor, nl.instance(i).position.x);
            // Snap to sites.
            want = area.die.lo.x +
                   ((want - area.die.lo.x + area.site_width - 1) / area.site_width) *
                       area.site_width;
            x[k] = want;
            cursor = want + cell_width_nm(nl, i, area);
        }
        // Back-pressure pass.
        std::int64_t limit = area.die.hi.x;
        for (std::size_t k = cells.size(); k-- > 0;) {
            const std::int64_t w = cell_width_nm(nl, cells[k], area);
            std::int64_t xmax = limit - w;
            // Snap down to sites.
            xmax = area.die.lo.x +
                   ((xmax - area.die.lo.x) / area.site_width) * area.site_width;
            if (x[k] > xmax) x[k] = xmax;
            if (x[k] < area.die.lo.x) {
                x[k] = area.die.lo.x;
                res.success = false;  // row truly over capacity
            }
            limit = x[k];
        }
        for (std::size_t k = 0; k < cells.size(); ++k) {
            Instance& inst = nl.instance(cells[k]);
            const double disp =
                static_cast<double>(std::llabs(x[k] - inst.position.x) +
                                    std::llabs(ry - inst.position.y)) *
                1e-3;
            res.total_displacement_um += disp;
            res.max_displacement_um = std::max(res.max_displacement_um, disp);
            inst.position = {x[k], ry};
            inst.placed = true;
        }
    }
    return res;
}

bool is_legal(const Netlist& nl, const PlacementArea& area) {
    // Group by row, check site alignment and overlap.
    std::vector<std::vector<std::pair<std::int64_t, std::int64_t>>> rows(
        static_cast<std::size_t>(area.num_rows));
    for (InstId i = 0; i < nl.num_instances(); ++i) {
        const Instance& inst = nl.instance(i);
        if (!inst.placed) return false;
        if ((inst.position.y - area.die.lo.y) % area.row_height != 0) return false;
        if ((inst.position.x - area.die.lo.x) % area.site_width != 0) return false;
        const auto r =
            static_cast<std::size_t>((inst.position.y - area.die.lo.y) / area.row_height);
        if (r >= rows.size()) return false;
        rows[r].emplace_back(inst.position.x,
                             inst.position.x + cell_width_nm(nl, i, area));
    }
    for (auto& row : rows) {
        std::sort(row.begin(), row.end());
        for (std::size_t i = 1; i < row.size(); ++i) {
            if (row[i].first < row[i - 1].second) return false;
        }
    }
    return true;
}

}  // namespace janus
