#pragma once
/// \file floorplan.hpp
/// Slicing-tree floorplanning with simulated annealing over normalized
/// Polish expressions (Wong-Liu). Blocks are soft: each may realize any
/// of a small set of aspect ratios. Supports the flow's hierarchical
/// planning step and the "automatic floorplan" capability Rossi asks for.

#include <cstdint>
#include <string>
#include <vector>

#include "janus/util/geometry.hpp"
#include "janus/util/rng.hpp"

namespace janus {

/// One floorplan block (a macro or a cluster of standard cells).
struct Block {
    std::string name;
    double area_um2 = 0;
    double min_aspect = 0.5;  ///< height/width lower bound
    double max_aspect = 2.0;
    /// Connectivity: weights to other blocks (by index); used in the
    /// wirelength term of the cost.
    std::vector<std::pair<std::size_t, double>> connections;
};

struct FloorplanOptions {
    double wirelength_weight = 0.1;  ///< lambda in cost = area + lambda * WL
    int aspect_steps = 3;            ///< aspect ratios tried per block
    int moves_per_temperature = 200;
    double initial_temperature = 1.0;
    double cooling = 0.92;
    double final_temperature = 1e-3;
    std::uint64_t seed = 1;
};

struct PlacedBlock {
    Rect rect;  ///< position in nm
};

struct FloorplanResult {
    std::vector<PlacedBlock> blocks;  ///< same order as the input
    Rect bounding_box;
    double area_um2 = 0;        ///< bounding box area
    double utilization = 0;     ///< sum(block areas) / bbox area
    double wirelength_um = 0;   ///< weighted center-to-center HPWL
};

/// Floorplans the blocks; result rectangles do not overlap and respect
/// each block's area at one of its candidate aspect ratios.
FloorplanResult floorplan(const std::vector<Block>& blocks,
                          const FloorplanOptions& opts = {});

}  // namespace janus
