#include "janus/flow/report.hpp"

#include <iomanip>
#include <sstream>

namespace janus {

std::string format_flow_result(const FlowResult& r) {
    std::ostringstream os;
    os << r.design << ": " << r.instances << " inst, area " << std::fixed
       << std::setprecision(1) << r.area_um2 << " um2, HPWL " << r.hpwl_um
       << " um, route " << r.route_wirelength << " (ovfl " << r.route_overflow
       << "), delay " << r.critical_delay_ps << " ps, power "
       << std::setprecision(3) << r.total_power_mw << " mW, "
       << (r.legal ? "legal" : "ILLEGAL") << ", " << std::setprecision(0)
       << r.runtime_ms << " ms";
    return os.str();
}

std::string format_flow_table(const std::vector<FlowResult>& runs) {
    std::ostringstream os;
    os << std::left << std::setw(18) << "design" << std::right << std::setw(9)
       << "inst" << std::setw(12) << "area_um2" << std::setw(11) << "hpwl_um"
       << std::setw(9) << "route" << std::setw(7) << "ovfl" << std::setw(10)
       << "delay_ps" << std::setw(10) << "power_mW" << std::setw(9) << "time_ms"
       << "\n";
    for (const FlowResult& r : runs) {
        os << std::left << std::setw(18) << r.design << std::right << std::fixed
           << std::setw(9) << r.instances << std::setw(12) << std::setprecision(0)
           << r.area_um2 << std::setw(11) << r.hpwl_um << std::setw(9)
           << r.route_wirelength << std::setw(7) << std::setprecision(0)
           << r.route_overflow << std::setw(10) << std::setprecision(1)
           << r.critical_delay_ps << std::setw(10) << std::setprecision(3)
           << r.total_power_mw << std::setw(9) << std::setprecision(0)
           << r.runtime_ms << "\n";
    }
    return os.str();
}

}  // namespace janus
