#include "janus/flow/report.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>

namespace janus {
namespace {

/// Minimal JSON string escaping (stage/design names are plain identifiers,
/// but a custom injected stage may carry anything).
std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace

const StageNote* StageTraceEntry::find_note(std::string_view key) const {
    for (const StageNote& n : notes) {
        if (n.key == key) return &n;
    }
    return nullptr;
}

std::int64_t StageTraceEntry::note_int(std::string_view key,
                                       std::int64_t fallback) const {
    const StageNote* n = find_note(key);
    if (!n) return fallback;
    if (n->kind == StageNote::Kind::Int) return n->int_value;
    if (n->kind == StageNote::Kind::Real) {
        return static_cast<std::int64_t>(n->real_value);
    }
    return fallback;
}

double StageTraceEntry::note_real(std::string_view key, double fallback) const {
    const StageNote* n = find_note(key);
    if (!n) return fallback;
    if (n->kind == StageNote::Kind::Real) return n->real_value;
    if (n->kind == StageNote::Kind::Int) {
        return static_cast<double>(n->int_value);
    }
    return fallback;
}

std::string StageTraceEntry::note_text(std::string_view key,
                                       std::string fallback) const {
    const StageNote* n = find_note(key);
    if (!n || n->kind != StageNote::Kind::Text) return fallback;
    return n->text_value;
}

void StageTrace::add(StageTraceEntry entry) {
    if (!entry.skipped) total_ms += entry.wall_ms;
    peak_instances = std::max(peak_instances, entry.instances);
    entries.push_back(std::move(entry));
}

void StageTrace::note(std::string key, std::string value) {
    StageNote n;
    n.key = std::move(key);
    n.kind = StageNote::Kind::Text;
    n.text_value = std::move(value);
    pending_notes_.push_back(std::move(n));
}

void StageTrace::note(std::string key, const char* value) {
    note(std::move(key), std::string(value));
}

void StageTrace::note_int_impl(std::string key, std::int64_t value) {
    StageNote n;
    n.key = std::move(key);
    n.kind = StageNote::Kind::Int;
    n.int_value = value;
    pending_notes_.push_back(std::move(n));
}

void StageTrace::note_real_impl(std::string key, double value) {
    StageNote n;
    n.key = std::move(key);
    n.kind = StageNote::Kind::Real;
    n.real_value = value;
    pending_notes_.push_back(std::move(n));
}

std::vector<StageNote> StageTrace::take_pending_notes() {
    std::vector<StageNote> out = std::move(pending_notes_);
    pending_notes_.clear();
    return out;
}

std::string format_flow_result(const FlowResult& r) {
    std::ostringstream os;
    os << r.design << ": " << r.instances << " inst, area " << std::fixed
       << std::setprecision(1) << r.area_um2 << " um2, HPWL " << r.hpwl_um
       << " um, route " << r.route_wirelength << " (ovfl " << r.route_overflow
       << "), delay " << r.critical_delay_ps << " ps, power "
       << std::setprecision(3) << r.total_power_mw << " mW, "
       << (r.legal ? "legal" : "ILLEGAL") << ", " << std::setprecision(0)
       << r.runtime_ms << " ms";
    return os.str();
}

std::string format_flow_table(const std::vector<FlowResult>& runs) {
    std::ostringstream os;
    os << std::left << std::setw(18) << "design" << std::right << std::setw(9)
       << "inst" << std::setw(12) << "area_um2" << std::setw(11) << "hpwl_um"
       << std::setw(9) << "route" << std::setw(7) << "ovfl" << std::setw(10)
       << "delay_ps" << std::setw(10) << "power_mW" << std::setw(9) << "time_ms"
       << "\n";
    for (const FlowResult& r : runs) {
        os << std::left << std::setw(18) << r.design << std::right << std::fixed
           << std::setw(9) << r.instances << std::setw(12) << std::setprecision(0)
           << r.area_um2 << std::setw(11) << r.hpwl_um << std::setw(9)
           << r.route_wirelength << std::setw(7) << std::setprecision(0)
           << r.route_overflow << std::setw(10) << std::setprecision(1)
           << r.critical_delay_ps << std::setw(10) << std::setprecision(3)
           << r.total_power_mw << std::setw(9) << std::setprecision(0)
           << r.runtime_ms << "\n";
    }
    return os.str();
}

std::string stage_trace_json(const StageTrace& trace) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(3);
    os << "{\"design\":\"" << json_escape(trace.design) << "\","
       << "\"total_ms\":" << trace.total_ms << ","
       << "\"peak_instances\":" << trace.peak_instances << ","
       << "\"stages\":[";
    for (std::size_t i = 0; i < trace.entries.size(); ++i) {
        const StageTraceEntry& e = trace.entries[i];
        if (i) os << ",";
        os << "{\"stage\":\"" << json_escape(e.stage) << "\","
           << "\"wall_ms\":" << e.wall_ms << ","
           << "\"instances\":" << e.instances << ","
           << "\"cost_before\":" << e.cost_before << ","
           << "\"cost_after\":" << e.cost_after << ",";
        if (!e.notes.empty()) {
            os << "\"detail\":{";
            for (std::size_t n = 0; n < e.notes.size(); ++n) {
                const StageNote& note = e.notes[n];
                if (n) os << ",";
                os << "\"" << json_escape(note.key) << "\":";
                switch (note.kind) {
                    case StageNote::Kind::Int: os << note.int_value; break;
                    case StageNote::Kind::Real: os << note.real_value; break;
                    case StageNote::Kind::Text:
                        os << "\"" << json_escape(note.text_value) << "\"";
                        break;
                }
            }
            os << "},";
        }
        os << "\"skipped\":" << (e.skipped ? "true" : "false") << "}";
    }
    os << "]}";
    return os.str();
}

std::string stage_trace_json(const std::vector<StageTrace>& traces) {
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < traces.size(); ++i) {
        if (i) os << ",";
        os << stage_trace_json(traces[i]);
    }
    os << "]";
    return os.str();
}

}  // namespace janus
