#pragma once
/// \file hier.hpp
/// Partition-driven hierarchical flow: the megascale path (docs/MEGASCALE.md)
/// for designs too large to push through one flat place/route. A flat
/// netlist is min-cut partitioned into K blocks, each block is implemented
/// independently through the existing staged flow (FlowEngine::run_batch,
/// which carries the deterministic-workers contract: results are
/// byte-identical for any worker count), the implemented blocks are
/// stitched back together — boundary nets reconnected by name, block
/// placements offset into a floorplan grid — and top-level STA runs on the
/// merged result.
///
/// Contract details:
///  - Partitioning is serial and depends only on the netlist and
///    HierParams, never on worker count.
///  - Block interfaces are name-carried: a cut net becomes a primary output
///    of its driving block and a primary input of every reading block,
///    under the flat design's net name. Synthesis inside a block may
///    restructure freely — the flow preserves PI/PO names — so the stitch
///    is a pure name join.
///  - The merged netlist is validated; any dangling boundary is an error.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "janus/flow/flow_engine.hpp"

namespace janus {

struct HierParams {
    /// Number of partitions (K). Values < 2 run the flat flow unchanged.
    int num_blocks = 4;
    /// FM-style boundary refinement sweeps after the initial partition.
    int refine_passes = 6;
    /// Allowed block-size imbalance: a move is rejected when it would push
    /// a block above (1 + balance_slack) * average size.
    double balance_slack = 0.10;
    /// Per-block flow knobs (seed, utilization, stage mask, parallelism).
    /// Each block job gets a copy with the same seed — determinism comes
    /// from the per-job seeding, not from job isolation tricks.
    FlowParams block_flow;
    /// Worker threads for the block batch (FlowEngine::run_batch).
    int workers = 1;
    /// Spacing between adjacent block placements in the merged floorplan,
    /// as a fraction of the widest block dimension.
    double floorplan_margin = 0.05;
};

/// Result of min-cut partitioning: block id per instance plus cut metrics.
struct HierPartition {
    std::vector<int> block_of;   ///< indexed by InstId, values in [0, K)
    std::size_t cut_nets = 0;    ///< nets whose pins span >1 block
    std::size_t num_blocks = 0;
    std::vector<std::size_t> block_sizes;
};

/// Deterministic K-way min-cut partitioning: contiguous id-order seeding
/// (creation order is locality order for generated and ingested designs)
/// followed by `refine_passes` greedy boundary sweeps that move an instance
/// to its best-connected block when that strictly reduces the cut and
/// keeps block sizes within the slack.
HierPartition partition_min_cut(const Netlist& nl, int num_blocks,
                                int refine_passes = 6,
                                double balance_slack = 0.10);

/// One implemented block plus where the stitcher put it.
struct HierBlockResult {
    FlowResult flow;     ///< per-block QoR (place/route/STA of the block)
    Rect placement;      ///< region assigned in the merged floorplan (nm)
};

struct HierFlowResult {
    /// Top-level QoR: merged instance/area/HPWL counts and the top STA
    /// numbers (critical delay, WNS/TNS) over the stitched netlist.
    FlowResult top;
    std::vector<HierBlockResult> blocks;
    std::size_t cut_nets = 0;           ///< partition cut size
    std::size_t stitched_nets = 0;      ///< boundary nets joined by name
    /// The stitched, placed top netlist (shared so callers can run further
    /// analyses without a copy).
    std::shared_ptr<Netlist> merged;
};

/// Runs the partition → per-block flow → stitch → top STA pipeline.
/// Byte-identical for any HierParams::workers value.
HierFlowResult run_hier_flow(const Netlist& nl, const TechnologyNode& node,
                             const HierParams& params);

}  // namespace janus
