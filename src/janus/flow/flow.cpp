#include "janus/flow/flow.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "janus/dft/scan.hpp"
#include "janus/logic/aig.hpp"
#include "janus/logic/aig_rewrite.hpp"
#include "janus/logic/tech_map.hpp"
#include "janus/place/analytic_place.hpp"
#include "janus/place/legalize.hpp"
#include "janus/place/sa_place.hpp"
#include "janus/power/power_model.hpp"
#include "janus/route/clock_tree.hpp"
#include "janus/route/global_router.hpp"
#include "janus/timing/sizing.hpp"
#include "janus/timing/sta.hpp"

namespace janus {

double FlowResult::cost() const {
    // Normalized weighted sum; overflow and illegality are heavily
    // penalized so the tuner treats them as failures.
    double c = area_um2 * 1e-3 + hpwl_um * 1e-3 +
               static_cast<double>(route_wirelength) * 1e-3 +
               critical_delay_ps * 1e-2 + total_power_mw;
    if (wns_ps < 0) c += -wns_ps * 0.1;
    c += route_overflow * 10.0;
    if (!legal) c *= 10.0;
    return c;
}

FlowResult run_flow(const Netlist& input, const TechnologyNode& node,
                    const FlowParams& params, Netlist* out) {
    const auto t0 = std::chrono::steady_clock::now();
    FlowResult r;
    r.design = input.name();

    // --- synthesis: combinational designs go through AIG optimization;
    // sequential designs are kept structurally (register boundaries are
    // not re-synthesized in this release).
    Netlist mapped = input;
    if (input.sequential_instances().empty()) {
        Aig aig = Aig::from_netlist(input);
        aig = optimize(aig, params.optimize_rounds);
        mapped = tech_map(aig, input.library_ptr());
    }

    // --- DFT (before placement so scan flops exist in the layout).
    ScanInsertion scan;
    if (params.insert_scan && !mapped.sequential_instances().empty()) {
        scan = insert_scan(mapped, params.scan_chains);
    }

    // --- placement.
    const PlacementArea area =
        make_placement_area(mapped, node, params.utilization);
    AnalyticPlaceOptions popts;
    popts.solver_iterations = params.placer_iterations;
    popts.seed = params.seed;
    analytic_place(mapped, area, popts);
    const LegalizeResult lg = legalize(mapped, area);
    if (params.sa_moves_per_cell > 0) {
        SaPlaceOptions sopts;
        sopts.moves_per_cell = params.sa_moves_per_cell;
        sopts.seed = params.seed;
        sa_refine(mapped, area, sopts);
    }
    r.legal = lg.success && is_legal(mapped, area);
    r.hpwl_um = total_hpwl_um(mapped, area);

    // --- scan reorder now that placement exists.
    if (params.insert_scan && !scan.chains.empty()) {
        const ReorderResult rr = reorder_scan(mapped, scan);
        r.scan_wirelength_um = rr.after_um;
    }

    // --- routing. GCell grid and per-layer capacity derive from the die
    // geometry and metal pitch so congestion is physical, not arbitrary.
    GlobalRouteOptions ropts;
    ropts.max_iterations = params.router_iterations;
    ropts.routing_layers = params.routing_layers;
    ropts.gcells_x = ropts.gcells_y =
        std::max(24, static_cast<int>(area.die.width() / 3000));
    const double gcell_nm =
        static_cast<double>(area.die.width()) / ropts.gcells_x;
    ropts.capacity_per_layer = 0.65 * gcell_nm / node.metal_pitch_nm;
    const GlobalRouteResult gr = route_design(mapped, area, ropts);
    r.route_wirelength = gr.total_wirelength;
    r.route_overflow = gr.total_overflow;

    // --- clock tree (skew/wirelength feed the QoR record).
    if (params.build_clock && !mapped.sequential_instances().empty()) {
        const ClockTree ct = build_clock_tree(mapped);
        r.clock_skew_ps = ct.skew_ps();
        r.clock_wirelength_um = ct.total_wirelength_um;
    }

    // --- post-route optimization.
    StaOptions sta_opts;
    sta_opts.wire = WireModel::for_node(node);
    if (params.size_timing) {
        SizingOptions sopts;
        sopts.sta = sta_opts;
        r.cells_resized = size_for_timing(mapped, sopts).cells_resized;
    }

    // --- signoff.
    const TimingReport tr = run_sta(mapped, sta_opts);
    r.critical_delay_ps = tr.critical_delay_ps;
    r.wns_ps = tr.wns_ps;
    PowerOptions popts2;
    popts2.wire = sta_opts.wire;
    const PowerReport pr = estimate_power(mapped, node, popts2);
    r.total_power_mw = pr.total_mw();

    r.instances = mapped.num_instances();
    r.area_um2 = mapped.total_area();
    r.runtime_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    if (out) *out = std::move(mapped);
    return r;
}

}  // namespace janus
