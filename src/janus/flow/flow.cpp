#include "janus/flow/flow.hpp"

#include <sstream>

#include "janus/flow/flow_engine.hpp"

namespace janus {

std::string FlowParams::check() const {
    std::ostringstream err;
    if (utilization <= 0.0 || utilization > 1.0) {
        err << "utilization must be in (0, 1], got " << utilization;
    } else if (optimize_rounds < 0) {
        err << "optimize_rounds must be >= 0, got " << optimize_rounds;
    } else if (opt_workers <= 0) {
        err << "opt_workers must be > 0 (1 = serial), got " << opt_workers;
    } else if (placer_iterations <= 0) {
        err << "placer_iterations must be > 0, got " << placer_iterations;
    } else if (sa_moves_per_cell < 0) {
        err << "sa_moves_per_cell must be >= 0 (0 disables), got "
            << sa_moves_per_cell;
    } else if (place_workers <= 0) {
        err << "place_workers must be > 0 (1 = serial), got " << place_workers;
    } else if (router_iterations <= 0) {
        err << "router_iterations must be > 0, got " << router_iterations;
    } else if (routing_layers <= 0) {
        err << "routing_layers must be > 0, got " << routing_layers;
    } else if (route_workers <= 0) {
        err << "route_workers must be > 0 (1 = serial), got " << route_workers;
    } else if (sta_workers <= 0) {
        err << "sta_workers must be > 0 (1 = serial), got " << sta_workers;
    } else if (scan_chains <= 0 && enabled(FlowStageMask::Scan)) {
        err << "scan_chains must be > 0 when scan is enabled, got "
            << scan_chains;
    } else if ((static_cast<std::uint32_t>(stages) &
                ~static_cast<std::uint32_t>(FlowStageMask::All)) != 0) {
        err << "stages mask has unknown bits set";
    }
    return err.str();
}

double FlowResult::cost() const {
    // Normalized weighted sum; overflow and illegality are heavily
    // penalized so the tuner treats them as failures.
    double c = area_um2 * 1e-3 + hpwl_um * 1e-3 +
               static_cast<double>(route_wirelength) * 1e-3 +
               critical_delay_ps * 1e-2 + total_power_mw;
    if (wns_ps < 0) c += -wns_ps * 0.1;
    c += route_overflow * 10.0;
    if (!legal) c *= 10.0;
    return c;
}

FlowResult run_flow(const Netlist& input, const TechnologyNode& node,
                    const FlowParams& params) {
    FlowContext ctx(input, node, params);
    return FlowEngine().run(ctx);
}

}  // namespace janus
