#include "janus/flow/flow.hpp"

#include <sstream>

#include "janus/flow/flow_engine.hpp"

namespace janus {

std::string ParallelismConfig::check() const {
    std::ostringstream err;
    if (workers <= 0) {
        err << "parallel.workers must be > 0 (1 = serial), got " << workers;
    } else if (optimize < 0) {
        err << "parallel.optimize must be >= 0 (0 inherits workers), got "
            << optimize;
    } else if (place < 0) {
        err << "parallel.place must be >= 0 (0 inherits workers), got "
            << place;
    } else if (route < 0) {
        err << "parallel.route must be >= 0 (0 inherits workers), got "
            << route;
    } else if (sta < 0) {
        err << "parallel.sta must be >= 0 (0 inherits workers), got " << sta;
    } else if (place_regions < 0) {
        err << "parallel.place_regions must be >= 0 (0 auto-sizes), got "
            << place_regions;
    } else if (route_panels < 0) {
        err << "parallel.route_panels must be >= 0 (0 auto-sizes), got "
            << route_panels;
    }
    return err.str();
}

std::string FlowParams::check() {
    // Fold the deprecated per-stage worker aliases into `parallel` first
    // (idempotent: folded aliases reset to 0). A negative alias is reported
    // under its legacy name so old callers get a recognizable message; an
    // explicitly-set new-style override wins over the alias.
    std::ostringstream err;
    const auto fold = [&err](int& alias, int& target, const char* name) {
        if (alias < 0) {
            err << name << " (deprecated) must be >= 0, got " << alias;
            return;
        }
        if (alias > 0 && target == 0) target = alias;
        alias = 0;
    };
    fold(opt_workers, parallel.optimize, "opt_workers");
    fold(place_workers, parallel.place, "place_workers");
    fold(route_workers, parallel.route, "route_workers");
    fold(sta_workers, parallel.sta, "sta_workers");
    if (!err.str().empty()) return err.str();

    const std::string perr = parallel.check();
    if (!perr.empty()) return perr;

    if (utilization <= 0.0 || utilization > 1.0) {
        err << "utilization must be in (0, 1], got " << utilization;
    } else if (optimize_rounds < 0) {
        err << "optimize_rounds must be >= 0, got " << optimize_rounds;
    } else if (placer_iterations <= 0) {
        err << "placer_iterations must be > 0, got " << placer_iterations;
    } else if (sa_moves_per_cell < 0) {
        err << "sa_moves_per_cell must be >= 0 (0 disables), got "
            << sa_moves_per_cell;
    } else if (router_iterations <= 0) {
        err << "router_iterations must be > 0, got " << router_iterations;
    } else if (routing_layers <= 0) {
        err << "routing_layers must be > 0, got " << routing_layers;
    } else if (scan_chains <= 0 && enabled(FlowStageMask::Scan)) {
        err << "scan_chains must be > 0 when scan is enabled, got "
            << scan_chains;
    } else if ((static_cast<std::uint32_t>(stages) &
                ~static_cast<std::uint32_t>(FlowStageMask::All)) != 0) {
        err << "stages mask has unknown bits set";
    }
    return err.str();
}

double FlowResult::cost() const {
    // Normalized weighted sum; overflow and illegality are heavily
    // penalized so the tuner treats them as failures.
    double c = area_um2 * 1e-3 + hpwl_um * 1e-3 +
               static_cast<double>(route_wirelength) * 1e-3 +
               critical_delay_ps * 1e-2 + total_power_mw;
    if (wns_ps < 0) c += -wns_ps * 0.1;
    c += route_overflow * 10.0;
    if (!legal) c *= 10.0;
    return c;
}

FlowResult run_flow(const Netlist& input, const TechnologyNode& node,
                    const FlowParams& params) {
    FlowContext ctx(input, node, params);
    return FlowEngine().run(ctx);
}

}  // namespace janus
