#pragma once
/// \file flow_engine.hpp
/// The staged flow engine: run_flow()'s old 127-line monolith decomposed
/// into named, observable stages over a shared FlowContext. Callers can run
/// the whole pipeline, run up to a stage and resume later, skip stages, or
/// inject custom ones; run_batch() executes independent designs/configs
/// concurrently on a fixed thread pool with bit-identical-to-serial
/// results (E5: flow throughput is a farm property, not a single-run one).
///
/// Pipeline (in order):
///   optimize -> map -> scan_insert -> place -> legalize -> sa_refine
///   -> scan_reorder -> route -> cts -> sizing -> sta -> power
/// Stage applicability is data- and mask-driven (e.g. `optimize`/`map` run
/// only for combinational designs, `scan_insert` only with
/// FlowStageMask::Scan); inapplicable stages are recorded as skipped in
/// the StageTrace rather than silently vanishing.

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "janus/dft/scan.hpp"
#include "janus/flow/flow.hpp"
#include "janus/flow/report.hpp"
#include "janus/netlist/netlist.hpp"
#include "janus/netlist/technology.hpp"
#include "janus/place/analytic_place.hpp"

namespace janus {

class Aig;
class FlowScheduler;

/// All state one flow run threads through its stages. The input netlist is
/// copied in (the caller's object is never touched — the old run_flow
/// "consumes the input" ambiguity is gone) and mutated stage by stage;
/// QoR lands in `result`, per-stage observations in `trace`.
struct FlowContext {
    /// Validates `params` (throws std::invalid_argument on check() failure)
    /// and takes ownership of a working copy of the design.
    FlowContext(Netlist input, TechnologyNode technology, FlowParams p);
    ~FlowContext();
    FlowContext(FlowContext&&) noexcept;
    FlowContext& operator=(FlowContext&&) noexcept;

    Netlist netlist;  ///< working copy, rewritten by map/scan/place stages
    TechnologyNode node;
    FlowParams params;
    FlowResult result;
    StageTrace trace;

    // --- intermediates handed from stage to stage --------------------------
    std::unique_ptr<Aig> aig;  ///< between optimize and map (combinational)
    PlacementArea area;        ///< set by place; used by legalize/route
    bool placed = false;
    ScanInsertion scan;        ///< set by scan_insert; used by scan_reorder

    /// Index of the next stage the engine will execute; FlowEngine::run
    /// advances it, so a context returned from run_to() resumes where it
    /// stopped.
    std::size_t next_stage = 0;

    // Stages record typed observations with `trace.note(key, value)`
    // (report.hpp); the engine attaches pending notes to the stage's
    // StageTraceEntry at the stage boundary. The old free-form
    // `stage_note` string is gone.

    /// Marks a stage (by name) to be skipped when reached.
    void skip(std::string stage_name);
    bool is_skipped(std::string_view stage_name) const;

  private:
    std::vector<std::string> skipped_;
};

/// One named pipeline stage. `run` mutates the context; `applies` (null =
/// always) reports whether the stage has work for this context — used so
/// traces distinguish "ran" from "not applicable".
struct FlowStage {
    std::string name;
    std::function<void(FlowContext&)> run;
    std::function<bool(const FlowContext&)> applies;
};

/// One independent unit of batch work: a design + node + configuration.
struct FlowJob {
    Netlist netlist;
    TechnologyNode node;
    FlowParams params;
    /// Stage names marked skipped in the job's context before it runs.
    /// The hierarchical flow uses this to pin its blocks to place/route
    /// only ("optimize"/"map"): the flat design was synthesized once, and
    /// re-synthesizing a block would restructure logic the stitcher must
    /// carry back verbatim.
    std::vector<std::string> skip_stages;
};

class FlowEngine {
  public:
    /// Builds the default pipeline (see file comment for stage order).
    FlowEngine();

    const std::vector<FlowStage>& stages() const { return stages_; }
    /// Index of a stage by name; throws std::out_of_range when unknown.
    std::size_t stage_index(std::string_view name) const;
    /// Injects a custom stage before position `pos` (end() when pos ==
    /// stages().size()). Throws std::out_of_range past the end.
    void insert_stage(std::size_t pos, FlowStage stage);
    void append_stage(FlowStage stage);

    /// Runs every remaining stage (from ctx.next_stage) and finalizes the
    /// QoR record; acts as "resume" on a partially-run context. Populates
    /// FlowResult::mapped when the last stage completes.
    FlowResult run(FlowContext& ctx) const;

    /// Runs remaining stages up to and including `last_stage`, leaving the
    /// context resumable. The returned (partial) QoR record is finalized
    /// for the stages that have run.
    FlowResult run_to(FlowContext& ctx, std::string_view last_stage) const;

    /// Executes independent jobs on `workers` threads and returns results
    /// in job order. Bit-identical to a serial run: jobs share no mutable
    /// state and every stochastic stage is seeded from its own params, so
    /// scheduling cannot leak into QoR. Per-run stage traces are returned
    /// through `traces` (job order) when non-null.
    ///
    /// Thin wrapper over FlowScheduler (janus/server/scheduler.hpp): every
    /// job is submitted as a JobHandle and waited for in order. A job that
    /// throws (bad params, a failing stage) surfaces as a failed FlowResult
    /// with `error` populated — sibling jobs run to completion and the pool
    /// is drained normally, never poisoned.
    std::vector<FlowResult> run_batch(const std::vector<FlowJob>& jobs,
                                      int workers,
                                      std::vector<StageTrace>* traces = nullptr) const;

  private:
    friend class FlowScheduler;  ///< runs jobs via run_until without copies
    FlowResult run_until(FlowContext& ctx, std::size_t end_stage) const;

    std::vector<FlowStage> stages_;
};

}  // namespace janus
