#include "janus/flow/tuner.hpp"

#include <algorithm>
#include <limits>

#include "janus/util/rng.hpp"
#include "janus/util/thread_pool.hpp"

namespace janus {
namespace {

/// Classic strictly-sequential epsilon-greedy over one shared RNG stream.
/// Kept verbatim so existing seeds reproduce their historical trajectories.
void tune_serial(const std::vector<TunerArm>& arms,
                 const std::function<double(const FlowParams&, int)>& evaluate,
                 const TunerOptions& opts, TunerResult& res) {
    Rng rng(opts.seed);
    for (int run = 0; run < opts.runs; ++run) {
        std::size_t arm;
        // Every arm gets one warm-up pull; afterwards epsilon-greedy.
        const auto cold =
            std::find(res.pulls.begin(), res.pulls.end(), 0);
        if (cold != res.pulls.end()) {
            arm = static_cast<std::size_t>(cold - res.pulls.begin());
        } else if (rng.next_bool(opts.epsilon)) {
            arm = rng.pick_index(arms.size());
        } else {
            arm = 0;
            for (std::size_t a = 1; a < arms.size(); ++a) {
                if (res.mean_cost[a] < res.mean_cost[arm]) arm = a;
            }
        }
        const double cost = evaluate(arms[arm].params, run);
        // Incremental mean update.
        ++res.pulls[arm];
        res.mean_cost[arm] +=
            (cost - res.mean_cost[arm]) / static_cast<double>(res.pulls[arm]);
        res.history.push_back(TunerRun{arm, cost});
    }
}

/// Wave-scheduled epsilon-greedy: decisions for a whole wave are made from
/// the statistics frozen at wave start, each run drawing from its own
/// Rng(mix_seed(seed, run)). Decisions therefore never depend on how many
/// workers evaluate the wave — workers=N is bit-identical to workers=1
/// with the same wave size.
void tune_waves(const std::vector<TunerArm>& arms,
                const std::function<double(const FlowParams&, int)>& evaluate,
                const TunerOptions& opts, TunerResult& res) {
    const int wave =
        std::max(1, opts.wave > 0 ? opts.wave : opts.workers);
    ThreadPool pool(opts.workers);
    for (int start = 0; start < opts.runs; start += wave) {
        const int count = std::min(wave, opts.runs - start);
        // Decide every arm of the wave up front. Warm-up pulls are tracked
        // in a scheduled-pulls snapshot so each cold arm is claimed once
        // per wave, exactly as a serial scheduler would hand them out.
        std::vector<int> scheduled = res.pulls;
        std::vector<std::size_t> chosen(static_cast<std::size_t>(count));
        for (int k = 0; k < count; ++k) {
            std::size_t arm;
            const auto cold =
                std::find(scheduled.begin(), scheduled.end(), 0);
            if (cold != scheduled.end()) {
                arm = static_cast<std::size_t>(cold - scheduled.begin());
            } else {
                Rng rng(mix_seed(opts.seed,
                                 static_cast<std::uint64_t>(start + k)));
                if (rng.next_bool(opts.epsilon)) {
                    arm = rng.pick_index(arms.size());
                } else {
                    // Exploit the best mean among arms pulled before this
                    // wave (means frozen at wave start).
                    arm = 0;
                    double best = std::numeric_limits<double>::infinity();
                    for (std::size_t a = 0; a < arms.size(); ++a) {
                        if (res.pulls[a] > 0 && res.mean_cost[a] < best) {
                            best = res.mean_cost[a];
                            arm = a;
                        }
                    }
                }
            }
            ++scheduled[arm];
            chosen[static_cast<std::size_t>(k)] = arm;
        }
        std::vector<double> costs(static_cast<std::size_t>(count));
        pool.for_each_index(costs.size(), [&](std::size_t k) {
            costs[k] = evaluate(arms[chosen[k]].params,
                                start + static_cast<int>(k));
        });
        // Merge in run order so statistics are scheduling-independent.
        for (std::size_t k = 0; k < costs.size(); ++k) {
            const std::size_t arm = chosen[k];
            ++res.pulls[arm];
            res.mean_cost[arm] += (costs[k] - res.mean_cost[arm]) /
                                  static_cast<double>(res.pulls[arm]);
            res.history.push_back(TunerRun{arm, costs[k]});
        }
    }
}

}  // namespace

TunerResult tune(const std::vector<TunerArm>& arms,
                 const std::function<double(const FlowParams&, int run_index)>& evaluate,
                 const TunerOptions& opts) {
    TunerResult res;
    if (arms.empty()) return res;
    res.mean_cost.assign(arms.size(), 0.0);
    res.pulls.assign(arms.size(), 0);

    if (opts.workers <= 1 && opts.wave <= 1) {
        tune_serial(arms, evaluate, opts, res);
    } else {
        tune_waves(arms, evaluate, opts, res);
    }

    res.best_arm = 0;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t a = 0; a < arms.size(); ++a) {
        if (res.pulls[a] > 0 && res.mean_cost[a] < best) {
            best = res.mean_cost[a];
            res.best_arm = a;
        }
    }
    res.best_mean_cost = best;
    return res;
}

std::vector<TunerArm> default_arms() {
    std::vector<TunerArm> arms;
    const auto add = [&](std::string name, auto&& mod) {
        TunerArm arm;
        arm.name = std::move(name);
        mod(arm.params);
        arms.push_back(std::move(arm));
    };
    add("fast", [](FlowParams& p) {
        p.optimize_rounds = 1;
        p.placer_iterations = 60;
        p.router_iterations = 3;
    });
    add("balanced", [](FlowParams& p) {
        p.optimize_rounds = 3;
        p.placer_iterations = 250;
        p.router_iterations = 8;
    });
    add("thorough", [](FlowParams& p) {
        p.optimize_rounds = 5;
        p.placer_iterations = 500;
        p.sa_moves_per_cell = 20;
        p.router_iterations = 16;
    });
    add("dense", [](FlowParams& p) {
        p.utilization = 0.85;  // aggressive area at congestion risk
        p.placer_iterations = 250;
    });
    add("sparse", [](FlowParams& p) {
        p.utilization = 0.45;  // easy routing, wasted silicon
        p.placer_iterations = 250;
    });
    return arms;
}

}  // namespace janus
