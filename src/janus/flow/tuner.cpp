#include "janus/flow/tuner.hpp"

#include <algorithm>
#include <limits>

#include "janus/util/rng.hpp"

namespace janus {

TunerResult tune(const std::vector<TunerArm>& arms,
                 const std::function<double(const FlowParams&, int run_index)>& evaluate,
                 const TunerOptions& opts) {
    TunerResult res;
    if (arms.empty()) return res;
    Rng rng(opts.seed);
    res.mean_cost.assign(arms.size(), 0.0);
    res.pulls.assign(arms.size(), 0);

    for (int run = 0; run < opts.runs; ++run) {
        std::size_t arm;
        // Every arm gets one warm-up pull; afterwards epsilon-greedy.
        const auto cold =
            std::find(res.pulls.begin(), res.pulls.end(), 0);
        if (cold != res.pulls.end()) {
            arm = static_cast<std::size_t>(cold - res.pulls.begin());
        } else if (rng.next_bool(opts.epsilon)) {
            arm = rng.pick_index(arms.size());
        } else {
            arm = 0;
            for (std::size_t a = 1; a < arms.size(); ++a) {
                if (res.mean_cost[a] < res.mean_cost[arm]) arm = a;
            }
        }
        const double cost = evaluate(arms[arm].params, run);
        // Incremental mean update.
        ++res.pulls[arm];
        res.mean_cost[arm] +=
            (cost - res.mean_cost[arm]) / static_cast<double>(res.pulls[arm]);
        res.history.push_back(TunerRun{arm, cost});
    }

    res.best_arm = 0;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t a = 0; a < arms.size(); ++a) {
        if (res.pulls[a] > 0 && res.mean_cost[a] < best) {
            best = res.mean_cost[a];
            res.best_arm = a;
        }
    }
    res.best_mean_cost = best;
    return res;
}

std::vector<TunerArm> default_arms() {
    std::vector<TunerArm> arms;
    const auto add = [&](std::string name, auto&& mod) {
        TunerArm arm;
        arm.name = std::move(name);
        mod(arm.params);
        arms.push_back(std::move(arm));
    };
    add("fast", [](FlowParams& p) {
        p.optimize_rounds = 1;
        p.placer_iterations = 60;
        p.router_iterations = 3;
    });
    add("balanced", [](FlowParams& p) {
        p.optimize_rounds = 3;
        p.placer_iterations = 250;
        p.router_iterations = 8;
    });
    add("thorough", [](FlowParams& p) {
        p.optimize_rounds = 5;
        p.placer_iterations = 500;
        p.sa_moves_per_cell = 20;
        p.router_iterations = 16;
    });
    add("dense", [](FlowParams& p) {
        p.utilization = 0.85;  // aggressive area at congestion risk
        p.placer_iterations = 250;
    });
    add("sparse", [](FlowParams& p) {
        p.utilization = 0.45;  // easy routing, wasted silicon
        p.placer_iterations = 250;
    });
    return arms;
}

}  // namespace janus
