#pragma once
/// \file report.hpp
/// Human-readable QoR reporting for flow runs, plus the per-stage trace
/// recorder the flow engine fills in (wall time, instance counts, QoR cost
/// deltas, typed stage notes) and its JSON serialization for the bench
/// harness and the flow server.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "janus/flow/flow.hpp"

namespace janus {

/// One typed key/value observation a stage leaves in its trace entry
/// (e.g. the route stage's "batches" = 12). Replaces the packed free-form
/// `stage_note` string: notes serialize as structured JSON fields, so the
/// bench harness and the flow server read them without string parsing.
struct StageNote {
    enum class Kind : std::uint8_t { Int, Real, Text };
    std::string key;
    Kind kind = Kind::Int;
    std::int64_t int_value = 0;
    double real_value = 0;
    std::string text_value;
};

/// Observation of one pipeline stage within one flow run.
struct StageTraceEntry {
    std::string stage;
    double wall_ms = 0;
    std::size_t instances = 0;  ///< netlist size after the stage ran
    /// FlowResult::cost() sampled at the stage boundary: the engine's
    /// scalar QoR figure, so cost_after - cost_before is the stage's
    /// QoR delta as metrics accumulate through the pipeline.
    double cost_before = 0;
    double cost_after = 0;
    /// Typed stage-specific observations in insertion order (e.g. the
    /// route stage's batches/conflicts/workers); empty for most stages.
    std::vector<StageNote> notes;
    bool skipped = false;  ///< disabled by mask, inapplicable, or ctx.skip()

    /// Note lookup by key; nullptr when absent.
    const StageNote* find_note(std::string_view key) const;
    /// Typed accessors with a fallback for absent/mistyped keys. note_int
    /// and note_real convert between the numeric kinds.
    std::int64_t note_int(std::string_view key, std::int64_t fallback = 0) const;
    double note_real(std::string_view key, double fallback = 0) const;
    std::string note_text(std::string_view key,
                          std::string fallback = "") const;
};

/// Per-run stage trace: what ran, how long it took, and what it did to QoR.
struct StageTrace {
    std::string design;
    std::vector<StageTraceEntry> entries;
    double total_ms = 0;            ///< sum of executed stage wall times
    std::size_t peak_instances = 0; ///< max netlist size seen at any boundary

    /// Appends an entry and folds it into the totals.
    void add(StageTraceEntry entry);

    /// Typed key/value API for the stage currently executing: a stage
    /// records observations with note() and the engine attaches everything
    /// pending to that stage's entry at the stage boundary. Keys repeat the
    /// insertion order in the serialized JSON. Integral values (int,
    /// size_t, ...) store as Int, floating-point as Real, strings as Text.
    template <typename T,
              std::enable_if_t<std::is_integral_v<std::decay_t<T>>, int> = 0>
    void note(std::string key, T value) {
        note_int_impl(std::move(key), static_cast<std::int64_t>(value));
    }
    template <typename T, std::enable_if_t<
                              std::is_floating_point_v<std::decay_t<T>>, int> = 0>
    void note(std::string key, T value) {
        note_real_impl(std::move(key), static_cast<double>(value));
    }
    void note(std::string key, std::string value);
    void note(std::string key, const char* value);

    /// Moves the pending notes out (engine-internal; called at the stage
    /// boundary). Leaves the pending buffer empty.
    std::vector<StageNote> take_pending_notes();

  private:
    void note_int_impl(std::string key, std::int64_t value);
    void note_real_impl(std::string key, double value);

    std::vector<StageNote> pending_notes_;
};

/// One-line QoR summary.
std::string format_flow_result(const FlowResult& r);

/// Multi-run comparison table (fixed-width columns).
std::string format_flow_table(const std::vector<FlowResult>& runs);

/// JSON object for one trace / JSON array for a batch of traces. Stable
/// key order so bench output diffs cleanly across runs. Stage notes land
/// as a structured `"detail": {"batches": 12, ...}` object.
std::string stage_trace_json(const StageTrace& trace);
std::string stage_trace_json(const std::vector<StageTrace>& traces);

}  // namespace janus
