#pragma once
/// \file report.hpp
/// Human-readable QoR reporting for flow runs.

#include <string>
#include <vector>

#include "janus/flow/flow.hpp"

namespace janus {

/// One-line QoR summary.
std::string format_flow_result(const FlowResult& r);

/// Multi-run comparison table (fixed-width columns).
std::string format_flow_table(const std::vector<FlowResult>& runs);

}  // namespace janus
