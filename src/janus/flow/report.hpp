#pragma once
/// \file report.hpp
/// Human-readable QoR reporting for flow runs, plus the per-stage trace
/// recorder the flow engine fills in (wall time, instance counts, QoR cost
/// deltas) and its JSON serialization for the bench harness.

#include <cstddef>
#include <string>
#include <vector>

#include "janus/flow/flow.hpp"

namespace janus {

/// Observation of one pipeline stage within one flow run.
struct StageTraceEntry {
    std::string stage;
    double wall_ms = 0;
    std::size_t instances = 0;  ///< netlist size after the stage ran
    /// FlowResult::cost() sampled at the stage boundary: the engine's
    /// scalar QoR figure, so cost_after - cost_before is the stage's
    /// QoR delta as metrics accumulate through the pipeline.
    double cost_before = 0;
    double cost_after = 0;
    /// Optional stage-specific note (e.g. the route stage's reroute
    /// "batches=N conflicts=M workers=K"); empty for most stages.
    std::string detail;
    bool skipped = false;  ///< disabled by mask, inapplicable, or ctx.skip()
};

/// Per-run stage trace: what ran, how long it took, and what it did to QoR.
struct StageTrace {
    std::string design;
    std::vector<StageTraceEntry> entries;
    double total_ms = 0;            ///< sum of executed stage wall times
    std::size_t peak_instances = 0; ///< max netlist size seen at any boundary

    /// Appends an entry and folds it into the totals.
    void add(StageTraceEntry entry);
};

/// One-line QoR summary.
std::string format_flow_result(const FlowResult& r);

/// Multi-run comparison table (fixed-width columns).
std::string format_flow_table(const std::vector<FlowResult>& runs);

/// JSON object for one trace / JSON array for a batch of traces. Stable
/// key order so bench output diffs cleanly across runs.
std::string stage_trace_json(const StageTrace& trace);
std::string stage_trace_json(const std::vector<StageTrace>& traces);

}  // namespace janus
