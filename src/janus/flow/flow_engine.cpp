#include "janus/flow/flow_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "janus/dft/scan.hpp"
#include "janus/logic/aig.hpp"
#include "janus/logic/aig_rewrite.hpp"
#include "janus/logic/tech_map.hpp"
#include "janus/place/legalize.hpp"
#include "janus/place/sa_place.hpp"
#include "janus/power/power_model.hpp"
#include "janus/route/clock_tree.hpp"
#include "janus/route/global_router.hpp"
#include "janus/server/scheduler.hpp"
#include "janus/timing/sizing.hpp"
#include "janus/timing/sta.hpp"
#include "janus/timing/timing_graph.hpp"
#include "janus/util/log.hpp"
#include "janus/util/thread_pool.hpp"

namespace janus {
namespace {

double elapsed_ms(std::chrono::steady_clock::time_point since) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - since)
        .count();
}

bool is_sequential(const FlowContext& ctx) {
    return !ctx.netlist.sequential_instances().empty();
}

StaOptions make_sta_options(const FlowContext& ctx) {
    StaOptions opts;
    opts.wire = WireModel::for_node(ctx.node);
    opts.sta_workers = ctx.params.parallel.sta_workers();
    return opts;
}

}  // namespace

// --------------------------------------------------------------- context

FlowContext::FlowContext(Netlist input, TechnologyNode technology,
                         FlowParams p)
    : netlist(std::move(input)), node(technology), params(p) {
    const std::string err = params.check();
    if (!err.empty()) throw std::invalid_argument("FlowParams: " + err);
    result.design = netlist.name();
    trace.design = netlist.name();
}

FlowContext::~FlowContext() = default;
FlowContext::FlowContext(FlowContext&&) noexcept = default;
FlowContext& FlowContext::operator=(FlowContext&&) noexcept = default;

void FlowContext::skip(std::string stage_name) {
    skipped_.push_back(std::move(stage_name));
}

bool FlowContext::is_skipped(std::string_view stage_name) const {
    return std::find(skipped_.begin(), skipped_.end(), stage_name) !=
           skipped_.end();
}

// ---------------------------------------------------------------- engine

FlowEngine::FlowEngine() {
    const auto add = [this](std::string name,
                            std::function<bool(const FlowContext&)> applies,
                            std::function<void(FlowContext&)> run) {
        stages_.push_back(
            FlowStage{std::move(name), std::move(run), std::move(applies)});
    };

    // Sequential designs are kept structurally (register boundaries are not
    // re-synthesized in this release), so optimize/map apply only to
    // combinational netlists.
    add("optimize",
        [](const FlowContext& ctx) { return !is_sequential(ctx); },
        [](FlowContext& ctx) {
            ctx.aig = std::make_unique<Aig>(Aig::from_netlist(ctx.netlist));
            RewriteOptions ropts;
            ropts.workers = ctx.params.parallel.opt_workers();
            RewriteStats rs;
            *ctx.aig = optimize(*ctx.aig, ctx.params.optimize_rounds, ropts, &rs);
            ctx.trace.note("cuts", rs.cuts_evaluated);
            ctx.trace.note("memo_hits", rs.memo_hits);
            ctx.trace.note("memo_misses", rs.memo_misses);
            ctx.trace.note("espresso", rs.espresso_calls);
            ctx.trace.note("replacements", rs.replacements);
            ctx.trace.note("workers", rs.workers);
        });

    add("map",
        [](const FlowContext& ctx) { return ctx.aig != nullptr; },
        [](FlowContext& ctx) {
            TechMapOptions mopts;
            mopts.workers = ctx.params.parallel.opt_workers();
            TechMapStats ms;
            ctx.netlist =
                tech_map(*ctx.aig, ctx.netlist.library_ptr(), mopts, &ms);
            ctx.aig.reset();
            ctx.trace.note("cuts", ms.cuts_evaluated);
            ctx.trace.note("matched", ms.matched_cuts);
            ctx.trace.note("workers", ms.workers);
        });

    // DFT insertion runs before placement so scan flops exist in the layout.
    add("scan_insert",
        [](const FlowContext& ctx) {
            return ctx.params.enabled(FlowStageMask::Scan) &&
                   is_sequential(ctx);
        },
        [](FlowContext& ctx) {
            ctx.scan = insert_scan(ctx.netlist, ctx.params.scan_chains);
        });

    add("place", nullptr, [](FlowContext& ctx) {
        ctx.area = make_placement_area(ctx.netlist, ctx.node,
                                       ctx.params.utilization);
        AnalyticPlaceOptions popts;
        popts.solver_iterations = ctx.params.placer_iterations;
        popts.seed = ctx.params.seed;
        const PlaceQuality pq = analytic_place(ctx.netlist, ctx.area, popts);
        ctx.placed = true;
        ctx.trace.note("hpwl", pq.hpwl_um);
        ctx.trace.note("rows", ctx.area.num_rows);
        ctx.trace.note("iters", popts.solver_iterations);
    });

    add("legalize", nullptr, [](FlowContext& ctx) {
        const LegalizeResult lg = legalize(ctx.netlist, ctx.area);
        ctx.result.legal = lg.success && is_legal(ctx.netlist, ctx.area);
        ctx.result.hpwl_um = total_hpwl_um(ctx.netlist, ctx.area);
        ctx.trace.note("disp_total", lg.total_displacement_um);
        ctx.trace.note("disp_max", lg.max_displacement_um);
        ctx.trace.note("success", lg.success ? 1 : 0);
    });

    // Detailed placement, promoted out of the legalize lambda into its own
    // observable stage: batch-parallel SA refinement (docs/PLACE.md) whose
    // result is byte-identical for any place-worker count.
    add("sa_refine",
        [](const FlowContext& ctx) { return ctx.params.sa_moves_per_cell > 0; },
        [](FlowContext& ctx) {
            SaPlaceOptions sopts;
            sopts.moves_per_cell = ctx.params.sa_moves_per_cell;
            sopts.seed = ctx.params.seed;
            sopts.workers = ctx.params.parallel.place_workers();
            sopts.region_grid = ctx.params.parallel.place_regions;
            const SaPlaceResult sr = sa_refine(ctx.netlist, ctx.area, sopts);
            ctx.result.legal = ctx.result.legal && is_legal(ctx.netlist, ctx.area);
            ctx.result.hpwl_um = total_hpwl_um(ctx.netlist, ctx.area);
            ctx.trace.note("moves", sr.total_moves);
            ctx.trace.note("accepted", sr.accepted_moves);
            ctx.trace.note("regions", sr.regions);
            ctx.trace.note("rounds", sr.rounds);
            ctx.trace.note("aborts", sr.commit_aborts);
            ctx.trace.note("commit_rate", sr.commit_rate());
            ctx.trace.note("moves_per_round", sr.moves_per_round());
            ctx.trace.note("workers", sopts.workers);
            ctx.trace.note("hpwl_delta", sr.final_hpwl_um - sr.initial_hpwl_um);
        });

    // Chains restitched in placement order now that positions exist.
    add("scan_reorder",
        [](const FlowContext& ctx) {
            return ctx.params.enabled(FlowStageMask::Scan) &&
                   !ctx.scan.chains.empty();
        },
        [](FlowContext& ctx) {
            const ReorderResult rr = reorder_scan(ctx.netlist, ctx.scan);
            ctx.result.scan_wirelength_um = rr.after_um;
        });

    add("route", nullptr, [](FlowContext& ctx) {
        // GCell grid and per-layer capacity derive from the die geometry
        // and metal pitch so congestion is physical, not arbitrary.
        GlobalRouteOptions ropts;
        ropts.max_iterations = ctx.params.router_iterations;
        ropts.routing_layers = ctx.params.routing_layers;
        ropts.gcells_x = ropts.gcells_y =
            std::max(24, static_cast<int>(ctx.area.die.width() / 3000));
        const double gcell_nm =
            static_cast<double>(ctx.area.die.width()) / ropts.gcells_x;
        ropts.capacity_per_layer = 0.65 * gcell_nm / ctx.node.metal_pitch_nm;
        ropts.route_workers = ctx.params.parallel.route_workers();
        ropts.panel_grid = ctx.params.parallel.route_panels;
        const GlobalRouteResult gr = route_design(ctx.netlist, ctx.area, ropts);
        ctx.result.route_wirelength = gr.total_wirelength;
        ctx.result.route_overflow = gr.total_overflow;
        ctx.trace.note("panels", gr.panels);
        ctx.trace.note("rounds", gr.reroute_rounds);
        ctx.trace.note("aborts", gr.reroute_conflicts);
        ctx.trace.note("commit_rate", gr.commit_rate());
        ctx.trace.note("nets_per_round", gr.nets_per_round());
        ctx.trace.note("workers", ropts.route_workers);
    });

    add("cts",
        [](const FlowContext& ctx) {
            return ctx.params.enabled(FlowStageMask::ClockTree) &&
                   is_sequential(ctx);
        },
        [](FlowContext& ctx) {
            const ClockTree ct = build_clock_tree(ctx.netlist);
            ctx.result.clock_skew_ps = ct.skew_ps();
            ctx.result.clock_wirelength_um = ct.total_wirelength_um;
        });

    add("sizing",
        [](const FlowContext& ctx) {
            return ctx.params.enabled(FlowStageMask::Sizing);
        },
        [](FlowContext& ctx) {
            SizingOptions sopts;
            sopts.sta = make_sta_options(ctx);
            const SizingResult sr = size_for_timing(ctx.netlist, sopts);
            ctx.result.cells_resized = sr.cells_resized;
            ctx.trace.note("passes", sr.passes);
            ctx.trace.note("resized", sr.cells_resized);
            ctx.trace.note("evals", sr.timing_evals);
        });

    add("sta", nullptr, [](FlowContext& ctx) {
        const StaOptions sopts = make_sta_options(ctx);
        TimingGraph tg(ctx.netlist, sopts);
        tg.analyze(sopts.sta_workers);
        const TimingReport tr = tg.report();
        ctx.result.critical_delay_ps = tr.critical_delay_ps;
        ctx.result.wns_ps = tr.wns_ps;
        ctx.trace.note("levels", tg.num_levels());
        ctx.trace.note("endpoints", tg.endpoints().size());
        ctx.trace.note("workers", sopts.sta_workers);
    });

    add("power", nullptr, [](FlowContext& ctx) {
        PowerOptions popts;
        popts.wire = make_sta_options(ctx).wire;
        const PowerReport pr = estimate_power(ctx.netlist, ctx.node, popts);
        ctx.result.total_power_mw = pr.total_mw();
    });
}

std::size_t FlowEngine::stage_index(std::string_view name) const {
    for (std::size_t i = 0; i < stages_.size(); ++i) {
        if (stages_[i].name == name) return i;
    }
    throw std::out_of_range("FlowEngine: unknown stage '" + std::string(name) +
                            "'");
}

void FlowEngine::insert_stage(std::size_t pos, FlowStage stage) {
    if (pos > stages_.size()) {
        throw std::out_of_range("FlowEngine: insert position past the end");
    }
    stages_.insert(stages_.begin() + static_cast<std::ptrdiff_t>(pos),
                   std::move(stage));
}

void FlowEngine::append_stage(FlowStage stage) {
    stages_.push_back(std::move(stage));
}

FlowResult FlowEngine::run_until(FlowContext& ctx, std::size_t end_stage) const {
    const auto t0 = std::chrono::steady_clock::now();
    // Size/area fields are refreshed at every stage boundary (not just at
    // the end) so the traced cost deltas see what map/scan/sizing did to
    // the design, and resumed runs trace identically to single-shot ones.
    const auto refresh_size = [&ctx] {
        ctx.result.instances = ctx.netlist.num_instances();
        ctx.result.area_um2 = ctx.netlist.total_area();
    };
    for (; ctx.next_stage < end_stage; ++ctx.next_stage) {
        const FlowStage& stage = stages_[ctx.next_stage];
        StageTraceEntry entry;
        entry.stage = stage.name;
        refresh_size();
        entry.cost_before = ctx.result.cost();
        const bool applicable = !stage.applies || stage.applies(ctx);
        if (!applicable || ctx.is_skipped(stage.name)) {
            entry.skipped = true;
            entry.instances = ctx.result.instances;
            entry.cost_after = entry.cost_before;
            ctx.trace.add(std::move(entry));
            continue;
        }
        ScopedLogContext log_ctx("flow:" + ctx.result.design + "/" +
                                 stage.name);
        ctx.trace.take_pending_notes();  // drop any stale notes defensively
        const auto s0 = std::chrono::steady_clock::now();
        stage.run(ctx);
        entry.wall_ms = elapsed_ms(s0);
        entry.notes = ctx.trace.take_pending_notes();
        refresh_size();
        entry.instances = ctx.result.instances;
        entry.cost_after = ctx.result.cost();
        ctx.trace.add(std::move(entry));
    }

    // Finalize the QoR record for whatever has run so far; resumed runs
    // accumulate wall time across calls.
    ctx.result.instances = ctx.netlist.num_instances();
    ctx.result.area_um2 = ctx.netlist.total_area();
    ctx.result.runtime_ms += elapsed_ms(t0);
    return ctx.result;
}

FlowResult FlowEngine::run(FlowContext& ctx) const {
    run_until(ctx, stages_.size());
    // The context stays inspectable after a full run, so the implemented
    // netlist is copied (run_batch moves instead — contexts there are
    // engine-internal).
    if (!ctx.result.mapped) {
        ctx.result.mapped = std::make_shared<Netlist>(ctx.netlist);
    }
    return ctx.result;
}

FlowResult FlowEngine::run_to(FlowContext& ctx, std::string_view last_stage) const {
    const std::size_t last = stage_index(last_stage);
    // Running to a stage the context has already passed is a no-op (the
    // record is just re-finalized), which lets resume loops be idempotent.
    return run_until(ctx, std::max(last + 1, ctx.next_stage));
}

std::vector<FlowResult> FlowEngine::run_batch(
    const std::vector<FlowJob>& jobs, int workers,
    std::vector<StageTrace>* traces) const {
    // Jobs are independent by construction (each context owns its netlist
    // copy; stages seed their own RNGs from params), so results indexed by
    // job are bit-identical whatever the worker count or admission order.
    FlowScheduler scheduler(*this, workers);
    std::vector<JobHandle> handles;
    handles.reserve(jobs.size());
    for (const FlowJob& job : jobs) handles.push_back(scheduler.submit(job));

    std::vector<FlowResult> results;
    std::vector<StageTrace> local_traces;
    results.reserve(jobs.size());
    local_traces.reserve(jobs.size());
    for (JobHandle& handle : handles) {
        results.push_back(handle.wait());
        local_traces.push_back(handle.trace());
    }
    if (traces) *traces = std::move(local_traces);
    return results;
}

}  // namespace janus
