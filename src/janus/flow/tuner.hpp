#pragma once
/// \file tuner.hpp
/// The self-learning engine panelist Rossi asks for: a bandit that learns
/// across flow runs which parameter configuration gives consistent QoR,
/// instead of leaving the tuning to "the user figuring up how the
/// algorithms work" (E6).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "janus/flow/flow.hpp"

namespace janus {

/// One parameter configuration (an arm of the bandit).
struct TunerArm {
    std::string name;
    FlowParams params;
};

struct TunerOptions {
    double epsilon = 0.2;       ///< exploration probability
    int runs = 40;              ///< total flow runs the tuner may spend
    std::uint64_t seed = 7;
};

struct TunerRun {
    std::size_t arm = 0;
    double cost = 0;
};

struct TunerResult {
    std::vector<TunerRun> history;
    std::vector<double> mean_cost;   ///< per arm
    std::vector<int> pulls;          ///< per arm
    std::size_t best_arm = 0;
    double best_mean_cost = 0;
};

/// Runs epsilon-greedy tuning: each pull runs the provided evaluation
/// function (normally run_flow on a fresh design instance) and records
/// its cost. Exposed as a function-of-arm callback so benches can swap
/// the workload.
TunerResult tune(const std::vector<TunerArm>& arms,
                 const std::function<double(const FlowParams&, int run_index)>& evaluate,
                 const TunerOptions& opts = {});

/// The default arm set: effort levels from "fast" to "thorough" plus two
/// deliberately unbalanced configurations.
std::vector<TunerArm> default_arms();

}  // namespace janus
