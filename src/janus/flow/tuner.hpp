#pragma once
/// \file tuner.hpp
/// The self-learning engine panelist Rossi asks for: a bandit that learns
/// across flow runs which parameter configuration gives consistent QoR,
/// instead of leaving the tuning to "the user figuring up how the
/// algorithms work" (E6). Arm pulls can be evaluated in parallel on a
/// thread pool: decisions are made in waves with run-indexed RNG, so a
/// 4-worker sweep is bit-identical to the same sweep on one worker.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "janus/flow/flow.hpp"

namespace janus {

/// One parameter configuration (an arm of the bandit).
struct TunerArm {
    std::string name;
    FlowParams params;
};

struct TunerOptions {
    double epsilon = 0.2;       ///< exploration probability
    int runs = 40;              ///< total flow runs the tuner may spend
    std::uint64_t seed = 7;
    /// Concurrent evaluations. 1 (with wave <= 1) selects the classic
    /// strictly-sequential epsilon-greedy path.
    int workers = 1;
    /// Arm decisions per scheduling wave; 0 derives it from `workers`.
    /// Within a wave every decision uses the statistics frozen at wave
    /// start plus an Rng seeded by mix_seed(seed, run_index) — which is
    /// what makes results independent of evaluation concurrency.
    int wave = 0;
};

struct TunerRun {
    std::size_t arm = 0;
    double cost = 0;
};

struct TunerResult {
    std::vector<TunerRun> history;
    std::vector<double> mean_cost;   ///< per arm
    std::vector<int> pulls;          ///< per arm
    std::size_t best_arm = 0;
    double best_mean_cost = 0;
};

/// Runs epsilon-greedy tuning: each pull runs the provided evaluation
/// function (normally run_flow on a fresh design instance) and records
/// its cost. Exposed as a function-of-arm callback so benches can swap
/// the workload. With workers > 1 the callback must be safe to invoke
/// concurrently; the cost of a pull must depend only on (params,
/// run_index), which every deterministic flow evaluation satisfies.
TunerResult tune(const std::vector<TunerArm>& arms,
                 const std::function<double(const FlowParams&, int run_index)>& evaluate,
                 const TunerOptions& opts = {});

/// The default arm set: effort levels from "fast" to "thorough" plus two
/// deliberately unbalanced configurations.
std::vector<TunerArm> default_arms();

}  // namespace janus
