#include "janus/flow/hier.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "janus/timing/sta.hpp"

namespace janus {
namespace {

/// Blocks of every pin on a net (driver instance + instance sinks),
/// excluding `skip`. Returns false when the net has no other instance pin.
template <typename Fn>
void for_other_pins(const Netlist& nl, const std::vector<int>& block_of,
                    NetId net, InstId skip, Fn&& fn) {
    const Net& n = nl.net(net);
    if (n.driver_kind == DriverKind::Instance && n.driver_inst != skip) {
        fn(block_of[n.driver_inst]);
    }
    for (const SinkRef& s : nl.sinks(net)) {
        if (s.inst() != skip) fn(block_of[s.inst()]);
    }
}

std::size_t count_cut_nets(const Netlist& nl, const std::vector<int>& block_of) {
    std::size_t cut = 0;
    for (NetId n = 0; n < nl.num_nets(); ++n) {
        int first = -1;
        bool spans = false;
        const Net& net = nl.net(n);
        if (net.driver_kind == DriverKind::Instance) first = block_of[net.driver_inst];
        for (const SinkRef& s : nl.sinks(n)) {
            if (first < 0) {
                first = block_of[s.inst()];
            } else if (block_of[s.inst()] != first) {
                spans = true;
                break;
            }
        }
        if (spans) ++cut;
    }
    return cut;
}

}  // namespace

HierPartition partition_min_cut(const Netlist& nl, int num_blocks,
                                int refine_passes, double balance_slack) {
    const std::size_t n = nl.num_instances();
    const int k = std::max(1, num_blocks);
    HierPartition part;
    part.num_blocks = static_cast<std::size_t>(k);
    part.block_of.resize(n, 0);
    // Contiguous id-order seeding: creation order is locality order for
    // both generated meshes and ingested files, so the initial cut is
    // already far from random.
    for (std::size_t i = 0; i < n; ++i) {
        part.block_of[i] = static_cast<int>(i * static_cast<std::size_t>(k) / std::max<std::size_t>(n, 1));
    }
    part.block_sizes.assign(static_cast<std::size_t>(k), 0);
    for (const int b : part.block_of) ++part.block_sizes[static_cast<std::size_t>(b)];

    const double avg = static_cast<double>(n) / k;
    const auto max_size =
        static_cast<std::size_t>(std::ceil(avg * (1.0 + balance_slack)));

    // Greedy FM-lite sweeps: move an instance to its best-connected block
    // when that strictly lowers the number of incident nets kept whole in a
    // foreign block vs. the home block. Deterministic: fixed id-order
    // sweep, first-best tie-break, no randomness.
    std::vector<int> conn(static_cast<std::size_t>(k), 0);
    for (int pass = 0; pass < refine_passes; ++pass) {
        std::size_t moves = 0;
        for (InstId i = 0; i < n; ++i) {
            const int home = part.block_of[i];
            std::fill(conn.begin(), conn.end(), 0);
            const Instance& inst = nl.instance(i);
            const int arity = function_arity(nl.type_of(i).function);
            const auto tally = [&](NetId net) {
                // A net votes for block b when every other pin lives in b —
                // moving i to b uncuts it; any mixed net is cut regardless.
                int only = -1;
                bool mixed = false, any = false;
                for_other_pins(nl, part.block_of, net, i, [&](int b) {
                    any = true;
                    if (only < 0) only = b;
                    else if (b != only) mixed = true;
                });
                if (any && !mixed) ++conn[static_cast<std::size_t>(only)];
            };
            for (int p = 0; p < arity; ++p) {
                const NetId f = inst.fanin[static_cast<std::size_t>(p)];
                if (f != kNoNet) tally(f);
            }
            if (inst.output != kNoNet) tally(inst.output);

            int best = home;
            for (int b = 0; b < k; ++b) {
                if (b != home && conn[static_cast<std::size_t>(b)] >
                                     conn[static_cast<std::size_t>(best)]) {
                    best = b;
                }
            }
            if (best != home &&
                part.block_sizes[static_cast<std::size_t>(best)] + 1 <= max_size) {
                part.block_of[i] = best;
                --part.block_sizes[static_cast<std::size_t>(home)];
                ++part.block_sizes[static_cast<std::size_t>(best)];
                ++moves;
            }
        }
        if (moves == 0) break;
    }
    part.cut_nets = count_cut_nets(nl, part.block_of);
    return part;
}

namespace {

/// Extracts block `b` as a standalone netlist. Cut nets become block PIs /
/// POs under the flat design's net name (the stitch key).
Netlist extract_block(const Netlist& top, const std::vector<int>& block_of,
                      int b) {
    Netlist sub(top.library_ptr(),
                top.name() + "__b" + std::to_string(b));
    std::vector<NetId> net_map(top.num_nets(), kNoNet);

    // Nets observed by top POs must be exported even when no foreign
    // instance reads them.
    std::vector<char> po_observed(top.num_nets(), 0);
    for (const auto& [po_name, po_net] : top.primary_outputs()) {
        (void)po_name;
        po_observed[po_net] = 1;
    }

    // Pass 1: boundary inputs, in top net-id order (deterministic PI order).
    for (NetId n = 0; n < top.num_nets(); ++n) {
        const Net& net = top.net(n);
        const bool driven_in =
            net.driver_kind == DriverKind::Instance && block_of[net.driver_inst] == b;
        if (driven_in) continue;
        bool read_in = false;
        for (const SinkRef& s : top.sinks(n)) {
            if (block_of[s.inst()] == b) {
                read_in = true;
                break;
            }
        }
        if (read_in) net_map[n] = sub.add_primary_input(top.net_name(n));
    }

    // Pass 2: instances in id order; forward references (a fanin driven by
    // a later instance of the same block, e.g. flop feedback) stay kNoNet
    // and are wired in pass 3 — same protocol as the file readers.
    std::vector<std::pair<InstId, InstId>> created;  // (sub id, top id)
    for (InstId i = 0; i < top.num_instances(); ++i) {
        if (block_of[i] != b) continue;
        const Instance& inst = top.instance(i);
        const int arity = function_arity(top.type_of(i).function);
        std::vector<NetId> fanins(static_cast<std::size_t>(arity), kNoNet);
        for (int p = 0; p < arity; ++p) {
            const NetId f = inst.fanin[static_cast<std::size_t>(p)];
            if (f != kNoNet && net_map[f] != kNoNet) {
                fanins[static_cast<std::size_t>(p)] = net_map[f];
            }
        }
        const InstId si = sub.add_instance(top.instance_name(i), inst.type, fanins);
        net_map[inst.output] = sub.instance(si).output;
        created.emplace_back(si, i);
    }

    // Pass 3: resolve the deferred fanins.
    for (const auto& [si, ti] : created) {
        const Instance& tinst = top.instance(ti);
        const int arity = function_arity(top.type_of(ti).function);
        for (int p = 0; p < arity; ++p) {
            const NetId f = tinst.fanin[static_cast<std::size_t>(p)];
            if (f == kNoNet) continue;
            if (sub.instance(si).fanin[static_cast<std::size_t>(p)] == kNoNet) {
                sub.connect_input(si, p, net_map[f]);
            }
        }
    }

    // Pass 4: boundary outputs — nets driven here and read elsewhere (or
    // observed by a top PO), exported under the flat net name.
    for (NetId n = 0; n < top.num_nets(); ++n) {
        const Net& net = top.net(n);
        if (net.driver_kind != DriverKind::Instance || block_of[net.driver_inst] != b) {
            continue;
        }
        bool read_out = po_observed[n] != 0;
        for (const SinkRef& s : top.sinks(n)) {
            if (block_of[s.inst()] != b) {
                read_out = true;
                break;
            }
        }
        if (read_out) sub.add_primary_output(std::string(top.net_name(n)), net_map[n]);
    }
    return sub;
}

}  // namespace

HierFlowResult run_hier_flow(const Netlist& nl, const TechnologyNode& node,
                             const HierParams& params) {
    HierFlowResult out;
    const int k = std::max(1, params.num_blocks);

    const HierPartition part = partition_min_cut(
        nl, k, params.refine_passes, params.balance_slack);
    out.cut_nets = part.cut_nets;

    // Per-block implementation through the standard batch path. run_batch
    // results are byte-identical for any worker count, and partitioning /
    // stitching are serial, so the whole hier flow inherits the contract.
    std::vector<FlowJob> jobs;
    jobs.reserve(static_cast<std::size_t>(k));
    for (int b = 0; b < k; ++b) {
        FlowJob job{extract_block(nl, part.block_of, b), node, params.block_flow};
        // Place/route only: the flat input is already synthesized, and a
        // purely combinational block would otherwise be re-synthesized
        // (optimize/map restructure logic), losing instances the stitcher
        // must carry back into the merged design verbatim.
        job.skip_stages = {"optimize", "map"};
        jobs.push_back(std::move(job));
    }
    FlowEngine engine;
    std::vector<FlowResult> block_results =
        engine.run_batch(jobs, std::max(1, params.workers));

    for (const FlowResult& r : block_results) {
        if (r.failed()) {
            out.top.error = "hier: block flow failed: " + r.error;
            out.blocks.resize(block_results.size());
            for (std::size_t b = 0; b < block_results.size(); ++b) {
                out.blocks[b].flow = block_results[b];
            }
            return out;
        }
    }

    // Floorplan: blocks tiled on a ceil(sqrt(K)) grid of uniform slots
    // sized by the largest block extent (positions are nm).
    const int cols = static_cast<int>(
        std::ceil(std::sqrt(static_cast<double>(k))));
    std::int64_t max_w = 1, max_h = 1;
    std::vector<Rect> extents(static_cast<std::size_t>(k));
    for (int b = 0; b < k; ++b) {
        const Netlist& bn = *block_results[static_cast<std::size_t>(b)].mapped;
        Rect e;
        for (InstId i = 0; i < bn.num_instances(); ++i) {
            const Instance& inst = bn.instance(i);
            if (!inst.placed) continue;
            if (e.empty()) {
                e = Rect(inst.position, inst.position);
            } else {
                e.lo.x = std::min(e.lo.x, inst.position.x);
                e.lo.y = std::min(e.lo.y, inst.position.y);
                e.hi.x = std::max(e.hi.x, inst.position.x);
                e.hi.y = std::max(e.hi.y, inst.position.y);
            }
        }
        extents[static_cast<std::size_t>(b)] = e;
        max_w = std::max(max_w, e.width());
        max_h = std::max(max_h, e.height());
    }
    const auto margin = static_cast<std::int64_t>(
        params.floorplan_margin * static_cast<double>(std::max(max_w, max_h)));
    const std::int64_t slot_w = max_w + std::max<std::int64_t>(margin, 1);
    const std::int64_t slot_h = max_h + std::max<std::int64_t>(margin, 1);

    // Stitch: rebuild the top netlist from the implemented blocks, joining
    // boundary nets by name and offsetting block placements into their
    // floorplan slots.
    auto merged = std::make_shared<Netlist>(nl.library_ptr(), nl.name());
    std::unordered_map<std::string, NetId> boundary;
    for (const NetId pi : nl.primary_inputs()) {
        boundary.emplace(std::string(nl.net_name(pi)),
                         merged->add_primary_input(nl.net_name(pi)));
    }

    struct PendingPin {
        InstId inst;
        int pin;
        std::string net;
    };
    std::vector<PendingPin> pending;
    // A block PO can alias a block PI directly (synthesis collapsed the
    // cone to a wire); those resolve after all blocks are in.
    std::vector<std::pair<std::string, std::string>> po_aliases;

    out.blocks.resize(static_cast<std::size_t>(k));
    for (int b = 0; b < k; ++b) {
        const Netlist& bn = *block_results[static_cast<std::size_t>(b)].mapped;
        const Rect& e = extents[static_cast<std::size_t>(b)];
        const Point offset{(b % cols) * slot_w - (e.empty() ? 0 : e.lo.x),
                           (b / cols) * slot_h - (e.empty() ? 0 : e.lo.y)};
        out.blocks[static_cast<std::size_t>(b)].flow =
            block_results[static_cast<std::size_t>(b)];
        out.blocks[static_cast<std::size_t>(b)].placement =
            Rect{{(b % cols) * slot_w, (b / cols) * slot_h},
                 {(b % cols) * slot_w + e.width(), (b / cols) * slot_h + e.height()}};

        std::vector<NetId> bmap(bn.num_nets(), kNoNet);
        std::vector<std::pair<InstId, InstId>> created;  // (merged, block)
        for (InstId i = 0; i < bn.num_instances(); ++i) {
            const Instance& inst = bn.instance(i);
            const int arity = function_arity(bn.type_of(i).function);
            std::vector<NetId> fanins(static_cast<std::size_t>(arity), kNoNet);
            for (int p = 0; p < arity; ++p) {
                const NetId f = inst.fanin[static_cast<std::size_t>(p)];
                if (f != kNoNet && bmap[f] != kNoNet) {
                    fanins[static_cast<std::size_t>(p)] = bmap[f];
                }
            }
            const InstId mi =
                merged->add_instance(bn.instance_name(i), inst.type, fanins);
            bmap[inst.output] = merged->instance(mi).output;
            Instance& minst = merged->instance(mi);
            minst.placed = inst.placed;
            if (inst.placed) {
                minst.position = Point{inst.position.x + offset.x,
                                       inst.position.y + offset.y};
            }
            created.emplace_back(mi, i);
        }
        // Intra-block deferred pins; boundary pins go to the name queue.
        for (const auto& [mi, bi] : created) {
            const Instance& binst = bn.instance(bi);
            const int arity = function_arity(bn.type_of(bi).function);
            for (int p = 0; p < arity; ++p) {
                const NetId f = binst.fanin[static_cast<std::size_t>(p)];
                if (f == kNoNet) continue;
                if (merged->instance(mi).fanin[static_cast<std::size_t>(p)] != kNoNet) {
                    continue;
                }
                if (bmap[f] != kNoNet) {
                    merged->connect_input(mi, p, bmap[f]);
                } else {
                    pending.push_back(
                        PendingPin{mi, p, std::string(bn.net_name(f))});
                }
            }
        }
        for (const auto& [po_name, po_net] : bn.primary_outputs()) {
            if (bmap[po_net] != kNoNet) {
                boundary.emplace(po_name, bmap[po_net]);
            } else {
                po_aliases.emplace_back(po_name, std::string(bn.net_name(po_net)));
            }
        }
    }

    // Resolve PO-to-PI aliases (chains converge in <= K rounds).
    for (int round = 0; round < k + 1 && !po_aliases.empty(); ++round) {
        std::vector<std::pair<std::string, std::string>> unresolved;
        for (const auto& [po, src] : po_aliases) {
            const auto it = boundary.find(src);
            if (it != boundary.end()) {
                boundary.emplace(po, it->second);
            } else {
                unresolved.push_back({po, src});
            }
        }
        if (unresolved.size() == po_aliases.size()) break;
        po_aliases = std::move(unresolved);
    }

    for (const PendingPin& pp : pending) {
        const auto it = boundary.find(pp.net);
        if (it == boundary.end()) {
            throw std::runtime_error("hier: unresolved boundary net \"" + pp.net +
                                     "\" while stitching " + nl.name());
        }
        merged->connect_input(pp.inst, pp.pin, it->second);
    }
    for (const auto& [po_name, po_net] : nl.primary_outputs()) {
        const auto it = boundary.find(std::string(nl.net_name(po_net)));
        if (it == boundary.end()) {
            throw std::runtime_error("hier: top output \"" + po_name +
                                     "\" lost its boundary net while stitching");
        }
        merged->add_primary_output(po_name, it->second);
    }
    out.stitched_nets = boundary.size() - nl.primary_inputs().size();

    const auto problems = merged->validate();
    if (!problems.empty()) {
        throw std::runtime_error("hier: stitched netlist invalid: " + problems.front());
    }

    // Top-level STA over the stitched, placed result.
    StaOptions sopts;
    sopts.wire = WireModel::for_node(node);
    sopts.sta_workers = params.block_flow.parallel.sta_workers();
    const TimingReport tr = run_sta(*merged, sopts);

    out.top.design = nl.name();
    out.top.instances = merged->num_instances();
    out.top.area_um2 = merged->total_area();
    out.top.critical_delay_ps = tr.critical_delay_ps;
    out.top.wns_ps = tr.wns_ps;
    out.top.legal = true;
    double hpwl_nm = 0;
    for (NetId n = 0; n < merged->num_nets(); ++n) {
        Rect box;
        const Net& net = merged->net(n);
        const auto extend = [&box](const Point& p) {
            if (box.empty()) {
                box = Rect(p, p);
            } else {
                box.lo.x = std::min(box.lo.x, p.x);
                box.lo.y = std::min(box.lo.y, p.y);
                box.hi.x = std::max(box.hi.x, p.x);
                box.hi.y = std::max(box.hi.y, p.y);
            }
        };
        if (net.driver_kind == DriverKind::Instance &&
            merged->instance(net.driver_inst).placed) {
            extend(merged->instance(net.driver_inst).position);
        }
        for (const SinkRef& s : merged->sinks(n)) {
            if (merged->instance(s.inst()).placed) extend(merged->instance(s.inst()).position);
        }
        if (!box.empty()) hpwl_nm += static_cast<double>(box.width() + box.height());
    }
    out.top.hpwl_um = hpwl_nm / 1000.0;
    for (const FlowResult& r : block_results) {
        out.top.route_wirelength += r.route_wirelength;
        out.top.runtime_ms += r.runtime_ms;
    }
    out.merged = std::move(merged);
    return out;
}

}  // namespace janus
