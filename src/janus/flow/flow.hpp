#pragma once
/// \file flow.hpp
/// The end-to-end JanusEDA implementation flow: logic optimization ->
/// technology mapping -> placement -> legalization -> (optional) detailed
/// placement -> global routing -> STA -> power -> (optional) scan DFT.
/// One call = one "run" of the kind panelist Rossi measures in instances
/// per day (E5); its knobs are what the self-learning tuner drives (E6).

#include <memory>
#include <string>

#include "janus/netlist/netlist.hpp"
#include "janus/netlist/technology.hpp"

namespace janus {

/// Tunable flow parameters (the knobs a methodology team sweeps).
struct FlowParams {
    int optimize_rounds = 3;       ///< AIG balance/refactor rounds
    double utilization = 0.65;
    int placer_iterations = 250;   ///< analytic CG solver iterations
    int sa_moves_per_cell = 0;     ///< 0 disables detailed placement
    int router_iterations = 8;
    int routing_layers = 6;
    bool insert_scan = false;
    int scan_chains = 4;
    /// Post-placement timing-driven gate sizing.
    bool size_timing = false;
    /// Synthesize the clock tree (sequential designs only).
    bool build_clock = true;
    std::uint64_t seed = 1;
};

/// Quality-of-results record of one flow run.
struct FlowResult {
    std::string design;
    std::size_t instances = 0;
    double area_um2 = 0;
    double hpwl_um = 0;
    std::size_t route_wirelength = 0;  ///< gcell units
    double route_overflow = 0;
    double critical_delay_ps = 0;
    double wns_ps = 0;
    double total_power_mw = 0;
    double scan_wirelength_um = 0;  ///< 0 when scan disabled
    double clock_skew_ps = 0;       ///< 0 when no flops / clocking disabled
    double clock_wirelength_um = 0;
    int cells_resized = 0;          ///< by timing-driven sizing
    bool legal = false;
    double runtime_ms = 0;
    /// Scalar figure of merit (lower is better): used by the tuner.
    double cost() const;
};

/// Runs the full flow on a combinational or sequential netlist. The input
/// netlist is consumed (mapped/placed netlist returned via *out when
/// non-null).
FlowResult run_flow(const Netlist& input, const TechnologyNode& node,
                    const FlowParams& params = {}, Netlist* out = nullptr);

}  // namespace janus
