#pragma once
/// \file flow.hpp
/// Parameters and quality-of-results record for the JanusEDA implementation
/// flow. The flow itself is a staged pipeline (flow_engine.hpp): logic
/// optimization -> technology mapping -> scan insertion -> placement ->
/// legalization -> scan reorder -> routing -> CTS -> sizing -> STA -> power.
/// One run is the unit panelist Rossi measures in instances per day (E5);
/// its knobs are what the self-learning tuner drives (E6).

#include <cstdint>
#include <memory>
#include <string>

#include "janus/netlist/netlist.hpp"
#include "janus/netlist/technology.hpp"

namespace janus {

/// Optional flow stages, selectable as a bitmask. Replaces the old pile of
/// FlowParams booleans (insert_scan / size_timing / build_clock) with one
/// composable knob the tuner and batch configs can sweep.
enum class FlowStageMask : std::uint32_t {
    None = 0,
    Scan = 1u << 0,       ///< scan insertion + post-placement reorder
    ClockTree = 1u << 1,  ///< clock tree synthesis (sequential designs)
    Sizing = 1u << 2,     ///< post-route timing-driven gate sizing
    Default = ClockTree,
    All = Scan | ClockTree | Sizing,
};

constexpr FlowStageMask operator|(FlowStageMask a, FlowStageMask b) {
    return static_cast<FlowStageMask>(static_cast<std::uint32_t>(a) |
                                      static_cast<std::uint32_t>(b));
}
constexpr FlowStageMask operator&(FlowStageMask a, FlowStageMask b) {
    return static_cast<FlowStageMask>(static_cast<std::uint32_t>(a) &
                                      static_cast<std::uint32_t>(b));
}
constexpr FlowStageMask operator~(FlowStageMask a) {
    return static_cast<FlowStageMask>(~static_cast<std::uint32_t>(a)) &
           FlowStageMask::All;
}
constexpr bool has_stage(FlowStageMask mask, FlowStageMask bit) {
    return (mask & bit) != FlowStageMask::None;
}

/// Tunable flow parameters (the knobs a methodology team sweeps).
struct FlowParams {
    int optimize_rounds = 3;       ///< AIG balance/refactor rounds
    /// Threads for the synthesis front end: eval-parallel refactoring and
    /// level-parallel technology matching (docs/SYNTH.md). Output is
    /// byte-identical for any value; 1 = serial.
    int opt_workers = 1;
    double utilization = 0.65;
    int placer_iterations = 250;   ///< analytic CG solver iterations
    int sa_moves_per_cell = 0;     ///< 0 disables detailed placement
    /// Threads for the detailed placer's batch-parallel move evaluation.
    /// QoR is byte-identical for any value (docs/PLACE.md); 1 = serial.
    int place_workers = 1;
    int router_iterations = 8;
    int routing_layers = 6;
    /// Threads for the router's batch-parallel rip-up-and-reroute. QoR is
    /// byte-identical for any value (docs/ROUTING.md); 1 = serial.
    int route_workers = 1;
    /// Threads for the timing engine's level-parallel sweeps. Results are
    /// bit-identical for any value (docs/TIMING.md); 1 = serial.
    int sta_workers = 1;
    FlowStageMask stages = FlowStageMask::Default;
    int scan_chains = 4;
    std::uint64_t seed = 1;

    bool enabled(FlowStageMask bit) const { return has_stage(stages, bit); }

    /// Validates the parameter set. Returns an empty string when every knob
    /// is usable, else a description of the first problem found. The flow
    /// engine calls this up front and throws std::invalid_argument instead
    /// of silently misbehaving on nonsense like utilization > 1.
    std::string check() const;
};

/// Quality-of-results record of one flow run.
struct FlowResult {
    std::string design;
    std::size_t instances = 0;
    double area_um2 = 0;
    double hpwl_um = 0;
    std::size_t route_wirelength = 0;  ///< gcell units
    double route_overflow = 0;
    double critical_delay_ps = 0;
    double wns_ps = 0;
    double total_power_mw = 0;
    double scan_wirelength_um = 0;  ///< 0 when scan disabled
    double clock_skew_ps = 0;       ///< 0 when no flops / clocking disabled
    double clock_wirelength_um = 0;
    int cells_resized = 0;          ///< by timing-driven sizing
    bool legal = false;
    double runtime_ms = 0;
    /// The implemented (mapped + placed + stitched) netlist, populated when
    /// the final stage has run. Replaces the old `Netlist* out` parameter;
    /// shared so FlowResult stays cheap to copy into tuner/bench history.
    std::shared_ptr<const Netlist> mapped;
    /// Scalar figure of merit (lower is better): used by the tuner.
    double cost() const;
};

/// Runs the full flow on a combinational or sequential netlist. The input
/// netlist is never modified: it is deep-copied into the flow context, and
/// the implemented design comes back as FlowResult::mapped. Thin wrapper
/// over FlowEngine (flow_engine.hpp) kept for single-run callers.
/// Throws std::invalid_argument when params.check() fails.
FlowResult run_flow(const Netlist& input, const TechnologyNode& node,
                    const FlowParams& params = {});

}  // namespace janus
