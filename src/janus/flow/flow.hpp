#pragma once
/// \file flow.hpp
/// Parameters and quality-of-results record for the JanusEDA implementation
/// flow. The flow itself is a staged pipeline (flow_engine.hpp): logic
/// optimization -> technology mapping -> scan insertion -> placement ->
/// legalization -> scan reorder -> routing -> CTS -> sizing -> STA -> power.
/// One run is the unit panelist Rossi measures in instances per day (E5);
/// its knobs are what the self-learning tuner drives (E6).

#include <cstdint>
#include <memory>
#include <string>

#include "janus/netlist/netlist.hpp"
#include "janus/netlist/technology.hpp"

namespace janus {

/// Optional flow stages, selectable as a bitmask. Replaces the old pile of
/// FlowParams booleans (insert_scan / size_timing / build_clock) with one
/// composable knob the tuner and batch configs can sweep.
enum class FlowStageMask : std::uint32_t {
    None = 0,
    Scan = 1u << 0,       ///< scan insertion + post-placement reorder
    ClockTree = 1u << 1,  ///< clock tree synthesis (sequential designs)
    Sizing = 1u << 2,     ///< post-route timing-driven gate sizing
    Default = ClockTree,
    All = Scan | ClockTree | Sizing,
};

constexpr FlowStageMask operator|(FlowStageMask a, FlowStageMask b) {
    return static_cast<FlowStageMask>(static_cast<std::uint32_t>(a) |
                                      static_cast<std::uint32_t>(b));
}
constexpr FlowStageMask operator&(FlowStageMask a, FlowStageMask b) {
    return static_cast<FlowStageMask>(static_cast<std::uint32_t>(a) &
                                      static_cast<std::uint32_t>(b));
}
constexpr FlowStageMask operator~(FlowStageMask a) {
    return static_cast<FlowStageMask>(~static_cast<std::uint32_t>(a)) &
           FlowStageMask::All;
}
constexpr bool has_stage(FlowStageMask mask, FlowStageMask bit) {
    return (mask & bit) != FlowStageMask::None;
}

/// Threading configuration for one flow run. One global `workers` default
/// covers every parallel stage; per-stage overrides exist for asymmetric
/// machines or experiments (0 = inherit the global default). Every stage
/// carries the same determinism contract: QoR is byte-identical for any
/// worker count (docs/SYNTH.md, docs/PLACE.md, docs/ROUTING.md,
/// docs/TIMING.md), so this is a pure performance knob. Replaces the four
/// pre-PR6 `FlowParams::{opt,place,route,sta}_workers` fields.
struct ParallelismConfig {
    /// Default thread count for every parallel stage; 1 = serial.
    int workers = 1;
    // Per-stage overrides; 0 = inherit `workers`.
    int optimize = 0;  ///< eval-parallel refactoring + tech mapping
    int place = 0;     ///< speculative region-parallel SA detailed placement
    int route = 0;     ///< speculative panel-parallel rip-up-and-reroute
    int sta = 0;       ///< level-parallel timing sweeps (also sizing)

    // Speculative region-ownership grids (util/speculate.hpp); 0 = auto-size
    // from the workload. Unlike the worker knobs these are part of the
    // schedule — two different grids give two different (each internally
    // worker-invariant) results.
    int place_regions = 0;  ///< SA ownership-grid tiles per die axis
    int route_panels = 0;   ///< reroute ownership panels per gcell axis

    // Effective per-stage worker counts (override or global default).
    int opt_workers() const { return optimize > 0 ? optimize : workers; }
    int place_workers() const { return place > 0 ? place : workers; }
    int route_workers() const { return route > 0 ? route : workers; }
    int sta_workers() const { return sta > 0 ? sta : workers; }

    /// Empty when usable, else a description naming the bad knob.
    std::string check() const;
};

/// Tunable flow parameters (the knobs a methodology team sweeps).
struct FlowParams {
    int optimize_rounds = 3;       ///< AIG balance/refactor rounds
    double utilization = 0.65;
    int placer_iterations = 250;   ///< analytic CG solver iterations
    int sa_moves_per_cell = 0;     ///< 0 disables detailed placement
    int router_iterations = 8;
    int routing_layers = 6;
    /// Intra-stage threading (global default + per-stage overrides).
    ParallelismConfig parallel;
    FlowStageMask stages = FlowStageMask::Default;
    int scan_chains = 4;
    std::uint64_t seed = 1;

    // --- deprecated aliases (pre-PR6 spelling) ----------------------------
    // 0 = unset. check() folds a positive alias into the matching
    // `parallel` override (the new-style override wins when both are set),
    // so legacy callers keep byte-identical behavior. New code should set
    // `parallel.workers` / the per-stage overrides instead.
    int opt_workers = 0;    ///< deprecated: use parallel.optimize
    int place_workers = 0;  ///< deprecated: use parallel.place
    int route_workers = 0;  ///< deprecated: use parallel.route
    int sta_workers = 0;    ///< deprecated: use parallel.sta

    bool enabled(FlowStageMask bit) const { return has_stage(stages, bit); }

    /// Validates the parameter set and folds the deprecated `*_workers`
    /// aliases into `parallel` (idempotent). Returns an empty string when
    /// every knob is usable, else a description of the first problem found.
    /// The flow engine calls this up front and throws std::invalid_argument
    /// instead of silently misbehaving on nonsense like utilization > 1.
    std::string check();
};

/// Quality-of-results record of one flow run.
struct FlowResult {
    std::string design;
    std::size_t instances = 0;
    double area_um2 = 0;
    double hpwl_um = 0;
    std::size_t route_wirelength = 0;  ///< gcell units
    double route_overflow = 0;
    double critical_delay_ps = 0;
    double wns_ps = 0;
    double total_power_mw = 0;
    double scan_wirelength_um = 0;  ///< 0 when scan disabled
    double clock_skew_ps = 0;       ///< 0 when no flops / clocking disabled
    double clock_wirelength_um = 0;
    int cells_resized = 0;          ///< by timing-driven sizing
    bool legal = false;
    double runtime_ms = 0;
    /// Populated when the run failed (a stage or the context constructor
    /// threw): the exception text. A failed result carries whatever QoR had
    /// accumulated before the failure; scheduler/batch execution reports
    /// failures here instead of propagating and poisoning sibling jobs.
    std::string error;
    bool failed() const { return !error.empty(); }
    /// The implemented (mapped + placed + stitched) netlist, populated when
    /// the final stage has run. Replaces the old `Netlist* out` parameter;
    /// shared so FlowResult stays cheap to copy into tuner/bench history.
    std::shared_ptr<const Netlist> mapped;
    /// Scalar figure of merit (lower is better): used by the tuner.
    double cost() const;
};

/// Runs the full flow on a combinational or sequential netlist. The input
/// netlist is never modified: it is deep-copied into the flow context, and
/// the implemented design comes back as FlowResult::mapped. Thin wrapper
/// over FlowEngine (flow_engine.hpp) kept for single-run callers.
/// Throws std::invalid_argument when params.check() fails.
FlowResult run_flow(const Netlist& input, const TechnologyNode& node,
                    const FlowParams& params = {});

}  // namespace janus
