#include "janus/logic/aig.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace janus {
namespace {

std::uint64_t strash_key(AigLit a, AigLit b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
}

/// Fibonacci/xor-shift mix of the packed key; the multiply spreads the
/// low-entropy literal pairs across the high bits, the shift brings them
/// back down for power-of-two masking.
std::size_t strash_hash(std::uint64_t key) {
    key *= 0x9E3779B97F4A7C15ull;
    return static_cast<std::size_t>(key >> 32);
}

}  // namespace

Aig::Aig() {
    // Node 0: constant false.
    fanin0_.push_back(0);
    fanin1_.push_back(0);
    strash_keys_.assign(64, 0);
    strash_values_.assign(64, 0);
}

AigLit Aig::add_input(std::string name) {
    const auto node = static_cast<std::uint32_t>(fanin0_.size());
    fanin0_.push_back(kInputMark);
    fanin1_.push_back(kInputMark);
    inputs_.push_back(node);
    input_names_.push_back(name.empty() ? "i" + std::to_string(inputs_.size() - 1)
                                        : std::move(name));
    return aig_lit(node, false);
}

std::uint32_t Aig::new_and_node(AigLit a, AigLit b) {
    const auto node = static_cast<std::uint32_t>(fanin0_.size());
    fanin0_.push_back(a);
    fanin1_.push_back(b);
    return node;
}

AigLit Aig::land(AigLit a, AigLit b) {
    assert(aig_node(a) < fanin0_.size() && aig_node(b) < fanin0_.size());
    // Normalization and trivial rules.
    if (a > b) std::swap(a, b);
    if (a == const0()) return const0();
    if (a == const1()) return b;
    if (a == b) return a;
    if (a == aig_not(b)) return const0();
    const std::uint64_t key = strash_key(a, b);
    if (2 * (strash_count_ + 1) > strash_keys_.size()) strash_grow();
    const std::size_t mask = strash_keys_.size() - 1;
    std::size_t i = strash_hash(key) & mask;
    while (strash_keys_[i] != 0) {
        if (strash_keys_[i] == key) {
            ++strash_hits_;
            return aig_lit(strash_values_[i], false);
        }
        i = (i + 1) & mask;
    }
    const std::uint32_t node = new_and_node(a, b);
    strash_keys_[i] = key;
    strash_values_[i] = node;
    ++strash_count_;
    return aig_lit(node, false);
}

void Aig::strash_grow() {
    const std::size_t new_size = 2 * strash_keys_.size();
    std::vector<std::uint64_t> keys(new_size, 0);
    std::vector<std::uint32_t> values(new_size, 0);
    const std::size_t mask = new_size - 1;
    for (std::size_t i = 0; i < strash_keys_.size(); ++i) {
        if (strash_keys_[i] == 0) continue;
        std::size_t j = strash_hash(strash_keys_[i]) & mask;
        while (keys[j] != 0) j = (j + 1) & mask;
        keys[j] = strash_keys_[i];
        values[j] = strash_values_[i];
    }
    strash_keys_ = std::move(keys);
    strash_values_ = std::move(values);
}

std::size_t Aig::memory_bytes() const {
    std::size_t bytes = sizeof(*this);
    bytes += fanin0_.capacity() * sizeof(AigLit);
    bytes += fanin1_.capacity() * sizeof(AigLit);
    bytes += inputs_.capacity() * sizeof(std::uint32_t);
    bytes += strash_keys_.capacity() * sizeof(std::uint64_t);
    bytes += strash_values_.capacity() * sizeof(std::uint32_t);
    bytes += input_names_.capacity() * sizeof(std::string);
    for (const std::string& s : input_names_) {
        if (s.capacity() > sizeof(std::string)) bytes += s.capacity() + 1;
    }
    bytes += outputs_.capacity() * sizeof(std::pair<std::string, AigLit>);
    for (const auto& [name, lit] : outputs_) {
        (void)lit;
        if (name.capacity() > sizeof(std::string)) bytes += name.capacity() + 1;
    }
    return bytes;
}

AigLit Aig::lxor(AigLit a, AigLit b) {
    // a ^ b = !(!(a & !b) & !(!a & b))
    return aig_not(land(aig_not(land(a, aig_not(b))), aig_not(land(aig_not(a), b))));
}

AigLit Aig::lmux(AigLit sel, AigLit a, AigLit b) {
    // sel ? b : a
    return aig_not(land(aig_not(land(sel, b)), aig_not(land(aig_not(sel), a))));
}

AigLit Aig::lmaj(AigLit a, AigLit b, AigLit c) {
    return lor(land(a, b), lor(land(a, c), land(b, c)));
}

void Aig::add_output(std::string name, AigLit lit) {
    assert(aig_node(lit) < fanin0_.size());
    outputs_.emplace_back(std::move(name), lit);
}

std::size_t Aig::num_ands() const {
    return fanin0_.size() - 1 - inputs_.size();
}

bool Aig::is_and(std::uint32_t node) const {
    return node != 0 && fanin0_.at(node) != kInputMark;
}

bool Aig::is_input(std::uint32_t node) const {
    return node != 0 && fanin0_.at(node) == kInputMark;
}

std::vector<int> Aig::levels() const {
    std::vector<int> lvl(fanin0_.size(), 0);
    for (std::uint32_t n = 1; n < fanin0_.size(); ++n) {
        if (!is_and(n)) continue;
        // Construction order is topological: fanins have lower indices.
        lvl[n] = 1 + std::max(lvl[aig_node(fanin0_[n])], lvl[aig_node(fanin1_[n])]);
    }
    return lvl;
}

int Aig::depth() const {
    const auto lvl = levels();
    int d = 0;
    for (const auto& [name, lit] : outputs_) {
        (void)name;
        d = std::max(d, lvl[aig_node(lit)]);
    }
    return d;
}

std::vector<std::uint32_t> Aig::fanout_counts() const {
    std::vector<std::uint32_t> fo(fanin0_.size(), 0);
    for (std::uint32_t n = 1; n < fanin0_.size(); ++n) {
        if (!is_and(n)) continue;
        ++fo[aig_node(fanin0_[n])];
        ++fo[aig_node(fanin1_[n])];
    }
    for (const auto& [name, lit] : outputs_) {
        (void)name;
        ++fo[aig_node(lit)];
    }
    return fo;
}

std::vector<std::uint32_t> Aig::topological_order() const {
    // Nodes are created fanins-first, so index order is topological.
    std::vector<std::uint32_t> order(fanin0_.size());
    for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    return order;
}

std::vector<bool> Aig::simulate(const std::vector<bool>& input_values) const {
    if (input_values.size() != inputs_.size()) {
        throw std::invalid_argument("Aig::simulate: input count mismatch");
    }
    std::vector<bool> value(fanin0_.size(), false);
    for (std::size_t i = 0; i < inputs_.size(); ++i) value[inputs_[i]] = input_values[i];
    for (std::uint32_t n = 1; n < fanin0_.size(); ++n) {
        if (!is_and(n)) continue;
        const bool a = value[aig_node(fanin0_[n])] != aig_is_complement(fanin0_[n]);
        const bool b = value[aig_node(fanin1_[n])] != aig_is_complement(fanin1_[n]);
        value[n] = a && b;
    }
    std::vector<bool> out;
    out.reserve(outputs_.size());
    for (const auto& [name, lit] : outputs_) {
        (void)name;
        out.push_back(value[aig_node(lit)] != aig_is_complement(lit));
    }
    return out;
}

std::vector<TruthTable> Aig::output_truth_tables() const {
    const int n = static_cast<int>(inputs_.size());
    if (n > 16) {
        throw std::invalid_argument("Aig::output_truth_tables: too many inputs");
    }
    std::vector<TruthTable> tt(fanin0_.size(), TruthTable(n));
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
        tt[inputs_[i]] = TruthTable::variable(n, static_cast<int>(i));
    }
    for (std::uint32_t node = 1; node < fanin0_.size(); ++node) {
        if (!is_and(node)) continue;
        const TruthTable a = aig_is_complement(fanin0_[node])
                                 ? ~tt[aig_node(fanin0_[node])]
                                 : tt[aig_node(fanin0_[node])];
        const TruthTable b = aig_is_complement(fanin1_[node])
                                 ? ~tt[aig_node(fanin1_[node])]
                                 : tt[aig_node(fanin1_[node])];
        tt[node] = a & b;
    }
    std::vector<TruthTable> out;
    out.reserve(outputs_.size());
    for (const auto& [name, lit] : outputs_) {
        (void)name;
        out.push_back(aig_is_complement(lit) ? ~tt[aig_node(lit)] : tt[aig_node(lit)]);
    }
    return out;
}

Aig Aig::cleanup() const {
    Aig fresh;
    std::vector<AigLit> remap(fanin0_.size(), 0);
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
        remap[inputs_[i]] = fresh.add_input(input_names_[i]);
    }
    // Mark live nodes (reachable from outputs).
    std::vector<bool> live(fanin0_.size(), false);
    std::vector<std::uint32_t> stack;
    for (const auto& [name, lit] : outputs_) {
        (void)name;
        stack.push_back(aig_node(lit));
    }
    while (!stack.empty()) {
        const std::uint32_t n = stack.back();
        stack.pop_back();
        if (live[n]) continue;
        live[n] = true;
        if (is_and(n)) {
            stack.push_back(aig_node(fanin0_[n]));
            stack.push_back(aig_node(fanin1_[n]));
        }
    }
    for (std::uint32_t n = 1; n < fanin0_.size(); ++n) {
        if (!live[n] || !is_and(n)) continue;
        const AigLit a = remap[aig_node(fanin0_[n])] ^ (fanin0_[n] & 1u);
        const AigLit b = remap[aig_node(fanin1_[n])] ^ (fanin1_[n] & 1u);
        remap[n] = fresh.land(a, b);
    }
    for (const auto& [name, lit] : outputs_) {
        fresh.add_output(name, remap[aig_node(lit)] ^ (lit & 1u));
    }
    return fresh;
}

Aig Aig::from_netlist(const Netlist& nl) {
    if (!nl.sequential_instances().empty()) {
        throw std::invalid_argument("Aig::from_netlist: sequential netlist");
    }
    Aig aig;
    std::vector<AigLit> net_lit(nl.num_nets(), 0);
    for (const NetId pi : nl.primary_inputs()) {
        net_lit[pi] = aig.add_input(std::string(nl.net_name(pi)));
    }
    for (const InstId i : nl.topological_order()) {
        const Instance& inst = nl.instance(i);
        const CellFunction fn = nl.type_of(i).function;
        const auto in = [&](int p) { return net_lit[inst.fanin[static_cast<std::size_t>(p)]]; };
        AigLit y = 0;
        switch (fn) {
            case CellFunction::Const0: y = const0(); break;
            case CellFunction::Const1: y = const1(); break;
            case CellFunction::Buf: y = in(0); break;
            case CellFunction::Inv: y = aig_not(in(0)); break;
            case CellFunction::And2: y = aig.land(in(0), in(1)); break;
            case CellFunction::And3: y = aig.land(aig.land(in(0), in(1)), in(2)); break;
            case CellFunction::And4:
                y = aig.land(aig.land(in(0), in(1)), aig.land(in(2), in(3)));
                break;
            case CellFunction::Nand2: y = aig_not(aig.land(in(0), in(1))); break;
            case CellFunction::Nand3:
                y = aig_not(aig.land(aig.land(in(0), in(1)), in(2)));
                break;
            case CellFunction::Nand4:
                y = aig_not(aig.land(aig.land(in(0), in(1)), aig.land(in(2), in(3))));
                break;
            case CellFunction::Or2: y = aig.lor(in(0), in(1)); break;
            case CellFunction::Or3: y = aig.lor(aig.lor(in(0), in(1)), in(2)); break;
            case CellFunction::Or4:
                y = aig.lor(aig.lor(in(0), in(1)), aig.lor(in(2), in(3)));
                break;
            case CellFunction::Nor2: y = aig_not(aig.lor(in(0), in(1))); break;
            case CellFunction::Nor3:
                y = aig_not(aig.lor(aig.lor(in(0), in(1)), in(2)));
                break;
            case CellFunction::Nor4:
                y = aig_not(aig.lor(aig.lor(in(0), in(1)), aig.lor(in(2), in(3))));
                break;
            case CellFunction::Xor2: y = aig.lxor(in(0), in(1)); break;
            case CellFunction::Xnor2: y = aig_not(aig.lxor(in(0), in(1))); break;
            case CellFunction::Xor3: y = aig.lxor(aig.lxor(in(0), in(1)), in(2)); break;
            case CellFunction::Mux2: y = aig.lmux(in(0), in(1), in(2)); break;
            case CellFunction::Aoi21:
                y = aig_not(aig.lor(aig.land(in(0), in(1)), in(2)));
                break;
            case CellFunction::Oai21:
                y = aig_not(aig.land(aig.lor(in(0), in(1)), in(2)));
                break;
            case CellFunction::Maj3: y = aig.lmaj(in(0), in(1), in(2)); break;
            case CellFunction::Dff:
            case CellFunction::ScanDff:
                throw std::logic_error("from_netlist: unexpected flop");
        }
        net_lit[inst.output] = y;
    }
    for (const auto& [name, net] : nl.primary_outputs()) {
        aig.add_output(name, net_lit[net]);
    }
    return aig;
}

}  // namespace janus
