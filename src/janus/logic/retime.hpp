#pragma once
/// \file retime.hpp
/// Minimum-period retiming (Leiserson-Saxe) on a register-weighted
/// dataflow graph. The flow keeps register boundaries fixed during
/// synthesis; this module answers "what clock period could register
/// moves achieve?" and produces the retiming labels that realize it.

#include <cstdint>
#include <optional>
#include <vector>

#include "janus/netlist/netlist.hpp"

namespace janus {

/// A retiming graph: nodes with combinational delays, directed edges with
/// register counts.
struct RetimeGraph {
    std::vector<double> node_delay;
    struct Edge {
        std::uint32_t from = 0, to = 0;
        int registers = 0;
    };
    std::vector<Edge> edges;
    /// Node 0 is the host (environment) node with zero delay.
};

struct RetimeResult {
    bool feasible = false;
    double period = 0;
    /// Retiming label per node: registers moved from outputs to inputs.
    std::vector<int> labels;
    /// Register count after retiming (sum over edges).
    int total_registers = 0;
};

/// Tests whether `period` is achievable by retiming (Bellman-Ford on the
/// period constraint graph); labels returned on success.
RetimeResult retime_for_period(const RetimeGraph& g, double period);

/// Minimum achievable period via binary search over retime_for_period,
/// within `tolerance`.
RetimeResult min_period_retime(const RetimeGraph& g, double tolerance = 1.0);

/// Extracts the retiming graph of a sequential netlist: one node per
/// combinational instance (delay = instance delay under the wire model),
/// edges follow nets, flops become edge registers; primary I/O attach to
/// the host node 0.
RetimeGraph build_retime_graph(const Netlist& nl);

/// Combinational critical path of the graph as-is (period without
/// retiming) — the baseline the retimer improves on.
double graph_period(const RetimeGraph& g);

}  // namespace janus
