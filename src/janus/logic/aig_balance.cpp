#include "janus/logic/aig_balance.hpp"

#include <algorithm>
#include <queue>
#include <vector>

namespace janus {
namespace {

/// Collects the leaves of the maximal single-fanout AND tree rooted at
/// `node` (in the old AIG). Fanins that are complemented, inputs, or
/// shared (fanout > 1) stop the expansion.
void collect_and_leaves(const Aig& aig, const std::vector<std::uint32_t>& fanout,
                        AigLit lit, std::vector<AigLit>& leaves) {
    const std::uint32_t n = aig_node(lit);
    if (aig_is_complement(lit) || !aig.is_and(n) || fanout[n] > 1) {
        leaves.push_back(lit);
        return;
    }
    collect_and_leaves(aig, fanout, aig.fanin0(n), leaves);
    collect_and_leaves(aig, fanout, aig.fanin1(n), leaves);
}

}  // namespace

Aig balance(const Aig& aig) {
    Aig out;
    const auto fanout = aig.fanout_counts();
    std::vector<AigLit> remap(aig.num_nodes(), 0);
    std::vector<int> new_level(aig.num_nodes() * 4 + 8, 0);  // grown on demand

    for (std::size_t i = 0; i < aig.num_inputs(); ++i) {
        const AigLit nl = out.add_input(aig.input_name(i));
        remap[aig_node(aig.input(i))] = nl;
    }

    const auto level_of = [&](AigLit lit) {
        const std::uint32_t n = aig_node(lit);
        return n < new_level.size() ? new_level[n] : 0;
    };
    const auto set_level = [&](AigLit lit, int lvl) {
        const std::uint32_t n = aig_node(lit);
        if (n >= new_level.size()) new_level.resize(n + 1, 0);
        new_level[static_cast<std::size_t>(n)] = lvl;
    };

    for (const std::uint32_t n : aig.topological_order()) {
        if (!aig.is_and(n)) continue;
        // Gather the maximal AND tree in the old graph; translate leaves.
        std::vector<AigLit> old_leaves;
        collect_and_leaves(aig, fanout, aig.fanin0(n), old_leaves);
        collect_and_leaves(aig, fanout, aig.fanin1(n), old_leaves);

        // Min-heap on new levels: combine the two shallowest repeatedly.
        using Entry = std::pair<int, AigLit>;  // (level, literal)
        std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
        for (const AigLit l : old_leaves) {
            const AigLit mapped = remap[aig_node(l)] ^ (l & 1u);
            heap.emplace(level_of(mapped), mapped);
        }
        while (heap.size() > 1) {
            const auto [la, a] = heap.top();
            heap.pop();
            const auto [lb, b] = heap.top();
            heap.pop();
            const AigLit c = out.land(a, b);
            set_level(c, std::max(la, lb) + 1);
            heap.emplace(level_of(c), c);
        }
        remap[n] = heap.top().second;
    }

    for (const auto& [name, lit] : aig.outputs()) {
        out.add_output(name, remap[aig_node(lit)] ^ (lit & 1u));
    }
    return out.cleanup();
}

}  // namespace janus
