#include "janus/logic/equivalence.hpp"

#include <stdexcept>

#include "janus/logic/aig.hpp"
#include "janus/logic/sat.hpp"
#include "janus/util/rng.hpp"

namespace janus {

EquivalenceResult check_equivalence(const Netlist& a, const Netlist& b,
                                    const EquivalenceOptions& opts) {
    if (a.primary_inputs().size() != b.primary_inputs().size() ||
        a.primary_outputs().size() != b.primary_outputs().size()) {
        throw std::invalid_argument("check_equivalence: interface mismatch");
    }
    if (!a.sequential_instances().empty() || !b.sequential_instances().empty()) {
        throw std::invalid_argument("check_equivalence: sequential design");
    }
    EquivalenceResult res;
    const std::size_t n = a.primary_inputs().size();

    if (static_cast<int>(n) <= opts.exact_input_limit) {
        // Exact: compare output truth tables via the AIG (shared strashing
        // makes identical cones literally the same node).
        const Aig aa = Aig::from_netlist(a);
        const Aig ab = Aig::from_netlist(b);
        const auto ta = aa.output_truth_tables();
        const auto tb = ab.output_truth_tables();
        res.method = "proved";
        res.equivalent = true;
        for (std::size_t o = 0; o < ta.size(); ++o) {
            if (ta[o] == tb[o]) continue;
            res.equivalent = false;
            // Find a distinguishing minterm.
            for (std::uint64_t m = 0; m < ta[o].num_minterms_space(); ++m) {
                if (ta[o].bit(m) != tb[o].bit(m)) {
                    res.counterexample = m;
                    break;
                }
            }
            break;
        }
        res.vectors_checked = std::size_t{1} << n;
        return res;
    }

    // Wide designs: SAT miter proof within the decision budget.
    {
        const Aig aa = Aig::from_netlist(a);
        const Aig ab = Aig::from_netlist(b);
        if (const auto sat = sat_equivalent(aa, ab, opts.sat_decisions)) {
            res.method = "proved-sat";
            res.equivalent = *sat;
            return res;
        }
    }

    // Falsification by random simulation (SAT budget exhausted).
    Rng rng(opts.seed);
    res.method = "sampled";
    res.equivalent = true;
    for (std::size_t v = 0; v < opts.random_vectors; ++v) {
        std::vector<bool> pis(n);
        std::uint64_t packed = 0;
        for (std::size_t i = 0; i < n; ++i) {
            pis[i] = rng.next_bool();
            if (pis[i] && i < 64) packed |= (1ull << i);
        }
        const auto va = a.evaluate(pis, {});
        const auto vb = b.evaluate(pis, {});
        ++res.vectors_checked;
        for (std::size_t o = 0; o < a.primary_outputs().size(); ++o) {
            if (va[a.primary_outputs()[o].second] !=
                vb[b.primary_outputs()[o].second]) {
                res.equivalent = false;
                res.counterexample = packed;
                return res;
            }
        }
    }
    return res;
}

}  // namespace janus
