#pragma once
/// \file espresso.hpp
/// Espresso-style heuristic two-level minimization: the EXPAND /
/// IRREDUNDANT / REDUCE loop over an ON-set with optional don't-cares.
/// Panelist Macii names Espresso/Mini/MIS/SIS as the first wave of EDA
/// algorithms; this module is that wave's representative in JanusEDA.

#include "janus/logic/cover.hpp"

namespace janus {

/// Result of a minimization run.
struct EspressoResult {
    Cover cover;        ///< minimized ON-cover
    int iterations = 0; ///< EXPAND/REDUCE loop iterations executed
    int initial_cubes = 0;
    int initial_literals = 0;
};

/// Options controlling the loop.
struct EspressoOptions {
    int max_iterations = 8;
};

/// Minimizes `onset` given `dcset` (both over the same variables). The
/// returned cover is logically equivalent to the ON-set on all minterms
/// outside the DC-set, irredundant, and prime with respect to the
/// computed OFF-set.
EspressoResult espresso(const Cover& onset, const Cover& dcset,
                        const EspressoOptions& opts = {});

/// Convenience overload with an empty DC-set.
EspressoResult espresso(const Cover& onset);

/// EXPAND step: each cube is enlarged to a prime implicant against the
/// OFF-set (greedy literal raising). Exposed for tests/ablation.
Cover expand(const Cover& onset, const Cover& offset);

/// IRREDUNDANT step: removes cubes covered by the rest of the cover plus
/// the DC-set. Exposed for tests/ablation.
Cover irredundant(const Cover& cover, const Cover& dcset);

/// REDUCE step: shrinks each cube to the smallest cube that still covers
/// its essential minterms. Exposed for tests/ablation.
Cover reduce(const Cover& cover, const Cover& dcset);

}  // namespace janus
