#include "janus/logic/sop_cache.hpp"

#include "janus/logic/espresso.hpp"

namespace janus {
namespace {

std::uint64_t mix64(std::uint64_t x) {
    // splitmix64 finalizer: cheap, well-distributed over the shard count.
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

}  // namespace

std::size_t SopCache::KeyHash::operator()(const Key& k) const {
    std::uint64_t h = mix64(k.num_vars + 0x9e3779b97f4a7c15ull);
    for (const std::uint64_t w : k.words) h = mix64(h ^ w);
    return static_cast<std::size_t>(h);
}

Cover SopCache::minimized(const TruthTable& tt) {
    Key key;
    key.num_vars = static_cast<std::uint32_t>(tt.num_vars());
    key.words = tt.words();
    Shard& shard = shards_[KeyHash{}(key) % kShards];

    if (!enabled_) {
        {
            std::lock_guard<std::mutex> lock(shard.mutex);
            ++shard.stats.queries;
            ++shard.stats.misses;
            ++shard.stats.espresso_calls;
        }
        return espresso(Cover::from_truth_table(tt)).cover;
    }

    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        ++shard.stats.queries;
        const auto it = shard.map.find(key);
        if (it != shard.map.end()) {
            ++shard.stats.hits;
            return it->second;
        }
    }
    // Minimize outside the lock so concurrent misses in one shard don't
    // serialize behind Espresso. A racing thread may duplicate the work;
    // the first insert wins and both results are identical anyway.
    Cover cover = espresso(Cover::from_truth_table(tt)).cover;
    std::lock_guard<std::mutex> lock(shard.mutex);
    ++shard.stats.espresso_calls;
    const auto [it, inserted] = shard.map.emplace(std::move(key), std::move(cover));
    if (inserted) ++shard.stats.misses;
    return it->second;
}

SopCache::Stats SopCache::stats() const {
    Stats total;
    for (const Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        total.queries += shard.stats.queries;
        total.hits += shard.stats.hits;
        total.misses += shard.stats.misses;
        total.espresso_calls += shard.stats.espresso_calls;
    }
    return total;
}

std::size_t SopCache::size() const {
    std::size_t n = 0;
    for (const Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        n += shard.map.size();
    }
    return n;
}

}  // namespace janus
