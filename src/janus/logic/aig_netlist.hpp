#pragma once
/// \file aig_netlist.hpp
/// Bridge between parsed AIGER designs and the gate-level Netlist the
/// physical flow consumes, in both directions:
///
///   netlist_from_aiger : AigerDesign -> Netlist. AND nodes become AND2
///   instances, complemented literals memoized INV instances, latches DFF
///   instances stitched back around the combinational extraction (the
///   D pin gets the next-state cone, the Q net feeds everything that read
///   the latch output). The result runs synth -> place -> route -> STA
///   unmodified.
///
///   aiger_from_netlist : Netlist -> AigerDesign. Every combinational cell
///   function folds into Aig::land()/lor()/lxor() terms; DFF/SCAN_DFF cut
///   the graph (SCAN_DFF's next state keeps the full se ? si : d mux
///   semantics so the export stays cycle-accurate for scan designs).
///   Composing the two directions is the basis of the cross-format
///   equivalence tests in tests/ingest_test.cpp.
///
/// Latch power-up values survive the round-trip inside AigerDesign, but
/// the Netlist itself does not model reset state (the flow is
/// timing-driven); a reset=1 latch maps to a plain DFF like any other.

#include <memory>

#include "janus/logic/aiger.hpp"
#include "janus/netlist/cell_library.hpp"
#include "janus/netlist/netlist.hpp"

namespace janus {

/// Instantiates `design` over `lib` (needs AND2, INV, DFF; BUF and
/// constant cells for degenerate outputs). Throws std::runtime_error if
/// the library lacks a required function.
Netlist netlist_from_aiger(const AigerDesign& design,
                           std::shared_ptr<const CellLibrary> lib);

/// Wraps a pure-combinational Aig as an AigerDesign (no latches) and
/// instantiates it; `name` becomes the netlist name.
Netlist netlist_from_aig(const Aig& aig, std::shared_ptr<const CellLibrary> lib,
                         const std::string& name = "aig");

/// Exports any netlist (combinational or sequential) as an AIGER design:
/// cells fold into AND/INV structure, sequential cells become latches.
/// Input, output and latch order follow primary_inputs() /
/// primary_outputs() / sequential_instances() order.
AigerDesign aiger_from_netlist(const Netlist& nl);

}  // namespace janus
