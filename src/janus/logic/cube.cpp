#include "janus/logic/cube.hpp"

#include <cassert>
#include <stdexcept>

namespace janus {
namespace {

constexpr int kVarsPerWord = 32;

std::size_t word_of(int var) { return static_cast<std::size_t>(var) / kVarsPerWord; }
int shift_of(int var) { return (var % kVarsPerWord) * 2; }

}  // namespace

Cube::Cube(int num_vars) : num_vars_(num_vars) {
    if (num_vars < 0) throw std::invalid_argument("Cube: negative num_vars");
    bits_.assign((static_cast<std::size_t>(num_vars) + kVarsPerWord - 1) / kVarsPerWord,
                 ~0ull);
    // Clear the unused tail so equality works word-wise.
    if (num_vars % kVarsPerWord != 0 && !bits_.empty()) {
        const int used = (num_vars % kVarsPerWord) * 2;
        bits_.back() &= (used == 64) ? ~0ull : ((1ull << used) - 1);
    }
    if (num_vars == 0) bits_.clear();
}

Cube Cube::from_string(const std::string& s) {
    Cube c(static_cast<int>(s.size()));
    for (std::size_t i = 0; i < s.size(); ++i) {
        switch (s[i]) {
            case '0': c.set(static_cast<int>(i), Literal::Neg); break;
            case '1': c.set(static_cast<int>(i), Literal::Pos); break;
            case '-': c.set(static_cast<int>(i), Literal::DC); break;
            default: throw std::invalid_argument("Cube::from_string: bad char");
        }
    }
    return c;
}

Literal Cube::get(int var) const {
    assert(var >= 0 && var < num_vars_);
    return static_cast<Literal>((bits_[word_of(var)] >> shift_of(var)) & 0b11);
}

void Cube::set(int var, Literal lit) {
    assert(var >= 0 && var < num_vars_);
    auto& w = bits_[word_of(var)];
    w &= ~(0b11ull << shift_of(var));
    w |= static_cast<std::uint64_t>(lit) << shift_of(var);
}

bool Cube::is_empty() const {
    for (int v = 0; v < num_vars_; ++v) {
        if (get(v) == Literal::Empty) return true;
    }
    return false;
}

bool Cube::is_full() const {
    for (int v = 0; v < num_vars_; ++v) {
        if (get(v) != Literal::DC) return false;
    }
    return true;
}

int Cube::num_literals() const {
    int n = 0;
    for (int v = 0; v < num_vars_; ++v) {
        const Literal l = get(v);
        if (l == Literal::Pos || l == Literal::Neg) ++n;
    }
    return n;
}

bool Cube::contains(const Cube& other) const {
    assert(num_vars_ == other.num_vars_);
    for (std::size_t i = 0; i < bits_.size(); ++i) {
        if ((bits_[i] | other.bits_[i]) != bits_[i]) return false;
    }
    return true;
}

int Cube::distance(const Cube& other) const {
    assert(num_vars_ == other.num_vars_);
    int d = 0;
    for (int v = 0; v < num_vars_; ++v) {
        const auto a = static_cast<unsigned>(get(v));
        const auto b = static_cast<unsigned>(other.get(v));
        if ((a & b) == 0) ++d;
    }
    return d;
}

std::optional<Cube> Cube::intersect(const Cube& other) const {
    assert(num_vars_ == other.num_vars_);
    Cube r(num_vars_);
    for (std::size_t i = 0; i < bits_.size(); ++i) r.bits_[i] = bits_[i] & other.bits_[i];
    if (r.is_empty()) return std::nullopt;
    return r;
}

Cube Cube::supercube(const Cube& other) const {
    assert(num_vars_ == other.num_vars_);
    Cube r(num_vars_);
    for (std::size_t i = 0; i < bits_.size(); ++i) r.bits_[i] = bits_[i] | other.bits_[i];
    return r;
}

std::optional<Cube> Cube::consensus(const Cube& other) const {
    if (distance(other) != 1) return std::nullopt;
    Cube r(num_vars_);
    for (int v = 0; v < num_vars_; ++v) {
        const auto a = static_cast<unsigned>(get(v));
        const auto b = static_cast<unsigned>(other.get(v));
        const unsigned meet = a & b;
        r.set(v, meet == 0 ? Literal::DC : static_cast<Literal>(meet));
    }
    return r;
}

bool Cube::covers_minterm(std::uint64_t assignment) const {
    for (int v = 0; v < num_vars_; ++v) {
        const Literal l = get(v);
        const bool bit = (assignment >> v) & 1;
        if (l == Literal::Empty) return false;
        if (l == Literal::Pos && !bit) return false;
        if (l == Literal::Neg && bit) return false;
    }
    return true;
}

std::string Cube::to_string() const {
    std::string s;
    s.reserve(static_cast<std::size_t>(num_vars_));
    for (int v = 0; v < num_vars_; ++v) {
        switch (get(v)) {
            case Literal::Neg: s.push_back('0'); break;
            case Literal::Pos: s.push_back('1'); break;
            case Literal::DC: s.push_back('-'); break;
            case Literal::Empty: s.push_back('x'); break;
        }
    }
    return s;
}

}  // namespace janus
