#include "janus/logic/tech_map.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <memory>
#include <stdexcept>

#include "janus/logic/cut_enum.hpp"
#include "janus/util/thread_pool.hpp"

namespace janus {
namespace {

/// A library pattern: cell + input permutation/phases + output phase.
struct Pattern {
    std::size_t cell = 0;
    std::vector<int> perm;      ///< cut leaf index feeding each cell pin
    unsigned input_inv = 0;     ///< bit i: invert the signal into cell pin i
    bool output_inv = false;
    double cost = 0;            ///< cell area + inverter areas
};

/// Match tables per cut size k: truth-table words -> cheapest pattern.
struct MatchTables {
    std::map<std::vector<std::uint64_t>, Pattern> table[kMaxFanin + 1];
    double inv_area = 0;
    std::size_t inv_cell = 0;
};

MatchTables build_match_tables(const CellLibrary& lib) {
    MatchTables mt;
    const auto inv = lib.find_function(CellFunction::Inv);
    if (!inv) throw std::runtime_error("tech_map: library lacks INV");
    mt.inv_cell = *inv;
    mt.inv_area = lib.cell(*inv).area_um2;

    for (std::size_t ci = 0; ci < lib.size(); ++ci) {
        const CellType& cell = lib.cell(ci);
        if (is_sequential(cell.function) || cell.drive != 1) continue;
        const int k = function_arity(cell.function);
        if (k < 1 || k > kMaxFanin) continue;

        // Base truth table of the cell over its own pins.
        TruthTable base(k);
        for (std::uint64_t m = 0; m < base.num_minterms_space(); ++m) {
            base.set_bit(m, evaluate_function(cell.function, static_cast<unsigned>(m)));
        }

        std::vector<int> perm(static_cast<std::size_t>(k));
        for (int i = 0; i < k; ++i) perm[static_cast<std::size_t>(i)] = i;
        std::sort(perm.begin(), perm.end());
        do {
            for (unsigned phase = 0; phase < (1u << k); ++phase) {
                for (const bool oinv : {false, true}) {
                    // Function seen at the cut: variable j of the cut feeds
                    // cell pin i where perm[i] = j, with optional inversion.
                    TruthTable tt(k);
                    for (std::uint64_t m = 0; m < tt.num_minterms_space(); ++m) {
                        unsigned pins = 0;
                        for (int pin = 0; pin < k; ++pin) {
                            const int leaf = perm[static_cast<std::size_t>(pin)];
                            bool v = (m >> leaf) & 1;
                            if (phase & (1u << pin)) v = !v;
                            if (v) pins |= (1u << pin);
                        }
                        bool y = evaluate_function(cell.function, pins);
                        if (oinv) y = !y;
                        tt.set_bit(m, y);
                    }
                    Pattern p;
                    p.cell = ci;
                    p.perm = perm;
                    p.input_inv = phase;
                    p.output_inv = oinv;
                    p.cost = cell.area_um2 +
                             mt.inv_area * (std::popcount(phase) + (oinv ? 1 : 0));
                    auto& slot = mt.table[k];
                    const auto it = slot.find(tt.words());
                    if (it == slot.end() || p.cost < it->second.cost) {
                        slot[tt.words()] = std::move(p);
                    }
                }
            }
        } while (std::next_permutation(perm.begin(), perm.end()));
    }
    return mt;
}

/// Chosen implementation of one AIG node.
struct Choice {
    Cut cut;
    Pattern pattern;
    double area_flow = 0;
};

}  // namespace

Netlist tech_map(const Aig& aig, std::shared_ptr<const CellLibrary> lib,
                 const TechMapOptions& opts, TechMapStats* stats) {
    const MatchTables mt = build_match_tables(*lib);
    const int workers = std::max(1, opts.workers);
    CutEnumOptions ce;
    ce.max_leaves = std::min(opts.cut_size, kMaxFanin);
    ce.max_cuts_per_node = opts.max_cuts_per_node;
    ce.workers = workers;
    const CutSet cuts = enumerate_cuts(aig, ce);
    const auto fanout = aig.fanout_counts();

    // Area-flow DP, eval-parallel per topological level: a node's match is
    // a pure function of the frozen match tables and the area-flow of its
    // leaves (strictly lower levels), so one level's nodes are independent
    // tasks writing disjoint choice/af slots — byte-identical for any
    // worker count.
    std::vector<Choice> choice(aig.num_nodes());
    std::vector<double> af(aig.num_nodes(), 0.0);
    struct MatchCounters {
        std::uint64_t cuts_evaluated = 0;
        std::uint64_t matched_cuts = 0;
    };
    const auto match_node = [&](std::uint32_t n, CutConeEvaluator& evaluator,
                                MatchCounters& counters) {
        double best = -1;
        for (const Cut& cut : cuts.cuts[n]) {
            if (cut.trivial()) continue;
            ++counters.cuts_evaluated;
            const TruthTable tt = evaluator.evaluate(n, cut);
            const auto k = static_cast<int>(cut.leaves.size());
            const auto it = mt.table[k].find(tt.words());
            if (it == mt.table[k].end()) continue;
            ++counters.matched_cuts;
            double flow = it->second.cost;
            for (const std::uint32_t l : cut.leaves) flow += af[l];
            if (best < 0 || flow < best) {
                best = flow;
                choice[n] = Choice{cut, it->second, flow};
            }
        }
        if (best < 0) {
            throw std::logic_error("tech_map: unmatched node (library too small)");
        }
        af[n] = best / std::max<std::uint32_t>(1, fanout[n]);
    };

    MatchCounters total;
    if (workers == 1) {
        CutConeEvaluator evaluator(aig);
        for (const std::uint32_t n : aig.topological_order()) {
            if (!aig.is_and(n)) continue;
            match_node(n, evaluator, total);
        }
    } else {
        const std::vector<int> levels = aig.levels();
        int max_level = 0;
        for (std::uint32_t n = 0; n < aig.num_nodes(); ++n) {
            if (aig.is_and(n)) max_level = std::max(max_level, levels[n]);
        }
        std::vector<std::vector<std::uint32_t>> by_level(
            static_cast<std::size_t>(max_level) + 1);
        for (std::uint32_t n = 0; n < aig.num_nodes(); ++n) {
            if (aig.is_and(n)) {
                by_level[static_cast<std::size_t>(levels[n])].push_back(n);
            }
        }
        ThreadPool pool(workers);
        std::vector<CutConeEvaluator> evaluators;
        std::vector<MatchCounters> counters(static_cast<std::size_t>(workers));
        evaluators.reserve(static_cast<std::size_t>(workers));
        for (int w = 0; w < workers; ++w) evaluators.emplace_back(aig);
        for (const auto& nodes : by_level) {
            if (nodes.empty()) continue;
            const std::size_t chunks =
                std::min(nodes.size(), static_cast<std::size_t>(workers));
            pool.for_each_index(chunks, [&](std::size_t c) {
                for (std::size_t i = c; i < nodes.size(); i += chunks) {
                    match_node(nodes[i], evaluators[c], counters[c]);
                }
            });
        }
        // Each node is counted exactly once whatever the chunk layout, so
        // the summed totals match the serial sweep.
        for (const MatchCounters& c : counters) {
            total.cuts_evaluated += c.cuts_evaluated;
            total.matched_cuts += c.matched_cuts;
        }
    }
    if (stats) {
        stats->cuts_evaluated = total.cuts_evaluated;
        stats->matched_cuts = total.matched_cuts;
        stats->workers = workers;
    }

    // Cover from outputs.
    std::vector<bool> required(aig.num_nodes(), false);
    std::vector<std::uint32_t> stack;
    for (const auto& [name, lit] : aig.outputs()) {
        (void)name;
        const std::uint32_t n = aig_node(lit);
        if (aig.is_and(n)) stack.push_back(n);
    }
    while (!stack.empty()) {
        const std::uint32_t n = stack.back();
        stack.pop_back();
        if (required[n]) continue;
        required[n] = true;
        for (const std::uint32_t l : choice[n].cut.leaves) {
            if (aig.is_and(l)) stack.push_back(l);
        }
    }

    // Emit the netlist.
    Netlist nl(lib, "mapped");
    std::vector<NetId> signal(aig.num_nodes(), kNoNet);  // positive polarity
    std::vector<NetId> inverted(aig.num_nodes(), kNoNet);
    for (std::size_t i = 0; i < aig.num_inputs(); ++i) {
        signal[aig_node(aig.input(i))] = nl.add_primary_input(aig.input_name(i));
    }
    const std::size_t inv_cell = mt.inv_cell;
    int aux = 0;
    const auto inverted_net = [&](std::uint32_t node) {
        if (inverted[node] == kNoNet) {
            assert(signal[node] != kNoNet);
            const InstId g = nl.add_instance("minv" + std::to_string(aux++), inv_cell,
                                             {signal[node]});
            inverted[node] = nl.instance(g).output;
        }
        return inverted[node];
    };

    for (const std::uint32_t n : aig.topological_order()) {
        if (!aig.is_and(n) || !required[n]) continue;
        const Choice& ch = choice[n];
        const CellType& cell = lib->cell(ch.pattern.cell);
        const int k = function_arity(cell.function);
        std::vector<NetId> pins(static_cast<std::size_t>(k));
        for (int pin = 0; pin < k; ++pin) {
            const std::uint32_t leaf =
                ch.cut.leaves[static_cast<std::size_t>(ch.pattern.perm[static_cast<std::size_t>(pin)])];
            pins[static_cast<std::size_t>(pin)] =
                (ch.pattern.input_inv & (1u << pin)) ? inverted_net(leaf) : signal[leaf];
        }
        const InstId g = nl.add_instance("m" + std::to_string(n), ch.pattern.cell, pins);
        if (ch.pattern.output_inv) {
            const InstId gi = nl.add_instance("mo" + std::to_string(n), inv_cell,
                                              {nl.instance(g).output});
            signal[n] = nl.instance(gi).output;
            inverted[n] = nl.instance(g).output;
        } else {
            signal[n] = nl.instance(g).output;
        }
    }

    // Outputs (constants and direct PI feedthroughs included).
    const auto tie = [&](bool v) {
        const auto cell = lib->find_function(v ? CellFunction::Const1 : CellFunction::Const0);
        if (!cell) throw std::runtime_error("tech_map: library lacks tie cells");
        const InstId g = nl.add_instance("tie" + std::to_string(aux++), *cell, {});
        return nl.instance(g).output;
    };
    for (const auto& [name, lit] : aig.outputs()) {
        const std::uint32_t n = aig_node(lit);
        NetId net;
        if (n == 0) {
            net = tie(aig_is_complement(lit));
        } else {
            net = aig_is_complement(lit) ? inverted_net(n) : signal[n];
        }
        nl.add_primary_output(name, net);
    }
    return nl;
}

Netlist naive_map(const Aig& aig, std::shared_ptr<const CellLibrary> lib) {
    const auto and2 = lib->find_function(CellFunction::And2);
    const auto inv = lib->find_function(CellFunction::Inv);
    if (!and2 || !inv) throw std::runtime_error("naive_map: library lacks AND2/INV");

    Netlist nl(lib, "naive");
    std::vector<NetId> signal(aig.num_nodes(), kNoNet);
    std::vector<NetId> inverted(aig.num_nodes(), kNoNet);
    for (std::size_t i = 0; i < aig.num_inputs(); ++i) {
        signal[aig_node(aig.input(i))] = nl.add_primary_input(aig.input_name(i));
    }
    int aux = 0;
    const auto net_of = [&](AigLit lit) {
        const std::uint32_t n = aig_node(lit);
        if (!aig_is_complement(lit)) return signal[n];
        if (inverted[n] == kNoNet) {
            const InstId g =
                nl.add_instance("ninv" + std::to_string(aux++), *inv, {signal[n]});
            inverted[n] = nl.instance(g).output;
        }
        return inverted[n];
    };

    for (const std::uint32_t n : aig.topological_order()) {
        if (!aig.is_and(n)) continue;
        const NetId a = net_of(aig.fanin0(n));
        const NetId b = net_of(aig.fanin1(n));
        const InstId g = nl.add_instance("n" + std::to_string(n), *and2, {a, b});
        signal[n] = nl.instance(g).output;
    }

    const auto tie = [&](bool v) {
        const auto cell = lib->find_function(v ? CellFunction::Const1 : CellFunction::Const0);
        if (!cell) throw std::runtime_error("naive_map: library lacks tie cells");
        const InstId g = nl.add_instance("tie" + std::to_string(aux++), *cell, {});
        return nl.instance(g).output;
    };
    for (const auto& [name, lit] : aig.outputs()) {
        const std::uint32_t n = aig_node(lit);
        const NetId net = (n == 0) ? tie(aig_is_complement(lit)) : net_of(lit);
        nl.add_primary_output(name, net);
    }
    return nl;
}

}  // namespace janus
