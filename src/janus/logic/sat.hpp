#pragma once
/// \file sat.hpp
/// A small CNF SAT solver (DPLL with unit propagation and conflict
/// counting) plus Tseitin encoding of AIGs. Powers proof-strength
/// combinational equivalence checking beyond the truth-table limit.

#include <cstdint>
#include <optional>
#include <vector>

#include "janus/logic/aig.hpp"

namespace janus {

/// A literal: variable index << 1 | negated. Variable 0 is reserved.
using SatLit = std::uint32_t;
constexpr SatLit sat_lit(std::uint32_t var, bool neg) {
    return (var << 1) | static_cast<SatLit>(neg);
}
constexpr std::uint32_t sat_var(SatLit l) { return l >> 1; }
constexpr bool sat_neg(SatLit l) { return l & 1u; }
constexpr SatLit sat_not(SatLit l) { return l ^ 1u; }

/// CNF formula builder + solver.
class SatSolver {
  public:
    SatSolver() = default;

    /// Allocates a fresh variable (1-based ids).
    std::uint32_t new_var();
    std::uint32_t num_vars() const { return num_vars_; }

    /// Adds a clause (disjunction of literals). An empty clause makes the
    /// formula trivially unsatisfiable.
    void add_clause(std::vector<SatLit> clause);

    enum class Result { Sat, Unsat, Unknown };

    /// DPLL search with a decision budget; Unknown when exhausted.
    Result solve(std::uint64_t max_decisions = 10'000'000);

    /// Model access after Sat: value of a variable.
    bool model_value(std::uint32_t var) const;

    std::size_t num_clauses() const { return clauses_.size(); }
    std::uint64_t decisions() const { return decisions_; }

  private:
    std::uint32_t num_vars_ = 0;
    std::vector<std::vector<SatLit>> clauses_;
    std::vector<signed char> model_;  // 0 unknown, 1 true, -1 false
    std::uint64_t decisions_ = 0;

    enum class Propagate { Ok, Conflict };
    Propagate propagate(std::vector<std::uint32_t>& trail);
    bool dpll(std::uint64_t budget);
};

/// Tseitin-encodes `aig` into `solver`; returns one SAT literal per AIG
/// output and records each input's SAT variable in `input_vars` (shared
/// across calls so two designs can be encoded over the same inputs).
std::vector<SatLit> encode_aig(SatSolver& solver, const Aig& aig,
                               std::vector<std::uint32_t>& input_vars);

/// Builds the miter of two same-interface AIGs and decides equivalence.
/// Returns true/false, or nullopt when the decision budget ran out.
std::optional<bool> sat_equivalent(const Aig& a, const Aig& b,
                                   std::uint64_t max_decisions = 10'000'000);

}  // namespace janus
