#include "janus/logic/aiger.hpp"

#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace janus {
namespace {

constexpr AigLit kUndef = 0xFFFFFFFFu;

/// Header counts cap: a hostile M would otherwise size the literal map.
constexpr std::uint64_t kMaxVars = 1u << 28;

[[noreturn]] void fail(const std::string& why) {
    throw std::runtime_error("read_aiger: " + why);
}

std::string chomp(std::string line) {
    while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) {
        line.pop_back();
    }
    return line;
}

std::vector<std::uint64_t> parse_numbers(const std::string& line,
                                         const std::string& what,
                                         std::size_t min_count,
                                         std::size_t max_count) {
    std::istringstream ls(line);
    std::vector<std::uint64_t> out;
    std::uint64_t v = 0;
    while (ls >> v) out.push_back(v);
    std::string rest;
    if (ls.clear(), ls >> rest) fail(what + ": trailing token '" + rest + "'");
    if (out.size() < min_count || out.size() > max_count) {
        fail(what + ": expected " + std::to_string(min_count) +
             (max_count != min_count ? ".." + std::to_string(max_count) : "") +
             " numbers, got " + std::to_string(out.size()));
    }
    return out;
}

/// One LEB128-style delta (7 data bits per byte, MSB = continue).
std::uint32_t decode_delta(std::istream& is, std::size_t gate) {
    std::uint32_t x = 0;
    int shift = 0;
    while (true) {
        const int c = is.get();
        if (c == std::istream::traits_type::eof()) {
            fail("truncated binary AIGER (EOF inside the delta code of and gate " +
                 std::to_string(gate) + ")");
        }
        if (shift > 28 || (shift == 28 && (c & 0x7f) > 0x0f)) {
            fail("overlong delta code");
        }
        x |= static_cast<std::uint32_t>(c & 0x7f) << shift;
        if (!(c & 0x80)) return x;
        shift += 7;
    }
}

void encode_delta(std::ostream& os, std::uint32_t x) {
    while (x & ~0x7fu) {
        os.put(static_cast<char>(0x80 | (x & 0x7f)));
        x >>= 7;
    }
    os.put(static_cast<char>(x));
}

struct Header {
    bool binary = false;
    std::uint64_t m = 0, i = 0, l = 0, o = 0, a = 0;
};

Header read_header(std::istream& is) {
    std::string line;
    if (!std::getline(is, line)) fail("empty input");
    line = chomp(line);
    std::istringstream ls(line);
    std::string magic;
    ls >> magic;
    Header h;
    if (magic == "aig") {
        h.binary = true;
    } else if (magic != "aag") {
        fail("bad magic '" + magic + "' (expected aag or aig)");
    }
    std::string rest;
    std::getline(ls, rest);
    // Extended headers (B C J F) are accepted when the extra counts are 0.
    const auto nums = parse_numbers(rest, "header", 5, 9);
    h.m = nums[0];
    h.i = nums[1];
    h.l = nums[2];
    h.o = nums[3];
    h.a = nums[4];
    for (std::size_t k = 5; k < nums.size(); ++k) {
        if (nums[k] != 0) fail("bad/constraint/justice/fairness sections unsupported");
    }
    if (h.m > kMaxVars) fail("header M too large");
    if (h.i + h.l + h.a > h.m) fail("header: I + L + A exceeds M");
    return h;
}

/// Shared post-node state: literal resolution plus symbol/comment tail.
struct ReaderState {
    AigerDesign design;
    std::vector<AigLit> var2lit;  ///< aiger variable -> Aig literal

    AigLit resolve(std::uint64_t file_lit, const char* what) const {
        const std::uint64_t var = file_lit >> 1;
        if (var >= var2lit.size()) {
            fail(std::string(what) + ": literal " + std::to_string(file_lit) +
                 " exceeds header M");
        }
        const AigLit base = var2lit[var];
        if (base == kUndef) {
            fail(std::string(what) + ": literal " + std::to_string(file_lit) +
                 " references an undefined variable (non-topological input?)");
        }
        return (file_lit & 1) ? aig_not(base) : base;
    }
};

void read_symbols_and_comments(std::istream& is, ReaderState& st,
                               std::size_t num_outputs) {
    std::string line;
    bool in_comment = false;
    while (std::getline(is, line)) {
        line = chomp(line);
        if (in_comment) continue;  // comment body: ignored
        if (line.empty()) continue;
        if (line == "c") {
            in_comment = true;
            continue;
        }
        const char kind = line[0];
        if (kind != 'i' && kind != 'l' && kind != 'o') {
            fail("unexpected line in symbol section: '" + line + "'");
        }
        std::istringstream ls(line.substr(1));
        std::uint64_t pos = 0;
        std::string name;
        if (!(ls >> pos) || !std::getline(ls, name) || name.size() < 2 ||
            name[0] != ' ') {
            fail("malformed symbol line: '" + line + "'");
        }
        name.erase(0, 1);
        if (kind == 'i') {
            if (pos >= st.design.num_inputs) fail("symbol i" + std::to_string(pos) + " out of range");
            st.design.aig.set_input_name(pos, name);
        } else if (kind == 'l') {
            if (pos >= st.design.latches.size()) fail("symbol l" + std::to_string(pos) + " out of range");
            st.design.latches[pos].name = name;
            st.design.aig.set_input_name(st.design.num_inputs + pos, name);
        } else {
            if (pos >= num_outputs) fail("symbol o" + std::to_string(pos) + " out of range");
            st.design.aig.set_output_name(pos, name);
        }
    }
}

}  // namespace

AigerDesign read_aiger(std::istream& is, const std::string& name) {
    const Header h = read_header(is);
    ReaderState st;
    st.design.name = name;
    st.design.num_inputs = h.i;
    st.design.file_ands = h.a;
    st.var2lit.assign(h.m + 1, kUndef);
    st.var2lit[0] = Aig::const0();

    std::string line;
    const auto next_line = [&](const char* what) -> std::string {
        if (!std::getline(is, line)) fail(std::string("unexpected EOF in ") + what);
        return chomp(line);
    };

    // Inputs: explicit literals in ASCII, implicit 2..2I in binary.
    for (std::uint64_t k = 0; k < h.i; ++k) {
        std::uint64_t lit = 2 * (k + 1);
        if (!h.binary) {
            lit = parse_numbers(next_line("input section"), "input", 1, 1)[0];
            if (lit < 2 || (lit & 1)) fail("input literal must be even and nonzero");
        }
        const std::uint64_t var = lit >> 1;
        if (var > h.m) fail("input literal exceeds header M");
        if (st.var2lit[var] != kUndef) fail("input variable defined twice");
        st.var2lit[var] = st.design.aig.add_input("i" + std::to_string(k));
    }

    // Latches: current-state variables become pseudo-inputs; next-state
    // literals resolve after the and section.
    struct PendingLatch {
        std::uint64_t next = 0;
        int reset = 0;
    };
    std::vector<PendingLatch> pending_latches;
    for (std::uint64_t k = 0; k < h.l; ++k) {
        const std::string l = next_line("latch section");
        std::uint64_t cur = 2 * (h.i + k + 1);
        std::vector<std::uint64_t> nums;
        if (h.binary) {
            nums = parse_numbers(l, "latch", 1, 2);
        } else {
            nums = parse_numbers(l, "latch", 2, 3);
            cur = nums[0];
            nums.erase(nums.begin());
            if (cur < 2 || (cur & 1)) fail("latch literal must be even and nonzero");
        }
        PendingLatch pl;
        pl.next = nums[0];
        if (nums.size() == 2) {
            if (nums[1] == 0 || nums[1] == 1) {
                pl.reset = static_cast<int>(nums[1]);
            } else if (nums[1] == cur) {
                fail("uninitialized latch reset (reset == latch literal) unsupported");
            } else {
                fail("latch reset must be 0 or 1");
            }
        }
        const std::uint64_t var = cur >> 1;
        if (var > h.m) fail("latch literal exceeds header M");
        if (st.var2lit[var] != kUndef) fail("latch variable defined twice");
        st.var2lit[var] = st.design.aig.add_input("l" + std::to_string(k));
        pending_latches.push_back(pl);
    }

    // Outputs: literals may reference and gates defined below; buffer them.
    std::vector<std::uint64_t> pending_outputs;
    for (std::uint64_t k = 0; k < h.o; ++k) {
        pending_outputs.push_back(
            parse_numbers(next_line("output section"), "output", 1, 1)[0]);
    }

    // And gates.
    for (std::uint64_t k = 0; k < h.a; ++k) {
        std::uint64_t lhs = 0, rhs0 = 0, rhs1 = 0;
        if (h.binary) {
            lhs = 2 * (h.i + h.l + k + 1);
            const std::uint32_t d0 = decode_delta(is, k);
            if (d0 == 0 || d0 > lhs) fail("binary and gate " + std::to_string(k) +
                                          ": delta0 out of range");
            rhs0 = lhs - d0;
            const std::uint32_t d1 = decode_delta(is, k);
            if (d1 > rhs0) fail("binary and gate " + std::to_string(k) +
                                ": delta1 out of range");
            rhs1 = rhs0 - d1;
        } else {
            const auto nums = parse_numbers(next_line("and section"), "and gate", 3, 3);
            lhs = nums[0];
            rhs0 = nums[1];
            rhs1 = nums[2];
            if (lhs < 2 || (lhs & 1)) fail("and literal must be even and nonzero");
        }
        const std::uint64_t var = lhs >> 1;
        if (var > h.m) fail("and literal exceeds header M");
        if (st.var2lit[var] != kUndef) fail("and variable defined twice");
        st.var2lit[var] = st.design.aig.land(st.resolve(rhs0, "and gate"),
                                             st.resolve(rhs1, "and gate"));
    }

    for (std::size_t k = 0; k < pending_outputs.size(); ++k) {
        st.design.aig.add_output("o" + std::to_string(k),
                                 st.resolve(pending_outputs[k], "output"));
    }
    for (std::size_t k = 0; k < pending_latches.size(); ++k) {
        AigerLatch al;
        al.name = "l" + std::to_string(k);
        al.next = st.resolve(pending_latches[k].next, "latch next-state");
        al.reset = pending_latches[k].reset;
        st.design.latches.push_back(std::move(al));
    }

    read_symbols_and_comments(is, st, pending_outputs.size());
    return std::move(st.design);
}

AigerDesign read_aiger_file(const std::string& path) {
    std::ifstream f(path, std::ios::binary);
    if (!f) throw std::runtime_error("read_aiger_file: cannot open " + path);
    const auto slash = path.find_last_of('/');
    std::string stem = slash == std::string::npos ? path : path.substr(slash + 1);
    const auto dot = stem.find_last_of('.');
    if (dot != std::string::npos && dot > 0) stem.erase(dot);
    return read_aiger(f, stem);
}

// ------------------------------------------------------------------ writer

namespace {

/// Canonical file numbering: inputs (real + latch pseudo) keep their Aig
/// order as variables 1..I+L; AND nodes live in an output or next-state
/// cone follow in topological (node-index) order.
struct FileNumbering {
    std::vector<std::uint32_t> node2var;  ///< Aig node -> aiger variable (0 = dead)
    std::vector<std::uint32_t> and_nodes; ///< live ands, ascending node index
    std::uint64_t num_vars = 0;

    explicit FileNumbering(const AigerDesign& d) {
        const Aig& aig = d.aig;
        node2var.assign(aig.num_nodes(), 0);
        std::vector<char> live(aig.num_nodes(), 0);
        std::vector<std::uint32_t> stack;
        const auto mark = [&](AigLit lit) {
            if (!live[aig_node(lit)]) {
                live[aig_node(lit)] = 1;
                stack.push_back(aig_node(lit));
            }
        };
        for (const auto& [nm, lit] : aig.outputs()) {
            (void)nm;
            mark(lit);
        }
        for (const AigerLatch& l : d.latches) mark(l.next);
        while (!stack.empty()) {
            const std::uint32_t n = stack.back();
            stack.pop_back();
            if (!aig.is_and(n)) continue;
            mark(aig.fanin0(n));
            mark(aig.fanin1(n));
        }
        const std::size_t num_in = aig.num_inputs();
        for (std::size_t k = 0; k < num_in; ++k) {
            node2var[aig_node(aig.input(k))] = static_cast<std::uint32_t>(k + 1);
        }
        std::uint32_t next = static_cast<std::uint32_t>(num_in + 1);
        for (std::uint32_t n = 1; n < aig.num_nodes(); ++n) {
            if (aig.is_and(n) && live[n]) {
                and_nodes.push_back(n);
                node2var[n] = next++;
            }
        }
        num_vars = next - 1;
    }

    std::uint64_t lit(AigLit l) const {
        const std::uint64_t v = node2var[aig_node(l)];
        return 2 * v + (aig_is_complement(l) ? 1 : 0);
    }
};

void write_symbols(std::ostream& os, const AigerDesign& d) {
    const Aig& aig = d.aig;
    for (std::size_t k = 0; k < d.num_inputs; ++k) {
        os << "i" << k << " " << aig.input_name(k) << "\n";
    }
    for (std::size_t k = 0; k < d.latches.size(); ++k) {
        os << "l" << k << " " << d.latches[k].name << "\n";
    }
    for (std::size_t k = 0; k < aig.outputs().size(); ++k) {
        os << "o" << k << " " << aig.outputs()[k].first << "\n";
    }
    os << "c\n" << d.name << "\n";
}

}  // namespace

void write_aiger_ascii(std::ostream& os, const AigerDesign& d) {
    const FileNumbering num(d);
    const Aig& aig = d.aig;
    const std::size_t I = d.num_inputs;
    const std::size_t L = d.latches.size();
    os << "aag " << num.num_vars << " " << I << " " << L << " "
       << aig.outputs().size() << " " << num.and_nodes.size() << "\n";
    for (std::size_t k = 0; k < I; ++k) os << 2 * (k + 1) << "\n";
    for (std::size_t k = 0; k < L; ++k) {
        os << 2 * (I + k + 1) << " " << num.lit(d.latches[k].next);
        if (d.latches[k].reset != 0) os << " " << d.latches[k].reset;
        os << "\n";
    }
    for (const auto& [nm, lit] : aig.outputs()) {
        (void)nm;
        os << num.lit(lit) << "\n";
    }
    for (const std::uint32_t n : num.and_nodes) {
        const std::uint64_t lhs = 2 * num.node2var[n];
        std::uint64_t r0 = num.lit(aig.fanin0(n));
        std::uint64_t r1 = num.lit(aig.fanin1(n));
        if (r0 < r1) std::swap(r0, r1);
        os << lhs << " " << r0 << " " << r1 << "\n";
    }
    write_symbols(os, d);
}

void write_aiger_binary(std::ostream& os, const AigerDesign& d) {
    const FileNumbering num(d);
    const Aig& aig = d.aig;
    const std::size_t I = d.num_inputs;
    const std::size_t L = d.latches.size();
    os << "aig " << num.num_vars << " " << I << " " << L << " "
       << aig.outputs().size() << " " << num.and_nodes.size() << "\n";
    for (std::size_t k = 0; k < L; ++k) {
        os << num.lit(d.latches[k].next);
        if (d.latches[k].reset != 0) os << " " << d.latches[k].reset;
        os << "\n";
    }
    for (const auto& [nm, lit] : aig.outputs()) {
        (void)nm;
        os << num.lit(lit) << "\n";
    }
    for (const std::uint32_t n : num.and_nodes) {
        const std::uint64_t lhs = 2 * num.node2var[n];
        std::uint64_t r0 = num.lit(aig.fanin0(n));
        std::uint64_t r1 = num.lit(aig.fanin1(n));
        if (r0 < r1) std::swap(r0, r1);
        encode_delta(os, static_cast<std::uint32_t>(lhs - r0));
        encode_delta(os, static_cast<std::uint32_t>(r0 - r1));
    }
    write_symbols(os, d);
}

}  // namespace janus
