#pragma once
/// \file truth_table.hpp
/// Dense truth tables over up to 16 variables, bit-packed into 64-bit
/// words. Used by cut enumeration, technology mapping and the two-level
/// minimizer's correctness checks.

#include <cstdint>
#include <string>
#include <vector>

namespace janus {

/// A completely-specified Boolean function of `num_vars` inputs. Bit `m`
/// of the table is f(minterm m), with variable 0 as the least significant
/// input bit of m.
class TruthTable {
  public:
    /// Constant-zero function of n variables (0 <= n <= 16).
    explicit TruthTable(int num_vars = 0);

    static TruthTable constant(int num_vars, bool value);
    /// Projection x_i of n variables.
    static TruthTable variable(int num_vars, int var);

    int num_vars() const { return num_vars_; }
    std::uint64_t num_minterms_space() const { return 1ull << num_vars_; }

    bool bit(std::uint64_t minterm) const;
    void set_bit(std::uint64_t minterm, bool value);

    /// Number of minterms where f = 1.
    std::uint64_t count_ones() const;
    bool is_constant(bool value) const;

    /// True if variable `var` affects the function.
    bool depends_on(int var) const;
    /// Positive/negative cofactor with respect to `var` (same num_vars;
    /// result no longer depends on `var`).
    TruthTable cofactor(int var, bool value) const;

    /// Logical operators (operands must have equal num_vars).
    TruthTable operator&(const TruthTable& o) const;
    TruthTable operator|(const TruthTable& o) const;
    TruthTable operator^(const TruthTable& o) const;
    TruthTable operator~() const;
    bool operator==(const TruthTable& o) const;

    /// Reorders inputs: new input i is old input perm[i]. perm must be a
    /// permutation of 0..n-1.
    TruthTable permute(const std::vector<int>& perm) const;

    /// Hex string, most significant word first (canonical printing).
    std::string to_hex() const;
    /// 64-bit hash usable as a map key.
    std::uint64_t hash() const;

    const std::vector<std::uint64_t>& words() const { return words_; }

  private:
    int num_vars_;
    std::vector<std::uint64_t> words_;
    void mask_tail();
};

}  // namespace janus
