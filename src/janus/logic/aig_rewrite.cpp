#include "janus/logic/aig_rewrite.hpp"

#include <algorithm>
#include <functional>

#include "janus/logic/aig_balance.hpp"
#include "janus/logic/cut_enum.hpp"
#include "janus/logic/espresso.hpp"

namespace janus {
namespace {

/// Builds a minimized SOP of `tt` into `aig` over the given leaf literals.
/// Returns the output literal.
AigLit build_sop(Aig& aig, const TruthTable& tt, const std::vector<AigLit>& leaves) {
    if (tt.is_constant(false)) return Aig::const0();
    if (tt.is_constant(true)) return Aig::const1();
    // Minimize both polarities and build the cheaper one.
    const Cover on = espresso(Cover::from_truth_table(tt)).cover;
    const Cover off = espresso(Cover::from_truth_table(~tt)).cover;
    const bool use_off = off.size() * 4 + static_cast<std::size_t>(off.num_literals()) <
                         on.size() * 4 + static_cast<std::size_t>(on.num_literals());
    const Cover& cov = use_off ? off : on;

    AigLit result = Aig::const0();
    bool first = true;
    for (const Cube& c : cov.cubes()) {
        AigLit prod = Aig::const1();
        for (int v = 0; v < c.num_vars(); ++v) {
            const Literal l = c.get(v);
            if (l == Literal::DC) continue;
            const AigLit leaf = leaves[static_cast<std::size_t>(v)];
            prod = aig.land(prod, l == Literal::Pos ? leaf : aig_not(leaf));
        }
        result = first ? prod : aig.lor(result, prod);
        first = false;
    }
    return use_off ? aig_not(result) : result;
}

}  // namespace

std::vector<int> mffc_sizes(const Aig& aig) {
    std::vector<int> mffc(aig.num_nodes(), 0);
    const auto base_refs = aig.fanout_counts();
    for (const std::uint32_t n : aig.topological_order()) {
        if (!aig.is_and(n)) continue;
        // Trial dereference of n's cone on a scratch refcount copy.
        auto refs = base_refs;
        std::function<int(std::uint32_t)> deref = [&](std::uint32_t node) -> int {
            int size = 1;
            for (const AigLit f : {aig.fanin0(node), aig.fanin1(node)}) {
                const std::uint32_t fn = aig_node(f);
                if (!aig.is_and(fn)) continue;
                if (--refs[fn] == 0) size += deref(fn);
            }
            return size;
        };
        mffc[n] = deref(n);
    }
    return mffc;
}

Aig refactor(const Aig& aig, const RewriteOptions& opts, RewriteStats* stats) {
    CutEnumOptions ce;
    ce.max_leaves = opts.cut_size;
    ce.max_cuts_per_node = opts.max_cuts_per_node;
    const CutSet cuts = enumerate_cuts(aig, ce);
    const std::vector<int> mffc = mffc_sizes(aig);

    Aig out;
    std::vector<AigLit> remap(aig.num_nodes(), 0);
    for (std::size_t i = 0; i < aig.num_inputs(); ++i) {
        remap[aig_node(aig.input(i))] = out.add_input(aig.input_name(i));
    }

    int replacements = 0;
    for (const std::uint32_t n : aig.topological_order()) {
        if (!aig.is_and(n)) continue;
        // Default: direct copy.
        const AigLit direct =
            out.land(remap[aig_node(aig.fanin0(n))] ^ (aig.fanin0(n) & 1u),
                     remap[aig_node(aig.fanin1(n))] ^ (aig.fanin1(n) & 1u));
        remap[n] = direct;

        // Try SOP refactorings of non-trivial cuts; keep the best that
        // beats the MFFC cost.
        AigLit best = direct;
        // Gain of the direct copy is zero by definition; a candidate must
        // add fewer nodes than the MFFC it releases.
        int best_gain = opts.zero_cost ? -1 : 0;
        for (const Cut& cut : cuts.cuts[n]) {
            if (cut.trivial()) continue;
            const TruthTable tt = cut_truth_table(aig, n, cut);
            std::vector<AigLit> leaves;
            leaves.reserve(cut.leaves.size());
            bool leaves_ok = true;
            for (const std::uint32_t l : cut.leaves) {
                // A leaf must already be mapped (true for topo order).
                if (l >= remap.size()) {
                    leaves_ok = false;
                    break;
                }
                leaves.push_back(remap[l]);
            }
            if (!leaves_ok) continue;
            const std::size_t before = out.num_nodes();
            const AigLit cand = build_sop(out, tt, leaves);
            // Rebuilding the node's own structure (strash hit on the direct
            // copy) releases nothing — it must not claim the MFFC gain.
            if (cand == direct) continue;
            const int added = static_cast<int>(out.num_nodes() - before);
            const int gain = mffc[n] - added;
            if (gain > best_gain) {
                best_gain = gain;
                best = cand;
            }
        }
        if (best != direct) {
            remap[n] = best;
            ++replacements;
        }
    }

    for (const auto& [name, lit] : aig.outputs()) {
        out.add_output(name, remap[aig_node(lit)] ^ (lit & 1u));
    }
    Aig cleaned = out.cleanup();
    if (stats) {
        stats->nodes_before = aig.num_ands();
        stats->nodes_after = cleaned.num_ands();
        stats->replacements = replacements;
    }
    return cleaned;
}

Aig optimize(const Aig& aig, int rounds) {
    const auto better = [](const Aig& a, const Aig& b) {
        return a.num_ands() < b.num_ands() ||
               (a.num_ands() == b.num_ands() && a.depth() < b.depth());
    };
    Aig best = aig.cleanup();
    for (int r = 0; r < rounds; ++r) {
        bool improved = false;
        // Balance is size-neutral and depth-reducing: keep it whenever it
        // helps, independently of the refactoring step.
        Aig balanced = balance(best);
        if (better(balanced, best)) {
            best = std::move(balanced);
            improved = true;
        }
        Aig candidate = balance(refactor(best));
        if (better(candidate, best)) {
            best = std::move(candidate);
            improved = true;
        }
        if (!improved) break;
    }
    return best;
}

}  // namespace janus
