#include "janus/logic/aig_rewrite.hpp"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "janus/logic/aig_balance.hpp"
#include "janus/logic/cut_enum.hpp"
#include "janus/logic/sop_cache.hpp"
#include "janus/util/thread_pool.hpp"

namespace janus {
namespace {

/// Pure evaluation result of one non-trivial cut: everything the serial
/// commit phase needs to build the candidate, computed concurrently.
struct CutEval {
    Cover cover;            ///< minimized cover of the chosen phase
    bool use_off = false;   ///< build the OFF-phase cover, invert the output
    bool const0 = false;
    bool const1 = false;
    int est_nodes = 0;      ///< sharing-free upper bound on AND nodes needed
};

/// Sharing-free upper bound on the AND nodes build_sop adds for `cov`:
/// (literals - 1) per cube chained with (cubes - 1) ORs. Structural
/// hashing in the output AIG only ever lowers the real count.
int sop_node_estimate(const Cover& cov) {
    int est = static_cast<int>(cov.size()) - 1;
    for (const Cube& c : cov.cubes()) est += std::max(0, c.num_literals() - 1);
    return std::max(0, est);
}

/// Pure per-cut evaluation: both phases minimized through the memo cache,
/// then the cheaper phase chosen with the deterministic tie-break.
CutEval evaluate_cut(const TruthTable& tt, SopCache& cache) {
    CutEval e;
    if (tt.is_constant(false)) {
        e.const0 = true;
        return e;
    }
    if (tt.is_constant(true)) {
        e.const1 = true;
        return e;
    }
    Cover on = cache.minimized(tt);
    Cover off = cache.minimized(~tt);
    e.use_off = sop_prefers_off_phase(on, off);
    e.cover = e.use_off ? std::move(off) : std::move(on);
    e.est_nodes = sop_node_estimate(e.cover);
    return e;
}

/// Builds the pre-minimized SOP of an evaluated cut into `aig` over the
/// given leaf literals. Returns the output literal.
AigLit build_sop(Aig& aig, const CutEval& eval, const std::vector<AigLit>& leaves) {
    if (eval.const0) return Aig::const0();
    if (eval.const1) return Aig::const1();
    AigLit result = Aig::const0();
    bool first = true;
    for (const Cube& c : eval.cover.cubes()) {
        AigLit prod = Aig::const1();
        for (int v = 0; v < c.num_vars(); ++v) {
            const Literal l = c.get(v);
            if (l == Literal::DC) continue;
            const AigLit leaf = leaves[static_cast<std::size_t>(v)];
            prod = aig.land(prod, l == Literal::Pos ? leaf : aig_not(leaf));
        }
        result = first ? prod : aig.lor(result, prod);
        first = false;
    }
    return eval.use_off ? aig_not(result) : result;
}

}  // namespace

bool sop_prefers_off_phase(const Cover& on, const Cover& off) {
    const std::size_t cost_on =
        on.size() * 4 + static_cast<std::size_t>(on.num_literals());
    const std::size_t cost_off =
        off.size() * 4 + static_cast<std::size_t>(off.num_literals());
    // Strict '<': an equal-cost tie deterministically keeps the ON-phase.
    return cost_off < cost_on;
}

std::vector<int> mffc_sizes(const Aig& aig, MffcStats* stats) {
    std::vector<int> mffc(aig.num_nodes(), 0);
    const auto base_refs = aig.fanout_counts();
    // One scratch refcount array reused across every trial dereference: an
    // entry holds a trial value only while its stamp matches the current
    // epoch, so "resetting" between nodes is a single counter increment
    // instead of the historical full-array copy per node.
    std::vector<std::uint32_t> refs(aig.num_nodes(), 0);
    std::vector<std::uint32_t> stamp(aig.num_nodes(), 0);
    std::uint32_t epoch = 0;
    MffcStats local;
    std::vector<std::uint32_t> stack;
    for (const std::uint32_t n : aig.topological_order()) {
        if (!aig.is_and(n)) continue;
        ++epoch;
        int size = 0;
        stack.clear();
        stack.push_back(n);
        while (!stack.empty()) {
            const std::uint32_t node = stack.back();
            stack.pop_back();
            ++size;
            ++local.cone_visits;
            for (const AigLit f : {aig.fanin0(node), aig.fanin1(node)}) {
                const std::uint32_t fn = aig_node(f);
                if (!aig.is_and(fn)) continue;
                const std::uint32_t r =
                    (stamp[fn] == epoch ? refs[fn] : base_refs[fn]) - 1;
                refs[fn] = r;
                stamp[fn] = epoch;
                ++local.scratch_writes;
                if (r == 0) stack.push_back(fn);
            }
        }
        mffc[n] = size;
    }
    if (stats) *stats = local;
    return mffc;
}

Aig refactor(const Aig& aig, const RewriteOptions& opts, RewriteStats* stats,
             SopCache* cache) {
    const int workers = std::max(1, opts.workers);
    CutEnumOptions ce;
    ce.max_leaves = opts.cut_size;
    ce.max_cuts_per_node = opts.max_cuts_per_node;
    ce.workers = workers;
    const CutSet cuts = enumerate_cuts(aig, ce);
    MffcStats mffc_stats;
    const std::vector<int> mffc = mffc_sizes(aig, &mffc_stats);

    std::unique_ptr<SopCache> local_cache;
    if (!cache) {
        local_cache = std::make_unique<SopCache>(opts.use_sop_cache);
        cache = local_cache.get();
    }
    const SopCache::Stats cache_before = cache->stats();

    // Group AND nodes by topological level. Evaluation (truth table +
    // minimized covers + estimate) is pure against the frozen input AIG,
    // so one level's nodes evaluate concurrently; construction into the
    // output AIG and the best-candidate commit then run serially in node
    // order, which pins the result for any worker count.
    const std::vector<int> levels = aig.levels();
    int max_level = 0;
    for (std::uint32_t n = 0; n < aig.num_nodes(); ++n) {
        if (aig.is_and(n)) max_level = std::max(max_level, levels[n]);
    }
    std::vector<std::vector<std::uint32_t>> by_level(
        static_cast<std::size_t>(max_level) + 1);
    for (std::uint32_t n = 0; n < aig.num_nodes(); ++n) {
        if (aig.is_and(n)) {
            by_level[static_cast<std::size_t>(levels[n])].push_back(n);
        }
    }

    Aig out;
    std::vector<AigLit> remap(aig.num_nodes(), 0);
    for (std::size_t i = 0; i < aig.num_inputs(); ++i) {
        remap[aig_node(aig.input(i))] = out.add_input(aig.input_name(i));
    }

    std::unique_ptr<ThreadPool> pool;
    if (workers > 1) pool = std::make_unique<ThreadPool>(workers);
    std::vector<CutConeEvaluator> evaluators;
    evaluators.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) evaluators.emplace_back(aig);

    std::uint64_t cuts_evaluated = 0;
    int replacements = 0;
    std::vector<std::vector<CutEval>> level_evals;
    std::vector<AigLit> leaves;

    for (const auto& nodes : by_level) {
        if (nodes.empty()) continue;

        // ---- eval-parallel phase (pure, reads only the input AIG) ----
        level_evals.assign(nodes.size(), {});
        const auto eval_node = [&](std::size_t i, CutConeEvaluator& evaluator) {
            const std::uint32_t n = nodes[i];
            const auto& node_cuts = cuts.cuts[n];
            auto& evals = level_evals[i];
            evals.reserve(node_cuts.size());
            for (const Cut& cut : node_cuts) {
                if (cut.trivial()) {
                    evals.emplace_back();  // placeholder keeps indices aligned
                    continue;
                }
                evals.push_back(evaluate_cut(evaluator.evaluate(n, cut), *cache));
            }
        };
        if (!pool) {
            for (std::size_t i = 0; i < nodes.size(); ++i) {
                eval_node(i, evaluators[0]);
            }
        } else {
            const std::size_t chunks =
                std::min(nodes.size(), static_cast<std::size_t>(workers));
            pool->for_each_index(chunks, [&](std::size_t c) {
                for (std::size_t i = c; i < nodes.size(); i += chunks) {
                    eval_node(i, evaluators[c]);
                }
            });
        }

        // ---- commit-serial phase (topological node order) ----
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            const std::uint32_t n = nodes[i];
            // Default: direct copy.
            const AigLit direct =
                out.land(remap[aig_node(aig.fanin0(n))] ^ (aig.fanin0(n) & 1u),
                         remap[aig_node(aig.fanin1(n))] ^ (aig.fanin1(n) & 1u));
            remap[n] = direct;

            // Try SOP refactorings of non-trivial cuts; keep the best that
            // beats the MFFC cost.
            AigLit best = direct;
            // Gain of the direct copy is zero by definition; a candidate
            // must add fewer nodes than the MFFC it releases.
            int best_gain = opts.zero_cost ? -1 : 0;
            const auto& node_cuts = cuts.cuts[n];
            for (std::size_t ci = 0; ci < node_cuts.size(); ++ci) {
                const Cut& cut = node_cuts[ci];
                if (cut.trivial()) continue;
                ++cuts_evaluated;
                leaves.clear();
                leaves.reserve(cut.leaves.size());
                bool leaves_ok = true;
                for (const std::uint32_t l : cut.leaves) {
                    // A leaf must already be mapped (true for topo order).
                    if (l >= remap.size()) {
                        leaves_ok = false;
                        break;
                    }
                    leaves.push_back(remap[l]);
                }
                if (!leaves_ok) continue;
                const std::size_t before = out.num_nodes();
                const AigLit cand = build_sop(out, level_evals[i][ci], leaves);
                // Rebuilding the node's own structure (strash hit on the
                // direct copy) releases nothing — it must not claim the
                // MFFC gain.
                if (cand == direct) continue;
                const int added = static_cast<int>(out.num_nodes() - before);
                const int gain = mffc[n] - added;
                if (gain > best_gain) {
                    best_gain = gain;
                    best = cand;
                }
            }
            if (best != direct) {
                remap[n] = best;
                ++replacements;
            }
        }
    }

    for (const auto& [name, lit] : aig.outputs()) {
        out.add_output(name, remap[aig_node(lit)] ^ (lit & 1u));
    }
    Aig cleaned = out.cleanup();
    if (stats) {
        const SopCache::Stats cache_after = cache->stats();
        stats->nodes_before = aig.num_ands();
        stats->nodes_after = cleaned.num_ands();
        stats->replacements = replacements;
        stats->cuts_evaluated = cuts_evaluated;
        stats->memo_hits = cache_after.hits - cache_before.hits;
        stats->memo_misses = cache_after.misses - cache_before.misses;
        stats->espresso_calls =
            cache_after.espresso_calls - cache_before.espresso_calls;
        stats->mffc_cone_visits = mffc_stats.cone_visits;
        stats->workers = workers;
    }
    return cleaned;
}

Aig optimize(const Aig& aig, int rounds, const RewriteOptions& opts,
             RewriteStats* stats) {
    const auto better = [](const Aig& a, const Aig& b) {
        return a.num_ands() < b.num_ands() ||
               (a.num_ands() == b.num_ands() && a.depth() < b.depth());
    };
    // One memo cache across all rounds: later rounds re-minimize mostly
    // functions the first round already materialized.
    SopCache cache(opts.use_sop_cache);
    if (stats) {
        *stats = RewriteStats{};
        stats->nodes_before = aig.num_ands();
        stats->workers = std::max(1, opts.workers);
    }
    Aig best = aig.cleanup();
    for (int r = 0; r < rounds; ++r) {
        bool improved = false;
        // Balance is size-neutral and depth-reducing: keep it whenever it
        // helps, independently of the refactoring step.
        Aig balanced = balance(best);
        if (better(balanced, best)) {
            best = std::move(balanced);
            improved = true;
        }
        RewriteStats round_stats;
        Aig candidate = balance(refactor(best, opts, &round_stats, &cache));
        if (stats) {
            stats->replacements += round_stats.replacements;
            stats->cuts_evaluated += round_stats.cuts_evaluated;
            stats->memo_hits += round_stats.memo_hits;
            stats->memo_misses += round_stats.memo_misses;
            stats->espresso_calls += round_stats.espresso_calls;
            stats->mffc_cone_visits += round_stats.mffc_cone_visits;
        }
        if (better(candidate, best)) {
            best = std::move(candidate);
            improved = true;
        }
        if (!improved) break;
    }
    if (stats) stats->nodes_after = best.num_ands();
    return best;
}

}  // namespace janus
