#pragma once
/// \file equivalence.hpp
/// Combinational equivalence checking. Exhaustive/BDD-based for designs
/// with few inputs, random simulation as a falsifier for larger ones —
/// the verification step every synthesis transform in JanusEDA is held
/// to in tests.

#include <cstdint>
#include <optional>
#include <string>

#include "janus/netlist/netlist.hpp"

namespace janus {

struct EquivalenceResult {
    bool equivalent = false;
    /// "proved" (truth tables), "proved-sat" (miter UNSAT), or "sampled"
    /// (random vectors only; the SAT budget ran out).
    std::string method;
    /// A distinguishing input assignment when not equivalent (bit i =
    /// value of primary input i).
    std::optional<std::uint64_t> counterexample;
    std::size_t vectors_checked = 0;
};

struct EquivalenceOptions {
    /// Designs with at most this many primary inputs are proved exactly
    /// via truth tables; wider ones go to the SAT miter.
    int exact_input_limit = 16;
    /// SAT decision budget before falling back to random sampling.
    std::uint64_t sat_decisions = 200000;
    std::size_t random_vectors = 2048;
    std::uint64_t seed = 1;
};

/// Checks that two combinational netlists (same PI/PO count and order)
/// implement identical functions. Throws std::invalid_argument on
/// interface mismatch or sequential inputs.
EquivalenceResult check_equivalence(const Netlist& a, const Netlist& b,
                                    const EquivalenceOptions& opts = {});

}  // namespace janus
