#include "janus/logic/retime.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "janus/timing/delay_model.hpp"

namespace janus {
namespace {

/// Combinational arrival times under retimed edge weights; nullopt when a
/// zero-weight cycle exists (period infeasible at any clock).
std::optional<std::vector<double>> arrivals(const RetimeGraph& g,
                                            const std::vector<int>& r) {
    const std::size_t n = g.node_delay.size();
    // Zero-weight adjacency and indegrees.
    std::vector<std::vector<std::uint32_t>> out(n);
    std::vector<int> indeg(n, 0);
    for (const auto& e : g.edges) {
        const int w = e.registers + r[e.to] - r[e.from];
        if (w == 0) {
            out[e.from].push_back(e.to);
            ++indeg[e.to];
        }
    }
    std::vector<double> delta(n, 0.0);
    std::vector<std::uint32_t> ready;
    for (std::uint32_t v = 0; v < n; ++v) {
        delta[v] = g.node_delay[v];
        if (indeg[v] == 0) ready.push_back(v);
    }
    std::size_t processed = 0;
    while (processed < ready.size()) {
        const std::uint32_t u = ready[processed++];
        for (const std::uint32_t v : out[u]) {
            delta[v] = std::max(delta[v], delta[u] + g.node_delay[v]);
            if (--indeg[v] == 0) ready.push_back(v);
        }
    }
    if (processed != n) return std::nullopt;  // zero-weight cycle
    return delta;
}

bool weights_legal(const RetimeGraph& g, const std::vector<int>& r) {
    for (const auto& e : g.edges) {
        if (e.registers + r[e.to] - r[e.from] < 0) return false;
    }
    return true;
}

}  // namespace

double graph_period(const RetimeGraph& g) {
    const std::vector<int> zero(g.node_delay.size(), 0);
    const auto d = arrivals(g, zero);
    if (!d) return std::numeric_limits<double>::infinity();
    double p = 0;
    for (const double v : *d) p = std::max(p, v);
    return p;
}

RetimeResult retime_for_period(const RetimeGraph& g, double period) {
    RetimeResult res;
    const std::size_t n = g.node_delay.size();
    res.labels.assign(n, 0);

    // FEAS: repeat |V|-1 times; increment the label of every node whose
    // combinational arrival exceeds the period. Host node 0 stays fixed.
    for (std::size_t it = 0; it + 1 < n + 1; ++it) {
        const auto delta = arrivals(g, res.labels);
        if (!delta) return res;  // cycle: infeasible
        bool violated = false;
        for (std::uint32_t v = 1; v < n; ++v) {
            if ((*delta)[v] > period + 1e-9) {
                ++res.labels[v];
                violated = true;
            }
        }
        if (!violated) break;
    }
    const auto delta = arrivals(g, res.labels);
    if (!delta || !weights_legal(g, res.labels)) return res;
    for (const double v : *delta) {
        if (v > period + 1e-9) return res;  // still violated: infeasible
    }
    res.feasible = true;
    res.period = period;
    res.total_registers = 0;
    for (const auto& e : g.edges) {
        res.total_registers += e.registers + res.labels[e.to] - res.labels[e.from];
    }
    return res;
}

RetimeResult min_period_retime(const RetimeGraph& g, double tolerance) {
    double hi = graph_period(g);
    if (!std::isfinite(hi)) return RetimeResult{};
    double lo = 0;
    for (const double d : g.node_delay) lo = std::max(lo, d);
    RetimeResult best = retime_for_period(g, hi);
    if (!best.feasible) return best;  // hi is always feasible (labels 0)
    while (hi - lo > tolerance) {
        const double mid = 0.5 * (lo + hi);
        const RetimeResult r = retime_for_period(g, mid);
        if (r.feasible) {
            best = r;
            hi = mid;
        } else {
            lo = mid;
        }
    }
    return best;
}

RetimeGraph build_retime_graph(const Netlist& nl) {
    RetimeGraph g;
    // Node 0 = host; combinational instances follow.
    g.node_delay.push_back(0.0);
    std::vector<std::uint32_t> node_of(nl.num_instances(), 0);
    const WireModel wm;
    for (InstId i = 0; i < nl.num_instances(); ++i) {
        if (is_sequential(nl.type_of(i).function)) continue;
        node_of[i] = static_cast<std::uint32_t>(g.node_delay.size());
        g.node_delay.push_back(instance_delay_ps(nl, i, wm));
    }

    // Resolve a net to (origin node, register count through flop chains).
    const auto resolve = [&](NetId net) {
        int regs = 0;
        std::size_t guard = nl.num_instances() + 1;
        NetId cur = net;
        for (;;) {
            const Net& nn = nl.net(cur);
            if (nn.driver_kind != DriverKind::Instance) {
                return std::pair<std::uint32_t, int>{0, regs};  // host (PI)
            }
            const InstId d = nn.driver_inst;
            if (!is_sequential(nl.type_of(d).function)) {
                return std::pair<std::uint32_t, int>{node_of[d], regs};
            }
            ++regs;
            cur = nl.instance(d).fanin[0];  // through the flop's D
            if (cur == kNoNet || --guard == 0) {
                return std::pair<std::uint32_t, int>{0, regs};
            }
        }
    };

    for (InstId i = 0; i < nl.num_instances(); ++i) {
        if (is_sequential(nl.type_of(i).function)) continue;
        const int arity = function_arity(nl.type_of(i).function);
        for (int p = 0; p < arity; ++p) {
            const NetId net = nl.instance(i).fanin[static_cast<std::size_t>(p)];
            if (net == kNoNet) continue;
            const auto [src, w] = resolve(net);
            g.edges.push_back({src, node_of[i], w});
        }
    }
    for (const auto& [name, net] : nl.primary_outputs()) {
        (void)name;
        const auto [src, w] = resolve(net);
        g.edges.push_back({src, 0, w});
    }
    return g;
}

}  // namespace janus
