#pragma once
/// \file aig.hpp
/// And-Inverter Graph: the multi-level logic representation under the
/// JanusEDA synthesis flow. Nodes are two-input ANDs; edges carry an
/// optional complement. Structural hashing keeps the graph canonical as
/// it is built.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "janus/logic/truth_table.hpp"
#include "janus/netlist/netlist.hpp"

namespace janus {

/// A literal: AIG node index shifted left once, low bit = complemented.
using AigLit = std::uint32_t;

constexpr AigLit aig_lit(std::uint32_t node, bool complement) {
    return (node << 1) | static_cast<AigLit>(complement);
}
constexpr std::uint32_t aig_node(AigLit lit) { return lit >> 1; }
constexpr bool aig_is_complement(AigLit lit) { return lit & 1u; }
constexpr AigLit aig_not(AigLit lit) { return lit ^ 1u; }

class Aig {
  public:
    /// Node 0 is the constant-false node; literal 0 = const0, 1 = const1.
    Aig();

    static constexpr AigLit const0() { return 0; }
    static constexpr AigLit const1() { return 1; }

    /// Adds a primary input and returns its (positive) literal.
    AigLit add_input(std::string name = {});
    std::size_t num_inputs() const { return inputs_.size(); }
    /// Literal of input i.
    AigLit input(std::size_t i) const { return aig_lit(inputs_.at(i), false); }

    /// Structurally hashed AND with constant/idempotence simplification.
    AigLit land(AigLit a, AigLit b);
    AigLit lor(AigLit a, AigLit b) { return aig_not(land(aig_not(a), aig_not(b))); }
    AigLit lxor(AigLit a, AigLit b);
    AigLit lmux(AigLit sel, AigLit a, AigLit b);  ///< sel ? b : a
    AigLit lmaj(AigLit a, AigLit b, AigLit c);

    /// Registers an output.
    void add_output(std::string name, AigLit lit);
    const std::vector<std::pair<std::string, AigLit>>& outputs() const {
        return outputs_;
    }
    /// Replaces output o's literal (used by optimization passes).
    void set_output(std::size_t o, AigLit lit) { outputs_.at(o).second = lit; }

    /// Number of AND nodes (excludes constants and inputs).
    std::size_t num_ands() const;
    /// Total nodes including const and inputs.
    std::size_t num_nodes() const { return fanin0_.size(); }

    bool is_and(std::uint32_t node) const;
    bool is_input(std::uint32_t node) const;
    AigLit fanin0(std::uint32_t node) const { return fanin0_.at(node); }
    AigLit fanin1(std::uint32_t node) const { return fanin1_.at(node); }

    /// Depth (level) of every node; level of const/inputs is 0.
    std::vector<int> levels() const;
    /// Depth of the deepest output cone.
    int depth() const;

    /// Fanout count of every node (output references included).
    std::vector<std::uint32_t> fanout_counts() const;

    /// Nodes in topological order (fanins precede users); constants and
    /// inputs come first. All nodes are included, live or dead.
    std::vector<std::uint32_t> topological_order() const;

    /// Evaluates all outputs for one input assignment.
    std::vector<bool> simulate(const std::vector<bool>& input_values) const;

    /// Truth tables of all outputs; requires num_inputs() <= 16.
    std::vector<TruthTable> output_truth_tables() const;

    /// Copies only the logic reachable from outputs, re-hashing along the
    /// way (removes dead nodes and re-applies simplification rules).
    Aig cleanup() const;

    /// Builds an AIG from a combinational netlist (flops are not allowed;
    /// use the flow layer to cut sequential designs at register
    /// boundaries first). Input/output order matches the netlist.
    static Aig from_netlist(const Netlist& nl);

    /// Number of land() calls answered from the unique table (an existing
    /// node was returned instead of creating a new one). Simplification
    /// short-circuits (const/idempotence/complement) do not count.
    std::uint64_t strash_hits() const { return strash_hits_; }

    /// Total heap footprint: node arrays, the strash unique table, and
    /// input/output bookkeeping (name strings counted at capacity).
    std::size_t memory_bytes() const;

    const std::string& input_name(std::size_t i) const { return input_names_.at(i); }
    /// Renames input i / output o — used by the AIGER reader, whose symbol
    /// table arrives after the nodes it names (aiger.hpp).
    void set_input_name(std::size_t i, std::string name) {
        input_names_.at(i) = std::move(name);
    }
    void set_output_name(std::size_t o, std::string name) {
        outputs_.at(o).first = std::move(name);
    }

  private:
    // Parallel arrays per node. A node is an input iff fanin0 == kInputMark.
    static constexpr AigLit kInputMark = 0xFFFFFFFFu;
    std::vector<AigLit> fanin0_;
    std::vector<AigLit> fanin1_;
    std::vector<std::uint32_t> inputs_;
    std::vector<std::string> input_names_;
    std::vector<std::pair<std::string, AigLit>> outputs_;

    // Open-addressed strash unique table (boolector BtorAIGUniqueTable
    // style): power-of-two capacity, linear probing, grown at 50% load.
    // strash_keys_ holds the packed (min,max) literal pair; 0 is the empty
    // sentinel — safe because land() resolves any AND touching literal 0 or
    // 1 (const0/const1) by simplification before probing, so a stored key
    // always has both halves >= 2.
    std::vector<std::uint64_t> strash_keys_;
    std::vector<std::uint32_t> strash_values_;
    std::size_t strash_count_ = 0;
    std::uint64_t strash_hits_ = 0;

    std::uint32_t new_and_node(AigLit a, AigLit b);
    void strash_grow();
};

}  // namespace janus
