#pragma once
/// \file aig_rewrite.hpp
/// Cut-based refactoring: each node's cut function is re-synthesized from
/// a minimized SOP (via the Espresso engine) and the replacement is kept
/// when it uses fewer AND nodes than the node's maximum fanout-free cone.
/// Combined with balancing this is the JanusEDA equivalent of the
/// synthesis-quality gains the panel credits to the last EDA decade (E1).
///
/// The pass is an eval-parallel / commit-serial engine (docs/SYNTH.md):
/// the pure per-cut work — truth table, memoized Espresso covers, node
/// estimate — runs concurrently per topological level on the thread pool
/// against the frozen input AIG, while candidate construction and
/// best-replacement commits stay serial in topological order. Output is
/// byte-identical for any worker count and with the SOP memo cache on or
/// off (the same contract route_workers/sta_workers/place_workers carry).

#include <cstdint>

#include "janus/logic/aig.hpp"
#include "janus/logic/cover.hpp"

namespace janus {

class SopCache;

struct RewriteOptions {
    int cut_size = 5;          ///< leaves per refactoring cut
    /// Exact per-node cut cap, trivial cut included (cut_enum.hpp).
    int max_cuts_per_node = 6;
    bool zero_cost = false;    ///< also accept size-neutral replacements
    /// Threads for the eval-parallel phase; byte-identical output for any
    /// value (docs/SYNTH.md). 1 = serial.
    int workers = 1;
    /// Memoize Espresso results in a canonical SOP cache. QoR-identical on
    /// or off; off recomputes every minimization (ablation/testing knob).
    bool use_sop_cache = true;
};

struct RewriteStats {
    std::size_t nodes_before = 0;
    std::size_t nodes_after = 0;
    int replacements = 0;
    std::uint64_t cuts_evaluated = 0;   ///< non-trivial cuts minimized + costed
    std::uint64_t memo_hits = 0;        ///< SOP cache hits
    std::uint64_t memo_misses = 0;      ///< unique functions materialized
    std::uint64_t espresso_calls = 0;   ///< minimizations actually executed
    std::uint64_t mffc_cone_visits = 0; ///< total MFFC trial-deref work
    int workers = 1;
};

/// Work counters for mffc_sizes: the incremental trial-dereference touches
/// only each node's cone (cone_visits ~= sum of MFFC sizes) instead of
/// copying the whole refcount array per node, and scratch_writes bounds
/// the epoch-stamped scratch traffic. Both are asserted in tests and
/// reported as a bench column.
struct MffcStats {
    std::uint64_t cone_visits = 0;    ///< nodes dereferenced across all trials
    std::uint64_t scratch_writes = 0; ///< refcount scratch updates
};

/// One bottom-up refactoring pass; returns the rewritten (cleaned) AIG.
/// `cache` optionally shares a SOP memo cache across passes (optimize()
/// does this between rounds); when null the pass uses a private cache
/// honouring opts.use_sop_cache.
Aig refactor(const Aig& aig, const RewriteOptions& opts = {},
             RewriteStats* stats = nullptr, SopCache* cache = nullptr);

/// Full optimization script: iterated balance + refactor until the node
/// count stops improving (at most `rounds` rounds). One SOP memo cache is
/// shared across all rounds; `stats` (optional) accumulates the per-round
/// refactoring counters.
Aig optimize(const Aig& aig, int rounds = 4, const RewriteOptions& opts = {},
             RewriteStats* stats = nullptr);

/// Size of each node's maximum fanout-free cone (number of AND nodes that
/// become dead if the node is removed), indexed by node id. Incremental:
/// one epoch-stamped scratch array is reused across all trial
/// dereferences, so the work is proportional to the cone sizes, not
/// O(nodes^2) refcount copies.
std::vector<int> mffc_sizes(const Aig& aig, MffcStats* stats = nullptr);

/// Phase selection for SOP construction, exposed for tests: true when the
/// OFF-phase cover is strictly cheaper under the cubes*4 + literals cost.
/// Ties deterministically keep the ON-phase.
bool sop_prefers_off_phase(const Cover& on, const Cover& off);

}  // namespace janus
