#pragma once
/// \file aig_rewrite.hpp
/// Cut-based refactoring: each node's cut function is re-synthesized from
/// a minimized SOP (via the Espresso engine) and the replacement is kept
/// when it uses fewer AND nodes than the node's maximum fanout-free cone.
/// Combined with balancing this is the JanusEDA equivalent of the
/// synthesis-quality gains the panel credits to the last EDA decade (E1).

#include "janus/logic/aig.hpp"

namespace janus {

struct RewriteOptions {
    int cut_size = 5;          ///< leaves per refactoring cut
    int max_cuts_per_node = 6;
    bool zero_cost = false;    ///< also accept size-neutral replacements
};

struct RewriteStats {
    std::size_t nodes_before = 0;
    std::size_t nodes_after = 0;
    int replacements = 0;
};

/// One bottom-up refactoring pass; returns the rewritten (cleaned) AIG.
Aig refactor(const Aig& aig, const RewriteOptions& opts = {},
             RewriteStats* stats = nullptr);

/// Full optimization script: iterated balance + refactor until the node
/// count stops improving (at most `rounds` rounds).
Aig optimize(const Aig& aig, int rounds = 4);

/// Size of each node's maximum fanout-free cone (number of AND nodes that
/// become dead if the node is removed), indexed by node id.
std::vector<int> mffc_sizes(const Aig& aig);

}  // namespace janus
