#pragma once
/// \file cube.hpp
/// Cubes in positional notation for two-level (SOP) minimization — the
/// Espresso/MIS lineage the panel names as the first wave of EDA.
///
/// Each variable occupies two bits: 01 = negative literal (!x),
/// 10 = positive literal (x), 11 = don't care, 00 = empty (no value of the
/// variable satisfies the cube; the whole cube denotes the empty set).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace janus {

/// Per-variable state of a cube.
enum class Literal : std::uint8_t { Empty = 0b00, Neg = 0b01, Pos = 0b10, DC = 0b11 };

class Cube {
  public:
    /// The full cube (all variables don't-care) over n variables.
    explicit Cube(int num_vars = 0);

    /// Parses "1-0" style strings: '1' positive, '0' negative, '-' DC.
    static Cube from_string(const std::string& s);

    int num_vars() const { return num_vars_; }
    Literal get(int var) const;
    void set(int var, Literal lit);

    /// True if some variable is Empty (cube denotes the empty set).
    bool is_empty() const;
    /// True if all variables are DC (cube covers every minterm).
    bool is_full() const;
    /// Number of non-DC literal positions.
    int num_literals() const;

    /// Set containment: every minterm of `other` is in *this.
    bool contains(const Cube& other) const;
    /// Number of variables on which the two cubes have disjoint parts
    /// (distance 0 = they intersect; 1 = consensus exists).
    int distance(const Cube& other) const;
    /// Set intersection; nullopt when disjoint.
    std::optional<Cube> intersect(const Cube& other) const;
    /// Smallest cube containing both (bitwise union per variable).
    Cube supercube(const Cube& other) const;
    /// Consensus on the unique conflicting variable; nullopt unless
    /// distance is exactly 1.
    std::optional<Cube> consensus(const Cube& other) const;

    /// True if the minterm (bit i of `assignment` = value of variable i)
    /// lies inside the cube.
    bool covers_minterm(std::uint64_t assignment) const;

    /// "1-0" style string.
    std::string to_string() const;

    friend bool operator==(const Cube&, const Cube&) = default;

  private:
    int num_vars_;
    std::vector<std::uint64_t> bits_;  // 32 variables per word
};

}  // namespace janus
