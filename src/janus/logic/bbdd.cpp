#include "janus/logic/bbdd.hpp"

#include <cassert>
#include <stdexcept>

namespace janus {

Bbdd::Bbdd(int num_vars) : num_vars_(num_vars) {
    if (num_vars < 1 || num_vars > 16) {
        throw std::invalid_argument("Bbdd: num_vars out of range");
    }
    nodes_.push_back(Node{num_vars_, kFalse, kFalse});
    nodes_.push_back(Node{num_vars_, kTrue, kTrue});
}

Bbdd::Ref Bbdd::make_node(int level, Ref neq, Ref eq) {
    if (neq == eq) return neq;  // function independent of the biconditional
    const std::uint64_t key = (static_cast<std::uint64_t>(level) << 52) ^
                              (static_cast<std::uint64_t>(neq) << 26) ^ eq;
    if (const auto it = unique_.find(key); it != unique_.end()) return it->second;
    nodes_.push_back(Node{level, neq, eq});
    const Ref r = static_cast<Ref>(nodes_.size() - 1);
    unique_[key] = r;
    return r;
}

Bbdd::Ref Bbdd::build(const TruthTable& f, int level) {
    if (f.is_constant(false)) return kFalse;
    if (f.is_constant(true)) return kTrue;
    assert(level < num_vars_);
    const BuildKey key{level, f.words()};
    if (const auto it = build_cache_.find(key); it != build_cache_.end()) {
        return it->second;
    }

    Ref r;
    if (level == num_vars_ - 1) {
        // Shannon tail on the last variable; both cofactors are constant
        // because every earlier variable has been eliminated.
        const Ref lo = build(f.cofactor(level, false), level);
        const Ref hi = build(f.cofactor(level, true), level);
        r = make_node(level, hi, lo);  // neq slot carries x=1, eq slot x=0
    } else {
        // Biconditional expansion: substitute x_level by the (in)equality
        // with x_{level+1}.
        const int next = level + 1;
        TruthTable f_neq(f.num_vars());
        TruthTable f_eq(f.num_vars());
        for (std::uint64_t m = 0; m < f.num_minterms_space(); ++m) {
            const bool xn = (m >> next) & 1;
            std::uint64_t src_neq = m;
            std::uint64_t src_eq = m;
            if (xn) {
                src_neq &= ~(1ull << level);
                src_eq |= (1ull << level);
            } else {
                src_neq |= (1ull << level);
                src_eq &= ~(1ull << level);
            }
            f_neq.set_bit(m, f.bit(src_neq));
            f_eq.set_bit(m, f.bit(src_eq));
        }
        const Ref rn = build(f_neq, level + 1);
        const Ref re = build(f_eq, level + 1);
        r = make_node(level, rn, re);
    }
    build_cache_[key] = r;
    return r;
}

Bbdd::Ref Bbdd::from_truth_table(const TruthTable& tt) {
    if (tt.num_vars() != num_vars_) {
        throw std::invalid_argument("Bbdd::from_truth_table: variable mismatch");
    }
    return build(tt, 0);
}

std::size_t Bbdd::count_nodes(const std::vector<Ref>& roots) const {
    std::vector<bool> seen(nodes_.size(), false);
    std::vector<Ref> stack(roots);
    std::size_t count = 0;
    while (!stack.empty()) {
        const Ref r = stack.back();
        stack.pop_back();
        if (r <= kTrue || seen[r]) continue;
        seen[r] = true;
        ++count;
        stack.push_back(nodes_[r].neq);
        stack.push_back(nodes_[r].eq);
    }
    return count;
}

bool Bbdd::evaluate(Ref f, std::uint64_t assignment) const {
    while (f > kTrue) {
        const Node& n = nodes_[f];
        if (n.level == num_vars_ - 1) {
            const bool x = (assignment >> n.level) & 1;
            f = x ? n.neq : n.eq;
        } else {
            const bool xi = (assignment >> n.level) & 1;
            const bool xj = (assignment >> (n.level + 1)) & 1;
            f = (xi != xj) ? n.neq : n.eq;
        }
    }
    return f == kTrue;
}

}  // namespace janus
