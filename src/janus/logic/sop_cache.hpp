#pragma once
/// \file sop_cache.hpp
/// Canonical memo cache for two-level (SOP) minimization results. The
/// refactoring pass minimizes both polarities of every cut function, and
/// small cuts repeat the same functions thousands of times across one AIG
/// (and across optimization rounds), so the Espresso loop is the ideal
/// memoization target: its result is a pure function of the truth table.
///
/// Canonicalization: entries are keyed by the exact truth table
/// (num_vars + packed words). Output-phase sharing falls out of the dual
/// query pattern — the OFF-phase cover of f is the ON-phase cover of ~f,
/// so both polarities of a function and both phases of its complement all
/// resolve to two cache entries. Input-negation/permutation (NPN) folding
/// would shrink the key space further but requires mapping covers back
/// through the transform; the cache interface deliberately hides the key
/// so that can land later without touching callers (docs/SYNTH.md).
///
/// Thread safety: `minimized()` may be called concurrently (the rewrite
/// engine queries it from its eval-parallel phase). The map is sharded by
/// key hash; a racing miss on the same key computes Espresso twice but
/// commits first-writer-wins, and since Espresso is deterministic every
/// caller sees the same cover — results never depend on scheduling.

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "janus/logic/cover.hpp"
#include "janus/logic/truth_table.hpp"

namespace janus {

class SopCache {
  public:
    /// Counters; under concurrent use `hits + misses <= queries` (the slack
    /// is lost insert races) and `espresso_calls >= misses` for the same
    /// reason. In serial use all three relations are equalities. With the
    /// cache disabled every query is a miss and an espresso call.
    struct Stats {
        std::uint64_t queries = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;         ///< unique keys materialized
        std::uint64_t espresso_calls = 0; ///< minimizations actually run
    };

    /// `enabled = false` turns the cache into a counting pass-through that
    /// minimizes every query from scratch — used by the QoR-identity tests
    /// and the memoization-ablation bench.
    explicit SopCache(bool enabled = true) : enabled_(enabled) {}

    SopCache(const SopCache&) = delete;
    SopCache& operator=(const SopCache&) = delete;

    /// Minimized ON-set cover of `tt`: bit-for-bit the value of
    /// `espresso(Cover::from_truth_table(tt)).cover`, memoized. The
    /// OFF-phase cover of a function is `minimized(~tt)`.
    Cover minimized(const TruthTable& tt);

    bool enabled() const { return enabled_; }

    /// Aggregated counters across all shards.
    Stats stats() const;

    /// Number of memoized entries.
    std::size_t size() const;

  private:
    struct Key {
        std::uint32_t num_vars = 0;
        std::vector<std::uint64_t> words;
        bool operator==(const Key& o) const = default;
    };
    struct KeyHash {
        std::size_t operator()(const Key& k) const;
    };
    struct Shard {
        mutable std::mutex mutex;
        std::unordered_map<Key, Cover, KeyHash> map;
        Stats stats;
    };

    static constexpr std::size_t kShards = 16;

    bool enabled_;
    std::array<Shard, kShards> shards_;
};

}  // namespace janus
