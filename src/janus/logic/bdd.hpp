#pragma once
/// \file bdd.hpp
/// Reduced ordered binary decision diagrams (Shannon expansion). Used for
/// formal equivalence checking between optimization stages and as the
/// AND/INV-era baseline representation in experiment E12.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "janus/logic/truth_table.hpp"

namespace janus {

/// A BDD manager over a fixed variable count with the natural order
/// x0 < x1 < ... Nodes are referenced by index; 0 and 1 are the terminals.
class Bdd {
  public:
    using Ref = std::uint32_t;
    static constexpr Ref kFalse = 0;
    static constexpr Ref kTrue = 1;

    explicit Bdd(int num_vars);

    int num_vars() const { return num_vars_; }

    /// The function x_var.
    Ref var(int v);

    Ref land(Ref a, Ref b) { return ite(a, b, kFalse); }
    Ref lor(Ref a, Ref b) { return ite(a, kTrue, b); }
    Ref lnot(Ref a) { return ite(a, kFalse, kTrue); }
    Ref lxor(Ref a, Ref b) { return ite(a, lnot(b), b); }
    /// If-then-else — the universal BDD operator.
    Ref ite(Ref f, Ref g, Ref h);

    /// Builds the ROBDD of a truth table (exact, bottom-up).
    Ref from_truth_table(const TruthTable& tt);

    /// Number of inner nodes reachable from the given roots (terminals not
    /// counted, sharing across roots counted once).
    std::size_t count_nodes(const std::vector<Ref>& roots) const;

    /// Number of satisfying assignments over all num_vars variables.
    std::uint64_t sat_count(Ref f) const;

    /// Evaluates f under an assignment (bit v = value of variable v).
    bool evaluate(Ref f, std::uint64_t assignment) const;

    /// Total inner nodes ever created (allocation pressure metric).
    std::size_t size() const { return nodes_.size() - 2; }

  private:
    struct Node {
        int var;  ///< branching variable; terminals use num_vars_
        Ref lo;   ///< cofactor var=0
        Ref hi;   ///< cofactor var=1
    };

    int num_vars_;
    std::vector<Node> nodes_;
    std::unordered_map<std::uint64_t, Ref> unique_;
    std::unordered_map<std::uint64_t, Ref> ite_cache_;

    Ref make_node(int var, Ref lo, Ref hi);
    int var_of(Ref r) const { return nodes_[r].var; }
};

}  // namespace janus
