#include "janus/logic/espresso.hpp"

#include <algorithm>
#include <cassert>

namespace janus {
namespace {

/// True if `c` intersects any cube of `off`.
bool hits_offset(const Cube& c, const Cover& off) {
    for (const Cube& o : off.cubes()) {
        if (c.distance(o) == 0) return true;
    }
    return false;
}

/// Expands one cube to a prime against the OFF-set. Literals are raised
/// greedily; the order prefers variables blocked by the fewest OFF cubes
/// (the classic "column count" heuristic simplified).
Cube expand_cube(Cube c, const Cover& off) {
    const int n = c.num_vars();
    // Count, per variable, how many off-cubes conflict only through it.
    std::vector<int> order;
    for (int v = 0; v < n; ++v) {
        if (c.get(v) == Literal::Pos || c.get(v) == Literal::Neg) order.push_back(v);
    }
    std::vector<int> blockers(static_cast<std::size_t>(n), 0);
    for (int v : order) {
        Cube raised = c;
        raised.set(v, Literal::DC);
        for (const Cube& o : off.cubes()) {
            if (raised.distance(o) == 0) ++blockers[static_cast<std::size_t>(v)];
        }
    }
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        return blockers[static_cast<std::size_t>(a)] < blockers[static_cast<std::size_t>(b)];
    });
    bool changed = true;
    while (changed) {
        changed = false;
        for (int v : order) {
            if (c.get(v) == Literal::DC) continue;
            Cube raised = c;
            raised.set(v, Literal::DC);
            if (!hits_offset(raised, off)) {
                c = raised;
                changed = true;
            }
        }
    }
    return c;
}

int cost(const Cover& c) {
    return static_cast<int>(c.size()) * 1000 + c.num_literals();
}

}  // namespace

Cover expand(const Cover& onset, const Cover& offset) {
    Cover out(onset.num_vars());
    for (const Cube& c : onset.cubes()) {
        out.add(expand_cube(c, offset));
    }
    out.remove_single_cube_containment();
    return out;
}

Cover irredundant(const Cover& cover, const Cover& dcset) {
    // Greedy: try to drop cubes one at a time, largest literal count
    // first (most specific cubes are most likely redundant).
    std::vector<Cube> cubes = cover.cubes();
    std::sort(cubes.begin(), cubes.end(), [](const Cube& a, const Cube& b) {
        return a.num_literals() > b.num_literals();
    });
    std::vector<bool> removed(cubes.size(), false);
    for (std::size_t i = 0; i < cubes.size(); ++i) {
        Cover rest(cover.num_vars());
        for (std::size_t j = 0; j < cubes.size(); ++j) {
            if (j != i && !removed[j]) rest.add(cubes[j]);
        }
        for (const Cube& d : dcset.cubes()) rest.add(d);
        if (rest.contains_cube(cubes[i])) removed[i] = true;
    }
    Cover out(cover.num_vars());
    for (std::size_t i = 0; i < cubes.size(); ++i) {
        if (!removed[i]) out.add(cubes[i]);
    }
    return out;
}

Cover reduce(const Cover& cover, const Cover& dcset) {
    std::vector<Cube> cubes = cover.cubes();
    for (std::size_t i = 0; i < cubes.size(); ++i) {
        // G = everything except cube i (already-reduced cubes included at
        // their reduced size), plus the DC-set.
        Cover g(cover.num_vars());
        for (std::size_t j = 0; j < cubes.size(); ++j) {
            if (j != i) g.add(cubes[j]);
        }
        for (const Cube& d : dcset.cubes()) g.add(d);
        // Smallest cube covering the part of cube i not covered by G:
        // supercube of complement(G cofactored by cube i), intersected
        // with cube i.
        const Cover comp = g.cofactor(cubes[i]).complement();
        if (comp.empty()) continue;  // cube covered by the rest; IRREDUNDANT drops it
        Cube sc = comp.cubes().front();
        for (const Cube& c : comp.cubes()) sc = sc.supercube(c);
        if (const auto reduced = cubes[i].intersect(sc)) {
            cubes[i] = *reduced;
        }
    }
    return Cover(cover.num_vars(), cubes);
}

EspressoResult espresso(const Cover& onset, const Cover& dcset,
                        const EspressoOptions& opts) {
    EspressoResult res;
    res.initial_cubes = static_cast<int>(onset.size());
    res.initial_literals = onset.num_literals();

    // OFF-set = complement(ON + DC).
    Cover on_dc = onset;
    for (const Cube& d : dcset.cubes()) on_dc.add(d);
    const Cover offset = on_dc.complement();

    Cover f = expand(onset, offset);
    f = irredundant(f, dcset);
    int best = cost(f);
    Cover best_cover = f;

    for (int it = 0; it < opts.max_iterations; ++it) {
        ++res.iterations;
        f = reduce(f, dcset);
        f = expand(f, offset);
        f = irredundant(f, dcset);
        const int c = cost(f);
        if (c < best) {
            best = c;
            best_cover = f;
        } else {
            break;
        }
    }
    res.cover = best_cover;
    return res;
}

EspressoResult espresso(const Cover& onset) {
    return espresso(onset, Cover(onset.num_vars()));
}

}  // namespace janus
