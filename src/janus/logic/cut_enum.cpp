#include "janus/logic/cut_enum.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_map>

namespace janus {
namespace {

std::uint64_t signature_of(const std::vector<std::uint32_t>& leaves) {
    std::uint64_t s = 0;
    for (const auto l : leaves) s |= (1ull << (l % 64));
    return s;
}

/// a dominates b if a's leaves are a subset of b's (a is the better cut).
bool dominates(const Cut& a, const Cut& b) {
    if (a.leaves.size() > b.leaves.size()) return false;
    if ((a.signature & ~b.signature) != 0) return false;
    return std::includes(b.leaves.begin(), b.leaves.end(), a.leaves.begin(),
                         a.leaves.end());
}

/// Merges two sorted leaf sets; returns false if the union exceeds k.
bool merge_leaves(const std::vector<std::uint32_t>& a,
                  const std::vector<std::uint32_t>& b, int k,
                  std::vector<std::uint32_t>& out) {
    out.clear();
    std::size_t i = 0, j = 0;
    while (i < a.size() || j < b.size()) {
        std::uint32_t next;
        if (j >= b.size() || (i < a.size() && a[i] <= b[j])) {
            next = a[i];
            if (j < b.size() && b[j] == next) ++j;
            ++i;
        } else {
            next = b[j];
            ++j;
        }
        out.push_back(next);
        if (static_cast<int>(out.size()) > k) return false;
    }
    return true;
}

}  // namespace

CutSet enumerate_cuts(const Aig& aig, const CutEnumOptions& opts) {
    CutSet cs;
    cs.cuts.resize(aig.num_nodes());
    std::vector<std::uint32_t> merged;
    for (const std::uint32_t n : aig.topological_order()) {
        auto& node_cuts = cs.cuts[n];
        // Trivial cut first.
        Cut triv;
        triv.leaves = {n};
        triv.signature = signature_of(triv.leaves);
        node_cuts.push_back(triv);
        if (!aig.is_and(n)) continue;

        const std::uint32_t f0 = aig_node(aig.fanin0(n));
        const std::uint32_t f1 = aig_node(aig.fanin1(n));
        for (const Cut& c0 : cs.cuts[f0]) {
            for (const Cut& c1 : cs.cuts[f1]) {
                if (!merge_leaves(c0.leaves, c1.leaves, opts.max_leaves, merged)) {
                    continue;
                }
                Cut cand;
                cand.leaves = merged;
                cand.signature = signature_of(cand.leaves);
                // Dominance filtering against existing cuts.
                bool dominated = false;
                for (const Cut& ex : node_cuts) {
                    if (!ex.trivial() && dominates(ex, cand)) {
                        dominated = true;
                        break;
                    }
                }
                if (dominated) continue;
                std::erase_if(node_cuts, [&](const Cut& ex) {
                    return !ex.trivial() && dominates(cand, ex);
                });
                if (static_cast<int>(node_cuts.size()) <= opts.max_cuts_per_node) {
                    node_cuts.push_back(std::move(cand));
                }
            }
        }
    }
    return cs;
}

TruthTable cut_truth_table(const Aig& aig, std::uint32_t root, const Cut& cut) {
    const int k = static_cast<int>(cut.leaves.size());
    if (k > 16) throw std::invalid_argument("cut_truth_table: cut too large");
    // Local evaluation of the cone between leaves and root.
    std::unordered_map<std::uint32_t, TruthTable> tt;
    for (int i = 0; i < k; ++i) {
        tt.emplace(cut.leaves[static_cast<std::size_t>(i)], TruthTable::variable(k, i));
    }
    // Recursive evaluation with an explicit stack.
    std::vector<std::uint32_t> stack{root};
    while (!stack.empty()) {
        const std::uint32_t n = stack.back();
        if (tt.count(n)) {
            stack.pop_back();
            continue;
        }
        if (!aig.is_and(n)) {
            // Constant node reached below the leaves.
            if (n == 0) {
                tt.emplace(n, TruthTable::constant(k, false));
                stack.pop_back();
                continue;
            }
            throw std::logic_error("cut_truth_table: leaf set does not cover cone");
        }
        const std::uint32_t f0 = aig_node(aig.fanin0(n));
        const std::uint32_t f1 = aig_node(aig.fanin1(n));
        const bool have0 = tt.count(f0) > 0;
        const bool have1 = tt.count(f1) > 0;
        if (have0 && have1) {
            const TruthTable a =
                aig_is_complement(aig.fanin0(n)) ? ~tt.at(f0) : tt.at(f0);
            const TruthTable b =
                aig_is_complement(aig.fanin1(n)) ? ~tt.at(f1) : tt.at(f1);
            tt.emplace(n, a & b);
            stack.pop_back();
        } else {
            if (!have0) stack.push_back(f0);
            if (!have1) stack.push_back(f1);
        }
    }
    return tt.at(root);
}

}  // namespace janus
