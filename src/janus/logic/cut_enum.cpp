#include "janus/logic/cut_enum.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <stdexcept>

#include "janus/util/thread_pool.hpp"

namespace janus {
namespace {

std::uint64_t signature_of(const std::vector<std::uint32_t>& leaves) {
    std::uint64_t s = 0;
    for (const auto l : leaves) s |= (1ull << (l % 64));
    return s;
}

/// a dominates b if a's leaves are a subset of b's (a is the better cut).
bool dominates(const Cut& a, const Cut& b) {
    if (a.leaves.size() > b.leaves.size()) return false;
    if ((a.signature & ~b.signature) != 0) return false;
    return std::includes(b.leaves.begin(), b.leaves.end(), a.leaves.begin(),
                         a.leaves.end());
}

/// Merges two sorted leaf sets; returns false if the union exceeds k.
bool merge_leaves(const std::vector<std::uint32_t>& a,
                  const std::vector<std::uint32_t>& b, int k,
                  std::vector<std::uint32_t>& out) {
    out.clear();
    std::size_t i = 0, j = 0;
    while (i < a.size() || j < b.size()) {
        std::uint32_t next;
        if (j >= b.size() || (i < a.size() && a[i] <= b[j])) {
            next = a[i];
            if (j < b.size() && b[j] == next) ++j;
            ++i;
        } else {
            next = b[j];
            ++j;
        }
        out.push_back(next);
        if (static_cast<int>(out.size()) > k) return false;
    }
    return true;
}

/// Computes node n's full cut list from its fanins' (already complete)
/// lists. Pure per node given those inputs, which is what makes the
/// level-parallel sweep deterministic.
void compute_node_cuts(const Aig& aig, const CutEnumOptions& opts, CutSet& cs,
                       std::uint32_t n, std::vector<std::uint32_t>& merged) {
    auto& node_cuts = cs.cuts[n];
    // Trivial cut first.
    Cut triv;
    triv.leaves = {n};
    triv.signature = signature_of(triv.leaves);
    node_cuts.push_back(std::move(triv));
    if (!aig.is_and(n)) return;

    const std::uint32_t f0 = aig_node(aig.fanin0(n));
    const std::uint32_t f1 = aig_node(aig.fanin1(n));
    for (const Cut& c0 : cs.cuts[f0]) {
        for (const Cut& c1 : cs.cuts[f1]) {
            if (!merge_leaves(c0.leaves, c1.leaves, opts.max_leaves, merged)) {
                continue;
            }
            Cut cand;
            cand.leaves = merged;
            cand.signature = signature_of(cand.leaves);
            // Dominance filtering against existing cuts.
            bool dominated = false;
            for (const Cut& ex : node_cuts) {
                if (!ex.trivial() && dominates(ex, cand)) {
                    dominated = true;
                    break;
                }
            }
            if (dominated) continue;
            std::erase_if(node_cuts, [&](const Cut& ex) {
                return !ex.trivial() && dominates(cand, ex);
            });
            // Exact cap, trivial cut included: the list never exceeds
            // max_cuts_per_node (the old `<=` guard let it reach max + 1).
            if (static_cast<int>(node_cuts.size()) < opts.max_cuts_per_node) {
                node_cuts.push_back(std::move(cand));
            }
        }
    }
}

}  // namespace

CutSet enumerate_cuts(const Aig& aig, const CutEnumOptions& opts) {
    CutSet cs;
    cs.cuts.resize(aig.num_nodes());
    const int workers = std::max(1, opts.workers);

    if (workers == 1) {
        std::vector<std::uint32_t> merged;
        for (const std::uint32_t n : aig.topological_order()) {
            compute_node_cuts(aig, opts, cs, n, merged);
        }
        return cs;
    }

    // Level-parallel sweep: a node's cuts depend only on its fanins, which
    // sit on strictly lower levels, so each level is an independent batch
    // evaluated concurrently and written into per-node slots (the in-order
    // merge is positional — no ordering races).
    const std::vector<int> levels = aig.levels();
    int max_level = 0;
    for (std::uint32_t n = 0; n < aig.num_nodes(); ++n) {
        max_level = std::max(max_level, levels[n]);
    }
    std::vector<std::vector<std::uint32_t>> by_level(
        static_cast<std::size_t>(max_level) + 1);
    for (std::uint32_t n = 0; n < aig.num_nodes(); ++n) {
        by_level[static_cast<std::size_t>(levels[n])].push_back(n);
    }

    ThreadPool pool(workers);
    for (const auto& nodes : by_level) {
        if (nodes.empty()) continue;
        const std::size_t chunks =
            std::min(nodes.size(), static_cast<std::size_t>(workers));
        pool.for_each_index(chunks, [&](std::size_t c) {
            std::vector<std::uint32_t> merged;
            for (std::size_t i = c; i < nodes.size(); i += chunks) {
                compute_node_cuts(aig, opts, cs, nodes[i], merged);
            }
        });
    }
    return cs;
}

// ------------------------------------------------------ cone evaluation

CutConeEvaluator::CutConeEvaluator(const Aig& aig)
    : aig_(aig),
      slot_(aig.num_nodes(), 0),
      stamp_(aig.num_nodes(), 0) {}

TruthTable CutConeEvaluator::evaluate(std::uint32_t root, const Cut& cut) {
    const int k = static_cast<int>(cut.leaves.size());
    if (k > 16) throw std::invalid_argument("cut_truth_table: cut too large");
    ++epoch_;
    tables_.clear();
    for (int i = 0; i < k; ++i) {
        const std::uint32_t leaf = cut.leaves[static_cast<std::size_t>(i)];
        slot_[leaf] = static_cast<std::uint32_t>(tables_.size());
        stamp_[leaf] = epoch_;
        tables_.push_back(TruthTable::variable(k, i));
    }
    if (stamp_[root] == epoch_) return tables_[slot_[root]];  // trivial cut

    // Collect the cone between leaves and root, then evaluate it in index
    // order (AIG indices are topological, so sorting ascending is a valid
    // schedule and fanins always resolve to an earlier slot).
    cone_.clear();
    stack_.clear();
    stack_.push_back(root);
    while (!stack_.empty()) {
        const std::uint32_t n = stack_.back();
        stack_.pop_back();
        if (stamp_[n] == epoch_) continue;  // leaf or already collected
        if (!aig_.is_and(n)) {
            if (n == 0) {
                // Constant node reached below the leaves.
                slot_[n] = static_cast<std::uint32_t>(tables_.size());
                stamp_[n] = epoch_;
                tables_.push_back(TruthTable::constant(k, false));
                continue;
            }
            throw std::logic_error("cut_truth_table: leaf set does not cover cone");
        }
        stamp_[n] = epoch_;
        cone_.push_back(n);
        stack_.push_back(aig_node(aig_.fanin0(n)));
        stack_.push_back(aig_node(aig_.fanin1(n)));
    }
    std::sort(cone_.begin(), cone_.end());
    for (const std::uint32_t n : cone_) {
        const AigLit l0 = aig_.fanin0(n);
        const AigLit l1 = aig_.fanin1(n);
        const TruthTable a = aig_is_complement(l0) ? ~tables_[slot_[aig_node(l0)]]
                                                   : tables_[slot_[aig_node(l0)]];
        const TruthTable b = aig_is_complement(l1) ? ~tables_[slot_[aig_node(l1)]]
                                                   : tables_[slot_[aig_node(l1)]];
        slot_[n] = static_cast<std::uint32_t>(tables_.size());
        tables_.push_back(a & b);
    }
    return tables_[slot_[root]];
}

TruthTable cut_truth_table(const Aig& aig, std::uint32_t root, const Cut& cut) {
    CutConeEvaluator evaluator(aig);
    return evaluator.evaluate(root, cut);
}

}  // namespace janus
