#pragma once
/// \file aiger.hpp
/// AIGER circuit reader/writer: the interchange format of the hardware
/// model-checking and logic-synthesis communities (Biere's aiger toolkit,
/// ABC, the HWMCC benchmark sets). Both variants are supported:
///
///   aag M I L O A   — ASCII: one decimal literal set per line
///   aig M I L O A   — binary: inputs/ands implicit, and-gate fanins
///                     delta-encoded as LEB128-style 7-bit groups
///
/// Literals are 2*var (+1 when complemented); variable 0 is constant
/// false. Latches carry a next-state literal and an optional reset value
/// (0/1, default 0 per the AIGER spec). The reader folds the file through
/// Aig::land(), so structural hashing and the constant/idempotence rules
/// apply transparently — the in-memory graph can be smaller than the
/// file's A count, and the literal map tracks it. Latch outputs enter the
/// Aig as extra inputs after the real ones and next-state functions as
/// extra cones, i.e. the classic combinational extraction; AigerDesign
/// keeps the boundary bookkeeping, and aig_netlist.hpp stitches DFFs back
/// around it for the physical flow. Symbol tables (i/l/o lines) and
/// comment sections are honored. Grammar notes: docs/IO.md.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "janus/logic/aig.hpp"

namespace janus {

/// One AIGER latch: combinationally extracted into the design Aig.
struct AigerLatch {
    std::string name;   ///< symbol-table name or "l<k>"
    AigLit next = 0;    ///< next-state function, a literal of AigerDesign::aig
    int reset = 0;      ///< 0/1 power-up value (AIGER default 0)
};

/// A parsed AIGER file. `aig` holds the combinational extraction: inputs
/// 0..num_inputs-1 are the file's real inputs, inputs num_inputs.. are the
/// latch outputs (current-state variables); aig.outputs() are the file's
/// real outputs. Latch next-state literals live in `latches`.
struct AigerDesign {
    Aig aig;
    std::string name;              ///< from the comment section or caller
    std::size_t num_inputs = 0;    ///< real primary inputs
    std::vector<AigerLatch> latches;
    std::size_t file_ands = 0;     ///< A from the header (>= aig.num_ands())

    bool sequential() const { return !latches.empty(); }
};

/// Parses either AIGER variant (dispatched on the `aag`/`aig` magic).
/// Binary payloads require a stream opened in binary mode —
/// read_aiger_file does this for you. Throws std::runtime_error with a
/// byte/line position on malformed or truncated input.
AigerDesign read_aiger(std::istream& is, const std::string& name = "aiger");

/// Opens `path` (binary mode) and parses it; the design name is the file
/// stem unless the comment section names it.
AigerDesign read_aiger_file(const std::string& path);

/// Writes the ASCII (`aag`) form. Literals are renumbered canonically
/// (inputs, then latches, then live AND nodes in topological order), so
/// write(read(f)) is a fixpoint: parsing the output again yields a
/// structurally identical design.
void write_aiger_ascii(std::ostream& os, const AigerDesign& design);

/// Writes the binary (`aig`) form with delta-encoded AND fanins.
void write_aiger_binary(std::ostream& os, const AigerDesign& design);

}  // namespace janus
