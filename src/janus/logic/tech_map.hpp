#pragma once
/// \file tech_map.hpp
/// Cut-based technology mapping from an AIG into a standard-cell netlist.
/// Matching is exhaustive over input permutations and phases (inverter
/// absorption), selection is area-flow driven. `naive_map` is the
/// no-optimization baseline used by experiment E1.
///
/// The matching DP is eval-parallel per topological level (docs/SYNTH.md):
/// each node's cut truth tables and pattern lookups are pure given the
/// area-flow of its (lower-level, frozen) leaves, so levels fan out on the
/// thread pool and the netlist emission stays serial. Output is
/// byte-identical for any worker count.

#include <cstdint>
#include <memory>

#include "janus/logic/aig.hpp"
#include "janus/netlist/netlist.hpp"

namespace janus {

struct TechMapOptions {
    int cut_size = 4;
    /// Exact per-node cut cap, trivial cut included (cut_enum.hpp).
    int max_cuts_per_node = 8;
    /// Threads for cut enumeration and the level-parallel matching sweep;
    /// byte-identical output for any value. 1 = serial.
    int workers = 1;
};

struct TechMapStats {
    std::uint64_t cuts_evaluated = 0;  ///< non-trivial cuts truth-table'd
    std::uint64_t matched_cuts = 0;    ///< cuts with a library pattern
    int workers = 1;
};

/// Maps `aig` onto `lib`. The result is a valid netlist whose primary
/// input/output names and order match the AIG's, logically equivalent to
/// it (verified in tests by exhaustive/random simulation).
Netlist tech_map(const Aig& aig, std::shared_ptr<const CellLibrary> lib,
                 const TechMapOptions& opts = {}, TechMapStats* stats = nullptr);

/// Baseline mapping: one AND2 cell per AIG node plus explicit inverters on
/// complemented edges. No sharing-aware matching, no multi-input cells.
Netlist naive_map(const Aig& aig, std::shared_ptr<const CellLibrary> lib);

}  // namespace janus
