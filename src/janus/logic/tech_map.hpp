#pragma once
/// \file tech_map.hpp
/// Cut-based technology mapping from an AIG into a standard-cell netlist.
/// Matching is exhaustive over input permutations and phases (inverter
/// absorption), selection is area-flow driven. `naive_map` is the
/// no-optimization baseline used by experiment E1.

#include <memory>

#include "janus/logic/aig.hpp"
#include "janus/netlist/netlist.hpp"

namespace janus {

struct TechMapOptions {
    int cut_size = 4;
    int max_cuts_per_node = 8;
};

/// Maps `aig` onto `lib`. The result is a valid netlist whose primary
/// input/output names and order match the AIG's, logically equivalent to
/// it (verified in tests by exhaustive/random simulation).
Netlist tech_map(const Aig& aig, std::shared_ptr<const CellLibrary> lib,
                 const TechMapOptions& opts = {});

/// Baseline mapping: one AND2 cell per AIG node plus explicit inverters on
/// complemented edges. No sharing-aware matching, no multi-input cells.
Netlist naive_map(const Aig& aig, std::shared_ptr<const CellLibrary> lib);

}  // namespace janus
