#include "janus/logic/cover.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace janus {

Cover::Cover(int num_vars, std::vector<Cube> cubes)
    : num_vars_(num_vars), cubes_(std::move(cubes)) {
    for (const Cube& c : cubes_) {
        assert(c.num_vars() == num_vars_);
        (void)c;
    }
}

void Cover::add(const Cube& c) {
    assert(c.num_vars() == num_vars_);
    if (!c.is_empty()) cubes_.push_back(c);
}

int Cover::num_literals() const {
    int n = 0;
    for (const Cube& c : cubes_) n += c.num_literals();
    return n;
}

bool Cover::covers_minterm(std::uint64_t assignment) const {
    for (const Cube& c : cubes_) {
        if (c.covers_minterm(assignment)) return true;
    }
    return false;
}

Cover Cover::cofactor(int var, bool value) const {
    Cover r(num_vars_);
    const Literal block = value ? Literal::Neg : Literal::Pos;
    for (const Cube& c : cubes_) {
        const Literal l = c.get(var);
        if (l == block || l == Literal::Empty) continue;
        Cube cc = c;
        cc.set(var, Literal::DC);
        r.cubes_.push_back(std::move(cc));
    }
    return r;
}

Cover Cover::cofactor(const Cube& c) const {
    Cover r(num_vars_);
    for (const Cube& g : cubes_) {
        if (g.distance(c) > 0) continue;  // disjoint from c
        Cube gg = g;
        for (int v = 0; v < num_vars_; ++v) {
            if (c.get(v) == Literal::Pos || c.get(v) == Literal::Neg) {
                gg.set(v, Literal::DC);
            }
        }
        r.cubes_.push_back(std::move(gg));
    }
    return r;
}

int Cover::most_binate_var() const {
    int best = -1;
    int best_score = 0;
    std::vector<int> pos(static_cast<std::size_t>(num_vars_), 0);
    std::vector<int> neg(static_cast<std::size_t>(num_vars_), 0);
    for (const Cube& c : cubes_) {
        for (int v = 0; v < num_vars_; ++v) {
            if (c.get(v) == Literal::Pos) ++pos[static_cast<std::size_t>(v)];
            if (c.get(v) == Literal::Neg) ++neg[static_cast<std::size_t>(v)];
        }
    }
    for (int v = 0; v < num_vars_; ++v) {
        const auto uv = static_cast<std::size_t>(v);
        if (pos[uv] > 0 && neg[uv] > 0) {
            const int score = pos[uv] + neg[uv];
            if (score > best_score) {
                best_score = score;
                best = v;
            }
        }
    }
    return best;
}

bool Cover::is_tautology() const {
    if (cubes_.empty()) return false;
    for (const Cube& c : cubes_) {
        if (c.is_full()) return true;
    }
    const int v = most_binate_var();
    if (v < 0) {
        // Unate cover: tautology iff it contains the full cube, which was
        // already checked above.
        return false;
    }
    return cofactor(v, false).is_tautology() && cofactor(v, true).is_tautology();
}

Cover Cover::complement() const {
    // Base cases.
    if (cubes_.empty()) {
        Cover r(num_vars_);
        r.cubes_.push_back(Cube(num_vars_));
        return r;
    }
    for (const Cube& c : cubes_) {
        if (c.is_full()) return Cover(num_vars_);
    }
    if (cubes_.size() == 1) {
        // De Morgan on a single cube: one cube per literal.
        Cover r(num_vars_);
        const Cube& c = cubes_.front();
        for (int v = 0; v < num_vars_; ++v) {
            const Literal l = c.get(v);
            if (l == Literal::DC) continue;
            Cube nc(num_vars_);
            nc.set(v, l == Literal::Pos ? Literal::Neg : Literal::Pos);
            r.cubes_.push_back(std::move(nc));
        }
        return r;
    }
    int v = most_binate_var();
    if (v < 0) {
        // Unate cover: split on any non-DC variable of the first
        // non-full cube (recursion still terminates).
        for (int u = 0; u < num_vars_ && v < 0; ++u) {
            for (const Cube& c : cubes_) {
                if (c.get(u) != Literal::DC) {
                    v = u;
                    break;
                }
            }
        }
        if (v < 0) return Cover(num_vars_);  // only full cubes (handled above)
    }
    const Cover c0 = cofactor(v, false).complement();
    const Cover c1 = cofactor(v, true).complement();
    Cover r(num_vars_);
    for (Cube c : c0.cubes_) {
        if (c.get(v) == Literal::DC) c.set(v, Literal::Neg);
        r.cubes_.push_back(std::move(c));
    }
    for (Cube c : c1.cubes_) {
        if (c.get(v) == Literal::DC) c.set(v, Literal::Pos);
        r.cubes_.push_back(std::move(c));
    }
    r.remove_single_cube_containment();
    return r;
}

bool Cover::contains_cube(const Cube& c) const {
    if (c.is_empty()) return true;
    return cofactor(c).is_tautology();
}

void Cover::remove_single_cube_containment() {
    std::vector<Cube> kept;
    for (std::size_t i = 0; i < cubes_.size(); ++i) {
        bool contained = false;
        for (std::size_t j = 0; j < cubes_.size() && !contained; ++j) {
            if (i == j) continue;
            if (cubes_[j].contains(cubes_[i])) {
                // Break ties (equal cubes) by keeping the first.
                contained = !(cubes_[i].contains(cubes_[j]) && i < j);
            }
        }
        if (!contained) kept.push_back(cubes_[i]);
    }
    cubes_ = std::move(kept);
}

TruthTable Cover::to_truth_table() const {
    if (num_vars_ > 16) {
        throw std::invalid_argument("Cover::to_truth_table: too many variables");
    }
    TruthTable tt(num_vars_);
    for (std::uint64_t m = 0; m < tt.num_minterms_space(); ++m) {
        tt.set_bit(m, covers_minterm(m));
    }
    return tt;
}

Cover Cover::from_truth_table(const TruthTable& tt) {
    Cover r(tt.num_vars());
    for (std::uint64_t m = 0; m < tt.num_minterms_space(); ++m) {
        if (!tt.bit(m)) continue;
        Cube c(tt.num_vars());
        for (int v = 0; v < tt.num_vars(); ++v) {
            c.set(v, (m >> v) & 1 ? Literal::Pos : Literal::Neg);
        }
        r.cubes_.push_back(std::move(c));
    }
    return r;
}

}  // namespace janus
