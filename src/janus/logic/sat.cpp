#include "janus/logic/sat.hpp"

#include <algorithm>
#include <stdexcept>

namespace janus {

std::uint32_t SatSolver::new_var() {
    ++num_vars_;
    model_.resize(num_vars_ + 1, 0);
    return num_vars_;
}

void SatSolver::add_clause(std::vector<SatLit> clause) {
    // Drop duplicate literals; a clause with l and !l is a tautology.
    std::sort(clause.begin(), clause.end());
    clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
    for (std::size_t i = 1; i < clause.size(); ++i) {
        if (sat_var(clause[i]) == sat_var(clause[i - 1])) return;  // tautology
    }
    clauses_.push_back(std::move(clause));
}

SatSolver::Propagate SatSolver::propagate(std::vector<std::uint32_t>& trail) {
    // Naive unit propagation to fixpoint (fine at mini-solver scale).
    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto& clause : clauses_) {
            std::size_t unassigned = 0;
            SatLit unit = 0;
            bool satisfied = false;
            for (const SatLit l : clause) {
                const signed char v = model_[sat_var(l)];
                if (v == 0) {
                    ++unassigned;
                    unit = l;
                } else if ((v > 0) != sat_neg(l)) {
                    satisfied = true;
                    break;
                }
            }
            if (satisfied) continue;
            if (unassigned == 0) return Propagate::Conflict;
            if (unassigned == 1) {
                model_[sat_var(unit)] = sat_neg(unit) ? -1 : 1;
                trail.push_back(sat_var(unit));
                changed = true;
            }
        }
    }
    return Propagate::Ok;
}

bool SatSolver::dpll(std::uint64_t budget) {
    std::vector<std::uint32_t> trail;
    if (propagate(trail) == Propagate::Conflict) {
        for (const auto v : trail) model_[v] = 0;
        return false;
    }
    // Pick the first unassigned variable.
    std::uint32_t var = 0;
    for (std::uint32_t v = 1; v <= num_vars_; ++v) {
        if (model_[v] == 0) {
            var = v;
            break;
        }
    }
    if (var == 0) return true;  // complete assignment
    if (decisions_ >= budget) {
        for (const auto v : trail) model_[v] = 0;
        throw std::length_error("sat budget");
    }
    ++decisions_;
    for (const signed char phase : {1, -1}) {
        model_[var] = phase;
        if (dpll(budget)) return true;
        model_[var] = 0;
    }
    for (const auto v : trail) model_[v] = 0;
    return false;
}

SatSolver::Result SatSolver::solve(std::uint64_t max_decisions) {
    std::fill(model_.begin(), model_.end(), 0);
    decisions_ = 0;
    try {
        return dpll(max_decisions) ? Result::Sat : Result::Unsat;
    } catch (const std::length_error&) {
        return Result::Unknown;
    }
}

bool SatSolver::model_value(std::uint32_t var) const {
    return model_.at(var) > 0;
}

std::vector<SatLit> encode_aig(SatSolver& solver, const Aig& aig,
                               std::vector<std::uint32_t>& input_vars) {
    // Shared input variables (created on demand).
    while (input_vars.size() < aig.num_inputs()) {
        input_vars.push_back(solver.new_var());
    }
    // Constant-false variable, forced.
    const std::uint32_t const_var = solver.new_var();
    solver.add_clause({sat_lit(const_var, true)});

    std::vector<SatLit> node_lit(aig.num_nodes(), sat_lit(const_var, false));
    for (std::size_t i = 0; i < aig.num_inputs(); ++i) {
        node_lit[aig_node(aig.input(i))] = sat_lit(input_vars[i], false);
    }
    const auto lit_of = [&](AigLit l) {
        const SatLit base = node_lit[aig_node(l)];
        return aig_is_complement(l) ? sat_not(base) : base;
    };
    for (const std::uint32_t n : aig.topological_order()) {
        if (!aig.is_and(n)) continue;
        const std::uint32_t v = solver.new_var();
        const SatLit y = sat_lit(v, false);
        const SatLit a = lit_of(aig.fanin0(n));
        const SatLit b = lit_of(aig.fanin1(n));
        // y <-> a & b.
        solver.add_clause({sat_not(y), a});
        solver.add_clause({sat_not(y), b});
        solver.add_clause({y, sat_not(a), sat_not(b)});
        node_lit[n] = y;
    }
    std::vector<SatLit> outs;
    outs.reserve(aig.outputs().size());
    for (const auto& [name, l] : aig.outputs()) {
        (void)name;
        outs.push_back(lit_of(l));
    }
    return outs;
}

std::optional<bool> sat_equivalent(const Aig& a, const Aig& b,
                                   std::uint64_t max_decisions) {
    if (a.num_inputs() != b.num_inputs() ||
        a.outputs().size() != b.outputs().size()) {
        throw std::invalid_argument("sat_equivalent: interface mismatch");
    }
    SatSolver solver;
    std::vector<std::uint32_t> inputs;
    const auto oa = encode_aig(solver, a, inputs);
    const auto ob = encode_aig(solver, b, inputs);

    // Miter: OR over per-output XORs must be satisfiable iff not equal.
    std::vector<SatLit> any_diff;
    for (std::size_t o = 0; o < oa.size(); ++o) {
        const std::uint32_t d = solver.new_var();
        const SatLit dl = sat_lit(d, false);
        // d -> (oa != ob):  (!d | oa | ob') is wrong; encode d <-> xor.
        solver.add_clause({sat_not(dl), oa[o], ob[o]});
        solver.add_clause({sat_not(dl), sat_not(oa[o]), sat_not(ob[o])});
        solver.add_clause({dl, sat_not(oa[o]), ob[o]});
        solver.add_clause({dl, oa[o], sat_not(ob[o])});
        any_diff.push_back(dl);
    }
    solver.add_clause(any_diff);  // at least one output differs

    switch (solver.solve(max_decisions)) {
        case SatSolver::Result::Sat: return false;   // distinguishing input found
        case SatSolver::Result::Unsat: return true;  // proved equivalent
        case SatSolver::Result::Unknown: return std::nullopt;
    }
    return std::nullopt;
}

}  // namespace janus
