#pragma once
/// \file cover.hpp
/// Covers (sets of cubes, interpreted as a sum of products) and the
/// classical cover algebra: cofactor, tautology, complement, containment.
/// These are the primitives under the Espresso loop in espresso.hpp.

#include <cstdint>
#include <vector>

#include "janus/logic/cube.hpp"
#include "janus/logic/truth_table.hpp"

namespace janus {

class Cover {
  public:
    explicit Cover(int num_vars = 0) : num_vars_(num_vars) {}
    Cover(int num_vars, std::vector<Cube> cubes);

    int num_vars() const { return num_vars_; }
    const std::vector<Cube>& cubes() const { return cubes_; }
    std::size_t size() const { return cubes_.size(); }
    bool empty() const { return cubes_.empty(); }

    /// Appends a cube (ignored if it is the empty set).
    void add(const Cube& c);

    /// Total literal count (the classic PLA cost function).
    int num_literals() const;

    /// True if the minterm is covered by some cube.
    bool covers_minterm(std::uint64_t assignment) const;

    /// Cofactor with respect to variable `var` = `value` (Shannon). The
    /// result is over the same variable space with `var` made DC.
    Cover cofactor(int var, bool value) const;

    /// Cofactor with respect to a cube (used by containment checks):
    /// cubes disjoint from `c` are dropped, and variables fixed in `c`
    /// become DC in the survivors.
    Cover cofactor(const Cube& c) const;

    /// True iff the cover equals the constant-1 function (Shannon
    /// recursion with unate shortcuts).
    bool is_tautology() const;

    /// Complement as a cover (recursive Shannon expansion). Exact; output
    /// is made single-cube-containment minimal.
    Cover complement() const;

    /// True iff cube `c` is contained in this cover (cofactor + tautology).
    bool contains_cube(const Cube& c) const;

    /// Removes cubes contained in another single cube of the cover.
    void remove_single_cube_containment();

    /// Exhaustive conversion to a truth table; requires num_vars <= 16.
    /// Intended for verification in tests.
    TruthTable to_truth_table() const;

    /// Builds the cover of all ON-set minterms of a truth table (one cube
    /// per minterm; callers usually minimize afterwards).
    static Cover from_truth_table(const TruthTable& tt);

  private:
    int num_vars_;
    std::vector<Cube> cubes_;

    /// Chooses the most-binate variable, or -1 when the cover is unate.
    int most_binate_var() const;
};

}  // namespace janus
