#include "janus/logic/exact_cover.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <stdexcept>

namespace janus {
namespace {

/// Implicant as (value, mask): mask bits are don't-care positions; value
/// bits are the fixed literal values (zero under the mask).
struct Implicant {
    std::uint32_t value = 0;
    std::uint32_t mask = 0;
    friend auto operator<=>(const Implicant&, const Implicant&) = default;
};

Cube to_cube(const Implicant& imp, int n) {
    Cube c(n);
    for (int v = 0; v < n; ++v) {
        if (imp.mask & (1u << v)) continue;  // stays DC
        c.set(v, (imp.value & (1u << v)) ? Literal::Pos : Literal::Neg);
    }
    return c;
}

bool covers(const Implicant& imp, std::uint32_t minterm) {
    return (minterm & ~imp.mask) == imp.value;
}

}  // namespace

std::vector<Cube> prime_implicants(const TruthTable& tt, const TruthTable& dc) {
    const int n = tt.num_vars();
    if (n > 12) throw std::invalid_argument("prime_implicants: too many variables");

    std::set<Implicant> current;
    for (std::uint64_t m = 0; m < tt.num_minterms_space(); ++m) {
        if (tt.bit(m) || dc.bit(m)) {
            current.insert({static_cast<std::uint32_t>(m), 0});
        }
    }
    std::vector<Implicant> primes;
    while (!current.empty()) {
        std::set<Implicant> next;
        std::set<Implicant> combined;
        // Group by mask; combine pairs at Hamming distance one.
        for (auto it = current.begin(); it != current.end(); ++it) {
            for (int b = 0; b < n; ++b) {
                if (it->mask & (1u << b)) continue;
                Implicant partner = *it;
                partner.value ^= (1u << b);
                if (current.count(partner)) {
                    Implicant merged{it->value & ~(1u << b),
                                     it->mask | (1u << b)};
                    next.insert(merged);
                    combined.insert(*it);
                    combined.insert(partner);
                }
            }
        }
        for (const Implicant& imp : current) {
            if (!combined.count(imp)) primes.push_back(imp);
        }
        current = std::move(next);
    }

    // Keep primes covering at least one ON minterm.
    std::vector<Cube> out;
    for (const Implicant& p : primes) {
        bool useful = false;
        for (std::uint64_t m = 0; m < tt.num_minterms_space() && !useful; ++m) {
            useful = tt.bit(m) && covers(p, static_cast<std::uint32_t>(m));
        }
        if (useful) out.push_back(to_cube(p, n));
    }
    return out;
}

ExactMinimizeResult exact_minimize(const TruthTable& tt, const TruthTable& dc,
                                   const ExactMinimizeOptions& opts) {
    const int n = tt.num_vars();
    ExactMinimizeResult res;
    res.cover = Cover(n);
    if (tt.is_constant(false)) return res;
    if ((tt | dc).is_constant(true) && !tt.is_constant(false)) {
        // Tautology (with DCs): single full cube.
        res.cover.add(Cube(n));
        res.num_primes = 1;
        return res;
    }

    const std::vector<Cube> primes = prime_implicants(tt, dc);
    res.num_primes = primes.size();

    // Covering problem: ON minterms x primes.
    std::vector<std::uint32_t> on;
    for (std::uint64_t m = 0; m < tt.num_minterms_space(); ++m) {
        if (tt.bit(m)) on.push_back(static_cast<std::uint32_t>(m));
    }
    std::vector<std::vector<std::size_t>> covers_of(on.size());
    for (std::size_t mi = 0; mi < on.size(); ++mi) {
        for (std::size_t pi = 0; pi < primes.size(); ++pi) {
            if (primes[pi].covers_minterm(on[mi])) covers_of[mi].push_back(pi);
        }
    }

    // Branch and bound for the minimum number of primes.
    std::vector<std::size_t> best;
    bool have_best = false;
    std::vector<std::size_t> chosen;
    std::vector<bool> covered(on.size(), false);
    std::uint64_t nodes = 0;
    bool budget_hit = false;

    std::function<void()> branch = [&]() {
        if (++nodes > opts.max_branch_nodes) {
            budget_hit = true;
            return;
        }
        if (have_best && chosen.size() + 1 > best.size()) return;  // bound
        // Find the uncovered minterm with the fewest candidate primes.
        std::size_t pick = on.size();
        std::size_t fewest = SIZE_MAX;
        for (std::size_t mi = 0; mi < on.size(); ++mi) {
            if (covered[mi]) continue;
            if (covers_of[mi].size() < fewest) {
                fewest = covers_of[mi].size();
                pick = mi;
            }
        }
        if (pick == on.size()) {
            if (!have_best || chosen.size() < best.size()) {
                best = chosen;
                have_best = true;
            }
            return;
        }
        if (have_best && chosen.size() + 1 >= best.size() + 1 &&
            chosen.size() + 1 > best.size()) {
            return;
        }
        for (const std::size_t pi : covers_of[pick]) {
            // Apply.
            std::vector<std::size_t> newly;
            for (std::size_t mi = 0; mi < on.size(); ++mi) {
                if (!covered[mi] && primes[pi].covers_minterm(on[mi])) {
                    covered[mi] = true;
                    newly.push_back(mi);
                }
            }
            chosen.push_back(pi);
            branch();
            chosen.pop_back();
            for (const std::size_t mi : newly) covered[mi] = false;
            if (budget_hit) return;
        }
    };
    branch();
    res.optimal = !budget_hit;

    for (const std::size_t pi : best) res.cover.add(primes[pi]);
    return res;
}

ExactMinimizeResult exact_minimize(const TruthTable& tt) {
    return exact_minimize(tt, TruthTable(tt.num_vars()));
}

}  // namespace janus
