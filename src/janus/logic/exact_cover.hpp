#pragma once
/// \file exact_cover.hpp
/// Exact two-level minimization (Quine-McCluskey prime generation + unate
/// covering with branch and bound). Exponential — usable to ~10 variables
/// — and exists as the quality reference the Espresso heuristic is tested
/// against.

#include "janus/logic/cover.hpp"
#include "janus/logic/truth_table.hpp"

namespace janus {

struct ExactMinimizeResult {
    Cover cover;
    std::size_t num_primes = 0;  ///< primes generated before covering
    bool optimal = true;         ///< false when the node budget stopped B&B
};

struct ExactMinimizeOptions {
    std::uint64_t max_branch_nodes = 1'000'000;
};

/// Minimum-cube SOP of `tt` (don't-cares via `dc`: minterms that may be
/// covered freely). Requires tt.num_vars() <= 12.
ExactMinimizeResult exact_minimize(const TruthTable& tt, const TruthTable& dc,
                                   const ExactMinimizeOptions& opts = {});
ExactMinimizeResult exact_minimize(const TruthTable& tt);

/// All prime implicants of (tt | dc) that cover at least one ON minterm.
std::vector<Cube> prime_implicants(const TruthTable& tt, const TruthTable& dc);

}  // namespace janus
