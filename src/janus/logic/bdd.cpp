#include "janus/logic/bdd.hpp"

#include <algorithm>
#include <map>
#include <cassert>
#include <functional>
#include <stdexcept>

namespace janus {

Bdd::Bdd(int num_vars) : num_vars_(num_vars) {
    if (num_vars < 0 || num_vars > 62) {
        throw std::invalid_argument("Bdd: num_vars out of range");
    }
    nodes_.push_back(Node{num_vars_, kFalse, kFalse});  // terminal 0
    nodes_.push_back(Node{num_vars_, kTrue, kTrue});    // terminal 1
}

Bdd::Ref Bdd::make_node(int var, Ref lo, Ref hi) {
    if (lo == hi) return lo;  // reduction
    const std::uint64_t key = (static_cast<std::uint64_t>(var) << 52) ^
                              (static_cast<std::uint64_t>(lo) << 26) ^ hi;
    if (const auto it = unique_.find(key); it != unique_.end()) {
        const Node& n = nodes_[it->second];
        if (n.var == var && n.lo == lo && n.hi == hi) return it->second;
    }
    nodes_.push_back(Node{var, lo, hi});
    const Ref r = static_cast<Ref>(nodes_.size() - 1);
    unique_[key] = r;
    return r;
}

Bdd::Ref Bdd::var(int v) {
    assert(v >= 0 && v < num_vars_);
    return make_node(v, kFalse, kTrue);
}

Bdd::Ref Bdd::ite(Ref f, Ref g, Ref h) {
    // Terminal cases.
    if (f == kTrue) return g;
    if (f == kFalse) return h;
    if (g == h) return g;
    if (g == kTrue && h == kFalse) return f;

    const std::uint64_t key = (static_cast<std::uint64_t>(f) << 42) ^
                              (static_cast<std::uint64_t>(g) << 21) ^ h;
    if (const auto it = ite_cache_.find(key); it != ite_cache_.end()) {
        return it->second;
    }
    const int top = std::min({var_of(f), var_of(g), var_of(h)});
    const auto cof = [&](Ref r, bool hi) {
        if (var_of(r) != top) return r;
        return hi ? nodes_[r].hi : nodes_[r].lo;
    };
    const Ref lo = ite(cof(f, false), cof(g, false), cof(h, false));
    const Ref hi = ite(cof(f, true), cof(g, true), cof(h, true));
    const Ref r = make_node(top, lo, hi);
    ite_cache_[key] = r;
    return r;
}

Bdd::Ref Bdd::from_truth_table(const TruthTable& tt) {
    if (tt.num_vars() > num_vars_) {
        throw std::invalid_argument("Bdd::from_truth_table: variable mismatch");
    }
    // Recursive Shannon on the table, top variable = highest index so the
    // natural order x0 < x1 < ... holds along paths. Memoized on the exact
    // table contents: the result depends only on the function.
    std::map<std::vector<std::uint64_t>, Ref> memo;
    std::function<Ref(const TruthTable&, int)> build =
        [&](const TruthTable& f, int level) -> Ref {
        if (f.is_constant(false)) return kFalse;
        if (f.is_constant(true)) return kTrue;
        assert(level >= 0);
        if (const auto it = memo.find(f.words()); it != memo.end()) return it->second;
        if (!f.depends_on(level)) return build(f, level - 1);
        const Ref lo = build(f.cofactor(level, false), level - 1);
        const Ref hi = build(f.cofactor(level, true), level - 1);
        const Ref r = make_node(level, lo, hi);
        memo.emplace(f.words(), r);
        return r;
    };
    return build(tt, tt.num_vars() - 1);
}

std::size_t Bdd::count_nodes(const std::vector<Ref>& roots) const {
    std::vector<bool> seen(nodes_.size(), false);
    std::vector<Ref> stack(roots);
    std::size_t count = 0;
    while (!stack.empty()) {
        const Ref r = stack.back();
        stack.pop_back();
        if (r <= kTrue || seen[r]) continue;
        seen[r] = true;
        ++count;
        stack.push_back(nodes_[r].lo);
        stack.push_back(nodes_[r].hi);
    }
    return count;
}

std::uint64_t Bdd::sat_count(Ref f) const {
    std::unordered_map<Ref, double> memo;
    std::function<double(Ref)> count = [&](Ref r) -> double {
        if (r == kFalse) return 0.0;
        if (r == kTrue) return 1.0;
        if (const auto it = memo.find(r); it != memo.end()) return it->second;
        // Each child is weighted by the variables skipped between levels.
        const Node& n = nodes_[r];
        const auto weight = [&](Ref child) {
            const int skipped = var_of(child) - n.var - 1;
            return count(child) * static_cast<double>(1ull << skipped);
        };
        const double c = weight(n.lo) + weight(n.hi);
        memo[r] = c;
        return c;
    };
    const double below_root = count(f) * static_cast<double>(1ull << var_of(f));
    return static_cast<std::uint64_t>(below_root / 1.0);
}

bool Bdd::evaluate(Ref f, std::uint64_t assignment) const {
    while (f > kTrue) {
        const Node& n = nodes_[f];
        f = (assignment >> n.var) & 1 ? n.hi : n.lo;
    }
    return f == kTrue;
}

}  // namespace janus
