#include "janus/logic/truth_table.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace janus {
namespace {

std::size_t words_needed(int num_vars) {
    return num_vars <= 6 ? 1 : (std::size_t{1} << (num_vars - 6));
}

}  // namespace

TruthTable::TruthTable(int num_vars) : num_vars_(num_vars) {
    if (num_vars < 0 || num_vars > 16) {
        throw std::invalid_argument("TruthTable: num_vars out of range");
    }
    words_.assign(words_needed(num_vars), 0);
}

void TruthTable::mask_tail() {
    if (num_vars_ < 6) {
        words_[0] &= (1ull << (1u << num_vars_)) - 1;
    }
}

TruthTable TruthTable::constant(int num_vars, bool value) {
    TruthTable t(num_vars);
    if (value) {
        for (auto& w : t.words_) w = ~0ull;
        t.mask_tail();
    }
    return t;
}

TruthTable TruthTable::variable(int num_vars, int var) {
    assert(var >= 0 && var < num_vars);
    TruthTable t(num_vars);
    if (var < 6) {
        std::uint64_t pattern = 0;
        for (unsigned m = 0; m < 64; ++m) {
            if (m & (1u << var)) pattern |= (1ull << m);
        }
        for (auto& w : t.words_) w = pattern;
    } else {
        const std::size_t stride = std::size_t{1} << (var - 6);
        for (std::size_t w = 0; w < t.words_.size(); ++w) {
            if ((w / stride) & 1) t.words_[w] = ~0ull;
        }
    }
    t.mask_tail();
    return t;
}

bool TruthTable::bit(std::uint64_t m) const {
    assert(m < num_minterms_space());
    return (words_[m >> 6] >> (m & 63)) & 1;
}

void TruthTable::set_bit(std::uint64_t m, bool value) {
    assert(m < num_minterms_space());
    if (value) {
        words_[m >> 6] |= (1ull << (m & 63));
    } else {
        words_[m >> 6] &= ~(1ull << (m & 63));
    }
}

std::uint64_t TruthTable::count_ones() const {
    std::uint64_t n = 0;
    for (const auto w : words_) n += static_cast<std::uint64_t>(std::popcount(w));
    return n;
}

bool TruthTable::is_constant(bool value) const {
    return *this == constant(num_vars_, value);
}

bool TruthTable::depends_on(int var) const {
    return !(cofactor(var, false) == cofactor(var, true));
}

TruthTable TruthTable::cofactor(int var, bool value) const {
    assert(var >= 0 && var < num_vars_);
    TruthTable r(num_vars_);
    for (std::uint64_t m = 0; m < num_minterms_space(); ++m) {
        std::uint64_t src = m;
        if (value) {
            src |= (1ull << var);
        } else {
            src &= ~(1ull << var);
        }
        r.set_bit(m, bit(src));
    }
    return r;
}

TruthTable TruthTable::operator&(const TruthTable& o) const {
    assert(num_vars_ == o.num_vars_);
    TruthTable r(num_vars_);
    for (std::size_t i = 0; i < words_.size(); ++i) r.words_[i] = words_[i] & o.words_[i];
    return r;
}

TruthTable TruthTable::operator|(const TruthTable& o) const {
    assert(num_vars_ == o.num_vars_);
    TruthTable r(num_vars_);
    for (std::size_t i = 0; i < words_.size(); ++i) r.words_[i] = words_[i] | o.words_[i];
    return r;
}

TruthTable TruthTable::operator^(const TruthTable& o) const {
    assert(num_vars_ == o.num_vars_);
    TruthTable r(num_vars_);
    for (std::size_t i = 0; i < words_.size(); ++i) r.words_[i] = words_[i] ^ o.words_[i];
    return r;
}

TruthTable TruthTable::operator~() const {
    TruthTable r(num_vars_);
    for (std::size_t i = 0; i < words_.size(); ++i) r.words_[i] = ~words_[i];
    r.mask_tail();
    return r;
}

bool TruthTable::operator==(const TruthTable& o) const {
    return num_vars_ == o.num_vars_ && words_ == o.words_;
}

TruthTable TruthTable::permute(const std::vector<int>& perm) const {
    assert(static_cast<int>(perm.size()) == num_vars_);
    TruthTable r(num_vars_);
    for (std::uint64_t m = 0; m < num_minterms_space(); ++m) {
        // Bit i of the new minterm supplies old variable perm[i].
        std::uint64_t src = 0;
        for (int i = 0; i < num_vars_; ++i) {
            if (m & (1ull << i)) src |= (1ull << perm[static_cast<std::size_t>(i)]);
        }
        r.set_bit(m, bit(src));
    }
    return r;
}

std::string TruthTable::to_hex() const {
    static const char* digits = "0123456789abcdef";
    std::string out;
    const int nibbles =
        num_vars_ <= 2 ? 1 : static_cast<int>(num_minterms_space() / 4);
    for (int i = nibbles - 1; i >= 0; --i) {
        const auto word = words_[static_cast<std::size_t>(i) / 16];
        out.push_back(digits[(word >> ((i % 16) * 4)) & 0xF]);
    }
    return out;
}

std::uint64_t TruthTable::hash() const {
    std::uint64_t h = 0x9E3779B97F4A7C15ULL ^ static_cast<std::uint64_t>(num_vars_);
    for (const auto w : words_) {
        h ^= w + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    }
    return h;
}

}  // namespace janus
