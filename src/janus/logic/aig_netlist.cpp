#include "janus/logic/aig_netlist.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace janus {
namespace {

[[noreturn]] void missing_cell(const char* what) {
    throw std::runtime_error(std::string("netlist_from_aiger: library has no ") +
                             what + " cell");
}

std::size_t require(const CellLibrary& lib, CellFunction fn, const char* what) {
    const auto id = lib.find_function(fn);
    if (!id) missing_cell(what);
    return *id;
}

}  // namespace

Netlist netlist_from_aiger(const AigerDesign& design,
                           std::shared_ptr<const CellLibrary> lib) {
    const Aig& g = design.aig;
    const std::size_t and2 = require(*lib, CellFunction::And2, "AND2");
    const std::size_t inv = require(*lib, CellFunction::Inv, "INV");

    Netlist nl(lib, design.name);

    // Net of each node's positive literal; inverted literals memoize one
    // INV instance per node. `_` prefixes keep generated names out of the
    // symbol-table namespace by convention (duplicates would still be
    // structurally harmless).
    std::vector<NetId> node_net(g.num_nodes(), kNoNet);
    std::vector<NetId> inv_net(g.num_nodes(), kNoNet);
    NetId const_net[2] = {kNoNet, kNoNet};

    for (std::size_t i = 0; i < design.num_inputs; ++i) {
        const std::string& nm = g.input_name(i);
        node_net[aig_node(g.input(i))] = nl.add_primary_input(
            nm.empty() ? "i" + std::to_string(i) : nm);
    }
    std::vector<InstId> latch_insts;
    latch_insts.reserve(design.latches.size());
    for (std::size_t j = 0; j < design.latches.size(); ++j) {
        const std::size_t dff = require(*lib, CellFunction::Dff, "DFF");
        const AigerLatch& l = design.latches[j];
        const InstId id = nl.add_instance(
            l.name.empty() ? "l" + std::to_string(j) : l.name, dff, {kNoNet});
        latch_insts.push_back(id);
        node_net[aig_node(g.input(design.num_inputs + j))] = nl.instance(id).output;
    }

    const auto lit_net = [&](AigLit lit) -> NetId {
        const std::uint32_t node = aig_node(lit);
        if (node == 0) {
            const bool one = aig_is_complement(lit);
            NetId& slot = const_net[one ? 1 : 0];
            if (slot == kNoNet) {
                const std::size_t cell = require(
                    *lib, one ? CellFunction::Const1 : CellFunction::Const0,
                    one ? "CONST1" : "CONST0");
                slot = nl.instance(nl.add_instance(one ? "_const1" : "_const0",
                                                   cell, {}))
                           .output;
            }
            return slot;
        }
        const NetId pos = node_net.at(node);
        if (!aig_is_complement(lit)) return pos;
        NetId& slot = inv_net[node];
        if (slot == kNoNet) {
            slot = nl.instance(nl.add_instance("_inv_n" + std::to_string(pos), inv,
                                               {pos}))
                       .output;
        }
        return slot;
    };

    // Only the logic reachable from outputs and next-state functions is
    // instantiated (AIGER files may carry dead AND gates).
    std::vector<char> live(g.num_nodes(), 0);
    std::vector<std::uint32_t> stack;
    const auto mark = [&](AigLit lit) {
        stack.push_back(aig_node(lit));
        while (!stack.empty()) {
            const std::uint32_t n = stack.back();
            stack.pop_back();
            if (live[n]) continue;
            live[n] = 1;
            if (g.is_and(n)) {
                stack.push_back(aig_node(g.fanin0(n)));
                stack.push_back(aig_node(g.fanin1(n)));
            }
        }
    };
    for (const auto& [nm, lit] : g.outputs()) mark(lit);
    for (const AigerLatch& l : design.latches) mark(l.next);

    // Node index order is topological (land() creates nodes after their
    // fanins), so fanin nets always exist by the time a node is built.
    for (std::uint32_t n = 0; n < g.num_nodes(); ++n) {
        if (!live[n] || !g.is_and(n)) continue;
        const NetId a = lit_net(g.fanin0(n));
        const NetId b = lit_net(g.fanin1(n));
        node_net[n] =
            nl.instance(nl.add_instance("a" + std::to_string(n), and2, {a, b}))
                .output;
    }

    for (std::size_t j = 0; j < design.latches.size(); ++j) {
        nl.connect_input(latch_insts[j], 0, lit_net(design.latches[j].next));
    }
    for (std::size_t o = 0; o < g.outputs().size(); ++o) {
        const auto& [nm, lit] = g.outputs()[o];
        nl.add_primary_output(nm.empty() ? "o" + std::to_string(o) : nm,
                              lit_net(lit));
    }
    return nl;
}

Netlist netlist_from_aig(const Aig& aig, std::shared_ptr<const CellLibrary> lib,
                         const std::string& name) {
    AigerDesign d;
    d.aig = aig;
    d.name = name;
    d.num_inputs = aig.num_inputs();
    d.file_ands = aig.num_ands();
    return netlist_from_aiger(d, std::move(lib));
}

AigerDesign aiger_from_netlist(const Netlist& nl) {
    AigerDesign d;
    d.name = nl.name();
    Aig& g = d.aig;

    constexpr AigLit kUnset = 0xFFFFFFFFu;
    std::vector<AigLit> lit_of(nl.num_nets(), kUnset);

    for (const NetId pi : nl.primary_inputs()) {
        lit_of[pi] = g.add_input(std::string(nl.net_name(pi)));
    }
    d.num_inputs = nl.primary_inputs().size();

    const std::vector<InstId> seq = nl.sequential_instances();
    for (const InstId id : seq) {
        const NetId q = nl.instance(id).output;
        lit_of[q] = g.add_input(std::string(nl.net_name(q)));
    }

    const auto in_lit = [&](InstId id, int pin) {
        const NetId n = nl.instance(id).fanin[static_cast<std::size_t>(pin)];
        if (n == kNoNet || lit_of.at(n) == kUnset) {
            throw std::runtime_error("aiger_from_netlist: instance " +
                                     std::string(nl.instance_name(id)) +
                                     " reads an undriven net");
        }
        return lit_of[n];
    };

    for (const InstId id : nl.topological_order()) {
        const CellFunction fn = nl.type_of(id).function;
        const int arity = function_arity(fn);
        AigLit f[kMaxFanin] = {0, 0, 0, 0};
        for (int p = 0; p < arity; ++p) f[p] = in_lit(id, p);
        AigLit out = 0;
        switch (fn) {
            case CellFunction::Const0: out = Aig::const0(); break;
            case CellFunction::Const1: out = Aig::const1(); break;
            case CellFunction::Buf: out = f[0]; break;
            case CellFunction::Inv: out = aig_not(f[0]); break;
            case CellFunction::And2: out = g.land(f[0], f[1]); break;
            case CellFunction::And3: out = g.land(g.land(f[0], f[1]), f[2]); break;
            case CellFunction::And4:
                out = g.land(g.land(f[0], f[1]), g.land(f[2], f[3]));
                break;
            case CellFunction::Nand2: out = aig_not(g.land(f[0], f[1])); break;
            case CellFunction::Nand3:
                out = aig_not(g.land(g.land(f[0], f[1]), f[2]));
                break;
            case CellFunction::Nand4:
                out = aig_not(g.land(g.land(f[0], f[1]), g.land(f[2], f[3])));
                break;
            case CellFunction::Or2: out = g.lor(f[0], f[1]); break;
            case CellFunction::Or3: out = g.lor(g.lor(f[0], f[1]), f[2]); break;
            case CellFunction::Or4:
                out = g.lor(g.lor(f[0], f[1]), g.lor(f[2], f[3]));
                break;
            case CellFunction::Nor2: out = aig_not(g.lor(f[0], f[1])); break;
            case CellFunction::Nor3:
                out = aig_not(g.lor(g.lor(f[0], f[1]), f[2]));
                break;
            case CellFunction::Nor4:
                out = aig_not(g.lor(g.lor(f[0], f[1]), g.lor(f[2], f[3])));
                break;
            case CellFunction::Xor2: out = g.lxor(f[0], f[1]); break;
            case CellFunction::Xnor2: out = aig_not(g.lxor(f[0], f[1])); break;
            case CellFunction::Xor3: out = g.lxor(g.lxor(f[0], f[1]), f[2]); break;
            case CellFunction::Mux2: out = g.lmux(f[0], f[1], f[2]); break;
            case CellFunction::Aoi21:
                out = aig_not(g.lor(g.land(f[0], f[1]), f[2]));
                break;
            case CellFunction::Oai21:
                out = aig_not(g.land(g.lor(f[0], f[1]), f[2]));
                break;
            case CellFunction::Maj3: out = g.lmaj(f[0], f[1], f[2]); break;
            case CellFunction::Dff:
            case CellFunction::ScanDff:
                // Sequential cells are sources here; topological_order()
                // never yields them.
                throw std::runtime_error(
                    "aiger_from_netlist: sequential cell in combinational order");
        }
        lit_of[nl.instance(id).output] = out;
    }

    for (const auto& [nm, net] : nl.primary_outputs()) {
        if (lit_of.at(net) == kUnset) {
            throw std::runtime_error("aiger_from_netlist: output " + nm +
                                     " observes an undriven net");
        }
        g.add_output(nm, lit_of[net]);
    }
    for (const InstId id : seq) {
        const Instance& inst = nl.instance(id);
        AigerLatch l;
        l.name = std::string(nl.net_name(inst.output));
        if (nl.type_of(id).function == CellFunction::ScanDff) {
            // Keep scan semantics: next = se ? si : d.
            l.next = g.lmux(in_lit(id, 2), in_lit(id, 0), in_lit(id, 1));
        } else {
            l.next = in_lit(id, 0);
        }
        d.latches.push_back(std::move(l));
    }
    d.file_ands = g.num_ands();
    return d;
}

}  // namespace janus
