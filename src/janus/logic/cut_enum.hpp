#pragma once
/// \file cut_enum.hpp
/// K-feasible cut enumeration on an AIG — the shared engine of the
/// technology mapper and the rewriting pass.

#include <cstdint>
#include <vector>

#include "janus/logic/aig.hpp"
#include "janus/logic/truth_table.hpp"

namespace janus {

/// One cut: a set of leaf nodes whose functions determine the root.
struct Cut {
    std::vector<std::uint32_t> leaves;  ///< sorted node indices
    std::uint64_t signature = 0;        ///< bloom-style subset filter

    bool trivial() const { return leaves.size() == 1; }
};

/// Per-node cut sets for a whole AIG.
struct CutSet {
    /// cuts[n] lists the cuts of node n; the first entry is always the
    /// trivial cut {n}.
    std::vector<std::vector<Cut>> cuts;
};

struct CutEnumOptions {
    int max_leaves = 4;     ///< K
    int max_cuts_per_node = 8;
};

/// Enumerates K-feasible cuts bottom-up with dominance pruning.
CutSet enumerate_cuts(const Aig& aig, const CutEnumOptions& opts = {});

/// Truth table of `root` as a function of cut leaves (leaf i of the
/// sorted list is variable i). Cut size must be <= 16.
TruthTable cut_truth_table(const Aig& aig, std::uint32_t root, const Cut& cut);

}  // namespace janus
