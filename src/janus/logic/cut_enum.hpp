#pragma once
/// \file cut_enum.hpp
/// K-feasible cut enumeration on an AIG — the shared engine of the
/// technology mapper and the rewriting pass.

#include <cstdint>
#include <vector>

#include "janus/logic/aig.hpp"
#include "janus/logic/truth_table.hpp"

namespace janus {

/// One cut: a set of leaf nodes whose functions determine the root.
struct Cut {
    std::vector<std::uint32_t> leaves;  ///< sorted node indices
    std::uint64_t signature = 0;        ///< bloom-style subset filter

    bool trivial() const { return leaves.size() == 1; }
};

/// Per-node cut sets for a whole AIG.
struct CutSet {
    /// cuts[n] lists the cuts of node n; the first entry is always the
    /// trivial cut {n}.
    std::vector<std::vector<Cut>> cuts;
};

struct CutEnumOptions {
    int max_leaves = 4;  ///< K
    /// Exact cap on the cuts stored per node, *including* the leading
    /// trivial cut (so at most max_cuts_per_node - 1 non-trivial cuts
    /// survive). The list never exceeds this size at any point.
    int max_cuts_per_node = 8;
    /// Threads for the level-parallel enumeration sweep. Each node's cut
    /// set is a pure function of its fanins' (lower-level, frozen) cut
    /// sets, so the result is identical for any value; 1 = serial.
    int workers = 1;
};

/// Enumerates K-feasible cuts bottom-up with dominance pruning. Nodes on
/// the same topological level are processed concurrently (`opts.workers`)
/// and merged in node-index order; output is byte-identical for any
/// worker count.
CutSet enumerate_cuts(const Aig& aig, const CutEnumOptions& opts = {});

/// Reusable scratch for cut-function evaluation. Replaces the historical
/// per-call `unordered_map<node, TruthTable>` with flat cone-indexed
/// vectors: an epoch-stamped node->slot array (O(1) reset between cuts)
/// plus a dense table vector ordered leaves-first. Construct once per
/// worker and call `evaluate` per cut; instances are not thread-safe but
/// independent instances may run concurrently on one shared Aig.
class CutConeEvaluator {
  public:
    explicit CutConeEvaluator(const Aig& aig);

    /// Truth table of `root` as a function of the cut leaves (leaf i of
    /// the sorted list is variable i). Cut size must be <= 16. Throws
    /// std::logic_error if the leaf set does not cover the cone.
    TruthTable evaluate(std::uint32_t root, const Cut& cut);

  private:
    const Aig& aig_;
    std::vector<std::uint32_t> slot_;   ///< node -> index into tables_
    std::vector<std::uint32_t> stamp_;  ///< slot_[n] valid iff stamp_[n] == epoch_
    std::uint32_t epoch_ = 0;
    std::vector<TruthTable> tables_;
    std::vector<std::uint32_t> cone_;   ///< AND nodes strictly inside the cut
    std::vector<std::uint32_t> stack_;
};

/// One-shot convenience wrapper around CutConeEvaluator for callers that
/// evaluate a single cut; loops should construct the evaluator themselves.
TruthTable cut_truth_table(const Aig& aig, std::uint32_t root, const Cut& cut);

}  // namespace janus
