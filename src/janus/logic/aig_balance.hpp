#pragma once
/// \file aig_balance.hpp
/// Depth reduction by AND-tree rebalancing (the classic `balance` pass):
/// maximal conjunction trees are collected and rebuilt pairing the
/// shallowest operands first.

#include "janus/logic/aig.hpp"

namespace janus {

/// Returns a depth-balanced, structurally rehashed copy. The function of
/// every output is preserved; node count never grows by more than the
/// duplication needed for sharing-aware tree collection (in practice it
/// shrinks or stays equal).
Aig balance(const Aig& aig);

}  // namespace janus
