#pragma once
/// \file bbdd.hpp
/// Biconditional binary decision diagrams (BBDDs): decision diagrams whose
/// levels branch on the *biconditional* of two adjacent variables
/// (x_i XOR x_{i+1}) instead of a single variable. They are the canonical
/// logic abstraction for controlled-polarity devices (SiNW / CNT
/// transistors), which De Micheli's introduction names as the reason EDA
/// "can no longer think in terms of NANDs, NORs and AOIs" (E12).
///
/// Semantics of an inner node at level i (0-based, variables x0..xn-1):
///   level i < n-1:  f = (x_i XOR x_{i+1}) ? f_neq : f_eq
///   level n-1:      f = x_{n-1} ? f_hi : f_lo        (Shannon tail)
/// Reduction and a unique table make the diagram canonical for a fixed
/// variable order, exactly as for ROBDDs.

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "janus/logic/truth_table.hpp"

namespace janus {

class Bbdd {
  public:
    using Ref = std::uint32_t;
    static constexpr Ref kFalse = 0;
    static constexpr Ref kTrue = 1;

    explicit Bbdd(int num_vars);

    int num_vars() const { return num_vars_; }

    /// Builds the canonical BBDD of a truth table.
    Ref from_truth_table(const TruthTable& tt);

    /// Inner nodes reachable from roots (shared nodes counted once).
    std::size_t count_nodes(const std::vector<Ref>& roots) const;

    /// Evaluates under an assignment (bit v = value of x_v).
    bool evaluate(Ref f, std::uint64_t assignment) const;

    std::size_t size() const { return nodes_.size() - 2; }

  private:
    struct Node {
        int level;  ///< branching level; terminals use num_vars_
        Ref neq;    ///< cofactor where x_level != x_{level+1} (or x=1 at tail)
        Ref eq;     ///< cofactor where x_level == x_{level+1} (or x=0 at tail)
    };

    int num_vars_;
    std::vector<Node> nodes_;
    std::unordered_map<std::uint64_t, Ref> unique_;
    /// Exact memo for from_truth_table: (level, table words) -> node.
    using BuildKey = std::pair<int, std::vector<std::uint64_t>>;
    std::map<BuildKey, Ref> build_cache_;

    Ref make_node(int level, Ref neq, Ref eq);
    Ref build(const TruthTable& f, int level);
};

}  // namespace janus
