#pragma once
/// \file mask.hpp
/// Rasterized mask layouts for computational lithography. A mask holds
/// polygon (rectangle) data plus per-edge OPC biases; rasterization
/// produces the pixel grid the aerial-image simulator convolves.

#include <cstdint>
#include <vector>

#include "janus/util/geometry.hpp"

namespace janus {

/// One mask feature: a target rectangle plus movable edge biases (nm,
/// positive = outward). OPC manipulates the biases, never the target.
struct MaskFeature {
    Rect target;  ///< designed shape, nm
    double bias_left = 0, bias_right = 0, bias_bottom = 0, bias_top = 0;

    /// The drawn (biased) rectangle.
    Rect drawn() const {
        return Rect{target.lo.x - static_cast<std::int64_t>(bias_left),
                    target.lo.y - static_cast<std::int64_t>(bias_bottom),
                    target.hi.x + static_cast<std::int64_t>(bias_right),
                    target.hi.y + static_cast<std::int64_t>(bias_top)};
    }
};

/// A binary pixel raster of the drawn mask.
class MaskRaster {
  public:
    /// Rasterizes features over their bounding box plus `margin_nm`,
    /// at `nm_per_pixel` resolution.
    MaskRaster(const std::vector<MaskFeature>& features, double nm_per_pixel,
               double margin_nm);

    int width() const { return width_; }
    int height() const { return height_; }
    double nm_per_pixel() const { return nm_per_pixel_; }
    /// World coordinate of pixel (0,0)'s corner.
    Point origin() const { return origin_; }

    double pixel(int x, int y) const { return data_[index(x, y)]; }
    const std::vector<double>& data() const { return data_; }

    /// Rasterizes a target-only image (no biases) on the same grid —
    /// the reference for EPE measurement.
    std::vector<double> rasterize_targets(const std::vector<MaskFeature>& features) const;

  private:
    int width_ = 0, height_ = 0;
    double nm_per_pixel_ = 1;
    Point origin_;
    std::vector<double> data_;

    std::size_t index(int x, int y) const {
        return static_cast<std::size_t>(y) * width_ + x;
    }
    void fill_rect(std::vector<double>& img, const Rect& r) const;
};

}  // namespace janus
