#include "janus/litho/aerial_image.hpp"

#include <algorithm>
#include <cmath>

namespace janus {
namespace {

/// 1-D Gaussian kernel, normalized, truncated at 3 sigma.
std::vector<double> gaussian_kernel(double sigma_px) {
    const int radius = std::max(1, static_cast<int>(std::ceil(3.0 * sigma_px)));
    std::vector<double> k(static_cast<std::size_t>(2 * radius + 1));
    double sum = 0;
    for (int i = -radius; i <= radius; ++i) {
        const double v = std::exp(-0.5 * (i / sigma_px) * (i / sigma_px));
        k[static_cast<std::size_t>(i + radius)] = v;
        sum += v;
    }
    for (double& v : k) v /= sum;
    return k;
}

void convolve_rows(const std::vector<double>& in, std::vector<double>& out,
                   int width, int height, const std::vector<double>& kernel) {
    const int radius = static_cast<int>(kernel.size() / 2);
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            double acc = 0;
            for (int k = -radius; k <= radius; ++k) {
                const int xx = std::clamp(x + k, 0, width - 1);
                acc += in[static_cast<std::size_t>(y) * width + xx] *
                       kernel[static_cast<std::size_t>(k + radius)];
            }
            out[static_cast<std::size_t>(y) * width + x] = acc;
        }
    }
}

void convolve_cols(const std::vector<double>& in, std::vector<double>& out,
                   int width, int height, const std::vector<double>& kernel) {
    const int radius = static_cast<int>(kernel.size() / 2);
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            double acc = 0;
            for (int k = -radius; k <= radius; ++k) {
                const int yy = std::clamp(y + k, 0, height - 1);
                acc += in[static_cast<std::size_t>(yy) * width + x] *
                       kernel[static_cast<std::size_t>(k + radius)];
            }
            out[static_cast<std::size_t>(y) * width + x] = acc;
        }
    }
}

}  // namespace

PrintResult simulate_print(const MaskRaster& mask, const OpticalModel& optics) {
    PrintResult res;
    res.width = mask.width();
    res.height = mask.height();
    const double sigma_px = optics.sigma_nm() / mask.nm_per_pixel();
    const auto kernel = gaussian_kernel(sigma_px);

    std::vector<double> tmp(mask.data().size());
    res.intensity.resize(mask.data().size());
    convolve_rows(mask.data(), tmp, res.width, res.height, kernel);
    convolve_cols(tmp, res.intensity, res.width, res.height, kernel);

    res.printed.resize(res.intensity.size());
    for (std::size_t i = 0; i < res.intensity.size(); ++i) {
        res.printed[i] = res.intensity[i] >= optics.resist_threshold ? 1.0 : 0.0;
    }
    return res;
}

EpeReport measure_epe(const std::vector<double>& target,
                      const std::vector<double>& printed, int width, int height,
                      double nm_per_pixel) {
    EpeReport rep;
    double sum_epe = 0;
    std::size_t edge_samples = 0;
    std::size_t mismatched = 0, target_pixels = 0;
    bool any_target = false, any_overlap = false;

    const auto at = [&](const std::vector<double>& img, int x, int y) {
        return img[static_cast<std::size_t>(y) * width + x] > 0.5;
    };

    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            const bool t = at(target, x, y);
            const bool p = at(printed, x, y);
            if (t) {
                ++target_pixels;
                any_target = true;
                if (p) any_overlap = true;
            }
            if (t != p) ++mismatched;
            // Horizontal target edges: measure displacement along the row.
            if (x + 1 < width && t != at(target, x + 1, y)) {
                // Find the printed transition nearest to this target edge.
                int best = width;
                for (int dx = 0; dx < width; ++dx) {
                    for (const int xx : {x - dx, x + dx}) {
                        if (xx < 0 || xx + 1 >= width) continue;
                        if (at(printed, xx, y) != at(printed, xx + 1, y)) {
                            best = dx;
                            break;
                        }
                    }
                    if (best < width) break;
                }
                const double epe =
                    (best >= width ? width : best) * nm_per_pixel;
                sum_epe += epe;
                rep.max_epe_nm = std::max(rep.max_epe_nm, epe);
                ++edge_samples;
            }
        }
    }
    rep.mean_epe_nm = edge_samples ? sum_epe / static_cast<double>(edge_samples) : 0;
    rep.area_error = target_pixels
                         ? static_cast<double>(mismatched) / static_cast<double>(target_pixels)
                         : 0;
    rep.feature_lost = any_target && !any_overlap;
    return rep;
}

}  // namespace janus
