#include "janus/litho/process_window.hpp"

#include <algorithm>

namespace janus {

ProcessWindowResult analyze_process_window(const std::vector<MaskFeature>& features,
                                           const OpticalModel& nominal,
                                           const ProcessWindowOptions& opts) {
    ProcessWindowResult res;
    for (const double ss : opts.sigma_scales) {
        for (const double ts : opts.threshold_shifts) {
            OpticalModel corner = nominal;
            corner.psf_scale = nominal.psf_scale * ss;
            corner.resist_threshold = nominal.resist_threshold + ts;
            const EpeReport rep =
                check_print(features, corner, opts.nm_per_pixel);
            ++res.corners_total;
            const bool pass = !rep.feature_lost &&
                              rep.area_error <= opts.max_area_error;
            if (pass) ++res.corners_passing;
            res.worst_area_error = std::max(res.worst_area_error, rep.area_error);
            res.any_feature_lost |= rep.feature_lost;
            res.corner_errors.emplace_back(ss, ts, rep.area_error);
        }
    }
    return res;
}

}  // namespace janus
