#include "janus/litho/opc.hpp"

#include <algorithm>
#include <cmath>

namespace janus {

void rule_based_opc(std::vector<MaskFeature>& features, const OpticalModel& optics,
                    const RuleOpcOptions& opts) {
    const double narrow_limit = 2.0 * optics.sigma_nm();
    for (MaskFeature& f : features) {
        const double w = static_cast<double>(
            std::min(f.target.width(), f.target.height()));
        const double bias = w < narrow_limit ? opts.narrow_bias_nm : opts.wide_bias_nm;
        f.bias_left += bias;
        f.bias_right += bias;
        f.bias_top += bias;
        f.bias_bottom += bias;
    }
}

EpeReport check_print(const std::vector<MaskFeature>& features,
                      const OpticalModel& optics, double nm_per_pixel,
                      double margin_nm) {
    const MaskRaster raster(features, nm_per_pixel, margin_nm);
    const PrintResult pr = simulate_print(raster, optics);
    const auto target = raster.rasterize_targets(features);
    return measure_epe(target, pr.printed, raster.width(), raster.height(),
                       nm_per_pixel);
}

namespace {

/// Printed interval (lo, hi) crossing `fixed` along one axis, nearest to
/// the expected interval; returns false if nothing printed on that line.
bool printed_interval(const PrintResult& pr, bool horizontal, int fixed,
                      int expected_lo, int expected_hi, int& lo, int& hi) {
    const int n = horizontal ? pr.width : pr.height;
    const auto at = [&](int i) {
        return horizontal
                   ? pr.printed[static_cast<std::size_t>(fixed) * pr.width + i] > 0.5
                   : pr.printed[static_cast<std::size_t>(i) * pr.width + fixed] > 0.5;
    };
    // Start from the middle of the expected interval and expand.
    const int mid = std::clamp((expected_lo + expected_hi) / 2, 0, n - 1);
    int seed = -1;
    for (int d = 0; d < n; ++d) {
        if (mid + d < n && at(mid + d)) {
            seed = mid + d;
            break;
        }
        if (mid - d >= 0 && at(mid - d)) {
            seed = mid - d;
            break;
        }
    }
    if (seed < 0) return false;
    lo = seed;
    while (lo > 0 && at(lo - 1)) --lo;
    hi = seed;
    while (hi + 1 < n && at(hi + 1)) ++hi;
    return true;
}

}  // namespace

ModelOpcResult model_based_opc(std::vector<MaskFeature>& features,
                               const OpticalModel& optics,
                               const ModelOpcOptions& opts) {
    ModelOpcResult res;
    res.initial = check_print(features, optics, opts.nm_per_pixel, opts.margin_nm);

    for (int it = 0; it < opts.iterations; ++it) {
        ++res.iterations_run;
        const MaskRaster raster(features, opts.nm_per_pixel, opts.margin_nm);
        const PrintResult pr = simulate_print(raster, optics);

        for (MaskFeature& f : features) {
            // Pixel coordinates of the target rectangle.
            const auto px = [&](std::int64_t v, std::int64_t o) {
                return static_cast<int>(static_cast<double>(v - o) / opts.nm_per_pixel);
            };
            const int tx0 = px(f.target.lo.x, raster.origin().x);
            const int tx1 = px(f.target.hi.x, raster.origin().x);
            const int ty0 = px(f.target.lo.y, raster.origin().y);
            const int ty1 = px(f.target.hi.y, raster.origin().y);
            const int cy = std::clamp((ty0 + ty1) / 2, 0, pr.height - 1);
            const int cx = std::clamp((tx0 + tx1) / 2, 0, pr.width - 1);

            const auto nudge = [&](double& bias, double err_px) {
                bias += opts.gain * err_px * opts.nm_per_pixel;
                bias = std::clamp(bias, -opts.max_bias_nm, opts.max_bias_nm);
            };
            int lo = 0, hi = 0;
            if (printed_interval(pr, true, cy, tx0, tx1, lo, hi)) {
                nudge(f.bias_left, static_cast<double>(lo - tx0));
                nudge(f.bias_right, static_cast<double>(tx1 - hi));
            } else {
                // Feature vanished: push all edges out.
                nudge(f.bias_left, 2.0);
                nudge(f.bias_right, 2.0);
            }
            if (printed_interval(pr, false, cx, ty0, ty1, lo, hi)) {
                nudge(f.bias_bottom, static_cast<double>(lo - ty0));
                nudge(f.bias_top, static_cast<double>(ty1 - hi));
            } else {
                nudge(f.bias_bottom, 2.0);
                nudge(f.bias_top, 2.0);
            }
        }
    }
    res.final = check_print(features, optics, opts.nm_per_pixel, opts.margin_nm);
    return res;
}

}  // namespace janus
