#pragma once
/// \file process_window.hpp
/// Process-window analysis: the printed contour must stay on target not
/// only at nominal focus/dose, but across the scanner's variation band.
/// OPC solutions that only work at nominal are "process-window-limited";
/// this module sweeps the optical corner conditions and reports the
/// window inside which EPE stays bounded.

#include <tuple>
#include <vector>

#include "janus/litho/opc.hpp"

namespace janus {

struct ProcessCorner {
    double sigma_scale = 1.0;      ///< defocus proxy (PSF widening)
    double threshold_shift = 0.0;  ///< dose proxy (resist threshold delta)
};

struct ProcessWindowOptions {
    /// Defocus proxies to sweep (1.0 = nominal).
    std::vector<double> sigma_scales{0.9, 1.0, 1.1, 1.2};
    /// Dose proxies to sweep.
    std::vector<double> threshold_shifts{-0.05, 0.0, 0.05};
    double max_area_error = 0.25;  ///< pass criterion per corner
    double nm_per_pixel = 2.0;
};

struct ProcessWindowResult {
    std::size_t corners_total = 0;
    std::size_t corners_passing = 0;
    double worst_area_error = 0;
    bool any_feature_lost = false;
    /// Per-corner (sigma_scale, threshold_shift, area_error).
    std::vector<std::tuple<double, double, double>> corner_errors;
    double yield_fraction() const {
        return corners_total
                   ? static_cast<double>(corners_passing) / corners_total
                   : 0;
    }
};

/// Sweeps the corner grid for a fixed (already OPC'd) mask.
ProcessWindowResult analyze_process_window(const std::vector<MaskFeature>& features,
                                           const OpticalModel& nominal,
                                           const ProcessWindowOptions& opts = {});

}  // namespace janus
