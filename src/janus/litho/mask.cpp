#include "janus/litho/mask.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace janus {

MaskRaster::MaskRaster(const std::vector<MaskFeature>& features,
                       double nm_per_pixel, double margin_nm)
    : nm_per_pixel_(nm_per_pixel) {
    if (features.empty()) throw std::invalid_argument("MaskRaster: no features");
    if (nm_per_pixel <= 0) throw std::invalid_argument("MaskRaster: bad resolution");
    Rect bbox;
    for (const MaskFeature& f : features) bbox = bounding_box(bbox, f.drawn());
    bbox = bbox.inflated(static_cast<std::int64_t>(margin_nm));
    origin_ = bbox.lo;
    width_ = static_cast<int>(std::ceil(static_cast<double>(bbox.width()) / nm_per_pixel)) + 1;
    height_ = static_cast<int>(std::ceil(static_cast<double>(bbox.height()) / nm_per_pixel)) + 1;
    data_.assign(static_cast<std::size_t>(width_) * height_, 0.0);
    for (const MaskFeature& f : features) fill_rect(data_, f.drawn());
}

void MaskRaster::fill_rect(std::vector<double>& img, const Rect& r) const {
    const auto px = [&](std::int64_t v, std::int64_t o) {
        return static_cast<int>(static_cast<double>(v - o) / nm_per_pixel_);
    };
    const int x0 = std::max(0, px(r.lo.x, origin_.x));
    const int x1 = std::min(width_ - 1, px(r.hi.x, origin_.x));
    const int y0 = std::max(0, px(r.lo.y, origin_.y));
    const int y1 = std::min(height_ - 1, px(r.hi.y, origin_.y));
    for (int y = y0; y <= y1; ++y) {
        for (int x = x0; x <= x1; ++x) {
            img[index(x, y)] = 1.0;
        }
    }
}

std::vector<double> MaskRaster::rasterize_targets(
    const std::vector<MaskFeature>& features) const {
    std::vector<double> img(data_.size(), 0.0);
    for (const MaskFeature& f : features) fill_rect(img, f.target);
    return img;
}

}  // namespace janus
