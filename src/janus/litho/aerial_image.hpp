#pragma once
/// \file aerial_image.hpp
/// Aerial-image simulation with a Gaussian point-spread model and a
/// constant-threshold resist. The PSF width follows the Rayleigh
/// resolution of the scanner (k1 * lambda / NA); at 193 nm immersion the
/// blur is what makes sub-80 nm features print wrong without OPC —
/// "computational lithography has been one of the primary enablers of
/// feature scaling in the absence of EUV" (experiment E10).

#include <vector>

#include "janus/litho/mask.hpp"

namespace janus {

struct OpticalModel {
    double wavelength_nm = 193.0;
    double numerical_aperture = 1.35;  ///< water-immersion scanner
    double psf_scale = 0.45;           ///< sigma = scale * lambda / NA
    double resist_threshold = 0.5;     ///< print where intensity >= threshold

    double sigma_nm() const { return psf_scale * wavelength_nm / numerical_aperture; }
};

/// Simulated aerial image and printed (resist) contour on a raster grid.
struct PrintResult {
    int width = 0, height = 0;
    std::vector<double> intensity;  ///< normalized [0, 1]
    std::vector<double> printed;    ///< 1.0 where resist develops
};

/// Convolves the mask raster with the Gaussian PSF (separable) and
/// applies the resist threshold.
PrintResult simulate_print(const MaskRaster& mask, const OpticalModel& optics);

/// Edge-placement-error metrics against the target raster.
struct EpeReport {
    double max_epe_nm = 0;     ///< worst scanline edge displacement
    double mean_epe_nm = 0;
    double area_error = 0;     ///< mismatched pixels / target pixels
    bool feature_lost = false; ///< some target feature printed nothing
};

/// Measures EPE between the printed contour and the target raster
/// (computed on matching grids).
EpeReport measure_epe(const std::vector<double>& target,
                      const std::vector<double>& printed, int width, int height,
                      double nm_per_pixel);

}  // namespace janus
