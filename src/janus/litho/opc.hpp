#pragma once
/// \file opc.hpp
/// Optical proximity correction. Rule-based OPC applies a fixed bias per
/// feature-width class; model-based OPC iterates simulate -> measure ->
/// move edges, the feedback loop production OPC runs at full-chip scale.

#include <vector>

#include "janus/litho/aerial_image.hpp"
#include "janus/litho/mask.hpp"

namespace janus {

struct RuleOpcOptions {
    /// Bias added to every edge of features narrower than 2*sigma (nm).
    double narrow_bias_nm = 8.0;
    /// Bias for wide features.
    double wide_bias_nm = 2.0;
};

/// Applies rule-based biases in place.
void rule_based_opc(std::vector<MaskFeature>& features, const OpticalModel& optics,
                    const RuleOpcOptions& opts = {});

struct ModelOpcOptions {
    int iterations = 12;
    double gain = 0.6;          ///< fraction of measured EPE corrected per step
    double max_bias_nm = 40.0;  ///< mask-rule limit on edge movement
    double nm_per_pixel = 2.0;
    double margin_nm = 120.0;
};

struct ModelOpcResult {
    EpeReport initial;
    EpeReport final;
    int iterations_run = 0;
};

/// Iterative model-based OPC: adjusts each feature's four edge biases to
/// drive the printed contour onto the target. Features are modified in
/// place.
ModelOpcResult model_based_opc(std::vector<MaskFeature>& features,
                               const OpticalModel& optics,
                               const ModelOpcOptions& opts = {});

/// Convenience: simulate and measure EPE of the current features.
EpeReport check_print(const std::vector<MaskFeature>& features,
                      const OpticalModel& optics, double nm_per_pixel = 2.0,
                      double margin_nm = 120.0);

}  // namespace janus
