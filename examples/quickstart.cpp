/// quickstart — the 5-minute JanusEDA tour.
///
/// Builds a small arithmetic block with the netlist API, runs logic
/// optimization and technology mapping, and prints area / timing / power
/// before and after. Start here, then read examples/asic_flow.cpp for
/// the full physical flow.

#include <cstdio>
#include <memory>

#include "janus/logic/aig.hpp"
#include "janus/logic/aig_rewrite.hpp"
#include "janus/logic/tech_map.hpp"
#include "janus/netlist/generator.hpp"
#include "janus/power/power_model.hpp"
#include "janus/timing/sta.hpp"

using namespace janus;

int main() {
    // 1. Pick a technology node and build its standard-cell library.
    const TechnologyNode node = *find_node("28nm");
    const auto lib =
        std::make_shared<const CellLibrary>(make_default_library(node));
    std::printf("library %s: %zu cells\n", lib->name().c_str(), lib->size());

    // 2. Describe a design. Generators cover common blocks; the netlist
    //    API (add_primary_input / add_instance / ...) builds anything.
    const Netlist design = generate_adder(lib, 16);
    std::printf("design %s: %zu instances, depth %d\n", design.name().c_str(),
                design.num_instances(), design.logic_depth());

    // 3. Synthesize: netlist -> AIG -> optimize -> map back to cells.
    //    naive_map is the unoptimized strawman (one AND2/INV per AIG
    //    node); tech_map runs phase/permutation-matched covering.
    const Aig aig = Aig::from_netlist(design);
    std::printf("AIG: %zu AND nodes, depth %d\n", aig.num_ands(), aig.depth());
    const Aig opt = optimize(aig);
    const Netlist naive = naive_map(aig, lib);
    const Netlist mapped = tech_map(opt, lib);

    // 4. Sign off: static timing and power.
    const auto report = [&](const char* tag, const Netlist& nl) {
        const TimingReport t = run_sta(nl);
        const PowerReport p = estimate_power(nl, node);
        std::printf("%-10s area %8.1f um2 | delay %6.1f ps | power %6.3f mW\n",
                    tag, nl.total_area(), t.critical_delay_ps, p.total_mw());
    };
    report("naive", naive);
    report("mapped", mapped);

    // 5. The mapped netlist is a plain netlist again: simulate it.
    std::vector<bool> pis(mapped.primary_inputs().size(), false);
    pis[0] = pis[16] = true;  // a=1, b=1
    const auto values = mapped.evaluate(pis, {});
    unsigned sum = 0;
    for (std::size_t o = 0; o + 1 < mapped.primary_outputs().size(); ++o) {
        if (values[mapped.primary_outputs()[o].second]) sum |= (1u << o);
    }
    std::printf("1 + 1 = %u (computed by the mapped netlist)\n", sum);
    return 0;
}
