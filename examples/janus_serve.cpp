/// janus_serve: the JanusEDA flow server as a standalone daemon.
///
///   janus_serve [--port N] [--workers N] [--sessions N] [--node 28nm]
///
/// Binds a loopback TCP socket (port 0 picks an ephemeral port, printed on
/// stdout) and speaks the line-delimited JSON protocol from docs/SERVER.md:
/// one request object per line, one response object per line. Try it with:
///
///   printf '{"cmd":"ping"}\n' | nc 127.0.0.1 <port>
///
/// The process serves until stdin reports EOF or a line reading "quit",
/// so it works both interactively and under a driving script.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "janus/server/flow_server.hpp"

using namespace janus;

namespace {

int int_arg(int argc, char** argv, int& i, const char* flag) {
    if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
    }
    return std::atoi(argv[++i]);
}

}  // namespace

int main(int argc, char** argv) {
    server::FlowServerOptions opts;
    std::string node_name = "28nm";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--port") == 0) {
            opts.port = int_arg(argc, argv, i, "--port");
        } else if (std::strcmp(argv[i], "--workers") == 0) {
            opts.workers = int_arg(argc, argv, i, "--workers");
        } else if (std::strcmp(argv[i], "--sessions") == 0) {
            opts.max_sessions =
                static_cast<std::size_t>(int_arg(argc, argv, i, "--sessions"));
        } else if (std::strcmp(argv[i], "--node") == 0 && i + 1 < argc) {
            node_name = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: janus_serve [--port N] [--workers N] "
                         "[--sessions N] [--node 28nm]\n");
            return 2;
        }
    }

    const std::optional<TechnologyNode> node = find_node(node_name);
    if (!node) {
        std::fprintf(stderr, "unknown technology node: %s\n",
                     node_name.c_str());
        return 2;
    }

    server::FlowServer srv(*node, opts);
    try {
        srv.start();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "failed to start: %s\n", e.what());
        return 1;
    }
    std::printf("janus_serve: node %s, %d workers, %zu sessions\n",
                node->name.c_str(), opts.workers, opts.max_sessions);
    std::printf("listening on 127.0.0.1:%d\n", srv.port());
    std::fflush(stdout);

    std::string line;
    while (std::getline(std::cin, line)) {
        if (line == "quit" || line == "exit") break;
    }
    srv.stop();
    std::printf("janus_serve: stopped\n");
    return 0;
}
