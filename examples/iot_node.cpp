/// iot_node — holistic smart-system co-design for an IoT sensor node.
///
/// Walks the component catalog, explores every architecture/integration
/// combination against a field-monitoring mission, and prints the Pareto
/// front — the "mainstream automated methodology" for heterogeneous
/// smart systems that panelist Macii calls the next EDA decade's task.

#include <cstdio>

#include "janus/sip/components.hpp"
#include "janus/sip/dse.hpp"
#include "janus/sip/methodology.hpp"
#include "janus/sip/package_model.hpp"

using namespace janus;

namespace {

const char* style_name(IntegrationStyle s) {
    switch (s) {
        case IntegrationStyle::DiscretePcb: return "PCB";
        case IntegrationStyle::SiP: return "SiP";
        case IntegrationStyle::MonolithicSoC: return "SoC";
    }
    return "?";
}

}  // namespace

int main() {
    // The component catalog spans technologies no single die can merge.
    std::printf("catalog:\n");
    for (const Component& c : component_catalog()) {
        std::printf("  %-14s %-22s $%-6.2f %6.1f mm3\n", c.name.c_str(),
                    c.technology.c_str(), c.cost_usd, c.volume_mm3);
    }

    // Mission: a two-year soil sensor reporting hourly over a km-scale link.
    MissionProfile mission;
    mission.sample_interval_s = 300;
    mission.sample_bytes = 24;
    mission.report_interval_s = 3600;
    mission.required_lifetime_days = 730;
    mission.required_range_m = 2000;
    mission.max_volume_mm3 = 20000;
    mission.max_cost_usd = 20;

    const DseResult dse = holistic_dse(mission);
    std::printf("\nexplored %zu configurations, %zu feasible, %zu on the "
                "Pareto front:\n",
                dse.evaluated, dse.feasible.size(), dse.pareto.size());
    const auto& cat = component_catalog();
    for (const DsePoint& p : dse.pareto) {
        std::printf("  %-4s $%-6.2f %7.0f mm3 %6.0f days | %s + %s + %s\n",
                    style_name(p.style), p.integration.total_cost_usd,
                    p.integration.volume_mm3, p.metrics.lifetime_days,
                    cat[static_cast<std::size_t>(p.system.sensor)].name.c_str(),
                    cat[static_cast<std::size_t>(p.system.radio)].name.c_str(),
                    cat[static_cast<std::size_t>(p.system.mcu)].name.c_str());
    }

    const DsePoint adhoc = adhoc_design(mission);
    std::printf("\nper-domain ad-hoc design would have yielded: %s, $%.2f, "
                "%.0f days -> %s\n",
                style_name(adhoc.style), adhoc.integration.total_cost_usd,
                adhoc.metrics.lifetime_days,
                adhoc.metrics.meets_requirements
                    ? "meets mission"
                    : adhoc.metrics.failure_reason.c_str());

    const auto expert = expert_methodology();
    const auto automated = automated_methodology();
    std::printf("\nmethodology: expert %.0f weeks / $%.0fk vs automated %.0f "
                "weeks / $%.0fk\n",
                expert.time_to_market_weeks, expert.design_cost_usd / 1e3,
                automated.time_to_market_weeks, automated.design_cost_usd / 1e3);
    return 0;
}
