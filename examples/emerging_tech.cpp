/// emerging_tech — logic abstractions for controlled-polarity devices.
///
/// De Micheli's introduction argues that SiNW/CNT controlled-polarity
/// transistors (whose native primitive is the biconditional/XOR, not the
/// NAND) demand new logic representations. This example compares the
/// classical ROBDD against the biconditional BBDD on an arithmetic
/// datapath, and shows the two-level engine (Espresso) on the same
/// function for contrast.

#include <cstdio>
#include <memory>

#include "janus/logic/aig.hpp"
#include "janus/logic/bbdd.hpp"
#include "janus/logic/bdd.hpp"
#include "janus/logic/cover.hpp"
#include "janus/logic/espresso.hpp"
#include "janus/netlist/generator.hpp"

using namespace janus;

int main() {
    const auto lib = std::make_shared<const CellLibrary>(
        make_default_library(*find_node("28nm")));

    // Parity: the purest XOR function — one biconditional node per level.
    {
        const Netlist par = generate_parity(lib, 12);
        const Aig paig = Aig::from_netlist(par);
        const auto ptts = paig.output_truth_tables();
        Bdd pb(12);
        Bbdd px(12);
        std::printf("12-input parity: ROBDD %zu nodes, BBDD %zu nodes\n\n",
                    pb.count_nodes({pb.from_truth_table(ptts[0])}),
                    px.count_nodes({px.from_truth_table(ptts[0])}));
    }

    // A 6-bit adder: the XOR-rich function class the new devices favor.
    const Netlist adder = generate_adder(lib, 6);
    const Aig aig = Aig::from_netlist(adder);
    const auto tts = aig.output_truth_tables();
    const int n = static_cast<int>(aig.num_inputs());

    Bdd bdd(n);
    Bbdd bbdd(n);
    std::vector<Bdd::Ref> bdd_roots;
    std::vector<Bbdd::Ref> bbdd_roots;
    for (const TruthTable& tt : tts) {
        bdd_roots.push_back(bdd.from_truth_table(tt));
        bbdd_roots.push_back(bbdd.from_truth_table(tt));
    }
    std::printf("6-bit adder (%d inputs, %zu outputs)\n", n, tts.size());
    std::printf("  AND/INV abstraction (ROBDD):        %4zu nodes\n",
                bdd.count_nodes(bdd_roots));
    std::printf("  biconditional abstraction (BBDD):   %4zu nodes\n",
                bbdd.count_nodes(bbdd_roots));

    // Per-output view: the middle sum bits show the biggest gap.
    std::printf("\n%-8s %8s %8s\n", "output", "BDD", "BBDD");
    for (std::size_t o = 0; o < tts.size(); ++o) {
        Bdd b1(n);
        Bbdd b2(n);
        std::printf("%-8s %8zu %8zu\n", adder.primary_outputs()[o].first.c_str(),
                    b1.count_nodes({b1.from_truth_table(tts[o])}),
                    b2.count_nodes({b2.from_truth_table(tts[o])}));
    }

    // Contrast: the SOP view of one sum output — two-level logic cannot
    // compress parity-like functions at all (exponential cube counts),
    // which is why multi-level + new abstractions matter.
    const TruthTable& s3 = tts[3];
    const auto sop = espresso(Cover::from_truth_table(s3));
    std::printf("\nsum bit s3 as minimized SOP: %zu cubes, %d literals "
                "(from %d minterms)\n",
                sop.cover.size(), sop.cover.num_literals(), sop.initial_cubes);
    std::printf("the biconditional node count for the same bit: %zu\n",
                [&] {
                    Bbdd b(n);
                    return b.count_nodes({b.from_truth_table(s3)});
                }());
    return 0;
}
