/// asic_flow — the full JanusEDA implementation flow, end to end.
///
/// Takes a sequential design through scan insertion, placement,
/// legalization, scan reorder, global routing, STA and power, at two
/// technology nodes — the "same flow at emerging and established nodes"
/// story the DATE'16 panel tells. Also demonstrates the flow tuner.

#include <cstdio>
#include <memory>
#include <vector>

#include "janus/flow/flow.hpp"
#include "janus/flow/flow_engine.hpp"
#include "janus/flow/report.hpp"
#include "janus/flow/tuner.hpp"
#include "janus/netlist/generator.hpp"

using namespace janus;

int main() {
    std::vector<FlowResult> results;
    for (const char* node_name : {"28nm", "180nm"}) {
        const TechnologyNode node = *find_node(node_name);
        const auto lib =
            std::make_shared<const CellLibrary>(make_default_library(node));

        // A 4-stage pipelined datapath: realistic structure for both the
        // physical flow and the scan chains threaded through it.
        const Netlist design = generate_mesh(lib, 2500, 7, 4);

        FlowParams params;
        params.stages = FlowStageMask::Scan | FlowStageMask::ClockTree;
        params.scan_chains = 4;
        FlowResult r = run_flow(design, node, params);
        r.design = std::string(node_name) + "/" + design.name();
        std::printf("[%s] scan chains stitched: %.0f um of scan wiring\n",
                    node_name, r.scan_wirelength_um);
        results.push_back(std::move(r));
    }
    std::printf("\n%s\n", format_flow_table(results).c_str());

    // Staged engine: run to placement, inspect, then resume — the API the
    // monolithic run_flow() wraps. Each stage lands in the trace with wall
    // time and QoR deltas.
    {
        const TechnologyNode node = *find_node("28nm");
        const auto lib =
            std::make_shared<const CellLibrary>(make_default_library(node));
        FlowEngine engine;
        FlowContext ctx(generate_mesh(lib, 1500, 3, 2), node, FlowParams{});
        const FlowResult at_place = engine.run_to(ctx, "legalize");
        std::printf("after legalize: HPWL %.0f um (%s), routing pending\n",
                    at_place.hpwl_um, at_place.legal ? "legal" : "ILLEGAL");
        engine.run(ctx);  // resume through route/cts/sta/power
        std::printf("stage trace: %s\n\n",
                    stage_trace_json(ctx.trace).c_str());
    }

    // Self-learning: let the tuner pick flow parameters over repeated runs
    // (panel E6 — "a built-in self-learning engine").
    const TechnologyNode node = *find_node("28nm");
    const auto lib = std::make_shared<const CellLibrary>(make_default_library(node));
    const auto arms = default_arms();
    TunerOptions topts;
    topts.runs = 12;
    const TunerResult tuned = tune(
        arms,
        [&](const FlowParams& p, int run) {
            GeneratorConfig cfg;
            cfg.num_gates = 400;
            cfg.seed = 100 + static_cast<std::uint64_t>(run);
            return run_flow(generate_random(lib, cfg), node, p).cost();
        },
        topts);
    std::printf("tuner verdict after %zu runs: '%s' (mean cost %.1f)\n",
                tuned.history.size(), arms[tuned.best_arm].name.c_str(),
                tuned.best_mean_cost);
    return 0;
}
