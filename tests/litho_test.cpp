#include <gtest/gtest.h>

#include "janus/litho/aerial_image.hpp"
#include "janus/litho/mask.hpp"
#include "janus/litho/opc.hpp"

namespace janus {
namespace {

/// A pair of lines-and-space features of the given width/pitch (nm).
std::vector<MaskFeature> line_pair(double width_nm, double pitch_nm,
                                   double length_nm = 600) {
    std::vector<MaskFeature> f;
    f.push_back({Rect{0, 0, static_cast<std::int64_t>(length_nm),
                      static_cast<std::int64_t>(width_nm)},
                 0, 0, 0, 0});
    f.push_back({Rect{0, static_cast<std::int64_t>(pitch_nm),
                      static_cast<std::int64_t>(length_nm),
                      static_cast<std::int64_t>(pitch_nm + width_nm)},
                 0, 0, 0, 0});
    return f;
}

TEST(Mask, RasterizesDrawnShapes) {
    const auto features = line_pair(100, 300);
    const MaskRaster raster(features, 4.0, 50.0);
    EXPECT_GT(raster.width(), 100);
    // A point inside the first line is set; a point between lines is not.
    const int y_line = static_cast<int>((50 + 50) / 4);  // margin + mid-line
    const int y_gap = static_cast<int>((50 + 200) / 4);
    const int x_mid = raster.width() / 2;
    EXPECT_EQ(raster.pixel(x_mid, y_line), 1.0);
    EXPECT_EQ(raster.pixel(x_mid, y_gap), 0.0);
}

TEST(Mask, BiasEnlargesDrawnShape) {
    MaskFeature f{Rect{0, 0, 100, 100}, 10, 10, 10, 10};
    const Rect d = f.drawn();
    EXPECT_EQ(d, (Rect{-10, -10, 110, 110}));
}

TEST(AerialImage, BlurReducesContrastForSmallFeatures) {
    OpticalModel optics;  // sigma ~64 nm
    const auto big = line_pair(300, 900);
    const auto small = line_pair(60, 180);
    const MaskRaster rb(big, 4.0, 200);
    const MaskRaster rs(small, 4.0, 200);
    const auto pb = simulate_print(rb, optics);
    const auto ps = simulate_print(rs, optics);
    // Peak intensity inside a big feature approaches 1; small features
    // never reach it.
    double peak_b = 0, peak_s = 0;
    for (const double v : pb.intensity) peak_b = std::max(peak_b, v);
    for (const double v : ps.intensity) peak_s = std::max(peak_s, v);
    EXPECT_GT(peak_b, 0.95);
    EXPECT_LT(peak_s, peak_b);
}

TEST(AerialImage, LargeFeaturePrintsAccurately) {
    const auto features = line_pair(400, 1200);
    const EpeReport rep = check_print(features, OpticalModel{});
    EXPECT_LT(rep.mean_epe_nm, 25.0);  // corner rounding dominates the mean
    EXPECT_FALSE(rep.feature_lost);
}

TEST(AerialImage, TinyIsolatedFeatureIsLostWithoutOpc) {
    std::vector<MaskFeature> f;
    f.push_back({Rect{0, 0, 60, 60}, 0, 0, 0, 0});
    const EpeReport rep = check_print(f, OpticalModel{});
    EXPECT_TRUE(rep.feature_lost);
}

TEST(Opc, RuleBasedBiasHelpsNarrowLines) {
    const OpticalModel optics;
    auto features = line_pair(90, 270);
    const EpeReport before = check_print(features, optics);
    rule_based_opc(features, optics);
    const EpeReport after = check_print(features, optics);
    EXPECT_LT(after.area_error, before.area_error);
}

TEST(Opc, ModelBasedConvergesBelowRuleBased) {
    const OpticalModel optics;
    auto rule_features = line_pair(90, 270);
    rule_based_opc(rule_features, optics);
    const EpeReport rule_rep = check_print(rule_features, optics);

    auto model_features = line_pair(90, 270);
    const ModelOpcResult res = model_based_opc(model_features, optics);
    EXPECT_LT(res.final.mean_epe_nm, res.initial.mean_epe_nm);
    EXPECT_LE(res.final.area_error, rule_rep.area_error * 1.1);
}

TEST(Opc, RecoversLostFeature) {
    const OpticalModel optics;
    std::vector<MaskFeature> features;
    features.push_back({Rect{0, 0, 90, 90}, 0, 0, 0, 0});
    EXPECT_TRUE(check_print(features, optics).feature_lost);
    ModelOpcOptions opts;
    opts.iterations = 20;
    const auto res = model_based_opc(features, optics, opts);
    EXPECT_FALSE(res.final.feature_lost);
}

TEST(Opc, BiasRespectsMaskRuleLimit) {
    const OpticalModel optics;
    std::vector<MaskFeature> features;
    features.push_back({Rect{0, 0, 40, 40}, 0, 0, 0, 0});  // hopeless feature
    ModelOpcOptions opts;
    opts.max_bias_nm = 12.0;
    model_based_opc(features, optics, opts);
    for (const MaskFeature& f : features) {
        EXPECT_LE(f.bias_left, 12.0);
        EXPECT_LE(f.bias_right, 12.0);
        EXPECT_LE(f.bias_top, 12.0);
        EXPECT_LE(f.bias_bottom, 12.0);
    }
}

class FeatureSizeSweep : public ::testing::TestWithParam<double> {};

TEST_P(FeatureSizeSweep, OpcNeverHurts) {
    const double width = GetParam();
    const OpticalModel optics;
    auto features = line_pair(width, width * 3);
    const EpeReport before = check_print(features, optics);
    const ModelOpcResult res = model_based_opc(features, optics);
    EXPECT_LE(res.final.area_error, before.area_error + 0.02) << width;
}

INSTANTIATE_TEST_SUITE_P(Widths, FeatureSizeSweep,
                         ::testing::Values(80.0, 120.0, 180.0, 260.0, 400.0));

}  // namespace
}  // namespace janus
