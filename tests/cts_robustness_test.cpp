#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "janus/dft/compression.hpp"
#include "janus/flow/flow.hpp"
#include "janus/litho/mask.hpp"
#include "janus/logic/bbdd.hpp"
#include "janus/logic/bdd.hpp"
#include "janus/logic/truth_table.hpp"
#include "janus/netlist/generator.hpp"
#include "janus/place/analytic_place.hpp"
#include "janus/place/floorplan.hpp"
#include "janus/place/legalize.hpp"
#include "janus/power/power_grid.hpp"
#include "janus/route/clock_tree.hpp"
#include "janus/route/grid_graph.hpp"

namespace janus {
namespace {

std::shared_ptr<const CellLibrary> lib28() {
    static const auto lib = std::make_shared<const CellLibrary>(
        make_default_library(*find_node("28nm")));
    return lib;
}

// ---------------------------------------------------------------- CTS

TEST(ClockTree, EmptyForCombinationalDesign) {
    const Netlist nl = generate_adder(lib28(), 4);
    const ClockTree ct = build_clock_tree(nl);
    EXPECT_TRUE(ct.nodes.empty());
    EXPECT_EQ(ct.total_wirelength_um, 0.0);
}

TEST(ClockTree, CoversEveryFlopExactlyOnce) {
    GeneratorConfig cfg;
    cfg.num_gates = 600;
    cfg.num_flops = 70;
    Netlist nl = generate_random(lib28(), cfg);
    const PlacementArea area = make_placement_area(nl, *find_node("28nm"));
    analytic_place(nl, area);
    legalize(nl, area);
    const ClockTree ct = build_clock_tree(nl);
    std::size_t leaves = 0;
    for (const ClockNode& n : ct.nodes) leaves += n.leaves.size();
    EXPECT_EQ(leaves, 70u);
    EXPECT_GT(ct.total_wirelength_um, 0.0);
    EXPECT_GT(ct.levels, 1);
    EXPECT_GE(ct.skew_ps(), 0.0);
}

TEST(ClockTree, SmallClusterFitsOneNode) {
    const Netlist nl = generate_counter(lib28(), 4);  // 4 flops, unplaced
    ClockTreeOptions opts;
    opts.max_leaf_cluster = 8;
    const ClockTree ct = build_clock_tree(nl);
    ASSERT_EQ(ct.nodes.size(), 1u);
    EXPECT_EQ(ct.nodes[0].leaves.size(), 4u);
    EXPECT_EQ(ct.levels, 1);
}

TEST(ClockTree, SkewBoundedByTreeDepthSpread) {
    GeneratorConfig cfg;
    cfg.num_gates = 1200;
    cfg.num_flops = 128;
    Netlist nl = generate_random(lib28(), cfg);
    const PlacementArea area = make_placement_area(nl, *find_node("28nm"));
    analytic_place(nl, area);
    legalize(nl, area);
    const ClockTree ct = build_clock_tree(nl);
    // All leaves sit at the same buffer depth in a bisection tree (within
    // one level), so skew comes from wire-length differences only and
    // must stay well below the total insertion delay.
    EXPECT_LT(ct.skew_ps(), ct.max_insertion_delay_ps);
    EXPECT_GT(clock_tree_power_mw(ct, *find_node("28nm"), 500.0), 0.0);
}

TEST(Flow, ReportsClockAndSizingMetrics) {
    GeneratorConfig cfg;
    cfg.num_gates = 400;
    cfg.num_flops = 30;
    const Netlist nl = generate_random(lib28(), cfg);
    FlowParams params;
    params.stages = FlowStageMask::ClockTree;  // no sizing; CTS on
    const FlowResult r = run_flow(nl, *find_node("28nm"), params);
    EXPECT_GT(r.clock_skew_ps, 0.0);
    EXPECT_GT(r.clock_wirelength_um, 0.0);
}

// --------------------------------------------------------- error handling

TEST(Robustness, InvalidArgumentsThrow) {
    EXPECT_THROW(TruthTable(17), std::invalid_argument);
    EXPECT_THROW(TruthTable(-1), std::invalid_argument);
    EXPECT_THROW(Bdd(-1), std::invalid_argument);
    EXPECT_THROW(Bbdd(0), std::invalid_argument);
    EXPECT_THROW(GridGraph(1, 8, 4.0), std::invalid_argument);
    EXPECT_THROW(Misr(2), std::invalid_argument);
    EXPECT_THROW(LinearDecompressor(0, 4, 4), std::invalid_argument);
    EXPECT_THROW(generate_adder(lib28(), 0), std::invalid_argument);
    EXPECT_THROW(generate_parity(lib28(), -3), std::invalid_argument);
    EXPECT_THROW(generate_mesh(lib28(), 0), std::invalid_argument);
    EXPECT_THROW(floorplan({}), std::invalid_argument);
    EXPECT_THROW(Netlist(nullptr), std::invalid_argument);
}

TEST(Robustness, MaskRequiresFeatures) {
    EXPECT_THROW(MaskRaster({}, 2.0, 10.0), std::invalid_argument);
    std::vector<MaskFeature> f{{Rect{0, 0, 10, 10}, 0, 0, 0, 0}};
    EXPECT_THROW(MaskRaster(f, 0.0, 10.0), std::invalid_argument);
}

TEST(Robustness, PowerGridRejectsTinyGrids) {
    PowerGridOptions opts;
    opts.cols = 1;
    EXPECT_THROW(PowerGrid(Rect{0, 0, 100, 100}, 1.0, opts), std::invalid_argument);
}

TEST(Robustness, CombinationalLoopDetected) {
    Netlist nl(lib28(), "loop");
    const NetId a = nl.add_primary_input("a");
    const auto and2 = *nl.library().find("AND2_X1");
    const InstId g0 = nl.add_instance("g0", and2, {a, a});
    const InstId g1 = nl.add_instance("g1", and2, {nl.instance(g0).output, a});
    // Close the loop: g0's second input becomes g1's output.
    nl.connect_input(g0, 1, nl.instance(g1).output);
    EXPECT_THROW(nl.topological_order(), std::runtime_error);
}

TEST(Robustness, DecompressorCatchesBadCubes) {
    LinearDecompressor dec(100, 2, 4);
    TestCube cube;
    cube.care_cells = {200};  // out of range
    cube.care_values = {true};
    EXPECT_THROW(dec.encode(cube), std::out_of_range);
    TestCube lop;
    lop.care_cells = {1, 2};
    lop.care_values = {true};  // size mismatch
    EXPECT_THROW(dec.encode(lop), std::invalid_argument);
}

// ---------------------------------------------------------- property sweep

class MeshScalingTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MeshScalingTest, PlaceAndLegalizeStayConsistent) {
    const std::size_t gates = GetParam();
    Netlist nl = generate_mesh(lib28(), gates, 3, 2);
    EXPECT_TRUE(nl.validate().empty());
    EXPECT_NO_THROW(nl.topological_order());
    const PlacementArea area = make_placement_area(nl, *find_node("28nm"));
    analytic_place(nl, area);
    const LegalizeResult lr = legalize(nl, area);
    EXPECT_TRUE(lr.success);
    EXPECT_TRUE(is_legal(nl, area));
}

INSTANTIATE_TEST_SUITE_P(Sizes, MeshScalingTest,
                         ::testing::Values(50, 500, 2000, 8000));

}  // namespace
}  // namespace janus
