#include <gtest/gtest.h>

#include <memory>

#include "janus/flow/flow.hpp"
#include "janus/flow/report.hpp"
#include "janus/flow/tuner.hpp"
#include "janus/netlist/generator.hpp"
#include "janus/sip/components.hpp"
#include "janus/sip/dse.hpp"
#include "janus/sip/methodology.hpp"
#include "janus/sip/node_economics.hpp"
#include "janus/sip/package_model.hpp"

namespace janus {
namespace {

std::shared_ptr<const CellLibrary> lib28() {
    static const auto lib = std::make_shared<const CellLibrary>(
        make_default_library(*find_node("28nm")));
    return lib;
}

// -------------------------------------------------------------- components

TEST(Components, CatalogHasEveryKind) {
    const auto& cat = component_catalog();
    for (const ComponentKind kind :
         {ComponentKind::Sensor, ComponentKind::Radio, ComponentKind::Mcu,
          ComponentKind::Storage, ComponentKind::PowerSource,
          ComponentKind::Harvester}) {
        bool found = false;
        for (const Component& c : cat) found |= (c.kind == kind);
        EXPECT_TRUE(found) << static_cast<int>(kind);
    }
}

TEST(Components, IncompleteSystemFails) {
    SmartSystem sys;  // nothing selected
    const auto m = evaluate_system(sys, MissionProfile{});
    EXPECT_FALSE(m.meets_requirements);
    EXPECT_EQ(m.failure_reason, "incomplete system");
}

TEST(Components, LongerSampleIntervalExtendsLife) {
    const auto& cat = component_catalog();
    SmartSystem sys;
    for (std::size_t i = 0; i < cat.size(); ++i) {
        if (cat[i].kind == ComponentKind::Sensor && sys.sensor < 0) sys.sensor = static_cast<int>(i);
        if (cat[i].kind == ComponentKind::Radio && sys.radio < 0) sys.radio = static_cast<int>(i);
        if (cat[i].kind == ComponentKind::Mcu && sys.mcu < 0) sys.mcu = static_cast<int>(i);
        if (cat[i].kind == ComponentKind::PowerSource && sys.power < 0) sys.power = static_cast<int>(i);
    }
    MissionProfile fast;
    fast.sample_interval_s = 1;
    MissionProfile slow;
    slow.sample_interval_s = 600;
    EXPECT_GT(evaluate_system(sys, slow).lifetime_days,
              evaluate_system(sys, fast).lifetime_days);
}

TEST(Components, RangeRequirementFiltersRadios) {
    const auto& cat = component_catalog();
    SmartSystem sys;
    for (std::size_t i = 0; i < cat.size(); ++i) {
        if (cat[i].name == "ble_soc") sys.radio = static_cast<int>(i);
        if (cat[i].kind == ComponentKind::Sensor && sys.sensor < 0) sys.sensor = static_cast<int>(i);
        if (cat[i].kind == ComponentKind::Mcu && sys.mcu < 0) sys.mcu = static_cast<int>(i);
        if (cat[i].kind == ComponentKind::PowerSource && sys.power < 0) sys.power = static_cast<int>(i);
    }
    MissionProfile far;
    far.required_range_m = 2000;
    const auto m = evaluate_system(sys, far);
    EXPECT_FALSE(m.meets_requirements);
    EXPECT_EQ(m.failure_reason, "radio range insufficient");
}

// ------------------------------------------------------------- integration

TEST(Integration, SipShrinksVolumeVsPcb) {
    SmartSystem sys{0, 3, 7, 10, 12, -1};
    const auto pcb = integrate(sys, IntegrationStyle::DiscretePcb);
    const auto sip = integrate(sys, IntegrationStyle::SiP);
    EXPECT_TRUE(pcb.feasible);
    EXPECT_TRUE(sip.feasible);
    EXPECT_LT(sip.volume_mm3, pcb.volume_mm3);
    EXPECT_LT(sip.interconnect_power_uw, pcb.interconnect_power_uw);
}

TEST(Integration, SocInfeasibleWithMems) {
    const auto& cat = component_catalog();
    SmartSystem sys;
    for (std::size_t i = 0; i < cat.size(); ++i) {
        if (cat[i].name == "imu_6axis") sys.sensor = static_cast<int>(i);  // MEMS
        if (cat[i].name == "ble_soc") sys.radio = static_cast<int>(i);
        if (cat[i].name == "m0_tiny") sys.mcu = static_cast<int>(i);
        if (cat[i].name == "coin_cr2032") sys.power = static_cast<int>(i);
    }
    const auto soc = integrate(sys, IntegrationStyle::MonolithicSoC);
    EXPECT_FALSE(soc.feasible);
    const auto sip = integrate(sys, IntegrationStyle::SiP);
    EXPECT_TRUE(sip.feasible);  // SiP merges mixed technologies
}

TEST(Integration, SocNreAmortizesWithVolume) {
    const auto& cat = component_catalog();
    SmartSystem sys;
    for (std::size_t i = 0; i < cat.size(); ++i) {
        if (cat[i].name == "temp_basic") sys.sensor = static_cast<int>(i);
        if (cat[i].name == "ble_soc") sys.radio = static_cast<int>(i);
        if (cat[i].name == "m0_tiny") sys.mcu = static_cast<int>(i);
        if (cat[i].name == "coin_cr2032") sys.power = static_cast<int>(i);
    }
    IntegrationOptions low;
    low.production_volume = 1e4;
    IntegrationOptions high;
    high.production_volume = 1e7;
    const auto c_low = integrate(sys, IntegrationStyle::MonolithicSoC, low);
    const auto c_high = integrate(sys, IntegrationStyle::MonolithicSoC, high);
    ASSERT_TRUE(c_low.feasible && c_high.feasible);
    EXPECT_GT(c_low.total_cost_usd, c_high.total_cost_usd);
}

// --------------------------------------------------------------------- dse

TEST(Dse, HolisticFindsFeasiblePoints) {
    MissionProfile mission;
    mission.required_lifetime_days = 180;
    mission.max_cost_usd = 25;
    mission.max_volume_mm3 = 12000;
    const auto res = holistic_dse(mission);
    EXPECT_GT(res.evaluated, 100u);
    EXPECT_FALSE(res.feasible.empty());
    EXPECT_FALSE(res.pareto.empty());
    EXPECT_LE(res.pareto.size(), res.feasible.size());
    // Pareto points are mutually non-dominated.
    for (const auto& a : res.pareto) {
        for (const auto& b : res.pareto) {
            EXPECT_FALSE(dominates(a, b) && dominates(b, a));
        }
    }
}

TEST(Dse, HolisticDominatesAdhocOrMeetsWhereAdhocFails) {
    MissionProfile mission;
    mission.required_lifetime_days = 365;
    mission.required_range_m = 100;
    mission.max_cost_usd = 25;
    mission.max_volume_mm3 = 12000;
    const auto holistic = holistic_dse(mission);
    const auto adhoc = adhoc_design(mission);
    ASSERT_FALSE(holistic.pareto.empty());
    if (adhoc.metrics.meets_requirements) {
        // Some Pareto point must match or beat the ad-hoc design.
        bool beaten = false;
        for (const auto& p : holistic.pareto) {
            if (p.integration.total_cost_usd <= adhoc.integration.total_cost_usd &&
                p.metrics.lifetime_days >= adhoc.metrics.lifetime_days) {
                beaten = true;
            }
        }
        EXPECT_TRUE(beaten);
    } else {
        SUCCEED();  // ad-hoc failed outright; holistic found solutions
    }
}

// ------------------------------------------------------------- methodology

TEST(Methodology, AutomationCutsCostAndSchedule) {
    const auto expert = expert_methodology();
    const auto automated = automated_methodology();
    EXPECT_LT(automated.time_to_market_weeks, expert.time_to_market_weeks);
    EXPECT_LT(automated.design_cost_usd, expert.design_cost_usd);
    // The panel's pitch: automated flow at least halves time-to-market.
    EXPECT_LT(automated.time_to_market_weeks, 0.5 * expert.time_to_market_weeks);
}

// ---------------------------------------------------------- node economics

TEST(NodeEconomics, LowVolumePrefersOldNodes) {
    DesignScenario s;
    s.transistors_m = 2;
    s.production_volume = 2e4;
    s.performance_need_ghz = 0.1;
    const auto best = best_node(s);
    ASSERT_TRUE(best.feasible);
    const auto node = find_node(best.node);
    ASSERT_TRUE(node.has_value());
    EXPECT_GE(node->feature_nm, 90.0);
}

TEST(NodeEconomics, HugeHighVolumeDesignNeedsAdvancedNode) {
    DesignScenario s;
    s.transistors_m = 2000;
    s.production_volume = 5e7;
    s.performance_need_ghz = 1.5;
    const auto best = best_node(s);
    ASSERT_TRUE(best.feasible);
    const auto node = find_node(best.node);
    EXPECT_LE(node->feature_nm, 20.0);
}

TEST(NodeEconomics, EvaluateNodesMarksInfeasible) {
    DesignScenario s;
    s.transistors_m = 4000;  // will not fit old nodes
    const auto all = evaluate_nodes(s);
    bool some_infeasible = false, some_feasible = false;
    for (const auto& c : all) {
        (c.feasible ? some_feasible : some_infeasible) = true;
    }
    EXPECT_TRUE(some_infeasible);
    EXPECT_TRUE(some_feasible);
}

TEST(NodeEconomics, DesignStartSharesMatchPanelShape) {
    const auto shares = design_start_distribution(2000, 42);
    double total = 0, mature = 0, node180 = 0;
    double advanced = 0;
    for (const auto& s : shares) {
        total += s.share;
        const auto n = find_node(s.node);
        if (n->feature_nm >= 28) mature += s.share;
        if (n->feature_nm < 28) advanced += s.share;
        if (s.node == "180nm") node180 = s.share;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    // Panel: >90% of starts at 32/28 nm and above; 180 nm >25%.
    EXPECT_GT(mature, 0.85);
    EXPECT_GT(node180, 0.2);
    EXPECT_LT(advanced, 0.15);
}

// -------------------------------------------------------------------- flow

TEST(Flow, RunsEndToEndOnCombinationalDesign) {
    GeneratorConfig cfg;
    cfg.num_gates = 300;
    cfg.seed = 5;
    const Netlist nl = generate_random(lib28(), cfg);
    const FlowResult r = run_flow(nl, *find_node("28nm"), {});
    EXPECT_TRUE(r.legal);
    EXPECT_EQ(r.route_overflow, 0.0);
    EXPECT_GT(r.area_um2, 0.0);
    EXPECT_GT(r.critical_delay_ps, 0.0);
    EXPECT_GT(r.total_power_mw, 0.0);
    // The implemented netlist comes back via FlowResult::mapped; the input
    // itself is never modified.
    ASSERT_NE(r.mapped, nullptr);
    EXPECT_GT(r.mapped->num_instances(), 0u);
    EXPECT_TRUE(r.mapped->validate().empty());
}

TEST(Flow, ScanFlowReportsScanWirelength) {
    GeneratorConfig cfg;
    cfg.num_gates = 300;
    cfg.num_flops = 40;
    cfg.seed = 6;
    const Netlist nl = generate_random(lib28(), cfg);
    FlowParams params;
    params.stages = params.stages | FlowStageMask::Scan;
    params.scan_chains = 2;
    const FlowResult r = run_flow(nl, *find_node("28nm"), params);
    EXPECT_GT(r.scan_wirelength_um, 0.0);
    EXPECT_TRUE(r.legal);
}

TEST(Flow, ReportFormatsTable) {
    GeneratorConfig cfg;
    cfg.num_gates = 150;
    const Netlist nl = generate_random(lib28(), cfg);
    const FlowResult r = run_flow(nl, *find_node("28nm"));
    const std::string line = format_flow_result(r);
    EXPECT_NE(line.find("inst"), std::string::npos);
    const std::string table = format_flow_table({r, r});
    EXPECT_NE(table.find("design"), std::string::npos);
}

// ------------------------------------------------------------------- tuner

TEST(Tuner, LearnsTheBestArmOnSyntheticCosts) {
    std::vector<TunerArm> arms = default_arms();
    // Synthetic cost: arm 2 ("thorough") is best, with noise.
    Rng noise(3);
    const auto eval = [&](const FlowParams& p, int) {
        double base = 100.0;
        if (p.sa_moves_per_cell > 0) base = 60.0;        // thorough
        else if (p.optimize_rounds == 1) base = 130.0;   // fast
        return base + noise.next_gaussian(0, 5.0);
    };
    TunerOptions opts;
    opts.runs = 60;
    const auto res = tune(arms, eval, opts);
    EXPECT_EQ(arms[res.best_arm].name, "thorough");
    // The best arm collected the most pulls (exploitation).
    for (std::size_t a = 0; a < arms.size(); ++a) {
        if (a != res.best_arm) {
            EXPECT_GE(res.pulls[res.best_arm], res.pulls[a]);
        }
    }
}

TEST(Tuner, EveryArmWarmedUp) {
    const auto arms = default_arms();
    const auto eval = [](const FlowParams&, int) { return 1.0; };
    TunerOptions opts;
    opts.runs = static_cast<int>(arms.size()) + 3;
    const auto res = tune(arms, eval, opts);
    for (std::size_t a = 0; a < arms.size(); ++a) {
        EXPECT_GE(res.pulls[a], 1);
    }
}

TEST(Tuner, RealFlowTuningImprovesOverWorstArm) {
    // A tiny real workload: tuning on actual flow runs.
    GeneratorConfig cfg;
    cfg.num_gates = 120;
    const auto node = *find_node("28nm");
    const auto eval = [&](const FlowParams& p, int run) {
        GeneratorConfig c = cfg;
        c.seed = static_cast<std::uint64_t>(run) + 1;
        const Netlist nl = generate_random(lib28(), c);
        FlowParams params = p;
        params.seed = c.seed;
        return run_flow(nl, node, params).cost();
    };
    TunerOptions opts;
    opts.runs = 14;
    const auto arms = default_arms();
    const auto res = tune(arms, eval, opts);
    double worst = 0;
    for (std::size_t a = 0; a < arms.size(); ++a) {
        if (res.pulls[a] > 0) worst = std::max(worst, res.mean_cost[a]);
    }
    EXPECT_LE(res.best_mean_cost, worst);
}

}  // namespace
}  // namespace janus
