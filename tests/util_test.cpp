#include <gtest/gtest.h>

#include <set>

#include "janus/util/disjoint_set.hpp"
#include "janus/util/geometry.hpp"
#include "janus/util/rng.hpp"
#include "janus/util/stats.hpp"

namespace janus {
namespace {

// ---------------------------------------------------------------- geometry

TEST(Geometry, ManhattanDistance) {
    EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
    EXPECT_EQ(manhattan({-2, 5}, {2, -5}), 14);
    EXPECT_EQ(manhattan({1, 1}, {1, 1}), 0);
}

TEST(Geometry, EmptyRect) {
    Rect r;
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(r.area(), 0);
    EXPECT_FALSE(r.contains({0, 0}));
    EXPECT_FALSE(r.intersects(Rect{0, 0, 10, 10}));
}

TEST(Geometry, RectBasics) {
    Rect r{0, 0, 10, 20};
    EXPECT_FALSE(r.empty());
    EXPECT_EQ(r.width(), 10);
    EXPECT_EQ(r.height(), 20);
    EXPECT_EQ(r.area(), 200);
    EXPECT_EQ(r.center(), (Point{5, 10}));
    EXPECT_TRUE(r.contains({10, 20}));
    EXPECT_FALSE(r.contains({11, 20}));
}

TEST(Geometry, Intersection) {
    const Rect a{0, 0, 10, 10};
    const Rect b{5, 5, 15, 15};
    const Rect i = intersection(a, b);
    EXPECT_EQ(i, (Rect{5, 5, 10, 10}));
    EXPECT_TRUE(intersection(a, Rect{20, 20, 30, 30}).empty());
}

TEST(Geometry, BoundingBoxOfRects) {
    const Rect a{0, 0, 5, 5};
    const Rect b{10, -3, 12, 4};
    EXPECT_EQ(bounding_box(a, b), (Rect{0, -3, 12, 5}));
    EXPECT_EQ(bounding_box(Rect{}, b), b);
    EXPECT_EQ(bounding_box(a, Rect{}), a);
}

TEST(Geometry, Hpwl) {
    EXPECT_EQ(hpwl({}), 0);
    EXPECT_EQ(hpwl({{3, 7}}), 0);
    EXPECT_EQ(hpwl({{0, 0}, {10, 5}, {2, 8}}), 10 + 8);
}

TEST(Geometry, RectGap) {
    const Rect a{0, 0, 10, 10};
    EXPECT_EQ(rect_gap(a, Rect{12, 0, 20, 10}), 2);
    EXPECT_EQ(rect_gap(a, Rect{0, 15, 10, 20}), 5);
    EXPECT_EQ(rect_gap(a, Rect{5, 5, 8, 8}), 0);   // overlap
    EXPECT_EQ(rect_gap(a, Rect{10, 10, 20, 20}), 0);  // touching
}

TEST(Geometry, InflatedRect) {
    const Rect a{5, 5, 10, 10};
    EXPECT_EQ(a.inflated(2), (Rect{3, 3, 12, 12}));
    EXPECT_TRUE(a.inflated(-3).empty());
}

// --------------------------------------------------------------------- rng

TEST(Rng, DeterministicAcrossInstances) {
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
    Rng r(7);
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(13), 13u);
}

TEST(Rng, NextInInclusive) {
    Rng r(9);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.next_in(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, DoubleInUnitInterval) {
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        const double d = r.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, GaussianMoments) {
    Rng r(13);
    RunningStats s;
    for (int i = 0; i < 20000; ++i) s.add(r.next_gaussian(5.0, 2.0));
    EXPECT_NEAR(s.mean(), 5.0, 0.1);
    EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, BernoulliEdgeCases) {
    Rng r(17);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(r.next_bool(0.0));
        EXPECT_TRUE(r.next_bool(1.0));
    }
}

TEST(Rng, ShufflePreservesElements) {
    Rng r(19);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    r.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

// ------------------------------------------------------------------- stats

TEST(Stats, RunningStatsBasics) {
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    s.add(2.0);
    s.add(4.0);
    s.add(6.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(Stats, VarianceNeedsTwoSamples) {
    RunningStats s;
    s.add(3.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(Stats, Percentile) {
    EXPECT_EQ(percentile({}, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 1.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4}, 0.5), 2.5);
}

TEST(Stats, GeometricMean) {
    EXPECT_DOUBLE_EQ(geometric_mean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(geometric_mean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_EQ(geometric_mean({}), 0.0);
}

// ------------------------------------------------------------ disjoint set

TEST(DisjointSet, SingletonsAtStart) {
    DisjointSet ds(5);
    EXPECT_EQ(ds.num_sets(), 5u);
    for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(ds.find(i), i);
}

TEST(DisjointSet, UniteAndFind) {
    DisjointSet ds(6);
    EXPECT_TRUE(ds.unite(0, 1));
    EXPECT_TRUE(ds.unite(2, 3));
    EXPECT_FALSE(ds.unite(1, 0));
    EXPECT_TRUE(ds.same(0, 1));
    EXPECT_FALSE(ds.same(0, 2));
    EXPECT_TRUE(ds.unite(1, 3));
    EXPECT_TRUE(ds.same(0, 2));
    EXPECT_EQ(ds.num_sets(), 3u);
    EXPECT_EQ(ds.set_size(3), 4u);
}

TEST(DisjointSet, AddGrows) {
    DisjointSet ds(2);
    const std::size_t id = ds.add();
    EXPECT_EQ(id, 2u);
    EXPECT_EQ(ds.num_sets(), 3u);
    ds.unite(id, 0);
    EXPECT_TRUE(ds.same(2, 0));
}

}  // namespace
}  // namespace janus
