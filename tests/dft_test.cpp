#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "janus/dft/atpg.hpp"
#include "janus/dft/compression.hpp"
#include "janus/dft/fault_sim.hpp"
#include "janus/dft/scan.hpp"
#include "janus/dft/test_cost.hpp"
#include "janus/netlist/generator.hpp"
#include "janus/place/analytic_place.hpp"
#include "janus/place/legalize.hpp"
#include "janus/util/rng.hpp"

namespace janus {
namespace {

std::shared_ptr<const CellLibrary> lib28() {
    static const auto lib = std::make_shared<const CellLibrary>(
        make_default_library(*find_node("28nm")));
    return lib;
}

Netlist sequential_design(std::size_t gates, std::size_t flops, std::uint64_t seed) {
    GeneratorConfig cfg;
    cfg.num_gates = gates;
    cfg.num_flops = flops;
    cfg.seed = seed;
    return generate_random(lib28(), cfg);
}

// -------------------------------------------------------------------- scan

TEST(Scan, InsertConvertsAllFlopsAndChains) {
    Netlist nl = sequential_design(200, 30, 1);
    const ScanInsertion si = insert_scan(nl, 3);
    EXPECT_EQ(si.chains.size(), 3u);
    std::size_t chained = 0;
    for (const auto& c : si.chains) chained += c.flops.size();
    EXPECT_EQ(chained, 30u);
    for (const InstId f : nl.sequential_instances()) {
        EXPECT_EQ(nl.type_of(f).function, CellFunction::ScanDff);
    }
    EXPECT_TRUE(nl.validate().empty());
}

TEST(Scan, ShiftMovesDataThroughChain) {
    Netlist nl = sequential_design(50, 8, 2);
    const ScanInsertion si = insert_scan(nl, 1);
    ASSERT_EQ(si.chains.size(), 1u);
    const auto& chain = si.chains[0];

    // With scan_enable high, shifting a 1 through: after k clocks the k-th
    // flop holds the value.
    std::vector<bool> state(nl.sequential_instances().size(), false);
    // Input order: original PIs..., then scan_enable, then scan_in0.
    const std::size_t npis = nl.primary_inputs().size();
    std::vector<bool> pis(npis, false);
    pis[npis - 2] = true;  // scan_enable
    pis[npis - 1] = true;  // scan_in = 1
    state = nl.next_state(pis, state);
    // Map: which state index is the first chain flop?
    const auto seq = nl.sequential_instances();
    const auto state_index = [&](InstId f) {
        for (std::size_t i = 0; i < seq.size(); ++i) {
            if (seq[i] == f) return i;
        }
        return seq.size();
    };
    EXPECT_TRUE(state[state_index(chain.flops[0])]);
    // Shift a 0 next; the 1 moves to flop 1.
    pis[npis - 1] = false;
    state = nl.next_state(pis, state);
    EXPECT_FALSE(state[state_index(chain.flops[0])]);
    EXPECT_TRUE(state[state_index(chain.flops[1])]);
}

TEST(Scan, ReorderShortensWirelength) {
    Netlist nl = sequential_design(600, 60, 3);
    ScanInsertion si = insert_scan(nl, 2);
    const PlacementArea area = make_placement_area(nl, *find_node("28nm"));
    analytic_place(nl, area);
    legalize(nl, area);
    const ReorderResult rr = reorder_scan(nl, si);
    EXPECT_LT(rr.after_um, rr.before_um);
    EXPECT_GT(rr.improvement(), 0.3);  // placement-blind order is terrible
    EXPECT_TRUE(nl.validate().empty());
}

// --------------------------------------------------------------- fault sim

TEST(FaultSim, DetectsInjectedFaultOnInverter) {
    Netlist nl(lib28(), "inv");
    const NetId a = nl.add_primary_input("a");
    const InstId g = nl.add_instance("g", *nl.library().find("INV_X1"), {a});
    nl.add_primary_output("y", nl.instance(g).output);

    PatternBatch batch;
    batch.words = {0b01};  // pattern0: a=1, pattern1: a=0
    batch.count = 2;
    const auto faults = enumerate_faults(nl);
    const auto res = fault_simulate(nl, {batch}, faults);
    // Both SA0/SA1 on both nets are detectable with the two patterns.
    EXPECT_EQ(res.detected, faults.size());
}

TEST(FaultSim, RedundantFaultStaysUndetected) {
    // y = a | !a is constant 1: faults on a are undetectable.
    Netlist nl(lib28(), "taut");
    const NetId a = nl.add_primary_input("a");
    const InstId inv = nl.add_instance("i", *nl.library().find("INV_X1"), {a});
    const InstId orr = nl.add_instance("o", *nl.library().find("OR2_X1"),
                                       {a, nl.instance(inv).output});
    nl.add_primary_output("y", nl.instance(orr).output);
    PatternBatch batch;
    batch.words = {0b01};
    batch.count = 2;
    const auto res = fault_simulate(nl, {batch}, enumerate_faults(nl));
    bool a_sa0_undetected = false;
    for (const Fault& f : res.undetected) {
        if (f.net == a && !f.stuck_value) a_sa0_undetected = true;
    }
    EXPECT_TRUE(a_sa0_undetected);
}

TEST(FaultSim, BatchSimulationMatchesScalar) {
    const Netlist nl = generate_adder(lib28(), 4);
    Rng rng(11);
    PatternBatch batch;
    batch.words.assign(num_input_slots(nl), 0);
    std::vector<std::vector<bool>> patterns;
    for (int p = 0; p < 64; ++p) {
        std::vector<bool> pat;
        for (std::size_t s = 0; s < batch.words.size(); ++s) {
            const bool v = rng.next_bool();
            pat.push_back(v);
            if (v) batch.words[s] |= (1ull << p);
        }
        patterns.push_back(std::move(pat));
    }
    const auto words = simulate_batch(nl, batch);
    for (int p = 0; p < 64; p += 7) {
        const auto scalar = nl.evaluate(patterns[static_cast<std::size_t>(p)], {});
        for (NetId n = 0; n < nl.num_nets(); ++n) {
            EXPECT_EQ(static_cast<bool>((words[n] >> p) & 1), scalar[n])
                << "net " << n << " pattern " << p;
        }
    }
}

// -------------------------------------------------------------------- atpg

TEST(Atpg, ReachesHighCoverageOnAdder) {
    const Netlist nl = generate_adder(lib28(), 8);
    AtpgOptions opts;
    opts.target_coverage = 0.99;
    const auto res = random_atpg(nl, opts);
    EXPECT_GT(res.coverage, 0.95);
    EXPECT_FALSE(res.curve.empty());
    // Coverage curve is monotone.
    for (std::size_t i = 1; i < res.curve.size(); ++i) {
        EXPECT_GE(res.curve[i].second, res.curve[i - 1].second);
    }
}

TEST(Atpg, CoverageCountsConsistent) {
    const Netlist nl = generate_comparator(lib28(), 6);
    const auto res = random_atpg(nl);
    const auto total = enumerate_faults(nl).size();
    EXPECT_NEAR(res.coverage,
                1.0 - static_cast<double>(res.undetected.size()) /
                          static_cast<double>(total),
                1e-12);
}

// ------------------------------------------------------------- compression

TEST(Compression, ExpandIsLinear) {
    LinearDecompressor dec(200, 4, 8, 5);
    Rng rng(13);
    std::vector<bool> x1(dec.channel_bits()), x2(dec.channel_bits());
    for (std::size_t i = 0; i < x1.size(); ++i) {
        x1[i] = rng.next_bool();
        x2[i] = rng.next_bool();
    }
    const auto e1 = dec.expand(x1);
    const auto e2 = dec.expand(x2);
    std::vector<bool> xsum(x1.size());
    for (std::size_t i = 0; i < x1.size(); ++i) xsum[i] = x1[i] != x2[i];
    const auto esum = dec.expand(xsum);
    for (std::size_t c = 0; c < 200; ++c) {
        EXPECT_EQ(esum[c], e1[c] != e2[c]) << c;  // f(x1^x2) = f(x1)^f(x2)
    }
}

TEST(Compression, EncodesSparseCubes) {
    LinearDecompressor dec(1000, 4, 10, 7);
    EXPECT_GT(dec.compression_ratio(), 2.0);
    Rng rng(17);
    int success = 0;
    for (int trial = 0; trial < 20; ++trial) {
        TestCube cube;
        // 5% care-bit density — typical of deterministic cubes.
        std::set<std::uint32_t> cells;
        while (cells.size() < 50) {
            cells.insert(static_cast<std::uint32_t>(rng.next_below(1000)));
        }
        for (const auto c : cells) {
            cube.care_cells.push_back(c);
            cube.care_values.push_back(rng.next_bool());
        }
        const auto enc = dec.encode(cube);
        if (!enc) continue;
        ++success;
        const auto cellsv = dec.expand(*enc);
        for (std::size_t i = 0; i < cube.care_cells.size(); ++i) {
            EXPECT_EQ(cellsv[cube.care_cells[i]], cube.care_values[i]);
        }
    }
    EXPECT_GE(success, 18);  // dense-enough system solves w.h.p.
}

TEST(Compression, OverconstrainedCubeFails) {
    // More care bits than channel bits cannot encode.
    LinearDecompressor dec(64, 1, 32, 3);  // 2 cycles * 1 channel = 2 bits
    TestCube cube;
    for (std::uint32_t c = 0; c < 64; ++c) {
        cube.care_cells.push_back(c);
        cube.care_values.push_back((c * 7 + 1) % 3 == 0);
    }
    EXPECT_FALSE(dec.encode(cube).has_value());
}

TEST(Compression, MisrDistinguishesResponses) {
    Misr m1(16), m2(16);
    for (int i = 0; i < 100; ++i) {
        m1.absorb(static_cast<std::uint64_t>(i) * 2654435761u);
        m2.absorb(static_cast<std::uint64_t>(i) * 2654435761u + (i == 50 ? 1 : 0));
    }
    EXPECT_NE(m1.signature(), m2.signature());
    EXPECT_LT(m1.aliasing_probability(), 1e-4);
}

TEST(Compression, MisrDeterministic) {
    Misr a(24), b(24);
    for (int i = 0; i < 32; ++i) {
        a.absorb(static_cast<std::uint64_t>(i));
        b.absorb(static_cast<std::uint64_t>(i));
    }
    EXPECT_EQ(a.signature(), b.signature());
}

// --------------------------------------------------------------- test cost

TEST(TestCost, CompressionCutsPinsAndCost) {
    TestArchitecture flat;
    flat.scan_chains = 32;
    flat.scan_cells_total = 50000;
    flat.compression = false;
    TestArchitecture edt = flat;
    edt.compression = true;
    edt.channels = 2;
    edt.compression_ratio = 16.0;
    const auto c_flat = evaluate_test_cost(flat);
    const auto c_edt = evaluate_test_cost(edt);
    EXPECT_LT(c_edt.tester_pins, c_flat.tester_pins);
    EXPECT_LT(c_edt.package_cost_usd, c_flat.package_cost_usd);
    EXPECT_LT(c_edt.total_cost_usd, c_flat.total_cost_usd);
}

TEST(TestCost, MorePatternsMoreTime) {
    TestArchitecture arch;
    TestCostOptions few;
    few.patterns = 500;
    TestCostOptions many;
    many.patterns = 5000;
    EXPECT_LT(evaluate_test_cost(arch, few).test_time_ms,
              evaluate_test_cost(arch, many).test_time_ms);
}

}  // namespace
}  // namespace janus
