#include <gtest/gtest.h>

#include <memory>

#include "janus/logic/aig.hpp"
#include "janus/logic/aig_balance.hpp"
#include "janus/logic/aig_rewrite.hpp"
#include "janus/logic/bbdd.hpp"
#include "janus/logic/bdd.hpp"
#include "janus/logic/cover.hpp"
#include "janus/logic/cube.hpp"
#include "janus/logic/cut_enum.hpp"
#include "janus/logic/espresso.hpp"
#include "janus/logic/tech_map.hpp"
#include "janus/logic/truth_table.hpp"
#include "janus/netlist/generator.hpp"
#include "janus/util/rng.hpp"

namespace janus {
namespace {

std::shared_ptr<const CellLibrary> lib28() {
    static const auto lib = std::make_shared<const CellLibrary>(
        make_default_library(*find_node("28nm")));
    return lib;
}

/// Checks two netlists are behaviourally equivalent on random vectors.
void expect_equiv(const Netlist& a, const Netlist& b, int vectors, Rng& rng) {
    ASSERT_EQ(a.primary_inputs().size(), b.primary_inputs().size());
    ASSERT_EQ(a.primary_outputs().size(), b.primary_outputs().size());
    for (int t = 0; t < vectors; ++t) {
        std::vector<bool> pis;
        for (std::size_t i = 0; i < a.primary_inputs().size(); ++i) {
            pis.push_back(rng.next_bool());
        }
        const auto va = a.evaluate(pis, {});
        const auto vb = b.evaluate(pis, {});
        for (std::size_t o = 0; o < a.primary_outputs().size(); ++o) {
            ASSERT_EQ(va[a.primary_outputs()[o].second],
                      vb[b.primary_outputs()[o].second])
                << "output " << o << " vector " << t;
        }
    }
}

// ------------------------------------------------------------- truth table

TEST(TruthTable, VariableProjection) {
    const auto x0 = TruthTable::variable(3, 0);
    const auto x2 = TruthTable::variable(3, 2);
    for (std::uint64_t m = 0; m < 8; ++m) {
        EXPECT_EQ(x0.bit(m), static_cast<bool>(m & 1));
        EXPECT_EQ(x2.bit(m), static_cast<bool>(m & 4));
    }
}

TEST(TruthTable, LargeVariableProjection) {
    const auto x7 = TruthTable::variable(8, 7);
    EXPECT_FALSE(x7.bit(0));
    EXPECT_TRUE(x7.bit(128));
    EXPECT_TRUE(x7.bit(255));
    EXPECT_EQ(x7.count_ones(), 128u);
}

TEST(TruthTable, Operators) {
    const auto a = TruthTable::variable(2, 0);
    const auto b = TruthTable::variable(2, 1);
    EXPECT_EQ((a & b).count_ones(), 1u);
    EXPECT_EQ((a | b).count_ones(), 3u);
    EXPECT_EQ((a ^ b).count_ones(), 2u);
    EXPECT_EQ((~a).count_ones(), 2u);
    EXPECT_TRUE((a ^ a).is_constant(false));
}

TEST(TruthTable, CofactorAndDependence) {
    const auto a = TruthTable::variable(3, 0);
    const auto b = TruthTable::variable(3, 1);
    const auto f = a & b;
    EXPECT_TRUE(f.depends_on(0));
    EXPECT_TRUE(f.depends_on(1));
    EXPECT_FALSE(f.depends_on(2));
    EXPECT_TRUE(f.cofactor(0, false).is_constant(false));
    EXPECT_EQ(f.cofactor(0, true), b);
}

TEST(TruthTable, Permute) {
    // f = x0 & !x1; swap inputs -> x1 & !x0.
    const auto f = TruthTable::variable(2, 0) & ~TruthTable::variable(2, 1);
    const auto g = f.permute({1, 0});
    EXPECT_EQ(g, TruthTable::variable(2, 1) & ~TruthTable::variable(2, 0));
}

TEST(TruthTable, HexRoundTrip) {
    const auto a = TruthTable::variable(3, 0);
    EXPECT_EQ(a.to_hex(), "aa");
    const auto c1 = TruthTable::constant(2, true);
    EXPECT_EQ(c1.to_hex(), "f");
}

// ------------------------------------------------------------------- cubes

TEST(Cube, FromToString) {
    const Cube c = Cube::from_string("1-0");
    EXPECT_EQ(c.get(0), Literal::Pos);
    EXPECT_EQ(c.get(1), Literal::DC);
    EXPECT_EQ(c.get(2), Literal::Neg);
    EXPECT_EQ(c.to_string(), "1-0");
    EXPECT_EQ(c.num_literals(), 2);
}

TEST(Cube, ContainsAndIntersect) {
    const Cube all = Cube(3);
    const Cube c = Cube::from_string("1-0");
    const Cube m = Cube::from_string("110");
    EXPECT_TRUE(all.contains(c));
    EXPECT_TRUE(c.contains(m));
    EXPECT_FALSE(m.contains(c));
    const auto i = c.intersect(Cube::from_string("-10"));
    ASSERT_TRUE(i.has_value());
    EXPECT_EQ(i->to_string(), "110");
    EXPECT_FALSE(c.intersect(Cube::from_string("0--")).has_value());
}

TEST(Cube, DistanceAndConsensus) {
    const Cube a = Cube::from_string("1-1");
    const Cube b = Cube::from_string("0-1");
    EXPECT_EQ(a.distance(b), 1);
    const auto cons = a.consensus(b);
    ASSERT_TRUE(cons.has_value());
    EXPECT_EQ(cons->to_string(), "--1");
    EXPECT_FALSE(a.consensus(Cube::from_string("0-0")).has_value());
}

TEST(Cube, CoversMinterm) {
    const Cube c = Cube::from_string("1-0");
    EXPECT_TRUE(c.covers_minterm(0b001));   // x0=1, x1=0, x2=0
    EXPECT_TRUE(c.covers_minterm(0b011));
    EXPECT_FALSE(c.covers_minterm(0b101));  // x2=1 violates
    EXPECT_FALSE(c.covers_minterm(0b000));  // x0=0 violates
}

// ------------------------------------------------------------------ covers

TEST(Cover, TautologyDetection) {
    Cover f(2);
    f.add(Cube::from_string("1-"));
    EXPECT_FALSE(f.is_tautology());
    f.add(Cube::from_string("0-"));
    EXPECT_TRUE(f.is_tautology());
}

TEST(Cover, ComplementIsExact) {
    Rng rng(31);
    for (int trial = 0; trial < 20; ++trial) {
        const int n = 4;
        TruthTable tt(n);
        for (std::uint64_t m = 0; m < tt.num_minterms_space(); ++m) {
            tt.set_bit(m, rng.next_bool());
        }
        const Cover cov = Cover::from_truth_table(tt);
        const Cover comp = cov.complement();
        EXPECT_EQ(comp.to_truth_table(), ~tt) << "trial " << trial;
    }
}

TEST(Cover, ContainsCube) {
    Cover f(3);
    f.add(Cube::from_string("11-"));
    f.add(Cube::from_string("1-1"));
    EXPECT_TRUE(f.contains_cube(Cube::from_string("111")));
    EXPECT_FALSE(f.contains_cube(Cube::from_string("100")));
    // Covered jointly by the two cubes:
    EXPECT_TRUE(f.contains_cube(Cube::from_string("11-")));
}

TEST(Cover, SingleCubeContainmentRemoval) {
    Cover f(3);
    f.add(Cube::from_string("1--"));
    f.add(Cube::from_string("11-"));
    f.add(Cube::from_string("111"));
    f.remove_single_cube_containment();
    EXPECT_EQ(f.size(), 1u);
    EXPECT_EQ(f.cubes().front().to_string(), "1--");
}

// ---------------------------------------------------------------- espresso

TEST(Espresso, MinimizesMintermCover) {
    // f = x0 (given as 4 minterms over 3 vars) should collapse to one cube.
    const auto tt = TruthTable::variable(3, 0);
    const Cover onset = Cover::from_truth_table(tt);
    EXPECT_EQ(onset.size(), 4u);
    const auto res = espresso(onset);
    EXPECT_EQ(res.cover.size(), 1u);
    EXPECT_EQ(res.cover.to_truth_table(), tt);
}

TEST(Espresso, PreservesFunctionOnRandomFunctions) {
    Rng rng(41);
    for (int trial = 0; trial < 25; ++trial) {
        const int n = 5;
        TruthTable tt(n);
        for (std::uint64_t m = 0; m < tt.num_minterms_space(); ++m) {
            tt.set_bit(m, rng.next_bool(0.4));
        }
        const auto res = espresso(Cover::from_truth_table(tt));
        EXPECT_EQ(res.cover.to_truth_table(), tt) << "trial " << trial;
        EXPECT_LE(res.cover.size(), Cover::from_truth_table(tt).size());
    }
}

TEST(Espresso, UsesDontCares) {
    // ON = {000}, DC = {001, 010, 011} over 3 vars: minimal cover is !x2
    // or smaller than the single-minterm cube at minimum.
    Cover onset(3);
    onset.add(Cube::from_string("000"));
    Cover dc(3);
    dc.add(Cube::from_string("100"));
    dc.add(Cube::from_string("010"));
    dc.add(Cube::from_string("110"));
    const auto res = espresso(onset, dc);
    ASSERT_EQ(res.cover.size(), 1u);
    // Must cover 000, may cover DC minterms {001, 010, 011}, must not
    // cover the four OFF minterms.
    const auto tt = res.cover.to_truth_table();
    EXPECT_TRUE(tt.bit(0b000));
    for (const std::uint64_t off_m : {0b100, 0b101, 0b110, 0b111}) {
        EXPECT_FALSE(tt.bit(off_m)) << off_m;
    }
    EXPECT_LE(res.cover.num_literals(), 1);
}

TEST(Espresso, XorStaysFourCubes) {
    // 3-input XOR has no two-level sharing: 4 prime cubes, 12 literals.
    const auto tt = TruthTable::variable(3, 0) ^ TruthTable::variable(3, 1) ^
                    TruthTable::variable(3, 2);
    const auto res = espresso(Cover::from_truth_table(tt));
    EXPECT_EQ(res.cover.size(), 4u);
    EXPECT_EQ(res.cover.to_truth_table(), tt);
}

// --------------------------------------------------------------------- aig

TEST(Aig, StructuralHashingSharesNodes) {
    Aig aig;
    const AigLit a = aig.add_input("a");
    const AigLit b = aig.add_input("b");
    const AigLit x = aig.land(a, b);
    const AigLit y = aig.land(b, a);
    EXPECT_EQ(x, y);
    EXPECT_EQ(aig.num_ands(), 1u);
}

TEST(Aig, TrivialRules) {
    Aig aig;
    const AigLit a = aig.add_input("a");
    EXPECT_EQ(aig.land(a, Aig::const0()), Aig::const0());
    EXPECT_EQ(aig.land(a, Aig::const1()), a);
    EXPECT_EQ(aig.land(a, a), a);
    EXPECT_EQ(aig.land(a, aig_not(a)), Aig::const0());
    EXPECT_EQ(aig.num_ands(), 0u);
}

TEST(Aig, XorAndMuxSimulate) {
    Aig aig;
    const AigLit a = aig.add_input("a");
    const AigLit b = aig.add_input("b");
    const AigLit s = aig.add_input("s");
    aig.add_output("xor", aig.lxor(a, b));
    aig.add_output("mux", aig.lmux(s, a, b));
    for (unsigned v = 0; v < 8; ++v) {
        const bool av = v & 1, bv = v & 2, sv = v & 4;
        const auto out = aig.simulate({av, bv, sv});
        EXPECT_EQ(out[0], av != bv);
        EXPECT_EQ(out[1], sv ? bv : av);
    }
}

TEST(Aig, FromNetlistPreservesBehaviour) {
    const Netlist nl = generate_random(lib28(), {});
    const Aig aig = Aig::from_netlist(nl);
    ASSERT_EQ(aig.num_inputs(), nl.primary_inputs().size());
    Rng rng(51);
    for (int t = 0; t < 40; ++t) {
        std::vector<bool> pis;
        for (std::size_t i = 0; i < nl.primary_inputs().size(); ++i) {
            pis.push_back(rng.next_bool());
        }
        const auto nv = nl.evaluate(pis, {});
        const auto av = aig.simulate(pis);
        for (std::size_t o = 0; o < nl.primary_outputs().size(); ++o) {
            EXPECT_EQ(av[o], nv[nl.primary_outputs()[o].second]);
        }
    }
}

TEST(Aig, CleanupRemovesDeadNodes) {
    Aig aig;
    const AigLit a = aig.add_input("a");
    const AigLit b = aig.add_input("b");
    const AigLit keep = aig.land(a, b);
    aig.lxor(a, b);  // dead
    aig.add_output("y", keep);
    EXPECT_GT(aig.num_ands(), 1u);
    const Aig clean = aig.cleanup();
    EXPECT_EQ(clean.num_ands(), 1u);
}

TEST(Aig, OutputTruthTables) {
    const Netlist nl = generate_adder(lib28(), 3);
    const Aig aig = Aig::from_netlist(nl);
    const auto tts = aig.output_truth_tables();
    ASSERT_EQ(tts.size(), 4u);  // s0..s2, cout
    for (std::uint64_t m = 0; m < (1ull << 7); ++m) {
        const unsigned a = m & 7, b = (m >> 3) & 7, cin = (m >> 6) & 1;
        const unsigned sum = a + b + cin;
        EXPECT_EQ(tts[0].bit(m), static_cast<bool>(sum & 1));
        EXPECT_EQ(tts[3].bit(m), static_cast<bool>(sum & 8));
    }
}

// ------------------------------------------------------------------- cuts

TEST(CutEnum, TrivialAndMergedCuts) {
    Aig aig;
    const AigLit a = aig.add_input("a");
    const AigLit b = aig.add_input("b");
    const AigLit c = aig.add_input("c");
    const AigLit x = aig.land(a, b);
    const AigLit y = aig.land(x, c);
    aig.add_output("y", y);
    const CutSet cs = enumerate_cuts(aig);
    const auto& ycuts = cs.cuts[aig_node(y)];
    // Expect the trivial cut, {x, c}, and {a, b, c}.
    EXPECT_GE(ycuts.size(), 3u);
    bool found_abc = false;
    for (const Cut& cut : ycuts) {
        if (cut.leaves.size() == 3) found_abc = true;
    }
    EXPECT_TRUE(found_abc);
}

TEST(CutEnum, CutTruthTableMatchesSimulation) {
    const Netlist nl = generate_random(lib28(), {});
    const Aig aig = Aig::from_netlist(nl);
    const CutSet cs = enumerate_cuts(aig);
    Rng rng(61);
    int checked = 0;
    for (const std::uint32_t n : aig.topological_order()) {
        if (!aig.is_and(n) || checked > 30) continue;
        for (const Cut& cut : cs.cuts[n]) {
            if (cut.trivial()) continue;
            const TruthTable tt = cut_truth_table(aig, n, cut);
            // Validate against node-level simulation via truth tables of
            // the whole AIG (only for small input counts).
            ++checked;
            EXPECT_EQ(tt.num_vars(), static_cast<int>(cut.leaves.size()));
            break;
        }
    }
    EXPECT_GT(checked, 5);
}

// ------------------------------------------------------- balance / rewrite

TEST(Balance, ReducesDepthOfChain) {
    Aig aig;
    std::vector<AigLit> ins;
    for (int i = 0; i < 16; ++i) ins.push_back(aig.add_input("i" + std::to_string(i)));
    AigLit acc = ins[0];
    for (int i = 1; i < 16; ++i) acc = aig.land(acc, ins[static_cast<std::size_t>(i)]);
    aig.add_output("y", acc);
    EXPECT_EQ(aig.depth(), 15);
    const Aig bal = balance(aig);
    EXPECT_EQ(bal.depth(), 4);  // ceil(log2(16))
    EXPECT_EQ(bal.num_ands(), 15u);
    // Function preserved.
    for (int t = 0; t < 20; ++t) {
        Rng rng(static_cast<std::uint64_t>(t) + 71);
        std::vector<bool> pis;
        for (int i = 0; i < 16; ++i) pis.push_back(rng.next_bool(0.9));
        EXPECT_EQ(aig.simulate(pis)[0], bal.simulate(pis)[0]);
    }
}

TEST(Rewrite, MffcOfChain) {
    Aig aig;
    const AigLit a = aig.add_input("a");
    const AigLit b = aig.add_input("b");
    const AigLit c = aig.add_input("c");
    const AigLit x = aig.land(a, b);
    const AigLit y = aig.land(x, c);
    aig.add_output("y", y);
    const auto mffc = mffc_sizes(aig);
    EXPECT_EQ(mffc[aig_node(x)], 1);
    EXPECT_EQ(mffc[aig_node(y)], 2);  // removing y also frees x
}

TEST(Rewrite, RefactorPreservesFunction) {
    GeneratorConfig cfg;
    cfg.num_gates = 300;
    cfg.seed = 77;
    const Netlist nl = generate_random(lib28(), cfg);
    const Aig aig = Aig::from_netlist(nl).cleanup();
    const Aig rw = refactor(aig);
    ASSERT_EQ(rw.num_inputs(), aig.num_inputs());
    Rng rng(81);
    for (int t = 0; t < 60; ++t) {
        std::vector<bool> pis;
        for (std::size_t i = 0; i < aig.num_inputs(); ++i) pis.push_back(rng.next_bool());
        EXPECT_EQ(aig.simulate(pis), rw.simulate(pis));
    }
}

TEST(Rewrite, OptimizeShrinksRedundantLogic) {
    // Build deliberately redundant logic: (a&b) | (a&b&c) | (a&b&!c) == a&b.
    Aig aig;
    const AigLit a = aig.add_input("a");
    const AigLit b = aig.add_input("b");
    const AigLit c = aig.add_input("c");
    const AigLit ab = aig.land(a, b);
    const AigLit t1 = aig.land(ab, c);
    const AigLit t2 = aig.land(ab, aig_not(c));
    aig.add_output("y", aig.lor(aig.lor(ab, t1), t2));
    const Aig opt = optimize(aig);
    EXPECT_LE(opt.num_ands(), 1u);
    for (unsigned v = 0; v < 8; ++v) {
        const std::vector<bool> pis{static_cast<bool>(v & 1),
                                    static_cast<bool>(v & 2),
                                    static_cast<bool>(v & 4)};
        EXPECT_EQ(opt.simulate(pis)[0], (v & 1) && (v & 2));
    }
}

TEST(Rewrite, OptimizeNeverGrowsNodeCount) {
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
        GeneratorConfig cfg;
        cfg.num_gates = 400;
        cfg.seed = seed;
        cfg.xor_fraction = 0.2;
        const Aig aig = Aig::from_netlist(generate_random(lib28(), cfg)).cleanup();
        const Aig opt = optimize(aig);
        EXPECT_LE(opt.num_ands(), aig.num_ands()) << "seed " << seed;
    }
}

// --------------------------------------------------------------------- bdd

TEST(Bdd, BasicOperations) {
    Bdd bdd(3);
    const auto a = bdd.var(0);
    const auto b = bdd.var(1);
    const auto f = bdd.land(a, b);
    EXPECT_EQ(bdd.sat_count(f), 2u);  // 2 assignments of x2
    EXPECT_TRUE(bdd.evaluate(f, 0b011));
    EXPECT_FALSE(bdd.evaluate(f, 0b001));
    EXPECT_EQ(bdd.lnot(bdd.lnot(f)), f);
}

TEST(Bdd, CanonicityAcrossConstructions) {
    Bdd bdd(3);
    const auto a = bdd.var(0);
    const auto b = bdd.var(1);
    const auto c = bdd.var(2);
    // (a&b)|c built two ways.
    const auto f1 = bdd.lor(bdd.land(a, b), c);
    const auto f2 = bdd.lnot(bdd.land(bdd.lnot(bdd.land(a, b)), bdd.lnot(c)));
    EXPECT_EQ(f1, f2);
}

TEST(Bdd, FromTruthTableMatchesIte) {
    Rng rng(91);
    for (int trial = 0; trial < 10; ++trial) {
        TruthTable tt(4);
        for (std::uint64_t m = 0; m < 16; ++m) tt.set_bit(m, rng.next_bool());
        Bdd bdd(4);
        const auto f = bdd.from_truth_table(tt);
        for (std::uint64_t m = 0; m < 16; ++m) {
            EXPECT_EQ(bdd.evaluate(f, m), tt.bit(m));
        }
    }
}

TEST(Bdd, XorChainIsLinear) {
    const int n = 10;
    Bdd bdd(n);
    auto f = bdd.var(0);
    for (int i = 1; i < n; ++i) f = bdd.lxor(f, bdd.var(i));
    EXPECT_EQ(bdd.count_nodes({f}), static_cast<std::size_t>(2 * n - 1));
}

// -------------------------------------------------------------------- bbdd

TEST(Bbdd, EvaluatesCorrectly) {
    Rng rng(101);
    for (int trial = 0; trial < 15; ++trial) {
        const int n = 5;
        TruthTable tt(n);
        for (std::uint64_t m = 0; m < tt.num_minterms_space(); ++m) {
            tt.set_bit(m, rng.next_bool());
        }
        Bbdd bbdd(n);
        const auto f = bbdd.from_truth_table(tt);
        for (std::uint64_t m = 0; m < tt.num_minterms_space(); ++m) {
            EXPECT_EQ(bbdd.evaluate(f, m), tt.bit(m)) << "trial " << trial;
        }
    }
}

TEST(Bbdd, CanonicalSharing) {
    // Same function built twice shares the root.
    const auto tt = TruthTable::variable(4, 0) ^ TruthTable::variable(4, 1);
    Bbdd bbdd(4);
    const auto f1 = bbdd.from_truth_table(tt);
    const auto f2 = bbdd.from_truth_table(tt);
    EXPECT_EQ(f1, f2);
}

TEST(Bbdd, XorIsSingleNode) {
    // x0 XOR x1 is exactly one biconditional node — the headline property
    // of the representation for controlled-polarity logic.
    const auto tt = TruthTable::variable(2, 0) ^ TruthTable::variable(2, 1);
    Bbdd bbdd(2);
    const auto f = bbdd.from_truth_table(tt);
    EXPECT_EQ(bbdd.count_nodes({f}), 1u);
    // The ROBDD of the same function needs 3 nodes.
    Bdd bdd(2);
    EXPECT_EQ(bdd.count_nodes({bdd.from_truth_table(tt)}), 3u);
}

TEST(Bbdd, SmallerThanBddOnParity) {
    const int n = 8;
    TruthTable tt(n);
    TruthTable acc = TruthTable::variable(n, 0);
    for (int i = 1; i < n; ++i) acc = acc ^ TruthTable::variable(n, i);
    Bbdd bbdd(n);
    Bdd bdd(n);
    const auto nb = bbdd.count_nodes({bbdd.from_truth_table(acc)});
    const auto nd = bdd.count_nodes({bdd.from_truth_table(acc)});
    EXPECT_LT(nb, nd);
}

// --------------------------------------------------------------- tech map

TEST(TechMap, MapsAdderCorrectly) {
    const Netlist golden = generate_adder(lib28(), 4);
    const Aig aig = Aig::from_netlist(golden);
    const Netlist mapped = tech_map(aig, lib28());
    EXPECT_TRUE(mapped.validate().empty());
    Rng rng(111);
    expect_equiv(golden, mapped, 100, rng);
}

TEST(TechMap, MapsRandomLogicCorrectly) {
    for (const std::uint64_t seed : {5ull, 6ull}) {
        GeneratorConfig cfg;
        cfg.num_gates = 250;
        cfg.seed = seed;
        cfg.xor_fraction = 0.25;
        const Netlist golden = generate_random(lib28(), cfg);
        const Aig aig = optimize(Aig::from_netlist(golden));
        const Netlist mapped = tech_map(aig, lib28());
        EXPECT_TRUE(mapped.validate().empty());
        Rng rng(113 + seed);
        expect_equiv(golden, mapped, 60, rng);
    }
}

TEST(TechMap, NaiveMapCorrectButLarger) {
    const Netlist golden = generate_adder(lib28(), 5);
    const Aig aig = Aig::from_netlist(golden);
    const Netlist naive = naive_map(aig, lib28());
    const Netlist mapped = tech_map(optimize(aig), lib28());
    EXPECT_TRUE(naive.validate().empty());
    Rng rng(117);
    expect_equiv(golden, naive, 80, rng);
    // The optimized+matched mapping must be substantially smaller.
    EXPECT_LT(mapped.total_area(), 0.8 * naive.total_area());
}

TEST(TechMap, ConstantOutputGetsTieCell) {
    Aig aig;
    const AigLit a = aig.add_input("a");
    aig.add_output("zero", aig.land(a, aig_not(a)));
    aig.add_output("one", Aig::const1());
    const Netlist mapped = tech_map(aig, lib28());
    EXPECT_TRUE(mapped.validate().empty());
    const auto vals0 = mapped.evaluate({false}, {});
    const auto vals1 = mapped.evaluate({true}, {});
    EXPECT_FALSE(vals0[mapped.primary_outputs()[0].second]);
    EXPECT_TRUE(vals0[mapped.primary_outputs()[1].second]);
    EXPECT_FALSE(vals1[mapped.primary_outputs()[0].second]);
    EXPECT_TRUE(vals1[mapped.primary_outputs()[1].second]);
}

TEST(TechMap, PassthroughOutput) {
    Aig aig;
    const AigLit a = aig.add_input("a");
    aig.add_output("y", a);
    aig.add_output("ny", aig_not(a));
    const Netlist mapped = tech_map(aig, lib28());
    EXPECT_TRUE(mapped.validate().empty());
    const auto v = mapped.evaluate({true}, {});
    EXPECT_TRUE(v[mapped.primary_outputs()[0].second]);
    EXPECT_FALSE(v[mapped.primary_outputs()[1].second]);
}

// --------------------------------------------- property sweep (TEST_P)

class SynthesisPipelineTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SynthesisPipelineTest, EndToEndEquivalenceAndImprovement) {
    GeneratorConfig cfg;
    cfg.num_gates = 200;
    cfg.num_inputs = 12;
    cfg.seed = GetParam();
    cfg.xor_fraction = 0.15;
    const Netlist golden = generate_random(lib28(), cfg);
    const Aig raw = Aig::from_netlist(golden).cleanup();
    const Aig opt = optimize(raw);
    EXPECT_LE(opt.num_ands(), raw.num_ands());
    const Netlist mapped = tech_map(opt, lib28());
    EXPECT_TRUE(mapped.validate().empty());
    Rng rng(cfg.seed * 7 + 1);
    expect_equiv(golden, mapped, 40, rng);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthesisPipelineTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace janus
